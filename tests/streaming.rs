//! Differential tests of the streaming superstep pipeline.
//!
//! Every algorithm is executed twice over: once materializing its
//! trace and replaying it (`TraceBuilder::new` → `Session::run_trace`),
//! and once streaming each superstep into the session the moment its
//! barrier fires (`TraceBuilder::streaming` over a `SessionSink`). The
//! two paths must be bit-identical — same cycles, same request counts,
//! same per-bank and per-processor totals — or the streaming pipeline
//! is not the same machine.
//!
//! A proptest additionally pits the overlapped two-thread mode
//! (`run_overlapped`, generation on one thread, execution on the
//! other) against a single-threaded `run_stream` on arbitrary traces.

use std::collections::HashMap;

use dxbsp::algos::{
    binary_search, connected, list_ranking, merge, multiprefix, radix_sort, random_perm,
    sample_sort, scan, scatter_gather, spmv, TraceBuilder,
};
use dxbsp::machine::{
    run_overlapped, Session, SessionSink, SimulatorBackend, TraceSource, TraceStep,
};
use dxbsp::model::{AccessPattern, Interleaved, MachineParams};
use dxbsp::workloads::{CsrMatrix, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PROCS: usize = 8;

/// A J90-flavoured machine with a nonzero barrier cost, so the
/// per-superstep `L` accounting is exercised too.
fn machine() -> MachineParams {
    MachineParams::new(PROCS, 1, 5, 14, 32)
}

/// Runs `generate` twice — once collecting then replaying the
/// materialized trace, once streaming every superstep straight into a
/// session — and requires bit-identical session totals.
fn assert_streaming_matches_materialized(name: &str, generate: impl Fn(&mut TraceBuilder)) {
    let m = machine();
    let map = Interleaved::new(m.banks());

    let mut tb = TraceBuilder::new(m.p);
    generate(&mut tb);
    let trace = tb.finish();
    let mut materialized = Session::new(SimulatorBackend::from_params(&m));
    materialized.run_trace(&trace, &map);

    let mut streamed = Session::new(SimulatorBackend::from_params(&m));
    {
        let mut sink = SessionSink::new(&mut streamed, &map);
        let mut tb = TraceBuilder::streaming(m.p, &mut sink);
        generate(&mut tb);
        let _ = tb.finish();
    }

    assert_eq!(streamed.supersteps(), materialized.supersteps(), "{name}: superstep count");
    assert_eq!(streamed.cycles(), materialized.cycles(), "{name}: total cycles");
    assert_eq!(streamed.memory_cycles(), materialized.memory_cycles(), "{name}: memory cycles");
    assert_eq!(streamed.requests(), materialized.requests(), "{name}: request count");
    assert_eq!(streamed.bank_totals(), materialized.bank_totals(), "{name}: per-bank stats");
    assert_eq!(streamed.proc_totals(), materialized.proc_totals(), "{name}: per-proc stats");
}

#[test]
fn scan_streams_identically() {
    assert_streaming_matches_materialized("scan", |tb| {
        let a = tb.alloc(2048);
        scan::trace_scan(tb, a, 2048, "scan");
    });
}

#[test]
fn segmented_scan_streams_identically() {
    assert_streaming_matches_materialized("segmented-scan", |tb| {
        let a = tb.alloc(2048);
        let flags = tb.alloc(2048);
        scan::trace_segmented_scan(tb, a, flags, 2048, "segscan");
    });
}

#[test]
fn radix_sort_streams_identically() {
    let mut rng = StdRng::seed_from_u64(11);
    let keys: Vec<u64> = (0..1024).map(|_| rng.random_range(0..1u64 << 32)).collect();
    assert_streaming_matches_materialized("radix-sort", |tb| {
        radix_sort::sort_with(tb, &keys, 8);
    });
}

#[test]
fn merge_streams_identically() {
    let a: Vec<u64> = (0..512).map(|i| i * 3).collect();
    let b: Vec<u64> = (0..512).map(|i| i * 5 + 1).collect();
    assert_streaming_matches_materialized("merge", |tb| {
        merge::merge_with(tb, &a, &b);
    });
}

#[test]
fn list_ranking_streams_identically() {
    let mut rng = StdRng::seed_from_u64(13);
    let (succ, _head) = list_ranking::random_list(512, &mut rng);
    assert_streaming_matches_materialized("wyllie", |tb| {
        list_ranking::wyllie_with(tb, &succ);
    });
    assert_streaming_matches_materialized("wyllie-naive", |tb| {
        list_ranking::wyllie_naive_with(tb, &succ);
    });
}

#[test]
fn binary_search_variants_stream_identically() {
    let mut rng = StdRng::seed_from_u64(17);
    let mut keys: Vec<u64> = (0..1024).map(|_| rng.random_range(0..1u64 << 30)).collect();
    keys.sort_unstable();
    keys.dedup();
    let queries: Vec<u64> = (0..512).map(|_| rng.random_range(0..1u64 << 30)).collect();

    assert_streaming_matches_materialized("binsearch-naive", |tb| {
        binary_search::naive_with(tb, &keys, &queries);
    });
    assert_streaming_matches_materialized("binsearch-replicated", |tb| {
        let mut rng = StdRng::seed_from_u64(19);
        binary_search::replicated_with(tb, &keys, &queries, 8, true, &mut rng);
    });
    assert_streaming_matches_materialized("binsearch-erew", |tb| {
        binary_search::erew_with(tb, &keys, &queries);
    });
}

#[test]
fn random_perm_variants_stream_identically() {
    assert_streaming_matches_materialized("randperm-darts", |tb| {
        let mut rng = StdRng::seed_from_u64(23);
        random_perm::darts_with(tb, 1024, 1.5, &mut rng);
    });
    assert_streaming_matches_materialized("randperm-erew", |tb| {
        let mut rng = StdRng::seed_from_u64(29);
        random_perm::erew_with(tb, 1024, &mut rng);
    });
}

#[test]
fn sample_sort_streams_identically() {
    let mut rng = StdRng::seed_from_u64(31);
    let keys: Vec<u64> = (0..1024).map(|_| rng.random_range(0..1u64 << 32)).collect();
    assert_streaming_matches_materialized("sample-sort", |tb| {
        let mut rng = StdRng::seed_from_u64(37);
        sample_sort::sample_sort_with(tb, &keys, 8, 4, &mut rng);
    });
}

#[test]
fn connected_components_stream_identically() {
    let mut rng = StdRng::seed_from_u64(41);
    let g = Graph::random_gnm(512, 1024, &mut rng);
    assert_streaming_matches_materialized("cc-hook", |tb| {
        connected::connected_with(tb, &g);
    });
    assert_streaming_matches_materialized("cc-random-mate", |tb| {
        let mut rng = StdRng::seed_from_u64(43);
        connected::random_mate_with(tb, &g, &mut rng);
    });
}

#[test]
fn multiprefix_variants_stream_identically() {
    let mut rng = StdRng::seed_from_u64(47);
    let keys: Vec<u64> = (0..1024).map(|_| rng.random_range(0..32)).collect();
    let values: Vec<u64> = (0..1024).map(|_| rng.random_range(0..100)).collect();
    assert_streaming_matches_materialized("multiprefix-direct", |tb| {
        multiprefix::direct_with(tb, &keys, &values);
    });
    assert_streaming_matches_materialized("multiprefix-sorted", |tb| {
        multiprefix::sorted_with(tb, &keys, &values);
    });
}

#[test]
fn spmv_streams_identically() {
    let mut rng = StdRng::seed_from_u64(53);
    let a = CsrMatrix::random_with_dense_column(256, 256, 4, 64, &mut rng);
    let x: Vec<f64> = (0..256).map(|i| i as f64).collect();
    assert_streaming_matches_materialized("spmv", |tb| {
        spmv::spmv_with(tb, &a, &x);
    });
}

#[test]
fn scatter_gather_pipelines_stream_identically() {
    let m = machine();
    let mut rng = StdRng::seed_from_u64(59);
    let keys: Vec<u64> = (0..1024).map(|_| rng.random_range(0..64)).collect();
    let values: Vec<u64> = (0..1024).collect();
    assert_streaming_matches_materialized("scatter+gather", |tb| {
        let src = scatter_gather::scatter_with(tb, &keys, &values);
        scatter_gather::gather_with(tb, &keys, &src);
    });
    assert_streaming_matches_materialized("scatter-combining", |tb| {
        scatter_gather::scatter_combining_with(tb, &keys, &values);
    });
    let src: HashMap<u64, u64> = keys.iter().map(|&k| (k, k * 2)).collect();
    assert_streaming_matches_materialized("gather-duplicated", |tb| {
        scatter_gather::gather_with_duplication_with(tb, &m, &keys, &src);
    });
}

/// The overlapped producer/consumer mode on a real algorithm: trace
/// generation runs on a second thread, execution on this one, and both
/// the algorithm's value and the session totals must match the
/// single-threaded streaming run.
#[test]
fn overlapped_radix_sort_matches_single_thread() {
    let m = machine();
    let map = Interleaved::new(m.banks());
    let mut rng = StdRng::seed_from_u64(61);
    let keys: Vec<u64> = (0..2048).map(|_| rng.random_range(0..1u64 << 40)).collect();

    let mut sequential = Session::new(SimulatorBackend::from_params(&m));
    let perm_seq = {
        let mut sink = SessionSink::new(&mut sequential, &map);
        let mut tb = TraceBuilder::streaming(PROCS, &mut sink);
        let perm = radix_sort::sort_with(&mut tb, &keys, 8);
        let _ = tb.finish();
        perm
    };

    let mut overlapped = Session::new(SimulatorBackend::from_params(&m));
    let (perm_ovl, _summary) = run_overlapped(&mut overlapped, &map, 4, |sink| {
        let mut tb = TraceBuilder::streaming(PROCS, sink);
        let perm = radix_sort::sort_with(&mut tb, &keys, 8);
        let _ = tb.finish();
        perm
    });

    assert_eq!(perm_seq, perm_ovl, "the computed value must not depend on the threading mode");
    assert_eq!(sequential.cycles(), overlapped.cycles());
    assert_eq!(sequential.requests(), overlapped.requests());
    assert_eq!(sequential.bank_totals(), overlapped.bank_totals());
    assert_eq!(sequential.proc_totals(), overlapped.proc_totals());
}

/// Streaming replay must not allocate proportionally to trace length:
/// however many supersteps flow through `run_stream`, the session pool
/// hands out the same number of pattern buffers.
#[test]
fn streaming_pool_allocation_is_independent_of_trace_length() {
    let m = machine();
    let map = Interleaved::new(m.banks());
    let allocs: Vec<usize> = [8usize, 512]
        .iter()
        .map(|&n| {
            let trace: Vec<TraceStep> = (0..n)
                .map(|i| {
                    let keys = [i as u64 % 32; 16];
                    TraceStep::new(AccessPattern::scatter(PROCS, &keys)).labeled("bulk")
                })
                .collect();
            let mut session = Session::new(SimulatorBackend::from_params(&m));
            session.run_stream(&mut TraceSource::new(&trace), &map);
            session.pool().allocations()
        })
        .collect();
    assert_eq!(allocs[0], allocs[1], "pool allocations grew with trace length: {allocs:?}");
}

fn step_strategy() -> impl Strategy<Value = TraceStep> {
    (collection::vec((0..PROCS, 0u64..128, any::<bool>()), 0..32), 0u64..8).prop_map(
        |(reqs, local)| {
            let mut pat = AccessPattern::new(PROCS);
            for (proc, addr, write) in reqs {
                if write {
                    pat.push_write(proc, addr);
                } else {
                    pat.push_read(proc, addr);
                }
            }
            TraceStep::new(pat).with_local_work(local).labeled("prop")
        },
    )
}

proptest! {
    /// Arbitrary traces through the bounded channel: the overlapped
    /// two-thread run must be bit-identical to the single-threaded one
    /// for any trace shape and any channel depth.
    #[test]
    fn overlapped_mode_matches_single_thread(
        trace in collection::vec(step_strategy(), 0..24),
        depth in 1usize..6,
    ) {
        let m = machine();
        let map = Interleaved::new(m.banks());

        let mut sequential = Session::new(SimulatorBackend::from_params(&m));
        let seq = sequential.run_stream(&mut TraceSource::new(&trace), &map);

        let mut overlapped = Session::new(SimulatorBackend::from_params(&m));
        let ((), ovl) = run_overlapped(&mut overlapped, &map, depth, |sink| {
            let mut buf = TraceStep::default();
            for s in &trace {
                buf.copy_from(s);
                buf = sink.emit(std::mem::take(&mut buf));
            }
        });

        prop_assert_eq!(seq, ovl);
        prop_assert_eq!(sequential.cycles(), overlapped.cycles());
        prop_assert_eq!(sequential.bank_totals(), overlapped.bank_totals());
        prop_assert_eq!(sequential.proc_totals(), overlapped.proc_totals());
    }
}
