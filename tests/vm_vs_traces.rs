//! Consistency between the two execution styles: algorithms as traced
//! host computations (`dxbsp-algos`) and as VM programs (`dxbsp-vm`)
//! must tell the same performance story on the same machine.

use dxbsp::algos::spmv::spmv_traced;
use dxbsp::hash::{Degree, HashedBanks};
use dxbsp::machine::{run_trace, SimConfig, Simulator};
use dxbsp::model::MachineParams;
use dxbsp::vm::{programs, Executor};
use dxbsp::workloads::CsrMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn m() -> MachineParams {
    MachineParams::new(8, 1, 0, 14, 32)
}

fn vm_spmv_cycles(machine: MachineParams, a: &CsrMatrix, x: &[f64], seed: u64) -> (Vec<f64>, u64) {
    let mut vm = Executor::seeded(machine, seed);
    let vals = vm.constant_f64(&a.values);
    let cols = vm.constant(&a.col_idx.iter().map(|&c| u64::from(c)).collect::<Vec<_>>());
    let mut flags = vec![0u64; a.nnz()];
    let mut last = Vec::with_capacity(a.rows);
    for r in 0..a.rows {
        if a.row_ptr[r] < a.row_ptr[r + 1] {
            flags[a.row_ptr[r]] = 1;
        }
        last.push(a.row_ptr[r + 1].saturating_sub(1) as u64);
    }
    let flags_h = vm.constant(&flags);
    let last_h = vm.constant(&last);
    let x_h = vm.constant_f64(x);
    let before = vm.cycles();
    let y = programs::spmv(&mut vm, vals, cols, flags_h, last_h, x_h);
    let spent = vm.cycles() - before;
    (vm.read_back_f64(y), spent)
}

fn traced_spmv_cycles(machine: MachineParams, a: &CsrMatrix, x: &[f64], seed: u64) -> u64 {
    let t = spmv_traced(machine.p, a, x);
    let sim = Simulator::new(SimConfig::from_params(&machine));
    let mut rng = StdRng::seed_from_u64(seed);
    let map = HashedBanks::random(Degree::Linear, machine.banks(), &mut rng);
    run_trace(&sim, &t.trace, &map).total_cycles
}

/// Both styles compute the right product, and their cycle counts agree
/// within a small constant factor (they charge the same gathers, scans
/// and sweeps, with slightly different superstep groupings).
#[test]
fn spmv_costs_agree_between_styles() {
    let mut rng = StdRng::seed_from_u64(1);
    for dense in [0usize, 512, 2048] {
        let a = CsrMatrix::random_with_dense_column(2048, 2048, 4, dense, &mut rng);
        let x: Vec<f64> = (0..2048).map(|i| 1.0 + i as f64 / 1000.0).collect();
        let (y, vm_cycles) = vm_spmv_cycles(m(), &a, &x, 7);
        let want = a.multiply_serial(&x);
        for (g, w) in y.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-6 * w.abs().max(1.0));
        }
        let traced_cycles = traced_spmv_cycles(m(), &a, &x, 7);
        let ratio = vm_cycles as f64 / traced_cycles as f64;
        assert!(
            ratio > 0.4 && ratio < 2.5,
            "dense={dense}: VM {vm_cycles} vs traced {traced_cycles} (ratio {ratio:.2})"
        );
    }
}

/// The dense column moves both styles by the same factor.
#[test]
fn dense_column_scales_both_styles_alike() {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 2048;
    let sparse = CsrMatrix::random(n, n, 4, &mut rng);
    let dense = CsrMatrix::random_with_dense_column(n, n, 4, n, &mut rng);
    let x: Vec<f64> = vec![1.0; n];

    let (_, vm_sparse) = vm_spmv_cycles(m(), &sparse, &x, 3);
    let (_, vm_dense) = vm_spmv_cycles(m(), &dense, &x, 3);
    let tr_sparse = traced_spmv_cycles(m(), &sparse, &x, 3);
    let tr_dense = traced_spmv_cycles(m(), &dense, &x, 3);

    let vm_factor = vm_dense as f64 / vm_sparse as f64;
    let tr_factor = tr_dense as f64 / tr_sparse as f64;
    assert!(vm_factor > 1.5, "VM factor {vm_factor}");
    assert!(tr_factor > 1.5, "traced factor {tr_factor}");
    assert!(
        (vm_factor / tr_factor - 1.0).abs() < 0.5,
        "styles disagree: VM {vm_factor:.2} vs traced {tr_factor:.2}"
    );
}

/// VM darts on the bigger machine still form permutations and beat the
/// VM radix sort — Figure 11 retold end-to-end through simulated memory.
#[test]
fn vm_darts_beat_vm_sort_on_j90() {
    let n = 2048;
    let mut rng = StdRng::seed_from_u64(4);
    let mut vm_d = Executor::seeded(m(), 5);
    let perm_h = programs::random_permutation_darts(&mut vm_d, n, 1.5, &mut rng);
    let perm = vm_d.read_back(perm_h);
    let mut sorted = perm.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..n as u64).collect::<Vec<_>>());

    use rand::Rng;
    let mut vm_s = Executor::seeded(m(), 6);
    let keys: Vec<u64> = (0..n).map(|_| rng.random_range(0..1u64 << 22)).collect();
    let h = vm_s.constant(&keys);
    let _ = programs::radix_sort(&mut vm_s, h, 4, 22);
    assert!(vm_d.cycles() < vm_s.cycles());
}
