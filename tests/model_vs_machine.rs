//! Model-vs-machine validation: on every workload family the paper
//! uses, the (d,x)-BSP charge of the exact access pattern must track
//! the simulator within small constants, on both Cray-like presets and
//! on deliberately unbalanced machines.

use dxbsp::hash::{Degree, HashedBanks};
use dxbsp::machine::{SimConfig, Simulator};
use dxbsp::model::{pattern_cost, presets, AccessPattern, CostModel, MachineParams};
use dxbsp::workloads::{entropy_family, hotspot_keys, strided_addresses, uniform_keys};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measured cycles vs. the exact-pattern (d,x)-BSP charge: the charge
/// uses the *realized* max bank load, so measured/charged must sit in
/// a tight band (queueing can add, pipelining can shave constants).
fn assert_tracks(m: &MachineParams, pat: &AccessPattern, seed: u64, what: &str) {
    let sim = Simulator::new(SimConfig::from_params(m));
    let mut rng = StdRng::seed_from_u64(seed);
    let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
    let measured = sim.run(pat, &map).cycles as f64;
    let charged = pattern_cost(m, pat, &map, CostModel::DxBsp).max(1) as f64;
    let ratio = measured / charged;
    assert!(
        ratio > 0.4 && ratio < 2.5,
        "{what} on p={},d={},x={}: measured/charged = {ratio:.3}",
        m.p,
        m.d,
        m.x
    );
}

fn machines() -> Vec<MachineParams> {
    vec![
        presets::cray_c90(),
        presets::cray_j90(),
        presets::underbanked(8, 14, 2),
        MachineParams::new(4, 2, 0, 6, 8),
        MachineParams::new(1, 1, 0, 4, 16),
    ]
}

#[test]
fn uniform_scatters_track() {
    for (i, m) in machines().into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(i as u64);
        let keys = uniform_keys(16 * 1024, 1 << 40, &mut rng);
        let pat = AccessPattern::scatter(m.p, &keys);
        assert_tracks(&m, &pat, 100 + i as u64, "uniform scatter");
    }
}

#[test]
fn hotspot_scatters_track() {
    for (i, m) in machines().into_iter().enumerate() {
        for k in [64usize, 1024, 8192] {
            let mut rng = StdRng::seed_from_u64(10 * i as u64 + k as u64);
            let keys = hotspot_keys(16 * 1024, k, 1 << 40, &mut rng);
            let pat = AccessPattern::scatter(m.p, &keys);
            assert_tracks(&m, &pat, 200 + i as u64, "hotspot scatter");
        }
    }
}

#[test]
fn entropy_families_track() {
    let mut rng = StdRng::seed_from_u64(3);
    let family = entropy_family(16 * 1024, 20, 6, &mut rng);
    for m in [presets::cray_j90(), presets::underbanked(8, 14, 2)] {
        for (gen, keys) in family.iter().enumerate() {
            let pat = AccessPattern::scatter(m.p, keys);
            assert_tracks(&m, &pat, 300 + gen as u64, "entropy scatter");
        }
    }
}

#[test]
fn gathers_track_like_scatters() {
    // "experiments with the gather operation give almost identical
    // results" (§3).
    let m = presets::cray_j90();
    let mut rng = StdRng::seed_from_u64(4);
    let keys = hotspot_keys(16 * 1024, 2048, 1 << 40, &mut rng);
    let scatter = AccessPattern::scatter(m.p, &keys);
    let gather = AccessPattern::gather(m.p, &keys);
    let sim = Simulator::new(SimConfig::from_params(&m));
    let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
    let sc = sim.run(&scatter, &map).cycles;
    let gc = sim.run(&gather, &map).cycles;
    assert_eq!(sc, gc, "reads and writes are charged identically");
}

#[test]
fn strided_patterns_track_under_hashing() {
    let m = presets::cray_j90();
    for stride in [1u64, 8, 64, 256, 4096] {
        let addrs = strided_addresses(0, stride, 16 * 1024);
        let pat = AccessPattern::scatter(m.p, &addrs);
        assert_tracks(&m, &pat, 500 + stride, "strided scatter");
    }
}

#[test]
fn the_bsp_charge_fails_where_the_paper_says() {
    // Sanity check on the negative space: for the all-same-address
    // pattern, the BSP charge is off by a factor ≈ d·p/g, the
    // discrepancy the paper opens with.
    let m = presets::cray_j90();
    let n = 16 * 1024;
    let keys = vec![42u64; n];
    let pat = AccessPattern::scatter(m.p, &keys);
    let sim = Simulator::new(SimConfig::from_params(&m));
    let mut rng = StdRng::seed_from_u64(6);
    let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
    let measured = sim.run(&pat, &map).cycles as f64;
    let bsp = pattern_cost(&m, &pat, &map, CostModel::Bsp) as f64;
    let expected_gap = (m.d * m.p as u64) as f64 / m.g as f64;
    let gap = measured / bsp;
    assert!(gap > expected_gap * 0.9, "BSP should be off by ≈ d·p/g = {expected_gap}, got {gap}");
}
