//! End-to-end integration tests: the paper's qualitative claims,
//! asserted across crate boundaries at reduced scale.

use dxbsp::algos::{binary_search, connected, random_perm, spmv};
use dxbsp::hash::{Degree, HashedBanks};
use dxbsp::machine::{run_trace, SimConfig, Simulator};
use dxbsp::model::{
    predict_scatter, predict_scatter_bsp, AccessPattern, MachineParams, ScatterShape,
};
use dxbsp::workloads::{hotspot_keys, uniform_keys, CsrMatrix, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn j90() -> MachineParams {
    MachineParams::new(8, 1, 0, 14, 32)
}

fn measure(m: &MachineParams, keys: &[u64], seed: u64) -> u64 {
    let sim = Simulator::new(SimConfig::from_params(m));
    let mut rng = StdRng::seed_from_u64(seed);
    let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
    sim.run(&AccessPattern::scatter(m.p, keys), &map).cycles
}

/// Claim 1 (abstract): "our framework is a good predictor of
/// performance … providing a good accounting of bank contention and
/// delay" — across the whole contention range, measured/predicted stays
/// within a small constant while the BSP ratio blows up.
#[test]
fn claim_model_predicts_across_contention_range() {
    let m = j90();
    let n = 16 * 1024;
    let mut rng = StdRng::seed_from_u64(1);
    for k in [1usize, 32, 512, 4096, n] {
        let keys = hotspot_keys(n, k, 1 << 40, &mut rng);
        let measured = measure(&m, &keys, k as u64) as f64;
        let dx = predict_scatter(&m, ScatterShape::new(n, k)) as f64;
        let ratio = measured / dx;
        assert!(ratio > 0.8 && ratio < 2.0, "k={k}: measured/dxbsp = {ratio}");
    }
    // The BSP misses the top of the range by orders of magnitude.
    let keys = hotspot_keys(n, n, 1 << 40, &mut rng);
    let measured = measure(&m, &keys, 99) as f64;
    let bsp = predict_scatter_bsp(&m, ScatterShape::new(n, n)) as f64;
    assert!(measured / bsp > 50.0, "BSP should underpredict: {}", measured / bsp);
}

/// Claim 2 (abstract): "it often improves performance to have
/// additional memory banks, even beyond the natural choice of d banks
/// per processor."
#[test]
fn claim_expansion_beyond_d_helps() {
    let n = 16 * 1024;
    let mut rng = StdRng::seed_from_u64(2);
    let keys = uniform_keys(n, 1 << 40, &mut rng);
    let d = 14u64;
    let at_d = measure(&MachineParams::new(8, 1, 0, d, 14), &keys, 3);
    let beyond = measure(&MachineParams::new(8, 1, 0, d, 56), &keys, 3);
    assert!(
        beyond < at_d,
        "x=4d ({beyond}) should beat x=d ({at_d}): queueing variance persists at x=d"
    );
}

/// Claim 3 (§6): the QRQW random permutation beats the EREW radix-sort
/// version, and both produce valid permutations.
#[test]
fn claim_qrqw_permutation_wins() {
    let m = j90();
    let n = 8 * 1024;
    let mut rng = StdRng::seed_from_u64(4);
    let darts = random_perm::darts_traced(m.p, n, 1.5, &mut rng);
    let erew = random_perm::erew_traced(m.p, n, &mut rng);
    assert!(random_perm::is_permutation(&darts.value.0));
    assert!(random_perm::is_permutation(&erew.value));

    let sim = Simulator::new(SimConfig::from_params(&m));
    let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
    let qc = run_trace(&sim, &darts.trace, &map).total_cycles;
    let ec = run_trace(&sim, &erew.trace, &map).total_cycles;
    assert!(qc < ec, "darts {qc} should beat radix sort {ec}");
}

/// Claim 4 (§6): replicated binary search beats both the naive walk and
/// the EREW baseline, with all three agreeing on the answers.
#[test]
fn claim_replicated_search_wins() {
    let m = j90();
    let mut rng = StdRng::seed_from_u64(5);
    let mut keys: Vec<u64> = (0..4096).map(|_| rng.random_range(0..1u64 << 30)).collect();
    keys.sort_unstable();
    keys.dedup();
    let queries: Vec<u64> = (0..8192).map(|_| rng.random_range(0..1u64 << 30)).collect();

    let naive = binary_search::naive_traced(m.p, &keys, &queries);
    let qrqw = binary_search::replicated_traced(m.p, &keys, &queries, 8, false, &mut rng);
    let erew = binary_search::erew_traced(m.p, &keys, &queries);
    assert_eq!(naive.value, binary_search::ranks_oracle(&keys, &queries));
    assert_eq!(naive.value, qrqw.value);
    assert_eq!(naive.value, erew.value);

    let sim = Simulator::new(SimConfig::from_params(&m));
    let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
    let nc = run_trace(&sim, &naive.trace, &map).total_cycles;
    let qc = run_trace(&sim, &qrqw.trace, &map).total_cycles;
    let ec = run_trace(&sim, &erew.trace, &map).total_cycles;
    assert!(qc < nc, "replicated {qc} vs naive {nc}");
    assert!(qc < ec, "replicated {qc} vs erew {ec}");
}

/// Claim 5 (§6, Fig 12): SpMV time scales with the dense column once
/// `d·k` dominates, and the parallel product stays correct.
#[test]
fn claim_spmv_dense_column_dominates() {
    let m = j90();
    let rows = 4096;
    let mut rng = StdRng::seed_from_u64(6);
    let sim = Simulator::new(SimConfig::from_params(&m));
    let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
    let x: Vec<f64> = (0..rows).map(|i| i as f64 * 0.5).collect();

    let mut cycles = Vec::new();
    for dense in [0usize, rows / 4, rows] {
        let a = CsrMatrix::random_with_dense_column(rows, rows, 4, dense, &mut rng);
        let t = spmv::spmv_traced(m.p, &a, &x);
        let serial = a.multiply_serial(&x);
        for (p, s) in t.value.iter().zip(&serial) {
            assert!((p - s).abs() <= 1e-9 * s.abs().max(1.0));
        }
        cycles.push(run_trace(&sim, &t.trace, &map).total_cycles);
    }
    assert!(cycles[1] > cycles[0], "{cycles:?}");
    assert!(cycles[2] > 2 * cycles[0], "{cycles:?}");
}

/// Claim 6 (§6/Fig 1): connected components is correct on every graph
/// family and its star-graph hook phase carries Θ(n) contention.
#[test]
fn claim_connected_components_contention_profile() {
    let m = j90();
    let n = 4096;
    let mut rng = StdRng::seed_from_u64(7);
    for g in [
        Graph::random_gnm(n, 2 * n, &mut rng),
        Graph::grid(64, 64),
        Graph::chain(n),
        Graph::star(n),
    ] {
        let t = connected::connected_traced(m.p, &g);
        assert!(connected::same_partition(&t.value.0, &g.components_oracle()));
    }
    let star = connected::connected_traced(m.p, &Graph::star(n));
    let hook = star.trace.iter().find(|s| s.label.contains("hook")).unwrap();
    assert!(
        hook.pattern.contention_profile().max_location_contention >= n - 1,
        "star hook contention must be Θ(n)"
    );
}

/// The example binaries' core flow: predicted ≤ measured cycle counts
/// and deterministic replay under a fixed seed.
#[test]
fn measured_reproducible_and_lower_bounded() {
    let m = j90();
    let n = 8192;
    let mut rng = StdRng::seed_from_u64(8);
    let keys = hotspot_keys(n, 777, 1 << 40, &mut rng);
    let a = measure(&m, &keys, 9);
    let b = measure(&m, &keys, 9);
    assert_eq!(a, b, "same seed must replay identically");
    assert!(a >= m.d * 777, "hot-location serialization is a hard floor");
}
