//! Empirical validation of the §5 emulation theorems: measured
//! emulation cost must sit below the reconstructed Theorem 5.1/5.2
//! bounds across the (d, x, contention, slackness) grid, and the work
//! overhead must straddle the inevitable d/x floor.

use dxbsp::hash::Degree;
use dxbsp::model::MachineParams;
use dxbsp::pram::{theory, Emulator, Op, Program, Step};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn hotspot_program(n: usize, k: usize, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut step = Step::new(n);
    for v in 0..n {
        let addr = if v < k { 0 } else { rng.random::<u64>() >> 8 };
        step.push_op(v, Op::Write(addr));
    }
    let mut prog = Program::new(n);
    prog.push(step);
    prog
}

#[test]
fn measured_cost_below_theory_bounds_on_grid() {
    let p = 8usize;
    let n = 8 * 1024;
    for d in [2u64, 8, 16] {
        for x in [1usize, 4, 16, 64] {
            for k in [1usize, 128, 2048] {
                let m = MachineParams::new(p, 1, 0, d, x);
                let mut rng = StdRng::seed_from_u64(d * 1000 + x as u64 * 10 + k as u64);
                let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
                let rep = emu.run(&hotspot_program(n, k, d + x as u64 + k as u64));
                let bound = theory::step_bound(&m, n, k);
                assert!(
                    rep.measured_cycles <= bound,
                    "d={d} x={x} k={k}: measured {} > bound {bound}",
                    rep.measured_cycles
                );
            }
        }
    }
}

#[test]
fn work_overhead_straddles_the_inevitable_floor() {
    let p = 8usize;
    let n = 16 * 1024;
    for d in [8u64, 16] {
        for x in [1usize, 2, 4] {
            let m = MachineParams::new(p, 1, 0, d, x);
            let mut rng = StdRng::seed_from_u64(d + x as u64);
            let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
            let rep = emu.run(&hotspot_program(n, 1, 7));
            let floor = theory::work_overhead_lower_bound(&m);
            assert!(
                rep.work_ratio() >= floor * 0.9,
                "d={d} x={x}: work ratio {} under the d/x floor {floor}",
                rep.work_ratio()
            );
            assert!(
                rep.work_ratio() <= floor * 4.0 + 4.0,
                "d={d} x={x}: work ratio {} far above the floor {floor}",
                rep.work_ratio()
            );
        }
    }
}

#[test]
fn balanced_machines_are_work_preserving() {
    // Theorem 5.2 regime: x ≥ d with slackness — O(1) work inflation.
    let p = 8usize;
    let n = 32 * 1024;
    for (d, x) in [(4u64, 8usize), (8, 16), (14, 32)] {
        let m = MachineParams::new(p, 1, 0, d, x);
        let mut rng = StdRng::seed_from_u64(d);
        let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
        let rep = emu.run(&hotspot_program(n, 1, 11));
        assert!(rep.work_ratio() < 3.0, "d={d} x={x}: work ratio {} not O(1)", rep.work_ratio());
    }
}

#[test]
fn slackness_amortizes_the_deviation_term() {
    // With more virtual processors per physical one, the emulation's
    // per-op overhead shrinks toward the flat regime.
    let m = MachineParams::new(8, 1, 0, 14, 16);
    let mut ratios = Vec::new();
    for n in [1024usize, 8 * 1024, 64 * 1024] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
        let rep = emu.run(&hotspot_program(n, 1, 13));
        ratios.push(rep.work_ratio());
    }
    assert!(ratios[2] <= ratios[0], "work ratio should not grow with slackness: {ratios:?}");
    assert!(ratios[2] < 2.5, "{ratios:?}");
}

#[test]
fn multi_step_programs_accumulate_correctly() {
    let m = MachineParams::new(4, 1, 0, 8, 8);
    let n = 2048;
    let mut prog = Program::new(n);
    for s in 0..4 {
        let mut step = Step::new(n);
        let mut rng = StdRng::seed_from_u64(s);
        for v in 0..n {
            step.push_op(v, Op::Write(rng.random::<u64>() >> 8));
            step.push_op(v, Op::Local(2));
        }
        prog.push(step);
    }
    let mut rng = StdRng::seed_from_u64(17);
    let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
    let rep = emu.run(&prog);
    assert_eq!(rep.per_step.len(), 4);
    let sum: u64 = rep.per_step.iter().map(|&(_, _, meas)| meas).sum();
    assert_eq!(sum, rep.measured_cycles);
    // Four steps of n memory ops and 2 local units each.
    assert_eq!(rep.qrqw_time, prog.time(dxbsp::pram::CostRule::Qrqw));
}

#[test]
fn erew_programs_emulate_with_low_contention_cost() {
    // An EREW program (distinct addresses) on a balanced machine: the
    // whole emulation is bandwidth-bound, no d·k term anywhere.
    let m = MachineParams::new(8, 1, 0, 14, 32);
    let n = 16 * 1024;
    let mut step = Step::new(n);
    for v in 0..n {
        step.push_op(v, Op::Write(v as u64 * 31 + 1));
    }
    let mut prog = Program::new(n);
    prog.push(step);
    assert!(prog.is_erew_legal());
    let mut rng = StdRng::seed_from_u64(23);
    let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
    let rep = emu.run(&prog);
    // Processor-bound: ≈ g·n/p cycles.
    let ideal = (n / m.p) as u64;
    assert!(rep.measured_cycles < 2 * ideal, "{} vs ideal {}", rep.measured_cycles, ideal);
}
