//! Offline stand-in for `proptest`: random sampling of the strategy
//! combinators the workspace uses, with a deterministic per-test RNG.
//!
//! Differences from the real crate: failures are **not shrunk** (the
//! failing inputs are printed as drawn), `prop_assume!` skips the case
//! instead of re-drawing within it, and `&str` strategies only honor
//! the `.{a,b}` shape (anything else falls back to short ASCII
//! strings).

pub mod strategy {
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Deterministic xoshiro256++ stream for one property test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, span)`; `0` or `> u64::MAX` means full domain.
        pub fn below(&mut self, span: u128) -> u64 {
            if span == 0 || span > u128::from(u64::MAX) {
                return self.next_u64();
            }
            let s = span as u64;
            let reject_below = s.wrapping_neg() % s;
            loop {
                let m = u128::from(self.next_u64()) * u128::from(s);
                if (m as u64) >= reject_below {
                    return (m >> 64) as u64;
                }
            }
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u128) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// `any::<T>()` — uniform over the type's whole domain.
    pub struct Any<T>(PhantomData<T>);

    pub trait ArbSample {
        fn arb_sample(rng: &mut TestRng) -> Self;
    }

    #[must_use]
    pub fn any<T: ArbSample>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbSample> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arb_sample(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl ArbSample for $t {
                fn arb_sample(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }

            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbSample for bool {
        fn arb_sample(rng: &mut TestRng) -> Self {
            rng.next_u64() >> 63 != 0
        }
    }

    impl ArbSample for f64 {
        fn arb_sample(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            start + rng.unit_f64() * (end - start)
        }
    }

    /// String strategy from a pattern literal. Only the `.{a,b}` shape
    /// is interpreted (ASCII string with length in `[a, b]`); any other
    /// pattern falls back to ASCII strings of length 0..=8.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_len_pattern(self).unwrap_or((0, 8));
            let len = lo + rng.below((hi - lo + 1) as u128) as usize;
            const ALPHABET: &[u8] =
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _:-";
            (0..len)
                .map(|_| ALPHABET[rng.below(ALPHABET.len() as u128) as usize] as char)
                .collect()
        }
    }

    fn parse_len_pattern(pat: &str) -> Option<(usize, usize)> {
        let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
        (lo <= hi).then_some((lo, hi))
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize, // inclusive
    }

    pub trait IntoSizeRange {
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty vec size range");
            (*self.start(), *self.end())
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo + 1) as u128) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// The subset of real `ProptestConfig` the workspace sets.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single drawn case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Stable seed for a property test, derived from its full path.
    #[must_use]
    pub fn seed_for(test_path: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left), stringify!($right), l,
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __rng = $crate::strategy::TestRng::from_seed(__seed);
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(16).max(1024);
            while __passed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "prop_assume! rejected too many cases ({} attempts)",
                    __attempts,
                );
                let __vals = ($(
                    $crate::strategy::Strategy::sample(&($strat), &mut __rng),
                )+);
                let __case_desc = ::std::format!(
                    "  {} = {:?}\n",
                    stringify!(($($arg),+)),
                    __vals,
                );
                #[allow(unused_mut, unused_parens)]
                let ($($arg,)+) = __vals;
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __result {
                    ::core::result::Result::Ok(()) => __passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property '{}' failed after {} passing case(s): {}\ninputs (no shrinking):\n{}",
                            stringify!($name), __passed, msg, __case_desc,
                        );
                    }
                }
            }
        }
    )*};
}
