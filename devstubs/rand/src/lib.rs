//! Offline stand-in for `rand` 0.9: the `Rng`/`SeedableRng` surface the
//! workspace uses, backed by xoshiro256++ seeded via SplitMix64.
//!
//! Deterministic per seed, statistically solid, but the stream differs
//! from the real crate's `StdRng` — exact-draw pins will not transfer.

use std::ops::{Range, RangeInclusive};

/// Value samplable uniformly over its whole domain (`rng.random()`).
pub trait StandardSample {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Range samplable uniformly (`rng.random_range(range)`).
pub trait SampleRange<T> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform draw from `[0, span)`; Lemire widening-multiply rejection.
/// `span == 0` or `span > u64::MAX` means the full 64-bit domain.
fn sample_below<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u64 {
    if span == 0 || span > u128::from(u64::MAX) {
        return rng.next_u64();
    }
    let s = span as u64;
    let reject_below = s.wrapping_neg() % s;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(s);
        if (m as u64) >= reject_below {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sampling {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }

        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + sample_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++, state expanded from the seed with SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let (x, y, z): (u64, u64, u64) = (a.random(), b.random(), c.random());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0..=5usize);
            assert!(w <= 5);
            let f = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let s = rng.random_range(-8..9i64);
            assert!((-8..9).contains(&s));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0..1u64 << 40)
        }
        let mut rng = StdRng::seed_from_u64(9);
        assert!(draw(&mut rng) < 1 << 40);
    }
}
