//! Offline stand-in for `serde`: the derive macros plus empty marker
//! traits. The workspace derives `Serialize`/`Deserialize` on model
//! types but never serializes through them (the on-disk trace format
//! is hand-rolled in `dxbsp-machine::tracefile`), so markers suffice.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait SerializeMarker {}

/// Marker stand-in for `serde::Deserialize`.
pub trait DeserializeMarker {}
