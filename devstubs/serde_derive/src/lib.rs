//! No-op `Serialize`/`Deserialize` derives for offline type-checking.
//! The workspace only ever derives the traits; nothing calls their
//! (absent) methods, so deriving nothing at all type-checks.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
