//! Offline stand-in for `criterion`: a real wall-clock benchmark
//! harness covering the API the workspace uses. Each bench is warmed
//! up, then timed over fixed-duration batches; the **median ns per
//! iteration** is printed and written to
//! `target/criterion/<group>/<id>/new/estimates.json` in the same
//! `median.point_estimate` shape real criterion emits (which is all
//! `scripts/bench.sh` scrapes). No statistical analysis, plots, or
//! change detection.

use std::fmt::Display;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Times batches of calls to the closure under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    #[must_use]
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    #[must_use]
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Accepted for API compatibility; the stub reports plain ns/iter.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Anything usable as a bench id: a `&str` or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

#[derive(Debug, Clone)]
struct Settings {
    warm_up: Duration,
    measurement: Duration,
    sample_count: usize,
    filter: Option<String>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
            sample_count: 20,
            filter: None,
        }
    }
}

pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench`; any bare trailing argument is a
        // substring filter on the full bench id, like real criterion.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            settings: Settings {
                filter,
                ..Settings::default()
            },
        }
    }
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            settings_override: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let settings = self.settings.clone();
        run_benchmark(&settings, id, f);
        self
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    settings_override: Option<Settings>,
}

impl BenchmarkGroup<'_> {
    fn settings(&self) -> Settings {
        self.settings_override
            .clone()
            .unwrap_or_else(|| self.criterion.settings.clone())
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let mut s = self.settings();
        s.sample_count = n.max(2);
        self.settings_override = Some(s);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        let mut s = self.settings();
        s.measurement = d;
        self.settings_override = Some(s);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        let mut s = self.settings();
        s.warm_up = d;
        self.settings_override = Some(s);
        self
    }

    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&self.settings(), &full, f);
        self
    }

    pub fn bench_with_input<I: IntoBenchmarkId, T, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(settings: &Settings, full_id: &str, mut f: F) {
    if let Some(filter) = &settings.filter {
        if !full_id.contains(filter.as_str()) {
            return;
        }
    }

    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Warm up and discover a batch size: grow iters until one batch
    // fills its share of the warm-up budget.
    let warm_start = Instant::now();
    loop {
        f(&mut b);
        if warm_start.elapsed() >= settings.warm_up {
            break;
        }
        if b.elapsed < settings.warm_up / 10 {
            b.iters = b.iters.saturating_mul(2);
        }
    }

    // Size batches so all samples fit the measurement budget.
    let per_iter = (b.elapsed.as_nanos() / u128::from(b.iters.max(1))).max(1);
    let budget_per_sample = settings.measurement.as_nanos() / settings.sample_count as u128;
    b.iters = u64::try_from((budget_per_sample / per_iter).clamp(1, u128::from(u64::MAX)))
        .unwrap_or(u64::MAX);

    let mut samples_ns: Vec<f64> = Vec::with_capacity(settings.sample_count);
    for _ in 0..settings.sample_count {
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
    }
    samples_ns.sort_by(|a, b| a.total_cmp(b));
    let median = if samples_ns.len() % 2 == 1 {
        samples_ns[samples_ns.len() / 2]
    } else {
        (samples_ns[samples_ns.len() / 2 - 1] + samples_ns[samples_ns.len() / 2]) / 2.0
    };
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

    println!(
        "{full_id:<50} median {:>12.1} ns/iter  ({} samples x {} iters)",
        median,
        samples_ns.len(),
        b.iters,
    );
    write_estimates(full_id, median, mean);
}

fn target_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir);
    }
    // Bench binaries live at <target>/<profile>/deps/<name>-<hash>.
    if let Ok(exe) = std::env::current_exe() {
        if let Some(target) = exe.ancestors().nth(3) {
            return target.to_path_buf();
        }
    }
    PathBuf::from("target")
}

fn write_estimates(full_id: &str, median_ns: f64, mean_ns: f64) {
    let mut dir = target_dir().join("criterion");
    for part in full_id.split('/') {
        // Mirror real criterion's directory-per-id-segment layout.
        let safe: String = part
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || "-_.".contains(c) { c } else { '_' })
            .collect();
        dir.push(safe);
    }
    dir.push("new");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let json = format!(
        "{{\"mean\":{{\"point_estimate\":{mean_ns}}},\"median\":{{\"point_estimate\":{median_ns}}}}}",
    );
    let _ = std::fs::write(dir.join("estimates.json"), json);
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
