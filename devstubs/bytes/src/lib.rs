//! Offline stand-in for `bytes`: just enough of `Bytes`/`BytesMut` and
//! the `Buf`/`BufMut` traits for `dxbsp-machine::tracefile`, backed by
//! plain `Vec<u8>`/`&[u8]`. Little-endian getters/putters only, panics
//! on underflow exactly like the real crate.

use std::ops::Deref;

/// Immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    #[must_use]
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn clear(&mut self) {
        self.0.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read side: implemented for `&[u8]`, advancing the slice in place.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write side: implemented for `BytesMut`.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u16_le(0xbeef);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        buf.put_slice(b"xy");
        let bytes = buf.freeze();
        let mut rd: &[u8] = &bytes;
        assert_eq!(rd.remaining(), 17);
        assert_eq!(rd.get_u8(), 7);
        assert_eq!(rd.get_u16_le(), 0xbeef);
        assert_eq!(rd.get_u32_le(), 0xdead_beef);
        assert_eq!(rd.get_u64_le(), 0x0123_4567_89ab_cdef);
        let mut tail = [0u8; 2];
        rd.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(rd.remaining(), 0);
    }
}
