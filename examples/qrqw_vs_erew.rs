//! QRQW vs. EREW algorithm design (paper §6).
//!
//! ```text
//! cargo run --release -p dxbsp --example qrqw_vs_erew
//! ```
//!
//! Runs the paper's two algorithm comparisons — random permutation
//! (dart throwing vs. radix sort) and binary search (replicated tree
//! vs. sort-and-merge) — on the simulated J90 and prints total cycles.
//! The point of §6: allowing *bounded, well-accounted* contention beats
//! avoiding contention altogether.

use dxbsp::algos::{binary_search, random_perm};
use dxbsp::hash::{Degree, HashedBanks};
use dxbsp::machine::{run_trace, SimConfig, Simulator};
use dxbsp::model::MachineParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cycles(m: &MachineParams, trace: &dxbsp::machine::Trace, seed: u64) -> u64 {
    let sim = Simulator::new(SimConfig::from_params(m));
    let mut rng = StdRng::seed_from_u64(seed);
    let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
    run_trace(&sim, trace, &map).total_cycles
}

fn main() {
    let m = MachineParams::new(8, 1, 0, 14, 32);
    let mut rng = StdRng::seed_from_u64(1995);

    println!("random permutation (Fig 11): QRQW darts vs. EREW radix sort\n");
    println!("{:>8} {:>8} {:>12} {:>12} {:>10}", "n", "rounds", "qrqw", "erew", "erew/qrqw");
    for n in [4 * 1024usize, 16 * 1024, 64 * 1024] {
        let darts = random_perm::darts_traced(m.p, n, 1.5, &mut rng);
        let erew = random_perm::erew_traced(m.p, n, &mut rng);
        assert!(random_perm::is_permutation(&darts.value.0));
        assert!(random_perm::is_permutation(&erew.value));
        let qc = cycles(&m, &darts.trace, n as u64);
        let ec = cycles(&m, &erew.trace, n as u64 + 1);
        println!(
            "{n:>8} {:>8} {qc:>12} {ec:>12} {:>10.2}",
            darts.value.1.rounds,
            ec as f64 / qc as f64
        );
    }

    println!("\nbinary search: naive vs. QRQW-replicated vs. EREW sort-merge\n");
    let m_tree = 16 * 1024;
    let mut keys: Vec<u64> = (0..m_tree).map(|_| rng.random_range(0..1u64 << 40)).collect();
    keys.sort_unstable();
    keys.dedup();
    println!("{:>8} {:>12} {:>12} {:>12}", "queries", "naive", "qrqw", "erew");
    for n in [4 * 1024usize, 16 * 1024, 64 * 1024] {
        let queries: Vec<u64> = (0..n).map(|_| rng.random_range(0..1u64 << 40)).collect();
        let naive = binary_search::naive_traced(m.p, &keys, &queries);
        let qrqw = binary_search::replicated_traced(m.p, &keys, &queries, 8, false, &mut rng);
        let erew = binary_search::erew_traced(m.p, &keys, &queries);
        assert_eq!(naive.value, qrqw.value);
        assert_eq!(naive.value, erew.value);
        println!(
            "{n:>8} {:>12} {:>12} {:>12}",
            cycles(&m, &naive.trace, n as u64),
            cycles(&m, &qrqw.trace, n as u64 + 1),
            cycles(&m, &erew.trace, n as u64 + 2),
        );
    }
    println!("\nBounded contention (QRQW) beats both extremes, as in the paper.");
}
