//! Connected components with per-phase contention (paper §6, final
//! experiment).
//!
//! ```text
//! cargo run --release -p dxbsp --example connected_components
//! ```
//!
//! Runs Greiner's hook-and-contract algorithm on several graph
//! families, checks the labels against a union-find oracle, and prints
//! the contention and simulated cycles of each phase — the data behind
//! the paper's Figure 1 access patterns.

use dxbsp::algos::connected::{connected_traced, same_partition};
use dxbsp::hash::{Degree, HashedBanks};
use dxbsp::machine::{run_trace, SimConfig, Simulator};
use dxbsp::model::MachineParams;
use dxbsp::workloads::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let m = MachineParams::new(8, 1, 0, 14, 32);
    let sim = Simulator::new(SimConfig::from_params(&m));
    let mut rng = StdRng::seed_from_u64(1995);
    let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);

    let n = 16 * 1024;
    let side = (n as f64).sqrt() as usize;
    let graphs: Vec<(&str, Graph)> = vec![
        ("random m=2n", Graph::random_gnm(n, 2 * n, &mut rng)),
        ("grid", Graph::grid(side, side)),
        ("chain", Graph::chain(n)),
        ("star", Graph::star(n)),
    ];

    for (name, g) in &graphs {
        let traced = connected_traced(m.p, g);
        let (labels, stats) = &traced.value;
        assert!(same_partition(labels, &g.components_oracle()), "{name}: wrong components");
        let res = run_trace(&sim, &traced.trace, &map);
        println!(
            "\n{name}: n={}, m={}, rounds={}, total cycles={}",
            g.n,
            g.m(),
            stats.rounds,
            res.total_cycles
        );
        println!("{:>24} {:>10} {:>12} {:>12}", "phase", "requests", "max k", "cycles");
        for (step, sim_res) in traced.trace.iter().zip(&res.steps) {
            let prof = step.pattern.contention_profile();
            if prof.total_requests == 0 {
                continue;
            }
            println!(
                "{:>24} {:>10} {:>12} {:>12}",
                step.label, prof.total_requests, prof.max_location_contention, sim_res.cycles
            );
        }
    }
    println!("\nThe star's hook phase reads one vertex n-1 times: contention the BSP never sees.");
}
