//! Quickstart: predict and measure a contended scatter.
//!
//! ```text
//! cargo run --release -p dxbsp --example quickstart
//! ```
//!
//! Builds a J90-like machine, scatters 64K elements with increasing
//! hot-spot contention, and prints measured simulator cycles next to
//! the (d,x)-BSP and plain-BSP predictions — a miniature of the
//! paper's Experiment 1.

use dxbsp::hash::{Degree, HashedBanks};
use dxbsp::machine::{SimConfig, Simulator};
use dxbsp::model::{
    predict_scatter, predict_scatter_bsp, AccessPattern, MachineParams, ScatterShape,
};
use dxbsp::workloads::hotspot_keys;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The paper's experimental J90: 8 processors, DRAM banks with a
    // 14-cycle recovery, 32 banks per processor, negligible L.
    let m = MachineParams::new(8, 1, 0, 14, 32);
    let sim = Simulator::new(SimConfig::from_params(&m));
    let mut rng = StdRng::seed_from_u64(1995);
    let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);

    let n = 64 * 1024;
    println!("scatter of n = {n} elements on a simulated Cray J90 (p=8, d=14, x=32)\n");
    println!("{:>8} {:>10} {:>12} {:>10}", "k", "measured", "dxbsp-pred", "bsp-pred");
    for k in [1usize, 64, 512, 4096, 32 * 1024, n] {
        let keys = hotspot_keys(n, k, 1 << 40, &mut rng);
        let pattern = AccessPattern::scatter(m.p, &keys);
        let measured = sim.run(&pattern, &map).cycles;
        let shape = ScatterShape::new(n, k);
        println!(
            "{:>8} {:>10} {:>12} {:>10}",
            k,
            measured,
            predict_scatter(&m, shape),
            predict_scatter_bsp(&m, shape),
        );
    }
    println!("\nThe BSP line stays flat; the machine (and the (d,x)-BSP) do not.");
}
