//! Contention, duplication and expansion in one sweep.
//!
//! ```text
//! cargo run --release -p dxbsp --example contention_sweep
//! ```
//!
//! Demonstrates the paper's three §3 levers on one hot-spot workload:
//! how time grows with contention `k`, how duplicating the hot
//! location buys it back, and how the expansion factor moves the knee.

use dxbsp::hash::{Degree, HashedBanks};
use dxbsp::machine::{SimConfig, Simulator};
use dxbsp::model::{contention_knee, predict_scatter_duplicated, AccessPattern, MachineParams};
use dxbsp::workloads::duplicated_hotspot;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn measure(m: &MachineParams, keys: &[u64], seed: u64) -> u64 {
    let sim = Simulator::new(SimConfig::from_params(m));
    let mut rng = StdRng::seed_from_u64(seed);
    let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
    sim.run(&AccessPattern::scatter(m.p, keys), &map).cycles
}

fn main() {
    let m = MachineParams::new(8, 1, 0, 14, 32);
    let n = 64 * 1024;
    let k = n / 4;
    let mut rng = StdRng::seed_from_u64(7);

    println!("J90-like machine: contention knee at k* = {} for n = {n}\n", contention_knee(&m, n));

    println!("duplicating a contention-{k} hot spot:");
    println!("{:>8} {:>12} {:>12}", "copies", "measured", "predicted");
    for copies in [1usize, 2, 4, 16, 64, 256, 1024] {
        let keys = duplicated_hotspot(n, k, copies, 1 << 40, &mut rng);
        let measured = measure(&m, &keys, 100 + copies as u64);
        let predicted = predict_scatter_duplicated(&m, n, k, copies);
        println!("{copies:>8} {measured:>12} {predicted:>12}");
    }

    println!("\nthe same workload across expansion factors (copies = 16):");
    println!("{:>8} {:>12} {:>14}", "x", "measured", "cycles/element");
    for x in [1usize, 2, 4, 8, 14, 32, 64] {
        let mx = m.with_expansion(x);
        let keys = duplicated_hotspot(n, k, 16, 1 << 40, &mut rng);
        let measured = measure(&mx, &keys, 200 + x as u64);
        println!("{x:>8} {measured:>12} {:>14.3}", measured as f64 / n as f64);
    }
    println!("\nExtra banks keep helping beyond x = d/g = 14 — the paper's expansion result.");
}
