//! The model as a diagnostic tool.
//!
//! ```text
//! cargo run --release -p dxbsp --example contention_advisor
//! ```
//!
//! Feeds several access patterns through the (d,x)-BSP advisor: it
//! names the binding resource, prescribes duplication when the hot
//! location binds, and the prescription is then validated on the
//! simulator — the paper's §3/§6 reasoning, automated.

use dxbsp::algos::scatter_gather;
use dxbsp::hash::{Degree, HashedBanks};
use dxbsp::machine::{run_trace, SimConfig, Simulator};
use dxbsp::model::{diagnose, AccessPattern, Binding, MachineParams};
use dxbsp::workloads::{hotspot_keys, nas_is_keys, strided_addresses, uniform_keys, zipf_keys};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let m = MachineParams::new(8, 1, 0, 14, 32);
    let mut rng = StdRng::seed_from_u64(1995);
    let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
    let n = 32 * 1024;

    let patterns: Vec<(&str, Vec<u64>)> = vec![
        ("uniform", uniform_keys(n, 1 << 40, &mut rng)),
        ("hotspot k=n/4", hotspot_keys(n, n / 4, 1 << 40, &mut rng)),
        ("zipf s=1.2", zipf_keys(n, 64 * 1024, 1.2, &mut rng)),
        ("NAS-IS", nas_is_keys(n, 16, &mut rng)),
        ("stride 256 (interleaved view)", strided_addresses(0, 256, n)),
    ];

    println!(
        "machine: p={} d={} x={} — diagnosing {} patterns of n={n}\n",
        m.p,
        m.d,
        m.x,
        patterns.len()
    );
    println!("{:>30} {:>14} {:>8} {:>8} {:>22}", "pattern", "binding", "k", "max R", "advice");
    for (name, keys) in &patterns {
        let pat = AccessPattern::scatter(m.p, keys);
        let d = diagnose(&m, &pat, &map);
        let advice = match d.duplication {
            Some(a) => format!("duplicate ×{} ({:.1}x)", a.copies, a.speedup),
            None => "-".into(),
        };
        println!(
            "{:>30} {:>14} {:>8} {:>8} {:>22}",
            name,
            format!("{:?}", d.binding),
            d.contention,
            d.max_bank_load,
            advice
        );
    }

    // Validate the prescription on the simulator for the hot spot.
    let keys = hotspot_keys(n, n / 4, 1 << 40, &mut rng);
    let pat = AccessPattern::scatter(m.p, &keys);
    let d = diagnose(&m, &pat, &map);
    assert_eq!(d.binding, Binding::HotLocation);
    let sim = Simulator::new(SimConfig::from_params(&m));
    let before = sim.run(&pat, &map).cycles;

    let src: std::collections::HashMap<u64, u64> = keys.iter().map(|&k| (k, k)).collect();
    let fixed = scatter_gather::gather_with_duplication_traced(&m, &keys, &src);
    let after = run_trace(&sim, &fixed.trace, &map).total_cycles;
    println!(
        "\nhot spot validated: {before} cycles plain → {after} cycles with auto-duplication \
         ({:.1}x; advisor predicted {:.1}x)",
        before as f64 / after as f64,
        d.duplication.map_or(1.0, |a| a.speedup),
    );
}
