//! SpMV with a dense column (paper §6, Figure 12).
//!
//! ```text
//! cargo run --release -p dxbsp --example spmv_dense_column
//! ```
//!
//! The segmented-scan SpMV gathers `x[col]` for every nonzero; a dense
//! column means one entry of `x` is read by thousands of rows in one
//! superstep. This example sweeps the dense-column length and shows
//! measured time tracking the (d,x)-BSP's `d·k` term while the gather's
//! BSP prediction stays flat.

use dxbsp::algos::spmv;
use dxbsp::hash::{Degree, HashedBanks};
use dxbsp::machine::{run_trace, SimConfig, Simulator};
use dxbsp::model::{predict_scatter, predict_scatter_bsp, MachineParams, ScatterShape};
use dxbsp::workloads::CsrMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let m = MachineParams::new(8, 1, 0, 14, 32);
    let rows = 16 * 1024;
    let nnz_per_row = 4;
    let sim = Simulator::new(SimConfig::from_params(&m));
    let mut rng = StdRng::seed_from_u64(1995);
    let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
    let x: Vec<f64> = (0..rows).map(|i| 1.0 + i as f64).collect();

    println!("SpMV, {rows} rows x {nnz_per_row} nnz/row, sweeping the dense column\n");
    println!(
        "{:>10} {:>10} {:>12} {:>14} {:>12}",
        "dense len", "gather k", "measured", "gather dxbsp", "gather bsp"
    );
    for dense in [0usize, 64, 512, 2048, 8192, rows] {
        let a = CsrMatrix::random_with_dense_column(rows, rows, nnz_per_row, dense, &mut rng);
        let traced = spmv::spmv_traced(m.p, &a, &x);
        // Sanity: the parallel result matches the serial product.
        let serial = a.multiply_serial(&x);
        assert!(traced
            .value
            .iter()
            .zip(&serial)
            .all(|(p, s)| (p - s).abs() <= 1e-9 * s.abs().max(1.0)));
        let measured = run_trace(&sim, &traced.trace, &map).total_cycles;
        let k = spmv::gather_contention(&a);
        let shape = ScatterShape::new(a.nnz(), k);
        println!(
            "{dense:>10} {k:>10} {measured:>12} {:>14} {:>12}",
            predict_scatter(&m, shape),
            predict_scatter_bsp(&m, shape)
        );
    }
    println!("\nPast the knee, total time is the dense column's d·k serialization.");
}
