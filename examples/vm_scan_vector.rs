//! Programming the simulated machine in scan-vector style.
//!
//! ```text
//! cargo run --release -p dxbsp --example vm_scan_vector
//! ```
//!
//! Runs a complete SpMV and a radix sort *on* the VM — every gather,
//! scatter and scan moves words through the simulated banked memory —
//! and prints the per-op cost log, showing exactly which op carries the
//! contention when the matrix has a dense column.

use dxbsp::model::MachineParams;
use dxbsp::vm::{programs, BinOp, Executor};
use dxbsp::workloads::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn csr_inputs(
    vm: &mut Executor,
    a: &CsrMatrix,
) -> (dxbsp::vm::VecHandle, dxbsp::vm::VecHandle, dxbsp::vm::VecHandle, dxbsp::vm::VecHandle) {
    let vals = vm.constant_f64(&a.values);
    let cols = vm.constant(&a.col_idx.iter().map(|&c| u64::from(c)).collect::<Vec<_>>());
    let mut flags = vec![0u64; a.nnz()];
    let mut last = Vec::with_capacity(a.rows);
    for r in 0..a.rows {
        if a.row_ptr[r] < a.row_ptr[r + 1] {
            flags[a.row_ptr[r]] = 1;
        }
        last.push(a.row_ptr[r + 1].saturating_sub(1) as u64);
    }
    (vals, cols, vm.constant(&flags), vm.constant(&last))
}

fn main() {
    let m = MachineParams::new(8, 1, 0, 14, 32);
    let mut rng = StdRng::seed_from_u64(1995);
    let n = 4096;

    println!("SpMV on the VM ({n}x{n}, 4 nnz/row, fully dense column 0):\n");
    let a = CsrMatrix::random_with_dense_column(n, n, 4, n, &mut rng);
    let mut vm = Executor::seeded(m, 1);
    let (vals, cols, flags, last) = csr_inputs(&mut vm, &a);
    let x: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 / n as f64).collect();
    let x_h = vm.constant_f64(&x);
    let y = programs::spmv(&mut vm, vals, cols, flags, last, x_h);

    // Verify against the host product.
    let got = vm.read_back_f64(y);
    let want = a.multiply_serial(&x);
    assert!(got.iter().zip(&want).all(|(g, w)| (g - w).abs() < 1e-6 * w.abs().max(1.0)));

    println!("{:>12} {:>10} {:>10} {:>12}", "op", "requests", "max k", "cycles");
    for cost in vm.costs() {
        println!(
            "{:>12} {:>10} {:>10} {:>12}",
            cost.label, cost.requests, cost.max_contention, cost.cycles
        );
    }
    println!("\ntotal: {} cycles — the first gather (x[col]) carries the d·k bill.\n", vm.cycles());

    println!("radix sort of 1024 random keys on the VM:");
    let keys: Vec<u64> = (0..1024).map(|_| rng.random_range(0..1 << 16)).collect();
    let mut vm2 = Executor::seeded(m, 2);
    let h = vm2.constant(&keys);
    let sorted = programs::radix_sort(&mut vm2, h, 4, 16);
    let out = vm2.read_back(sorted);
    assert!(out.is_sorted());
    println!("  sorted ✓ in {} simulated cycles (all supersteps contention-free)", vm2.cycles());

    // A tiny dataflow by hand: dot product via multiply + scan.
    let mut vm3 = Executor::seeded(m, 3);
    let u = vm3.constant_f64(&[1.0, 2.0, 3.0]);
    let v = vm3.constant_f64(&[4.0, 5.0, 6.0]);
    let prod = vm3.binop(BinOp::FMul, u, v);
    // Single segment: flag only the first element; the last scan slot
    // holds the full dot product.
    let flags = vm3.constant(&[1, 0, 0]);
    let sums = vm3.seg_scan_inclusive(BinOp::FAdd, prod, flags);
    let last_idx = vm3.constant(&[2]);
    let last = vm3.gather(sums, last_idx);
    println!("\ndot([1,2,3],[4,5,6]) on the VM = {:?}", vm3.read_back_f64(last));
}
