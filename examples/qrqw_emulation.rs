//! Emulating QRQW PRAM programs on the (d,x)-BSP (paper §5).
//!
//! ```text
//! cargo run --release -p dxbsp --example qrqw_emulation
//! ```
//!
//! Shows the two §5 regimes on synthetic programs: for `x ≤ d` the
//! emulation's work inflation hugs the inevitable `d/x` floor
//! (Theorem 5.1); for `x ≥ d` it flattens to O(1) — work-preserving
//! (Theorem 5.2). Also contrasts the QRQW direct broadcast with the
//! EREW doubling tree, the smallest instance of the paper's trade-off.

use dxbsp::hash::Degree;
use dxbsp::model::MachineParams;
use dxbsp::pram::{builders, theory, CostRule, Emulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1995);
    let n = 64 * 1024;
    let d = 16u64;

    println!("work inflation of a {n}-vproc QRQW step on p=8, d={d}:\n");
    println!("{:>6} {:>12} {:>12} {:>12}", "x", "work ratio", "d/x floor", "regime");
    for x in [1usize, 2, 4, 8, 16, 32, 64] {
        let m = MachineParams::new(8, 1, 0, d, x);
        let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
        let prog = builders::hotspot_program(n, 1, &mut rng);
        let rep = emu.run(&prog);
        println!(
            "{x:>6} {:>12.3} {:>12.3} {:>12}",
            rep.work_ratio(),
            theory::work_overhead_lower_bound(&m),
            if (x as u64) < d { "Thm 5.1" } else { "Thm 5.2" }
        );
    }

    println!("\nbroadcast to {0} vprocs: QRQW direct read vs. EREW doubling tree\n", 4096);
    let m = MachineParams::new(8, 1, 0, 14, 32);
    let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
    let direct = builders::broadcast_direct_program(4096);
    let tree = builders::broadcast_tree_program(4096);
    let rd = emu.run(&direct);
    let rt = emu.run(&tree);
    println!(
        "  direct: qrqw time {:>6}, emulated cycles {:>8}",
        direct.time(CostRule::Qrqw),
        rd.measured_cycles
    );
    println!(
        "  tree:   qrqw time {:>6}, emulated cycles {:>8}",
        tree.time(CostRule::Qrqw),
        rt.measured_cycles
    );
    println!("\nThe queue rule prices the direct broadcast honestly: d·n at one bank.");
}
