//! Property tests: VM vector ops against host oracles, on random
//! machines and inputs — values must be exact and cycles must be
//! positive, deterministic, and contention-sensitive.

use dxbsp_core::MachineParams;
use dxbsp_vm::{BinOp, Executor, UnOp};
use proptest::prelude::*;

fn arb_machine() -> impl Strategy<Value = MachineParams> {
    (1usize..=8, 1u64..=16, 1usize..=16).prop_map(|(p, d, x)| MachineParams::new(p, 1, 0, d, x))
}

proptest! {
    /// Upload → read-back is the identity.
    #[test]
    fn round_trip(m in arb_machine(), values in proptest::collection::vec(any::<u64>(), 0..200)) {
        let mut vm = Executor::seeded(m, 1);
        let h = vm.constant(&values);
        prop_assert_eq!(vm.read_back(h), values);
    }

    /// Binops agree with the scalar op on every element.
    #[test]
    fn binop_matches_scalar(
        m in arb_machine(),
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..150),
    ) {
        let a_vals: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let b_vals: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let mut vm = Executor::seeded(m, 2);
        let a = vm.constant(&a_vals);
        let b = vm.constant(&b_vals);
        for op in [BinOp::Add, BinOp::Mul, BinOp::Max, BinOp::Xor, BinOp::Lt] {
            let c = vm.binop(op, a, b);
            let got = vm.read_back(c);
            let want: Vec<u64> = pairs.iter().map(|&(x, y)| op.apply(x, y)).collect();
            prop_assert_eq!(got, want);
        }
    }

    /// Gather/scatter round trip: scattering by a permutation then
    /// gathering by it recovers the source.
    #[test]
    fn permute_round_trip(m in arb_machine(), n in 1usize..150, seed in 0u64..500) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<u64> = (0..n as u64).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        let values: Vec<u64> = (0..n as u64).map(|i| i * 31 + 7).collect();
        let mut vm = Executor::seeded(m, seed);
        let v = vm.constant(&values);
        let p = vm.constant(&perm);
        let scattered = vm.fill(n, 0);
        vm.scatter_into(scattered, p, v);
        let back = vm.gather(scattered, p);
        prop_assert_eq!(vm.read_back(back), values);
    }

    /// VM scans agree with the host scan for every monoid.
    #[test]
    fn scans_match_oracle(m in arb_machine(), xs in proptest::collection::vec(0u64..1000, 0..150)) {
        let mut vm = Executor::seeded(m, 3);
        let h = vm.constant(&xs);
        for op in [BinOp::Add, BinOp::Max, BinOp::Min] {
            let s = vm.scan_exclusive(op, h);
            let mut acc = op.identity().unwrap();
            let want: Vec<u64> = xs.iter().map(|&x| { let out = acc; acc = op.apply(acc, x); out }).collect();
            prop_assert_eq!(vm.read_back(s), want);
        }
    }

    /// Pack equals filter.
    #[test]
    fn pack_matches_filter(
        m in arb_machine(),
        elems in proptest::collection::vec((any::<u64>(), any::<bool>()), 0..150),
    ) {
        let values: Vec<u64> = elems.iter().map(|e| e.0).collect();
        let flags: Vec<u64> = elems.iter().map(|e| u64::from(e.1)).collect();
        let mut vm = Executor::seeded(m, 4);
        let v = vm.constant(&values);
        let f = vm.constant(&flags);
        let p = vm.pack(v, f);
        let want: Vec<u64> = elems.iter().filter(|e| e.1).map(|e| e.0).collect();
        prop_assert_eq!(vm.read_back(p), want);
    }

    /// The VM charges hot gathers at least d·k — the cost model is
    /// wired all the way through.
    #[test]
    fn hot_gather_charged_at_least_dk(m in arb_machine(), k in 1usize..200) {
        let mut vm = Executor::seeded(m, 5);
        let src = vm.constant(&[42]);
        let idx = vm.fill(k, 0);
        let before = vm.cycles();
        let _ = vm.gather(src, idx);
        let spent = vm.cycles() - before;
        prop_assert!(spent >= m.d * k as u64, "gather cost {spent} < d·k = {}", m.d * k as u64);
    }

    /// Unops agree with scalars.
    #[test]
    fn unop_matches_scalar(m in arb_machine(), xs in proptest::collection::vec(any::<u64>(), 0..100)) {
        let mut vm = Executor::seeded(m, 6);
        let a = vm.constant(&xs);
        for op in [UnOp::Not, UnOp::IsZero] {
            let c = vm.unop(op, a);
            let want: Vec<u64> = xs.iter().map(|&x| op.apply(x)).collect();
            prop_assert_eq!(vm.read_back(c), want);
        }
    }

    /// Determinism: the same program on the same seed costs the same.
    #[test]
    fn costs_are_deterministic(m in arb_machine(), xs in proptest::collection::vec(any::<u64>(), 1..100)) {
        let run = || {
            let mut vm = Executor::seeded(m, 9);
            let a = vm.constant(&xs);
            let idx = vm.binop_imm(BinOp::And, a, (xs.len() - 1) as u64 | 1);
            let clamped = vm.binop_imm(BinOp::Min, idx, xs.len() as u64 - 1);
            let g = vm.gather(a, clamped);
            let _ = vm.scan_exclusive(BinOp::Add, g);
            vm.cycles()
        };
        prop_assert_eq!(run(), run());
    }
}
