//! Whole algorithms written against the VM — the scan-vector style the
//! paper's Cray implementations use, now with values *and* cycles
//! coming out of the same simulated execution.

use crate::exec::{Executor, VecHandle};
use crate::ops::BinOp;

/// SpMV `y = A·x` in the segmented-scan formulation \[BHZ93\], executed
/// on the VM. `col_idx` and `row_flags` describe the CSR structure
/// (flags mark each row's first nonzero); `row_last` indexes each
/// row's final nonzero position.
///
/// Returns the handle of `y` (length = number of rows).
///
/// # Panics
///
/// Panics on inconsistent CSR inputs (mismatched lengths, bad indices).
pub fn spmv(
    vm: &mut Executor,
    values: VecHandle,
    col_idx: VecHandle,
    row_flags: VecHandle,
    row_last: VecHandle,
    x: VecHandle,
) -> VecHandle {
    assert_eq!(vm.len(values), vm.len(col_idx), "values/col_idx length mismatch");
    assert_eq!(vm.len(values), vm.len(row_flags), "values/flags length mismatch");
    // Gather x[col] — the contended step when a column is dense.
    let xs = vm.gather(x, col_idx);
    // Multiply with the stored values.
    let prods = vm.binop(BinOp::FMul, values, xs);
    // Sum within rows.
    let sums = vm.seg_scan_inclusive(BinOp::FAdd, prods, row_flags);
    // Extract each row's total (the scan value at the row's last slot).
    vm.gather(sums, row_last)
}

/// One counting-rank pass of a radix sort on the VM: given `digits`
/// (values `< radix`), produce each element's stable rank — the
/// destination of the permute step of \[ZB91\]. Implemented with `radix`
/// flag/scan rounds, all contention-free.
///
/// # Panics
///
/// Panics if `radix == 0`.
pub fn stable_rank_by_digit(vm: &mut Executor, digits: VecHandle, radix: u64) -> VecHandle {
    assert!(radix >= 1, "radix must be positive");
    let n = vm.len(digits);
    let ranks = vm.fill(n, 0);
    let offset = vm.fill(1, 0); // running total of smaller digits
    for digit in 0..radix {
        // flag[i] = 1 iff digits[i] == digit.
        let flags = vm.binop_imm(BinOp::Eq, digits, digit);
        // Within-digit exclusive prefix counts.
        let within = vm.scan_exclusive(BinOp::Add, flags);
        // rank = offset + within, masked to this digit's elements.
        let off_val = vm.read_back(offset)[0];
        let shifted = vm.binop_imm(BinOp::Add, within, off_val);
        let masked = vm.binop(BinOp::Mul, shifted, flags);
        let merged = vm.binop(BinOp::Add, ranks, masked);
        // ranks ← merged (reuse the handle by scattering over iota).
        let idx = vm.iota(n);
        vm.scatter_into(ranks, idx, merged);
        // offset += count of this digit.
        let count: u64 = vm.read_back(flags).iter().sum();
        let bumped = vm.binop_imm(BinOp::Add, offset, count);
        let zero = vm.fill(1, 0);
        vm.scatter_into(offset, zero, bumped);
    }
    ranks
}

/// Full VM radix sort of `keys` with digit width `radix_bits`: returns
/// a handle to the sorted keys.
///
/// # Panics
///
/// Panics if `radix_bits` is 0 or > 8 (the flag/scan ranking is
/// O(radix · n); keep digits small on the VM).
pub fn radix_sort(vm: &mut Executor, keys: VecHandle, radix_bits: u32, key_bits: u32) -> VecHandle {
    assert!((1..=8).contains(&radix_bits), "radix bits must be in 1..=8");
    let radix = 1u64 << radix_bits;
    let passes = key_bits.div_ceil(radix_bits);
    let n = vm.len(keys);
    let mut current = keys;
    for pass in 0..passes {
        let shifted = vm.binop_imm(BinOp::Shr, current, u64::from(pass * radix_bits));
        let digits = vm.binop_imm(BinOp::And, shifted, radix - 1);
        let ranks = stable_rank_by_digit(vm, digits, radix);
        let next = vm.fill(n, 0);
        vm.scatter_into(next, ranks, current);
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxbsp_core::MachineParams;

    fn vm() -> Executor {
        Executor::seeded(MachineParams::new(8, 1, 0, 14, 32), 11)
    }

    #[test]
    fn vm_spmv_matches_host_oracle() {
        use dxbsp_workloads::CsrMatrix;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let a = CsrMatrix::random(40, 30, 3, &mut rng);
        let x: Vec<f64> = (0..30).map(|i| 0.5 + i as f64).collect();

        let mut vm = vm();
        let vals = vm.constant_f64(&a.values);
        let cols = vm.constant(&a.col_idx.iter().map(|&c| u64::from(c)).collect::<Vec<_>>());
        let mut flags = vec![0u64; a.nnz()];
        let mut last = Vec::with_capacity(a.rows);
        for r in 0..a.rows {
            if a.row_ptr[r] < a.row_ptr[r + 1] {
                flags[a.row_ptr[r]] = 1;
            }
            last.push(a.row_ptr[r + 1].saturating_sub(1) as u64);
        }
        let flags_h = vm.constant(&flags);
        let last_h = vm.constant(&last);
        let x_h = vm.constant_f64(&x);

        let y = spmv(&mut vm, vals, cols, flags_h, last_h, x_h);
        let got = vm.read_back_f64(y);
        let want = a.multiply_serial(&x);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
        // The gather of x was priced.
        assert!(vm.costs().iter().any(|c| c.label == "gather"));
    }

    #[test]
    fn vm_spmv_dense_column_costs_more() {
        use dxbsp_workloads::CsrMatrix;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let n = 512;
        let run = |a: &CsrMatrix| -> u64 {
            let mut vm = vm();
            let vals = vm.constant_f64(&a.values);
            let cols = vm.constant(&a.col_idx.iter().map(|&c| u64::from(c)).collect::<Vec<_>>());
            let mut flags = vec![0u64; a.nnz()];
            let mut last = Vec::with_capacity(a.rows);
            for r in 0..a.rows {
                if a.row_ptr[r] < a.row_ptr[r + 1] {
                    flags[a.row_ptr[r]] = 1;
                }
                last.push(a.row_ptr[r + 1].saturating_sub(1) as u64);
            }
            let flags_h = vm.constant(&flags);
            let last_h = vm.constant(&last);
            let x: Vec<f64> = vec![1.0; a.cols];
            let x_h = vm.constant_f64(&x);
            let before = vm.cycles();
            let _ = spmv(&mut vm, vals, cols, flags_h, last_h, x_h);
            vm.cycles() - before
        };
        let sparse = CsrMatrix::random(n, n, 4, &mut rng);
        let dense = CsrMatrix::random_with_dense_column(n, n, 4, n, &mut rng);
        let cs = run(&sparse);
        let cd = run(&dense);
        assert!(cd > 2 * cs, "dense column {cd} vs sparse {cs}");
    }

    #[test]
    fn stable_rank_is_a_stable_permutation() {
        let mut vm = vm();
        let digits = vm.constant(&[2, 0, 1, 0, 2, 1, 0]);
        let ranks = stable_rank_by_digit(&mut vm, digits, 3);
        // Sorted order: the three 0s (idx 1,3,6), the two 1s (2,5),
        // the two 2s (0,4) — ranks are destinations.
        assert_eq!(vm.read_back(ranks), vec![5, 0, 3, 1, 6, 4, 2]);
    }

    #[test]
    fn vm_radix_sort_sorts() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let keys: Vec<u64> = (0..200).map(|_| rng.random_range(0..1 << 12)).collect();
        let mut vm = vm();
        let h = vm.constant(&keys);
        let sorted = radix_sort(&mut vm, h, 4, 12);
        let got = vm.read_back(sorted);
        let mut want = keys;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn vm_sort_costs_scale_with_input() {
        let mut vm1 = vm();
        let k1 = vm1.constant(&vec![7u64; 64]);
        let _ = radix_sort(&mut vm1, k1, 4, 8);
        let mut vm2 = vm();
        let k2 = vm2.constant(&vec![7u64; 512]);
        let _ = radix_sort(&mut vm2, k2, 4, 8);
        assert!(vm2.cycles() > 3 * vm1.cycles(), "{} vs {}", vm2.cycles(), vm1.cycles());
    }
}

/// QRQW dart-throwing random permutation on the VM \[GMR94a\]: each live
/// element scatters its id into a random slot of a `⌈slack·n⌉` target
/// array, reads the slot back, and drops out if it won. The host
/// drives the round loop (reading back the live flags — the
/// data-dependent control a real program's scalar unit would run), but
/// all element data moves through the simulated memory.
///
/// Returns the packed permutation (length `n`).
///
/// # Panics
///
/// Panics if `slack < 1.0`.
pub fn random_permutation_darts<R: rand::Rng + ?Sized>(
    vm: &mut Executor,
    n: usize,
    slack: f64,
    rng: &mut R,
) -> VecHandle {
    assert!(slack >= 1.0, "target array cannot be smaller than the input");
    let slots = ((n as f64 * slack).ceil() as usize).max(n).max(1);
    // target[s] holds 1 + element id of the winner (0 = free).
    let target = vm.fill(slots, 0);
    let mut live: Vec<u64> = (0..n as u64).collect();

    while !live.is_empty() {
        // Host picks the random slots (the scalar unit's RNG), then
        // every vector op below is simulated memory traffic.
        let picks: Vec<u64> = live.iter().map(|_| rng.random_range(0..slots as u64)).collect();
        let picks_h = vm.constant(&picks);
        let ids: Vec<u64> = live.iter().map(|&e| e + 1).collect();
        let ids_h = vm.constant(&ids);

        // Throw only at free slots: read current owners, scatter ids
        // where free (a conditional scatter = gather + select + scatter;
        // the select is element-local).
        let owners = vm.gather(target, picks_h);
        let free = vm.unop(crate::ops::UnOp::IsZero, owners);
        let claim = vm.binop(BinOp::Mul, ids_h, free);
        // Merge: new cell value = old owner + claim when free (owner=0).
        let merged = vm.binop(BinOp::Add, owners, claim);
        vm.scatter_into(target, picks_h, merged);

        // Read back and keep the losers.
        let after = vm.gather(target, picks_h);
        let after_vals = vm.read_back(after);
        live = live
            .iter()
            .zip(&after_vals)
            .filter(|(&e, &got)| got != e + 1)
            .map(|(&e, _)| e)
            .collect();
    }

    // Pack the winners (ids shifted back down by 1).
    let flags = {
        let t = vm.fill(slots, 0);
        let idx = vm.iota(slots);
        let cur = vm.gather(target, idx);
        let nonzero = vm.unop(crate::ops::UnOp::IsZero, cur);
        let one = vm.fill(slots, 1);
        let inv = vm.binop(BinOp::Sub, one, nonzero);
        let _ = t;
        inv
    };
    let idx = vm.iota(slots);
    let cur = vm.gather(target, idx);
    let packed = vm.pack(cur, flags);
    vm.binop_imm(BinOp::Sub, packed, 1)
}

#[cfg(test)]
mod dart_tests {
    use super::*;
    use dxbsp_core::MachineParams;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn vm_darts_produce_a_permutation() {
        let mut vm = Executor::seeded(MachineParams::new(8, 1, 0, 14, 32), 21);
        let mut rng = StdRng::seed_from_u64(5);
        let perm_h = random_permutation_darts(&mut vm, 500, 1.5, &mut rng);
        let perm = vm.read_back(perm_h);
        assert_eq!(perm.len(), 500);
        let mut seen = vec![false; 500];
        for &v in &perm {
            assert!((v as usize) < 500 && !seen[v as usize], "not a permutation: {v}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn vm_darts_cost_less_than_vm_sort() {
        // The paper's Figure 11 on the VM: darts vs radix sort of
        // random keys, same machine, same element count.
        let m = MachineParams::new(8, 1, 0, 14, 32);
        let n = 1024;
        let mut vm_d = Executor::seeded(m, 22);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = random_permutation_darts(&mut vm_d, n, 1.5, &mut rng);

        let mut vm_s = Executor::seeded(m, 23);
        use rand::Rng;
        let keys: Vec<u64> = (0..n as u64).map(|_| rng.random_range(0..1 << 20)).collect();
        let h = vm_s.constant(&keys);
        let _ = radix_sort(&mut vm_s, h, 4, 20);
        assert!(
            vm_d.cycles() < vm_s.cycles(),
            "darts {} should beat sort {}",
            vm_d.cycles(),
            vm_s.cycles()
        );
    }

    #[test]
    fn vm_darts_tiny_inputs() {
        let mut vm = Executor::seeded(MachineParams::new(2, 1, 0, 4, 4), 24);
        let mut rng = StdRng::seed_from_u64(7);
        let p = random_permutation_darts(&mut vm, 1, 1.0, &mut rng);
        assert_eq!(vm.read_back(p), vec![0]);
    }
}
