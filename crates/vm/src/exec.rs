//! The VM executor: vector operations over simulated banked memory.

use dxbsp_core::{
    pattern_breakdown, AccessPattern, CostBreakdown, CostModel, MachineParams, Request,
};
use dxbsp_hash::{Degree, HashedBanks};
use dxbsp_machine::{Session, SimulatorBackend};
use serde::{Deserialize, Serialize};

use crate::ops::{BinOp, UnOp};

/// A handle to a vector living in the VM's simulated memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VecHandle(usize);

/// Cost record of one executed vector operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCost {
    /// Operation label (e.g. `"gather"`).
    pub label: &'static str,
    /// Memory requests issued.
    pub requests: usize,
    /// Maximum location contention of the op's access pattern.
    pub max_contention: usize,
    /// Simulated cycles (including `L` per superstep).
    pub cycles: u64,
    /// The (d,x)-BSP prediction `max(L, g·h, d·R)` for this op's
    /// pattern, kept per-term so profiles can attribute each op to the
    /// resource that bound it.
    pub predicted: CostBreakdown,
}

impl OpCost {
    /// Which predicted term bound this op (`"latency"`, `"processor"`
    /// or `"bank"`).
    #[must_use]
    pub fn binding(&self) -> &'static str {
        self.predicted.binding()
    }
}

struct VecMeta {
    base: u64,
    data: Vec<u64>,
}

/// The virtual machine: executes vector ops, accounting every memory
/// access on the simulated (d,x)-BSP machine. All execution flows
/// through a [`Session`] over the simulator backend, so bank queues and
/// processor state are reused across ops instead of reallocated.
pub struct Executor {
    machine: MachineParams,
    session: Session<SimulatorBackend>,
    map: HashedBanks,
    vectors: Vec<VecMeta>,
    next_addr: u64,
    costs: Vec<OpCost>,
}

impl Executor {
    /// A VM over machine `m` with a seeded random (linear-hash) bank
    /// mapping.
    #[must_use]
    pub fn seeded(m: MachineParams, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
        Self {
            machine: m,
            session: Session::new(SimulatorBackend::from_params(&m)),
            map,
            vectors: Vec::new(),
            next_addr: 0,
            costs: Vec::new(),
        }
    }

    /// The machine this VM runs on.
    #[must_use]
    pub fn machine(&self) -> &MachineParams {
        &self.machine
    }

    /// The execution session: cumulative cycles, requests, and per-bank
    /// statistics across every op executed so far.
    #[must_use]
    pub fn session(&self) -> &Session<SimulatorBackend> {
        &self.session
    }

    /// Total simulated cycles so far (each op's memory time plus `L`).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.session.cycles()
    }

    /// Per-op cost log, in execution order.
    #[must_use]
    pub fn costs(&self) -> &[OpCost] {
        &self.costs
    }

    /// Length of a vector.
    #[must_use]
    pub fn len(&self, h: VecHandle) -> usize {
        self.vectors[h.0].data.len()
    }

    /// Whether a vector is empty.
    #[must_use]
    pub fn is_empty(&self, h: VecHandle) -> bool {
        self.len(h) == 0
    }

    fn alloc(&mut self, len: usize) -> VecHandle {
        let base = self.next_addr;
        self.next_addr += len as u64 + 1;
        self.vectors.push(VecMeta { base, data: vec![0; len] });
        VecHandle(self.vectors.len() - 1)
    }

    fn lane_proc(&self, lane: usize) -> usize {
        lane % self.machine.p
    }

    /// A pattern buffer from the session pool: after the first few ops
    /// every op recycles an old buffer, so steady-state execution
    /// allocates nothing per superstep.
    fn pattern(&self) -> AccessPattern {
        self.session.pool().acquire(self.machine.p)
    }

    fn charge(&mut self, label: &'static str, pattern: AccessPattern) {
        // The session adds `sync_overhead = L` per superstep itself;
        // the per-op record carries the same total.
        let out = self.session.step(&pattern, &self.map);
        let prof = pattern.contention_profile();
        let predicted = pattern_breakdown(&self.machine, &pattern, &self.map, CostModel::DxBsp);
        self.costs.push(OpCost {
            label,
            requests: prof.total_requests,
            max_contention: prof.max_location_contention,
            cycles: out.cycles + self.machine.l,
            predicted,
        });
        self.session.pool().release(pattern);
    }

    /// Dense read sweep of `h` plus optional dense write of `dst`
    /// charged as one superstep.
    fn charge_map_op(&mut self, label: &'static str, srcs: &[VecHandle], dst: VecHandle) {
        let n = self.len(dst);
        let mut pat = self.pattern();
        for lane in 0..n {
            let proc = self.lane_proc(lane);
            for &s in srcs {
                pat.push(Request::read(proc, self.vectors[s.0].base + lane as u64));
            }
            pat.push(Request::write(proc, self.vectors[dst.0].base + lane as u64));
        }
        self.charge(label, pat);
    }

    /// Uploads host data into a fresh vector (charged as a write sweep).
    pub fn constant(&mut self, values: &[u64]) -> VecHandle {
        let h = self.alloc(values.len());
        self.vectors[h.0].data.copy_from_slice(values);
        let base = self.vectors[h.0].base;
        let mut pat = self.pattern();
        for lane in 0..values.len() {
            pat.push(Request::write(self.lane_proc(lane), base + lane as u64));
        }
        self.charge("constant", pat);
        h
    }

    /// Uploads host floats (stored as `f64` bit patterns).
    pub fn constant_f64(&mut self, values: &[f64]) -> VecHandle {
        let words: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        self.constant(&words)
    }

    /// `[0, 1, …, n−1]`.
    pub fn iota(&mut self, n: usize) -> VecHandle {
        let h = self.alloc(n);
        for (i, w) in self.vectors[h.0].data.iter_mut().enumerate() {
            *w = i as u64;
        }
        self.charge_write_sweep("iota", h);
        h
    }

    /// `n` copies of `value`.
    pub fn fill(&mut self, n: usize, value: u64) -> VecHandle {
        let h = self.alloc(n);
        self.vectors[h.0].data.fill(value);
        self.charge_write_sweep("fill", h);
        h
    }

    fn charge_write_sweep(&mut self, label: &'static str, h: VecHandle) {
        let n = self.len(h);
        let base = self.vectors[h.0].base;
        let mut pat = self.pattern();
        for lane in 0..n {
            pat.push(Request::write(self.lane_proc(lane), base + lane as u64));
        }
        self.charge(label, pat);
    }

    /// Reads a vector back to the host (charged as a read sweep).
    pub fn read_back(&mut self, h: VecHandle) -> Vec<u64> {
        let n = self.len(h);
        let base = self.vectors[h.0].base;
        let mut pat = self.pattern();
        for lane in 0..n {
            pat.push(Request::read(self.lane_proc(lane), base + lane as u64));
        }
        self.charge("read-back", pat);
        self.vectors[h.0].data.clone()
    }

    /// Reads back as floats.
    pub fn read_back_f64(&mut self, h: VecHandle) -> Vec<f64> {
        self.read_back(h).into_iter().map(f64::from_bits).collect()
    }

    /// Element-wise binary operation (`a` and `b` must have one length).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn binop(&mut self, op: BinOp, a: VecHandle, b: VecHandle) -> VecHandle {
        assert_eq!(self.len(a), self.len(b), "binop length mismatch");
        let dst = self.alloc(self.len(a));
        for i in 0..self.len(dst) {
            self.vectors[dst.0].data[i] =
                op.apply(self.vectors[a.0].data[i], self.vectors[b.0].data[i]);
        }
        self.charge_map_op("binop", &[a, b], dst);
        dst
    }

    /// Element-wise binary operation against an immediate.
    pub fn binop_imm(&mut self, op: BinOp, a: VecHandle, imm: u64) -> VecHandle {
        let dst = self.alloc(self.len(a));
        for i in 0..self.len(dst) {
            self.vectors[dst.0].data[i] = op.apply(self.vectors[a.0].data[i], imm);
        }
        self.charge_map_op("binop-imm", &[a], dst);
        dst
    }

    /// Element-wise unary operation.
    pub fn unop(&mut self, op: UnOp, a: VecHandle) -> VecHandle {
        let dst = self.alloc(self.len(a));
        for i in 0..self.len(dst) {
            self.vectors[dst.0].data[i] = op.apply(self.vectors[a.0].data[i]);
        }
        self.charge_map_op("unop", &[a], dst);
        dst
    }

    /// `dst[i] = src[idx[i]]` — the contention-bearing read: location
    /// contention equals the heaviest index multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn gather(&mut self, src: VecHandle, idx: VecHandle) -> VecHandle {
        let n = self.len(idx);
        let dst = self.alloc(n);
        let src_base = self.vectors[src.0].base;
        let src_len = self.len(src);
        let mut pat = self.pattern();
        for lane in 0..n {
            let proc = self.lane_proc(lane);
            let j = self.vectors[idx.0].data[lane];
            assert!((j as usize) < src_len, "gather index {j} out of range");
            pat.push(Request::read(proc, self.vectors[idx.0].base + lane as u64));
            pat.push(Request::read(proc, src_base + j));
            pat.push(Request::write(proc, self.vectors[dst.0].base + lane as u64));
            self.vectors[dst.0].data[lane] = self.vectors[src.0].data[j as usize];
        }
        self.charge("gather", pat);
        dst
    }

    /// `dst[idx[i]] = src[i]`, later lanes winning collisions (the
    /// arbitrary-winner rule vector hardware provides); location
    /// contention equals the heaviest destination multiplicity.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or an out-of-range index.
    pub fn scatter_into(&mut self, dst: VecHandle, idx: VecHandle, src: VecHandle) {
        let n = self.len(idx);
        assert_eq!(self.len(src), n, "scatter length mismatch");
        let dst_len = self.len(dst);
        let mut pat = self.pattern();
        for lane in 0..n {
            let proc = self.lane_proc(lane);
            let j = self.vectors[idx.0].data[lane];
            assert!((j as usize) < dst_len, "scatter index {j} out of range");
            pat.push(Request::read(proc, self.vectors[idx.0].base + lane as u64));
            pat.push(Request::read(proc, self.vectors[src.0].base + lane as u64));
            pat.push(Request::write(proc, self.vectors[dst.0].base + j));
            let v = self.vectors[src.0].data[lane];
            self.vectors[dst.0].data[j as usize] = v;
        }
        self.charge("scatter", pat);
    }

    /// Exclusive scan with monoid `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` has no identity (not a monoid).
    pub fn scan_exclusive(&mut self, op: BinOp, src: VecHandle) -> VecHandle {
        let id = op.identity().expect("scan requires a monoid operation");
        let n = self.len(src);
        let dst = self.alloc(n);
        let mut acc = id;
        for i in 0..n {
            self.vectors[dst.0].data[i] = acc;
            acc = op.apply(acc, self.vectors[src.0].data[i]);
        }
        self.charge_scan_cost("scan", src, dst, None);
        dst
    }

    /// Segmented inclusive scan restarting where `flags` is nonzero.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or a non-monoid op.
    pub fn seg_scan_inclusive(&mut self, op: BinOp, src: VecHandle, flags: VecHandle) -> VecHandle {
        let id = op.identity().expect("scan requires a monoid operation");
        let n = self.len(src);
        assert_eq!(self.len(flags), n, "flags length mismatch");
        let dst = self.alloc(n);
        let mut acc = id;
        for i in 0..n {
            let v = self.vectors[src.0].data[i];
            acc = if self.vectors[flags.0].data[i] != 0 { v } else { op.apply(acc, v) };
            self.vectors[dst.0].data[i] = acc;
        }
        self.charge_scan_cost("seg-scan", src, dst, Some(flags));
        dst
    }

    /// Two supersteps: read src (+flags), write block totals; then read
    /// totals, write dst — the standard two-pass multiprocessor scan.
    fn charge_scan_cost(
        &mut self,
        label: &'static str,
        src: VecHandle,
        dst: VecHandle,
        flags: Option<VecHandle>,
    ) {
        let n = self.len(src);
        let p = self.machine.p;
        let totals = self.next_addr;
        self.next_addr += p as u64;

        let mut pass1 = self.pattern();
        for lane in 0..n {
            let proc = self.lane_proc(lane);
            pass1.push(Request::read(proc, self.vectors[src.0].base + lane as u64));
            if let Some(f) = flags {
                pass1.push(Request::read(proc, self.vectors[f.0].base + lane as u64));
            }
        }
        for proc in 0..p {
            pass1.push(Request::write(proc, totals + proc as u64));
        }
        self.charge(label, pass1);

        let mut pass2 = self.pattern();
        for proc in 0..p {
            pass2.push(Request::read(proc, totals + proc as u64));
        }
        for lane in 0..n {
            pass2
                .push(Request::write(self.lane_proc(lane), self.vectors[dst.0].base + lane as u64));
        }
        self.charge(label, pass2);
    }

    /// Stream compaction: the elements of `src` whose flag is nonzero,
    /// in order. Cost: a scan of the flags plus a read of the kept
    /// elements and a scatter to distinct packed destinations.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn pack(&mut self, src: VecHandle, flags: VecHandle) -> VecHandle {
        let n = self.len(src);
        assert_eq!(self.len(flags), n, "flags length mismatch");
        let norm = self.normalized(flags);
        let offsets = self.scan_exclusive(BinOp::Add, norm);
        let kept: Vec<u64> = (0..n)
            .filter(|&i| self.vectors[flags.0].data[i] != 0)
            .map(|i| self.vectors[src.0].data[i])
            .collect();
        let dst = self.alloc(kept.len());
        self.vectors[dst.0].data.copy_from_slice(&kept);
        let _ = offsets; // the scan above carries the ranking cost
        let mut pat = self.pattern();
        let mut out = 0usize;
        for lane in 0..n {
            if self.vectors[flags.0].data[lane] != 0 {
                let proc = self.lane_proc(lane);
                pat.push(Request::read(proc, self.vectors[src.0].base + lane as u64));
                pat.push(Request::write(proc, self.vectors[dst.0].base + out as u64));
                out += 1;
            }
        }
        self.charge("pack", pat);
        dst
    }

    /// Reduction of a whole vector by a monoid: a tree of pairwise
    /// combines (`⌈lg n⌉` contention-free supersteps), yielding a
    /// one-element vector.
    ///
    /// # Panics
    ///
    /// Panics if `op` has no identity.
    pub fn reduce(&mut self, op: BinOp, src: VecHandle) -> VecHandle {
        let id = op.identity().expect("reduce requires a monoid operation");
        let n = self.len(src);
        let value = self.vectors[src.0].data.iter().fold(id, |a, &b| op.apply(a, b));
        // Cost: pairwise halving over a scratch copy of the vector.
        let scratch = self.next_addr;
        self.next_addr += n as u64 + 1;
        let mut width = n;
        while width > 1 {
            let half = width.div_ceil(2);
            let mut pat = self.pattern();
            for i in 0..(width - half) {
                let proc = self.lane_proc(i);
                pat.push(Request::read(proc, scratch + (half + i) as u64));
                pat.push(Request::write(proc, scratch + i as u64));
            }
            if pat.is_empty() {
                self.session.pool().release(pat);
            } else {
                self.charge("reduce", pat);
            }
            width = half;
        }
        let dst = self.alloc(1);
        self.vectors[dst.0].data[0] = value;
        self.charge_write_sweep("reduce-root", dst);
        dst
    }

    /// Flags normalized to 0/1 (no memory cost: a register op fused
    /// into the consumer on a real machine; we keep it free to avoid
    /// double-charging pack).
    fn normalized(&mut self, flags: VecHandle) -> VecHandle {
        let n = self.len(flags);
        let dst = self.alloc(n);
        for i in 0..n {
            self.vectors[dst.0].data[i] = u64::from(self.vectors[flags.0].data[i] != 0);
        }
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm() -> Executor {
        Executor::seeded(MachineParams::new(4, 1, 0, 8, 8), 7)
    }

    #[test]
    fn constants_round_trip() {
        let mut vm = vm();
        let h = vm.constant(&[5, 6, 7]);
        assert_eq!(vm.read_back(h), vec![5, 6, 7]);
        assert_eq!(vm.len(h), 3);
    }

    #[test]
    fn iota_and_fill() {
        let mut vm = vm();
        let i = vm.iota(5);
        assert_eq!(vm.read_back(i), vec![0, 1, 2, 3, 4]);
        let f = vm.fill(3, 9);
        assert_eq!(vm.read_back(f), vec![9, 9, 9]);
    }

    #[test]
    fn binop_computes_and_charges() {
        let mut vm = vm();
        let a = vm.constant(&[1, 2, 3]);
        let b = vm.constant(&[10, 20, 30]);
        let before = vm.cycles();
        let c = vm.binop(BinOp::Add, a, b);
        assert!(vm.cycles() > before, "binop must cost cycles");
        assert_eq!(vm.read_back(c), vec![11, 22, 33]);
        let cost = vm.costs().iter().find(|c| c.label == "binop").unwrap();
        assert_eq!(cost.requests, 9); // 2 reads + 1 write × 3 lanes
    }

    #[test]
    fn float_pipeline() {
        let mut vm = vm();
        let a = vm.constant_f64(&[1.5, 2.5]);
        let b = vm.constant_f64(&[2.0, 4.0]);
        let c = vm.binop(BinOp::FMul, a, b);
        assert_eq!(vm.read_back_f64(c), vec![3.0, 10.0]);
    }

    #[test]
    fn gather_contention_is_priced() {
        let mut vm = vm();
        let src = vm.constant(&[100, 200]);
        let hot = vm.fill(64, 0); // every lane gathers src[0]
        let g = vm.gather(src, hot);
        assert_eq!(vm.read_back(g), vec![100; 64]);
        let cost = vm.costs().iter().find(|c| c.label == "gather").unwrap();
        assert_eq!(cost.max_contention, 64);
        // The hot read serializes: at least d·64 cycles.
        assert!(cost.cycles >= 8 * 64, "cycles {}", cost.cycles);
        // Attribution: the bank term d·R dominates and says so.
        assert!(cost.predicted.bank >= 8 * 64, "bank term {}", cost.predicted.bank);
        assert_eq!(cost.binding(), "bank");
    }

    #[test]
    fn every_op_carries_a_prediction() {
        let mut vm = vm();
        let a = vm.constant(&[1; 32]);
        let b = vm.iota(32);
        let _ = vm.binop(BinOp::Add, a, b);
        for cost in vm.costs() {
            assert!(cost.predicted.total() > 0, "{} predicted nothing", cost.label);
            assert!(
                ["latency", "processor", "bank"].contains(&cost.binding()),
                "{} binding {}",
                cost.label,
                cost.binding()
            );
        }
    }

    #[test]
    fn scatter_last_lane_wins() {
        let mut vm = vm();
        let dst = vm.fill(4, 0);
        let idx = vm.constant(&[1, 1, 3]);
        let src = vm.constant(&[7, 8, 9]);
        vm.scatter_into(dst, idx, src);
        assert_eq!(vm.read_back(dst), vec![0, 8, 0, 9]);
    }

    #[test]
    fn scan_exclusive_matches_oracle() {
        let mut vm = vm();
        let a = vm.constant(&[3, 1, 4, 1, 5]);
        let s = vm.scan_exclusive(BinOp::Add, a);
        assert_eq!(vm.read_back(s), vec![0, 3, 4, 8, 9]);
    }

    #[test]
    fn seg_scan_restarts_at_flags() {
        let mut vm = vm();
        let a = vm.constant(&[1, 1, 1, 1, 1]);
        let f = vm.constant(&[1, 0, 1, 0, 0]);
        let s = vm.seg_scan_inclusive(BinOp::Add, a, f);
        assert_eq!(vm.read_back(s), vec![1, 2, 1, 2, 3]);
    }

    #[test]
    fn pack_keeps_flagged_elements_in_order() {
        let mut vm = vm();
        let a = vm.constant(&[10, 11, 12, 13, 14]);
        let f = vm.constant(&[0, 1, 0, 1, 1]);
        let p = vm.pack(a, f);
        assert_eq!(vm.read_back(p), vec![11, 13, 14]);
        assert_eq!(vm.len(p), 3);
    }

    #[test]
    fn pack_of_nothing_is_empty() {
        let mut vm = vm();
        let a = vm.constant(&[1, 2]);
        let f = vm.fill(2, 0);
        let p = vm.pack(a, f);
        assert!(vm.is_empty(p));
    }

    #[test]
    fn reduce_computes_the_fold() {
        let mut vm = vm();
        let a = vm.constant(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let total = vm.reduce(BinOp::Add, a);
        assert_eq!(vm.read_back(total), vec![31]);
        let max = vm.reduce(BinOp::Max, a);
        assert_eq!(vm.read_back(max), vec![9]);
        // lg(8) = 3 combining supersteps.
        assert_eq!(vm.costs().iter().filter(|c| c.label == "reduce").count(), 6);
    }

    #[test]
    fn reduce_of_singleton_and_empty() {
        let mut vm = vm();
        let one = vm.constant(&[42]);
        let r = vm.reduce(BinOp::Add, one);
        assert_eq!(vm.read_back(r), vec![42]);
        let empty = vm.constant(&[]);
        let z = vm.reduce(BinOp::Add, empty);
        assert_eq!(vm.read_back(z), vec![0]); // the monoid identity
    }

    #[test]
    fn costs_accumulate_monotonically() {
        let mut vm = vm();
        let mut last = 0;
        let a = vm.constant(&[1; 100]);
        let b = vm.iota(100);
        for _ in 0..3 {
            let _ = vm.binop(BinOp::Add, a, b);
            assert!(vm.cycles() > last);
            last = vm.cycles();
        }
        assert_eq!(vm.costs().iter().filter(|c| c.label == "binop").count(), 3);
    }

    #[test]
    fn ops_recycle_one_pattern_buffer() {
        let mut vm = vm();
        let a = vm.constant(&[1; 256]);
        let b = vm.iota(256);
        for _ in 0..20 {
            let c = vm.binop(BinOp::Add, a, b);
            let s = vm.scan_exclusive(BinOp::Add, c);
            let _ = vm.reduce(BinOp::Max, s);
        }
        // Every op drew its pattern from the session pool and returned
        // it; only the very first acquire allocated.
        assert_eq!(vm.session().pool().allocations(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn binop_length_mismatch_rejected() {
        let mut vm = vm();
        let a = vm.constant(&[1]);
        let b = vm.constant(&[1, 2]);
        let _ = vm.binop(BinOp::Add, a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_oob_rejected() {
        let mut vm = vm();
        let src = vm.constant(&[1]);
        let idx = vm.constant(&[3]);
        let _ = vm.gather(src, idx);
    }

    #[test]
    #[should_panic(expected = "monoid")]
    fn scan_of_non_monoid_rejected() {
        let mut vm = vm();
        let a = vm.constant(&[1, 2]);
        let _ = vm.scan_exclusive(BinOp::Sub, a);
    }
}
