//! A recorded intermediate representation of VM programs.
//!
//! The eager [`Executor`] API runs ops as they are
//! issued, on one machine. The IR decouples *what* a program does from
//! *where* it runs: build an [`IrProgram`] once (with [`IrBuilder`],
//! which mirrors the executor's API), then [`run_ir`] it on any machine
//! configuration — the cross-machine methodology of the paper's
//! C90-vs-J90 comparisons, for whole programs.

use serde::{Deserialize, Serialize};

use dxbsp_core::MachineParams;

use crate::exec::{Executor, VecHandle};
use crate::ops::{BinOp, UnOp};

/// A virtual register naming an instruction's result vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(usize);

/// One IR instruction. Registers refer to earlier instructions'
/// results (single-assignment; `ScatterInto` mutates its destination
/// in place, as the hardware op does).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Upload literal words.
    Constant(Vec<u64>),
    /// `[0..n)`.
    Iota(usize),
    /// `n` copies of a value.
    Fill(usize, u64),
    /// Element-wise binary op.
    BinOp(BinOp, Reg, Reg),
    /// Element-wise binary op against an immediate.
    BinOpImm(BinOp, Reg, u64),
    /// Element-wise unary op.
    UnOp(UnOp, Reg),
    /// `dst[i] = src[idx[i]]`.
    Gather(Reg, Reg),
    /// `dst[idx[i]] = src[i]` (in place on `dst`; yields no new reg).
    ScatterInto(Reg, Reg, Reg),
    /// Exclusive scan by a monoid.
    ScanExclusive(BinOp, Reg),
    /// Segmented inclusive scan.
    SegScanInclusive(BinOp, Reg, Reg),
    /// Stream compaction by flags.
    Pack(Reg, Reg),
    /// Whole-vector reduction by a monoid (yields a 1-element vector).
    Reduce(BinOp, Reg),
    /// Mark a register as a program output.
    Output(Reg),
}

/// A complete recorded program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IrProgram {
    instrs: Vec<Instr>,
}

impl IrProgram {
    /// The instructions in order.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// Builds an [`IrProgram`] with the executor's vocabulary.
#[derive(Debug, Default)]
pub struct IrBuilder {
    prog: IrProgram,
}

impl IrBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, i: Instr) -> Reg {
        self.prog.instrs.push(i);
        Reg(self.prog.instrs.len() - 1)
    }

    /// Uploads literal words.
    pub fn constant(&mut self, data: &[u64]) -> Reg {
        self.push(Instr::Constant(data.to_vec()))
    }

    /// Uploads floats as `f64` bit patterns.
    pub fn constant_f64(&mut self, data: &[f64]) -> Reg {
        self.push(Instr::Constant(data.iter().map(|v| v.to_bits()).collect()))
    }

    /// `[0..n)`.
    pub fn iota(&mut self, n: usize) -> Reg {
        self.push(Instr::Iota(n))
    }

    /// `n` copies of `value`.
    pub fn fill(&mut self, n: usize, value: u64) -> Reg {
        self.push(Instr::Fill(n, value))
    }

    /// Element-wise binary op.
    pub fn binop(&mut self, op: BinOp, a: Reg, b: Reg) -> Reg {
        self.push(Instr::BinOp(op, a, b))
    }

    /// Element-wise op against an immediate.
    pub fn binop_imm(&mut self, op: BinOp, a: Reg, imm: u64) -> Reg {
        self.push(Instr::BinOpImm(op, a, imm))
    }

    /// Element-wise unary op.
    pub fn unop(&mut self, op: UnOp, a: Reg) -> Reg {
        self.push(Instr::UnOp(op, a))
    }

    /// `src[idx[i]]`.
    pub fn gather(&mut self, src: Reg, idx: Reg) -> Reg {
        self.push(Instr::Gather(src, idx))
    }

    /// `dst[idx[i]] = src[i]`.
    pub fn scatter_into(&mut self, dst: Reg, idx: Reg, src: Reg) {
        self.prog.instrs.push(Instr::ScatterInto(dst, idx, src));
    }

    /// Exclusive monoid scan.
    pub fn scan_exclusive(&mut self, op: BinOp, src: Reg) -> Reg {
        self.push(Instr::ScanExclusive(op, src))
    }

    /// Segmented inclusive scan.
    pub fn seg_scan_inclusive(&mut self, op: BinOp, src: Reg, flags: Reg) -> Reg {
        self.push(Instr::SegScanInclusive(op, src, flags))
    }

    /// Stream compaction.
    pub fn pack(&mut self, src: Reg, flags: Reg) -> Reg {
        self.push(Instr::Pack(src, flags))
    }

    /// Whole-vector reduction.
    pub fn reduce(&mut self, op: BinOp, src: Reg) -> Reg {
        self.push(Instr::Reduce(op, src))
    }

    /// Marks a register as an output of the program.
    pub fn output(&mut self, r: Reg) {
        self.prog.instrs.push(Instr::Output(r));
    }

    /// Finishes the program.
    #[must_use]
    pub fn finish(self) -> IrProgram {
        self.prog
    }
}

/// Result of running an IR program on a machine.
#[derive(Debug, Clone, PartialEq)]
pub struct IrRun {
    /// The vectors marked with [`IrBuilder::output`], in order.
    pub outputs: Vec<Vec<u64>>,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Per-op costs (one entry per executed memory-bearing op).
    pub ops: usize,
}

/// Interprets `prog` on machine `m` (bank map drawn from `seed`).
///
/// # Panics
///
/// Panics if an instruction references a register produced by
/// `ScatterInto`/`Output` (which yield none) or out of range — IR
/// programs are trusted, builder-produced artifacts.
#[must_use]
pub fn run_ir(prog: &IrProgram, m: MachineParams, seed: u64) -> IrRun {
    let mut vm = Executor::seeded(m, seed);
    let mut regs: Vec<Option<VecHandle>> = Vec::with_capacity(prog.len());
    let mut outputs = Vec::new();
    let reg = |regs: &[Option<VecHandle>], r: Reg| -> VecHandle {
        regs[r.0].expect("register has no vector (ScatterInto/Output yield none)")
    };
    for instr in prog.instrs() {
        let result: Option<VecHandle> = match instr {
            Instr::Constant(data) => Some(vm.constant(data)),
            Instr::Iota(n) => Some(vm.iota(*n)),
            Instr::Fill(n, v) => Some(vm.fill(*n, *v)),
            Instr::BinOp(op, a, b) => Some(vm.binop(*op, reg(&regs, *a), reg(&regs, *b))),
            Instr::BinOpImm(op, a, imm) => Some(vm.binop_imm(*op, reg(&regs, *a), *imm)),
            Instr::UnOp(op, a) => Some(vm.unop(*op, reg(&regs, *a))),
            Instr::Gather(src, idx) => Some(vm.gather(reg(&regs, *src), reg(&regs, *idx))),
            Instr::ScatterInto(dst, idx, src) => {
                vm.scatter_into(reg(&regs, *dst), reg(&regs, *idx), reg(&regs, *src));
                None
            }
            Instr::ScanExclusive(op, src) => Some(vm.scan_exclusive(*op, reg(&regs, *src))),
            Instr::SegScanInclusive(op, src, flags) => {
                Some(vm.seg_scan_inclusive(*op, reg(&regs, *src), reg(&regs, *flags)))
            }
            Instr::Pack(src, flags) => Some(vm.pack(reg(&regs, *src), reg(&regs, *flags))),
            Instr::Reduce(op, src) => Some(vm.reduce(*op, reg(&regs, *src))),
            Instr::Output(r) => {
                outputs.push(vm.read_back(reg(&regs, *r)));
                None
            }
        };
        regs.push(result);
    }
    IrRun { outputs, cycles: vm.cycles(), ops: vm.costs().len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small program: y[i] = prefix-sum of (a AND mask) gathered by a
    /// permutation — touches most of the instruction set.
    fn sample_program() -> IrProgram {
        let mut b = IrBuilder::new();
        let a = b.constant(&[5, 9, 13, 2, 7, 11, 3, 8]);
        let masked = b.binop_imm(BinOp::And, a, 7);
        let perm = b.constant(&[7, 6, 5, 4, 3, 2, 1, 0]);
        let gathered = b.gather(masked, perm);
        let scanned = b.scan_exclusive(BinOp::Add, gathered);
        b.output(scanned);
        let flags = b.constant(&[1, 0, 0, 0, 1, 0, 0, 0]);
        let seg = b.seg_scan_inclusive(BinOp::Add, gathered, flags);
        b.output(seg);
        b.finish()
    }

    fn j90() -> MachineParams {
        MachineParams::new(8, 1, 0, 14, 32)
    }

    fn c90() -> MachineParams {
        MachineParams::new(16, 1, 0, 6, 64)
    }

    #[test]
    fn ir_computes_the_same_values_on_every_machine() {
        let prog = sample_program();
        let on_j90 = run_ir(&prog, j90(), 1);
        let on_c90 = run_ir(&prog, c90(), 2);
        assert_eq!(on_j90.outputs, on_c90.outputs);
        assert_eq!(on_j90.outputs.len(), 2);
        // masked = [5,1,5,2,7,3,3,0]; reversed = [0,3,3,7,2,5,1,5];
        // exclusive sum = [0,0,3,6,13,15,20,21].
        assert_eq!(on_j90.outputs[0], vec![0, 0, 3, 6, 13, 15, 20, 21]);
    }

    #[test]
    fn costs_differ_across_machines_for_hot_programs() {
        // A hot gather: every lane reads cell 0.
        let mut b = IrBuilder::new();
        let src = b.constant(&[42]);
        let idx = b.fill(512, 0);
        let g = b.gather(src, idx);
        b.output(g);
        let prog = b.finish();
        let slow = run_ir(&prog, MachineParams::new(8, 1, 0, 14, 32), 3);
        let fast = run_ir(&prog, MachineParams::new(8, 1, 0, 2, 32), 3);
        assert_eq!(slow.outputs, fast.outputs);
        assert!(slow.cycles > 3 * fast.cycles, "{} vs {}", slow.cycles, fast.cycles);
    }

    #[test]
    fn scatter_and_pack_execute_through_ir() {
        let mut b = IrBuilder::new();
        let dst = b.fill(4, 0);
        let idx = b.constant(&[2, 0]);
        let src = b.constant(&[7, 9]);
        b.scatter_into(dst, idx, src);
        b.output(dst);
        let flags = b.constant(&[1, 0, 1, 0]);
        let packed = b.pack(dst, flags);
        b.output(packed);
        let run = run_ir(&b.finish(), j90(), 4);
        assert_eq!(run.outputs[0], vec![9, 0, 7, 0]);
        assert_eq!(run.outputs[1], vec![9, 7]);
    }

    #[test]
    fn reduce_executes_through_ir() {
        let mut b = IrBuilder::new();
        let a = b.constant(&[1, 2, 3, 4, 5]);
        let sum = b.reduce(BinOp::Add, a);
        let max = b.reduce(BinOp::Max, a);
        b.output(sum);
        b.output(max);
        let run = run_ir(&b.finish(), j90(), 8);
        assert_eq!(run.outputs, vec![vec![15], vec![5]]);
    }

    #[test]
    fn empty_program_runs_free() {
        let run = run_ir(&IrProgram::default(), j90(), 5);
        assert!(run.outputs.is_empty());
        assert_eq!(run.cycles, 0);
    }

    #[test]
    fn ir_is_replayable_and_deterministic() {
        let prog = sample_program();
        let a = run_ir(&prog, j90(), 9);
        let b = run_ir(&prog, j90(), 9);
        assert_eq!(a, b);
    }
}
