//! # dxbsp-vm — a scan-vector machine over simulated banked memory
//!
//! The paper's Cray implementations are written in the *scan-vector*
//! style (segmented scans, gathers, scatters over whole vectors —
//! [BHZ93, ZB91]). This crate provides that programming model as an
//! executable virtual machine whose every vector operation runs
//! *through* the simulated bank-interleaved memory of `dxbsp-machine`:
//! the same execution yields
//!
//! * the **values** (checked against host oracles in tests), and
//! * the **cycle cost** — each vector op becomes one or more (d,x)-BSP
//!   supersteps whose access patterns are simulated exactly, so data
//!   movement and its price can never drift apart.
//!
//! The instruction set is the small core the paper's algorithms need:
//! element-wise arithmetic, `iota`/`fill`/`copy`, `gather`/`scatter`
//! (the contention-bearing ops), unsegmented and segmented scans, and
//! `pack` (stream compaction). Values are 64-bit words; float ops
//! reinterpret them as `f64` bits, exactly like a real vector machine
//! moving opaque words.
//!
//! ## Example
//!
//! ```
//! use dxbsp_core::MachineParams;
//! use dxbsp_vm::{BinOp, Executor, Vm};
//!
//! let m = MachineParams::new(4, 1, 0, 8, 8);
//! let mut vm = Executor::seeded(m, 42);
//! let a = vm.constant(&[1, 2, 3, 4]);
//! let b = vm.iota(4);
//! let c = vm.binop(BinOp::Add, a, b);
//! assert_eq!(vm.read_back(c), vec![1, 3, 5, 7]);
//! assert!(vm.cycles() > 0); // every op was paid for in cycles
//! ```

pub mod exec;
pub mod ir;
pub mod ops;
pub mod programs;

pub use exec::{Executor, OpCost, VecHandle};
pub use ir::{run_ir, IrBuilder, IrProgram, IrRun, Reg};
pub use ops::{BinOp, UnOp};

/// Convenience alias: the trait-facing name of the machine.
pub type Vm = Executor;
