//! Scalar operations applied element-wise by the VM.

use serde::{Deserialize, Serialize};

/// Binary element-wise operations. Integer ops treat words as `u64`
/// (wrapping); float ops reinterpret them as `f64` bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping integer add.
    Add,
    /// Wrapping integer subtract.
    Sub,
    /// Wrapping integer multiply.
    Mul,
    /// Integer maximum.
    Max,
    /// Integer minimum.
    Min,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Right shift (amount from the second operand, clamped to 63).
    Shr,
    /// `1` if equal else `0`.
    Eq,
    /// `1` if the first operand is strictly less else `0`.
    Lt,
    /// IEEE-754 addition on the words' `f64` interpretations.
    FAdd,
    /// IEEE-754 multiplication on the words' `f64` interpretations.
    FMul,
}

impl BinOp {
    /// Applies the operation to two words.
    #[inline]
    #[must_use]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Max => a.max(b),
            BinOp::Min => a.min(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shr => a >> (b & 63),
            BinOp::Eq => u64::from(a == b),
            BinOp::Lt => u64::from(a < b),
            BinOp::FAdd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
            BinOp::FMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        }
    }

    /// The identity element when the op is used as a scan/reduce
    /// monoid (`None` for non-associative or partial ops).
    #[must_use]
    pub fn identity(self) -> Option<u64> {
        match self {
            BinOp::Add | BinOp::Or | BinOp::Xor => Some(0),
            BinOp::Mul => Some(1),
            BinOp::Max => Some(0), // u64 min value
            BinOp::Min => Some(u64::MAX),
            BinOp::And => Some(u64::MAX),
            BinOp::FAdd => Some(0f64.to_bits()),
            BinOp::FMul => Some(1f64.to_bits()),
            BinOp::Sub | BinOp::Shr | BinOp::Eq | BinOp::Lt => None,
        }
    }
}

/// Unary element-wise operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Bitwise not.
    Not,
    /// `1` if the word is zero else `0`.
    IsZero,
    /// Converts the integer value to the bits of its `f64` value.
    IntToFloat,
    /// Truncates the `f64` interpretation back to an integer.
    FloatToInt,
}

impl UnOp {
    /// Applies the operation to a word.
    #[inline]
    #[must_use]
    pub fn apply(self, a: u64) -> u64 {
        match self {
            UnOp::Not => !a,
            UnOp::IsZero => u64::from(a == 0),
            UnOp::IntToFloat => (a as f64).to_bits(),
            UnOp::FloatToInt => f64::from_bits(a) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ops_apply() {
        assert_eq!(BinOp::Add.apply(3, 4), 7);
        assert_eq!(BinOp::Sub.apply(3, 4), u64::MAX); // wraps
        assert_eq!(BinOp::Mul.apply(6, 7), 42);
        assert_eq!(BinOp::Max.apply(3, 9), 9);
        assert_eq!(BinOp::Min.apply(3, 9), 3);
        assert_eq!(BinOp::Shr.apply(16, 2), 4);
        assert_eq!(BinOp::Eq.apply(5, 5), 1);
        assert_eq!(BinOp::Lt.apply(5, 5), 0);
        assert_eq!(BinOp::Lt.apply(4, 5), 1);
    }

    #[test]
    fn float_ops_round_trip_bits() {
        let a = 1.5f64.to_bits();
        let b = 2.25f64.to_bits();
        assert_eq!(f64::from_bits(BinOp::FAdd.apply(a, b)), 3.75);
        assert_eq!(f64::from_bits(BinOp::FMul.apply(a, b)), 3.375);
    }

    #[test]
    fn identities_are_identities() {
        for op in
            [BinOp::Add, BinOp::Mul, BinOp::Max, BinOp::Min, BinOp::And, BinOp::Or, BinOp::Xor]
        {
            let id = op.identity().unwrap();
            for x in [0u64, 1, 7, u64::MAX / 3] {
                assert_eq!(op.apply(id, x), x, "{op:?}");
                assert_eq!(op.apply(x, id), x, "{op:?}");
            }
        }
        assert!(BinOp::Sub.identity().is_none());
    }

    #[test]
    fn float_identities() {
        let id = BinOp::FAdd.identity().unwrap();
        let x = 2.5f64.to_bits();
        assert_eq!(f64::from_bits(BinOp::FAdd.apply(id, x)), 2.5);
        let one = BinOp::FMul.identity().unwrap();
        assert_eq!(f64::from_bits(BinOp::FMul.apply(one, x)), 2.5);
    }

    #[test]
    fn unary_ops_apply() {
        assert_eq!(UnOp::Not.apply(0), u64::MAX);
        assert_eq!(UnOp::IsZero.apply(0), 1);
        assert_eq!(UnOp::IsZero.apply(3), 0);
        assert_eq!(f64::from_bits(UnOp::IntToFloat.apply(5)), 5.0);
        assert_eq!(UnOp::FloatToInt.apply(5.9f64.to_bits()), 5);
    }
}
