//! Sparse matrices for the SpMV experiment (§6, Figure 12).
//!
//! The paper's implementation is compressed-row: per-row nonzero
//! counts, plus values and column indices. Contention in SpMV comes
//! from gathering `x[col]` — a *dense column* means its index appears
//! in many rows, so the gather hammers one location. Figure 12 sweeps
//! the dense-column length.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A matrix in compressed sparse row (CSR) format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes row `r`'s nonzeros.
    pub row_ptr: Vec<usize>,
    /// Column index of each nonzero.
    pub col_idx: Vec<u32>,
    /// Value of each nonzero.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(col, value)` lists.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range.
    #[must_use]
    pub fn from_rows(cols: usize, rows: &[Vec<(u32, f64)>]) -> Self {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in rows {
            for &(c, v) in row {
                assert!((c as usize) < cols, "column index out of range");
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Self { rows: rows.len(), cols, row_ptr, col_idx, values }
    }

    /// Number of stored nonzeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The nonzeros of row `r` as `(col, value)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        span.map(move |i| (self.col_idx[i], self.values[i]))
    }

    /// Serial reference SpMV: `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn multiply_serial(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length mismatch");
        (0..self.rows).map(|r| self.row(r).map(|(c, v)| v * x[c as usize]).sum()).collect()
    }

    /// Occurrences of each column index across the matrix (the gather
    /// contention profile: entry `c` is how many rows read `x[c]`).
    #[must_use]
    pub fn column_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.cols];
        for &c in &self.col_idx {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Random matrix: `rows × cols` with exactly `nnz_per_row` nonzeros
    /// per row at uniform distinct-ish columns (duplicates allowed when
    /// `nnz_per_row` approaches `cols`; they're harmless to SpMV).
    #[must_use]
    pub fn random<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        nnz_per_row: usize,
        rng: &mut R,
    ) -> Self {
        assert!(cols >= 1, "need at least one column");
        let row_lists: Vec<Vec<(u32, f64)>> = (0..rows)
            .map(|_| {
                (0..nnz_per_row)
                    .map(|_| (rng.random_range(0..cols as u32), rng.random_range(-1.0..1.0)))
                    .collect()
            })
            .collect();
        Self::from_rows(cols, &row_lists)
    }

    /// The Figure-12 workload: a random matrix where column 0 is made
    /// *dense* — it appears in the first `dense_len` rows (replacing one
    /// random entry in each), so the SpMV gather has location contention
    /// `≈ dense_len` at `x[0]`.
    ///
    /// # Panics
    ///
    /// Panics if `dense_len > rows` or `nnz_per_row == 0` with
    /// `dense_len > 0`.
    #[must_use]
    pub fn random_with_dense_column<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        nnz_per_row: usize,
        dense_len: usize,
        rng: &mut R,
    ) -> Self {
        assert!(dense_len <= rows, "dense column cannot exceed the row count");
        assert!(dense_len == 0 || nnz_per_row >= 1, "dense column needs a slot per row");
        let mut m = Self::random(rows, cols, nnz_per_row, rng);
        for r in 0..dense_len {
            let span = m.row_ptr[r]..m.row_ptr[r + 1];
            let slot = rng.random_range(span);
            m.col_idx[slot] = 0;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_rows_builds_csr_offsets() {
        let m = CsrMatrix::from_rows(4, &[vec![(0, 1.0), (2, 2.0)], vec![], vec![(3, -1.0)]]);
        assert_eq!(m.rows, 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row_ptr, vec![0, 2, 2, 3]);
        assert_eq!(m.row(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(m.row(1).count(), 0);
    }

    #[test]
    fn serial_multiply_matches_hand_computation() {
        // [1 0 2; 0 3 0] · [1, 2, 3] = [7, 6]
        let m = CsrMatrix::from_rows(3, &[vec![(0, 1.0), (2, 2.0)], vec![(1, 3.0)]]);
        assert_eq!(m.multiply_serial(&[1.0, 2.0, 3.0]), vec![7.0, 6.0]);
    }

    #[test]
    fn random_matrix_has_exact_nnz() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = CsrMatrix::random(100, 50, 7, &mut rng);
        assert_eq!(m.nnz(), 700);
        assert_eq!(m.column_counts().iter().sum::<usize>(), 700);
    }

    #[test]
    fn dense_column_raises_column_zero_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = CsrMatrix::random_with_dense_column(1000, 1000, 4, 600, &mut rng);
        let counts = m.column_counts();
        assert!(counts[0] >= 600, "column 0 count {}", counts[0]);
        assert_eq!(m.nnz(), 4000); // densification replaces, not adds
    }

    #[test]
    fn dense_len_zero_is_plain_random() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = CsrMatrix::random_with_dense_column(200, 100_000, 4, 0, &mut rng);
        // With a huge column space, column 0 is almost surely sparse.
        assert!(m.column_counts()[0] < 5);
    }

    #[test]
    fn multiply_with_dense_column_still_correct() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = CsrMatrix::random_with_dense_column(50, 30, 3, 50, &mut rng);
        let x: Vec<f64> = (0..30).map(|i| i as f64 * 0.25).collect();
        let y = m.multiply_serial(&x);
        assert_eq!(y.len(), 50);
        // Spot check row 0 against a manual dot product.
        let manual: f64 = m.row(0).map(|(c, v)| v * x[c as usize]).sum();
        assert!((y[0] - manual).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_column_rejected() {
        let _ = CsrMatrix::from_rows(2, &[vec![(2, 1.0)]]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_vector_length_rejected() {
        let m = CsrMatrix::from_rows(2, &[vec![(0, 1.0)]]);
        let _ = m.multiply_serial(&[1.0]);
    }
}
