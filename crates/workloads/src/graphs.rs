//! Graph generators for the connected-components experiments (§6).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An undirected multigraph on vertices `0..n`, stored as an edge list
/// (the representation Greiner's data-parallel CC algorithm consumes).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// Vertex count.
    pub n: usize,
    /// Undirected edges `(u, v)`.
    pub edges: Vec<(u32, u32)>,
}

impl Graph {
    /// An empty graph on `n` vertices.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Self { n, edges: Vec::new() }
    }

    /// Erdős–Rényi G(n, m): `m` edges drawn uniformly (self-loops
    /// excluded, parallel edges allowed — the algorithm tolerates both).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` and `m > 0`.
    #[must_use]
    pub fn random_gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Self {
        assert!(m == 0 || n >= 2, "edges need at least two vertices");
        let edges = (0..m)
            .map(|_| {
                let u = rng.random_range(0..n as u32);
                let mut v = rng.random_range(0..n as u32 - 1);
                if v >= u {
                    v += 1;
                }
                (u, v)
            })
            .collect();
        Self { n, edges }
    }

    /// A path `0 − 1 − … − (n−1)`: the worst case for shortcutting
    /// depth (Θ(log n) contraction rounds).
    #[must_use]
    pub fn chain(n: usize) -> Self {
        let edges = (1..n as u32).map(|v| (v - 1, v)).collect();
        Self { n, edges }
    }

    /// A star with vertex 0 at the center: maximum hooking contention
    /// (every leaf hooks onto vertex 0).
    #[must_use]
    pub fn star(n: usize) -> Self {
        let edges = (1..n as u32).map(|v| (0, v)).collect();
        Self { n, edges }
    }

    /// A `rows × cols` 4-neighbour grid.
    #[must_use]
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::with_capacity(2 * rows * cols);
        let id = |r: usize, c: usize| (r * cols + c) as u32;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        Self { n: rows * cols, edges }
    }

    /// A complete binary tree rooted at vertex 0 (vertex `v`'s children
    /// are `2v+1` and `2v+2`): logarithmic diameter, degree ≤ 3 — the
    /// benign counterpart to [`Graph::star`].
    #[must_use]
    pub fn binary_tree(n: usize) -> Self {
        let edges = (1..n as u32).map(|v| ((v - 1) / 2, v)).collect();
        Self { n, edges }
    }

    /// A planted-community graph: `communities` dense clusters of
    /// `n / communities` vertices (each cluster a random matching-rich
    /// cluster with `intra` random internal edges) joined into one
    /// component by a cycle of bridge edges. Hooking contention
    /// concentrates on per-community representatives — between the
    /// chain's 3 and the star's n.
    ///
    /// # Panics
    ///
    /// Panics if `communities == 0` or `n < communities`.
    #[must_use]
    pub fn communities<R: Rng + ?Sized>(
        n: usize,
        communities: usize,
        intra: usize,
        rng: &mut R,
    ) -> Self {
        assert!(communities >= 1, "need at least one community");
        assert!(n >= communities, "need at least one vertex per community");
        let size = n / communities;
        let mut edges = Vec::with_capacity(communities * intra + communities);
        for c in 0..communities {
            let base = (c * size) as u32;
            let span = if c == communities - 1 { n - c * size } else { size };
            // A spanning path keeps every cluster internally connected
            // regardless of how the random intra edges fall.
            for v in 1..span as u32 {
                edges.push((base + v - 1, base + v));
            }
            if span >= 2 {
                for _ in 0..intra {
                    let u = base + rng.random_range(0..span as u32);
                    let mut v = base + rng.random_range(0..span as u32 - 1);
                    if v >= u {
                        v += 1;
                    }
                    edges.push((u, v));
                }
            }
            // Bridge to the next community (cycle).
            let next = ((c + 1) % communities * size) as u32;
            if communities > 1 {
                edges.push((base, next));
            }
        }
        Self { n, edges }
    }

    /// Number of edges.
    #[must_use]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Connected-component labels by sequential union–find: the oracle
    /// the parallel algorithm is tested against. Labels are the minimum
    /// vertex id of each component.
    #[must_use]
    pub fn components_oracle(&self) -> Vec<u32> {
        let mut parent: Vec<u32> = (0..self.n as u32).collect();
        fn find(parent: &mut [u32], v: u32) -> u32 {
            let mut root = v;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = v;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        for &(u, v) in &self.edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                parent[hi as usize] = lo;
            }
        }
        (0..self.n as u32).map(|v| find(&mut parent, v)).collect()
    }

    /// Number of connected components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        let labels = self.components_oracle();
        let mut distinct: Vec<u32> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        distinct.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_is_one_component() {
        let g = Graph::chain(100);
        assert_eq!(g.m(), 99);
        assert_eq!(g.component_count(), 1);
        assert!(g.components_oracle().iter().all(|&l| l == 0));
    }

    #[test]
    fn star_is_one_component_with_min_label() {
        let g = Graph::star(50);
        assert_eq!(g.component_count(), 1);
        assert!(g.components_oracle().iter().all(|&l| l == 0));
    }

    #[test]
    fn empty_graph_is_all_singletons() {
        let g = Graph::empty(10);
        assert_eq!(g.component_count(), 10);
        assert_eq!(g.components_oracle(), (0..10u32).collect::<Vec<_>>());
    }

    #[test]
    fn grid_is_connected() {
        let g = Graph::grid(8, 9);
        assert_eq!(g.n, 72);
        assert_eq!(g.m(), 8 * 8 + 7 * 9);
        assert_eq!(g.component_count(), 1);
    }

    #[test]
    fn gnm_has_no_self_loops() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Graph::random_gnm(100, 500, &mut rng);
        assert_eq!(g.m(), 500);
        assert!(g.edges.iter().all(|&(u, v)| u != v));
        assert!(g.edges.iter().all(|&(u, v)| (u as usize) < g.n && (v as usize) < g.n));
    }

    #[test]
    fn dense_gnm_is_connected_sparse_is_not() {
        let mut rng = StdRng::seed_from_u64(2);
        let dense = Graph::random_gnm(500, 4000, &mut rng);
        assert_eq!(dense.component_count(), 1);
        let sparse = Graph::random_gnm(500, 20, &mut rng);
        assert!(sparse.component_count() > 100);
    }

    #[test]
    fn binary_tree_is_connected_with_bounded_degree() {
        let g = Graph::binary_tree(127);
        assert_eq!(g.m(), 126);
        assert_eq!(g.component_count(), 1);
        let mut deg = vec![0usize; g.n];
        for &(u, v) in &g.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        assert!(deg.iter().all(|&d| d <= 3), "{deg:?}");
    }

    #[test]
    fn communities_form_one_component() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = Graph::communities(1000, 10, 200, &mut rng);
        assert_eq!(g.component_count(), 1);
        assert!(g.edges.iter().all(|&(u, v)| u != v));
        assert!(g.edges.iter().all(|&(u, v)| (u as usize) < g.n && (v as usize) < g.n));
    }

    #[test]
    fn single_community_is_just_a_random_cluster() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = Graph::communities(64, 1, 300, &mut rng);
        assert_eq!(g.m(), 300 + 63); // spanning path + intra, no bridges
        assert_eq!(g.component_count(), 1);
    }

    #[test]
    fn oracle_labels_are_component_minima() {
        // Two triangles: {0,1,2} and {5,6,7}; isolated 3,4.
        let g = Graph { n: 8, edges: vec![(0, 1), (1, 2), (2, 0), (5, 6), (6, 7), (7, 5)] };
        assert_eq!(g.components_oracle(), vec![0, 0, 0, 3, 4, 5, 5, 5]);
        assert_eq!(g.component_count(), 4);
    }
}
