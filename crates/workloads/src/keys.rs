//! Scatter-key generators with controlled location contention.
//!
//! §3 Experiment 1 scatters `n` elements where a chosen address receives
//! exactly `k` requests and the rest are spread uniformly; Experiment 2
//! replaces the single hot address with `c` duplicates so each copy
//! absorbs `⌈k/c⌉` requests. These generators produce those address
//! vectors (the element→processor assignment is applied later by
//! [`dxbsp_core::AccessPattern::scatter`]).

use std::collections::HashMap;

use rand::Rng;

/// `n` addresses drawn uniformly from `[0, range)`.
///
/// # Panics
///
/// Panics if `range == 0`.
#[must_use]
pub fn uniform_keys<R: Rng + ?Sized>(n: usize, range: u64, rng: &mut R) -> Vec<u64> {
    assert!(range > 0, "address range must be nonempty");
    (0..n).map(|_| rng.random_range(0..range)).collect()
}

/// `n` addresses where address `0` appears exactly `k` times and the
/// remaining `n − k` are drawn uniformly from `[1, range)`, shuffled so
/// the hot requests interleave with the background traffic the way a
/// real scatter's would.
///
/// # Panics
///
/// Panics if `k > n` or `range < 2`.
#[must_use]
pub fn hotspot_keys<R: Rng + ?Sized>(n: usize, k: usize, range: u64, rng: &mut R) -> Vec<u64> {
    assert!(k <= n, "contention k cannot exceed n");
    assert!(range >= 2, "need room for background addresses");
    let mut keys = Vec::with_capacity(n);
    keys.extend(std::iter::repeat_n(0u64, k));
    keys.extend((0..n - k).map(|_| rng.random_range(1..range)));
    shuffle(&mut keys, rng);
    keys
}

/// Experiment-2 keys: the hot address is split into `copies` replicas
/// (addresses `0..copies`), with the `k` hot requests dealt round-robin
/// among replicas (so each receives `⌈k/copies⌉` or `⌊k/copies⌋`).
///
/// # Panics
///
/// Panics if `copies == 0`, `k > n`, or `range ≤ copies`.
#[must_use]
pub fn duplicated_hotspot<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    copies: usize,
    range: u64,
    rng: &mut R,
) -> Vec<u64> {
    assert!(copies >= 1, "need at least one copy");
    assert!(k <= n, "contention k cannot exceed n");
    assert!(range > copies as u64, "need room for background addresses");
    let mut keys = Vec::with_capacity(n);
    keys.extend((0..k).map(|i| (i % copies) as u64));
    keys.extend((0..n - k).map(|_| rng.random_range(copies as u64..range)));
    shuffle(&mut keys, rng);
    keys
}

/// Maximum multiplicity of any address in `keys` (the workload's `k`).
#[must_use]
pub fn max_contention(keys: &[u64]) -> usize {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &k in keys {
        *counts.entry(k).or_insert(0) += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

/// Fisher–Yates shuffle (kept local to avoid depending on `rand`'s
/// `SliceRandom` across crate versions).
fn shuffle<T, R: Rng + ?Sized>(xs: &mut [T], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_keys_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let keys = uniform_keys(1000, 64, &mut rng);
        assert_eq!(keys.len(), 1000);
        assert!(keys.iter().all(|&k| k < 64));
    }

    #[test]
    fn hotspot_contention_is_exact_when_background_is_sparse() {
        let mut rng = StdRng::seed_from_u64(2);
        // Huge range: background collisions are negligible, so the max
        // contention is exactly k.
        let keys = hotspot_keys(4096, 257, 1 << 40, &mut rng);
        assert_eq!(keys.len(), 4096);
        assert_eq!(keys.iter().filter(|&&k| k == 0).count(), 257);
        assert_eq!(max_contention(&keys), 257);
    }

    #[test]
    fn hotspot_k_equals_n_is_all_same() {
        let mut rng = StdRng::seed_from_u64(3);
        let keys = hotspot_keys(128, 128, 1 << 20, &mut rng);
        assert!(keys.iter().all(|&k| k == 0));
    }

    #[test]
    fn hotspot_k_zero_has_no_forced_duplicates() {
        let mut rng = StdRng::seed_from_u64(4);
        let keys = hotspot_keys(100, 0, 1 << 40, &mut rng);
        assert!(keys.iter().all(|&k| k != 0));
    }

    #[test]
    fn duplication_splits_contention_evenly() {
        let mut rng = StdRng::seed_from_u64(5);
        let keys = duplicated_hotspot(4096, 600, 4, 1 << 40, &mut rng);
        for copy in 0..4u64 {
            assert_eq!(keys.iter().filter(|&&k| k == copy).count(), 150);
        }
        assert_eq!(max_contention(&keys), 150);
    }

    #[test]
    fn duplication_with_one_copy_matches_hotspot() {
        let mut rng = StdRng::seed_from_u64(6);
        let keys = duplicated_hotspot(1024, 99, 1, 1 << 40, &mut rng);
        assert_eq!(keys.iter().filter(|&&k| k == 0).count(), 99);
    }

    #[test]
    fn max_contention_of_empty_is_zero() {
        assert_eq!(max_contention(&[]), 0);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut xs: Vec<u64> = (0..100).collect();
        shuffle(&mut xs, &mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And actually permutes (astronomically unlikely to be identity).
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot exceed")]
    fn hotspot_k_above_n_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = hotspot_keys(10, 11, 100, &mut rng);
    }
}

/// NAS-IS-style keys: each key is the scaled average of four uniform
/// draws, giving the binomial-ish hump the NAS Integer Sort benchmark
/// specifies (the paper's radix sort \[ZB91\] "is currently the fastest
/// implementation of the NAS sorting benchmark").
///
/// Keys lie in `[0, 2^bits)` with mass concentrated near the middle —
/// mild, realistic contention between `uniform` and `hotspot`.
///
/// # Panics
///
/// Panics if `bits == 0` or `bits > 62`.
#[must_use]
pub fn nas_is_keys<R: Rng + ?Sized>(n: usize, bits: u32, rng: &mut R) -> Vec<u64> {
    assert!((1..=62).contains(&bits), "bits must be in 1..=62");
    let range = 1u64 << bits;
    (0..n)
        .map(|_| {
            let sum: u64 = (0..4).map(|_| rng.random_range(0..range)).sum();
            sum / 4
        })
        .collect()
}

#[cfg(test)]
mod nas_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nas_keys_stay_in_range_and_hump_in_the_middle() {
        let mut rng = StdRng::seed_from_u64(1);
        let bits = 10u32;
        let keys = nas_is_keys(40_000, bits, &mut rng);
        assert!(keys.iter().all(|&k| k < 1 << bits));
        // The middle half holds most of the mass (binomial hump).
        let mid =
            keys.iter().filter(|&&k| k >= 1 << (bits - 2) && k < 3 * (1 << (bits - 2))).count();
        assert!(mid > keys.len() * 3 / 5, "mid mass {mid} of {}", keys.len());
    }

    #[test]
    fn nas_keys_have_more_contention_than_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let uniform = max_contention(&uniform_keys(20_000, 1 << 12, &mut rng));
        let nas = max_contention(&nas_is_keys(20_000, 12, &mut rng));
        assert!(nas > uniform, "nas {nas} vs uniform {uniform}");
    }
}
