//! Constant-stride address patterns.
//!
//! The paper points to [CS86, Soh93] for strided-access timings and
//! focuses on irregular patterns, but strides remain the canonical
//! adversary for interleaved bank mappings (§4): a stride sharing a
//! factor with the bank count concentrates on `B / gcd(stride, B)`
//! banks. We generate them for the mapping ablation (A1).

/// `n` addresses `base, base+stride, base+2·stride, …`.
#[must_use]
pub fn strided_addresses(base: u64, stride: u64, n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| base.wrapping_add(i.wrapping_mul(stride))).collect()
}

/// Number of distinct banks a stride touches under `banks`-way
/// interleaving: `banks / gcd(stride, banks)` (and 1 for stride 0).
#[must_use]
pub fn banks_touched_by_stride(stride: u64, banks: u64) -> u64 {
    if stride == 0 {
        return 1;
    }
    banks / gcd(stride % banks, banks).max(1)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_sequence_is_arithmetic() {
        let a = strided_addresses(100, 7, 5);
        assert_eq!(a, vec![100, 107, 114, 121, 128]);
    }

    #[test]
    fn unit_stride_touches_all_banks() {
        assert_eq!(banks_touched_by_stride(1, 64), 64);
        assert_eq!(banks_touched_by_stride(63, 64), 64); // coprime
    }

    #[test]
    fn power_of_two_stride_concentrates() {
        assert_eq!(banks_touched_by_stride(16, 64), 4);
        assert_eq!(banks_touched_by_stride(64, 64), 1);
        assert_eq!(banks_touched_by_stride(128, 64), 1);
    }

    #[test]
    fn zero_stride_hits_one_bank() {
        assert_eq!(banks_touched_by_stride(0, 64), 1);
    }

    #[test]
    fn interleaved_bank_count_matches_formula() {
        use dxbsp_core::{BankMap, Interleaved};
        for (stride, banks) in [(1u64, 32usize), (4, 32), (12, 32), (32, 32), (48, 32)] {
            let map = Interleaved::new(banks);
            let addrs = strided_addresses(0, stride, 4 * banks);
            let mut hit: Vec<usize> = addrs.iter().map(|&a| map.bank_of(a)).collect();
            hit.sort_unstable();
            hit.dedup();
            assert_eq!(hit.len() as u64, banks_touched_by_stride(stride, banks as u64));
        }
    }
}
