//! Spec-driven workload construction.
//!
//! [`dxbsp_core::WorkloadSpec`] describes a workload *family*; a sweep
//! point supplies the per-point knobs (`n`, `k`, `copies`, …). This
//! module turns the pair into concrete address vectors, deterministically:
//! every point derives its RNG stream from `(seed, salt)` via
//! [`point_rng`], so a scenario re-run — at any thread count — produces
//! byte-identical workloads.

use dxbsp_core::{DxError, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{
    duplicated_hotspot, entropy_family, hotspot_keys, nas_is_keys, uniform_keys, zipf_keys,
};

/// The deterministic per-point RNG: a fixed odd multiplier spreads the
/// base seed, the salt separates points (and independent streams within
/// a point).
#[must_use]
pub fn point_rng(seed: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(salt))
}

/// Per-point knobs a sweep supplies on top of the workload family.
#[derive(Debug, Clone, Copy)]
pub struct KeyRequest {
    /// Number of addresses to generate.
    pub n: usize,
    /// Location contention for hotspot families.
    pub k: usize,
    /// Replica count for the duplicated-hotspot family.
    pub copies: usize,
    /// Ladder level for the entropy family.
    pub iteration: usize,
    /// Zipf exponent.
    pub exponent: f64,
}

impl KeyRequest {
    /// A request for `n` addresses with all knobs at their neutral
    /// values (`k = 0`, one copy, level 0, exponent 0).
    #[must_use]
    pub fn of(n: usize) -> Self {
        KeyRequest { n, k: 0, copies: 1, iteration: 0, exponent: 0.0 }
    }
}

/// Generate the address vector a workload spec describes at one sweep
/// point.
///
/// # Errors
///
/// [`DxError::Invalid`] when the family and the request disagree
/// (`k > n`, entropy level beyond the ladder, a non-key family such as
/// `cc-graph`, …). The underlying generators' panics are all pre-checked
/// here so corrupt scenarios surface as diagnostics.
pub fn generate_keys(
    spec: &WorkloadSpec,
    req: &KeyRequest,
    seed: u64,
    salt: u64,
) -> Result<Vec<u64>, DxError> {
    let rng = &mut point_rng(seed, salt);
    match *spec {
        WorkloadSpec::Uniform { range } => {
            if range == 0 {
                return Err(DxError::invalid("uniform workload needs range >= 1"));
            }
            Ok(uniform_keys(req.n, range, rng))
        }
        WorkloadSpec::Hotspot { range } => {
            if req.k > req.n {
                return Err(DxError::invalid(format!(
                    "hotspot contention k = {} exceeds n = {}",
                    req.k, req.n
                )));
            }
            if range < 2 {
                return Err(DxError::invalid("hotspot workload needs range >= 2"));
            }
            Ok(hotspot_keys(req.n, req.k, range, rng))
        }
        WorkloadSpec::DuplicatedHotspot { range } => {
            if req.copies == 0 {
                return Err(DxError::invalid("duplicated hotspot needs copies >= 1"));
            }
            if req.k > req.n {
                return Err(DxError::invalid(format!(
                    "hotspot contention k = {} exceeds n = {}",
                    req.k, req.n
                )));
            }
            if range <= req.copies as u64 {
                return Err(DxError::invalid("duplicated hotspot needs range > copies"));
            }
            Ok(duplicated_hotspot(req.n, req.k, req.copies, range, rng))
        }
        WorkloadSpec::Entropy { bits, iterations, salt: family_salt } => {
            if req.iteration > iterations as usize {
                return Err(DxError::invalid(format!(
                    "entropy level {} beyond the ladder's {} iterations",
                    req.iteration, iterations
                )));
            }
            // The whole ladder is one RNG stream: regenerate it from the
            // family salt and select the requested level, so any point
            // (on any worker) sees the same family.
            let family =
                entropy_family(req.n, bits, iterations as usize, &mut point_rng(seed, family_salt));
            Ok(family.into_iter().nth(req.iteration).expect("level checked above"))
        }
        WorkloadSpec::Zipf { universe } => {
            if universe == 0 {
                return Err(DxError::invalid("zipf workload needs universe >= 1"));
            }
            let universe = usize::try_from(universe)
                .map_err(|_| DxError::invalid("zipf universe out of range"))?;
            Ok(zipf_keys(req.n, universe, req.exponent, rng))
        }
        WorkloadSpec::NasIs { bits } => {
            if !(1..=62).contains(&bits) {
                return Err(DxError::invalid("nas-is bits must be in 1..=62"));
            }
            Ok(nas_is_keys(req.n, bits, rng))
        }
        WorkloadSpec::GoldenDistinct { shift } => {
            Ok((0..req.n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift).collect())
        }
        WorkloadSpec::SortKeys { bits } => {
            if !(1..=62).contains(&bits) {
                return Err(DxError::invalid("sort-keys bits must be in 1..=62"));
            }
            Ok(uniform_keys(req.n, 1u64 << bits, rng))
        }
        WorkloadSpec::None
        | WorkloadSpec::CcGraph { .. }
        | WorkloadSpec::GraphFamily { .. }
        | WorkloadSpec::PseudoStream { .. } => Err(DxError::invalid(format!(
            "workload family `{}` does not generate scatter keys",
            spec.family()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_contention;

    #[test]
    fn hotspot_matches_direct_generator() {
        let direct = hotspot_keys(4096, 64, 1 << 40, &mut point_rng(1995, 64));
        let via_spec = generate_keys(
            &WorkloadSpec::Hotspot { range: 1 << 40 },
            &KeyRequest { k: 64, ..KeyRequest::of(4096) },
            1995,
            64,
        )
        .unwrap();
        assert_eq!(direct, via_spec);
    }

    #[test]
    fn entropy_levels_share_one_family() {
        let spec = WorkloadSpec::Entropy { bits: 18, iterations: 4, salt: 0xE27 };
        let family = entropy_family(1024, 18, 4, &mut point_rng(7, 0xE27));
        for (level, expect) in family.iter().enumerate() {
            let keys = generate_keys(
                &spec,
                &KeyRequest { iteration: level, ..KeyRequest::of(1024) },
                7,
                level as u64,
            )
            .unwrap();
            assert_eq!(&keys, expect, "level {level}");
        }
        assert!(generate_keys(&spec, &KeyRequest { iteration: 5, ..KeyRequest::of(1024) }, 7, 0)
            .is_err());
    }

    #[test]
    fn degenerate_requests_are_errors_not_panics() {
        let hot = WorkloadSpec::Hotspot { range: 1 << 40 };
        assert!(generate_keys(&hot, &KeyRequest { k: 11, ..KeyRequest::of(10) }, 1, 0).is_err());
        let dup = WorkloadSpec::DuplicatedHotspot { range: 4 };
        assert!(generate_keys(&dup, &KeyRequest { copies: 8, k: 8, ..KeyRequest::of(64) }, 1, 0)
            .is_err());
        assert!(generate_keys(&WorkloadSpec::None, &KeyRequest::of(8), 1, 0).is_err());
    }

    #[test]
    fn golden_distinct_has_no_contention() {
        let keys =
            generate_keys(&WorkloadSpec::GoldenDistinct { shift: 4 }, &KeyRequest::of(4096), 0, 0)
                .unwrap();
        assert_eq!(keys.len(), 4096);
        assert_eq!(max_contention(&keys), 1);
    }
}
