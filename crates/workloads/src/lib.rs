//! # dxbsp-workloads — workload generators for the experiments
//!
//! Every experiment in the paper is driven by a parameterized workload:
//! hot-spot scatter keys with controlled contention (§3 Experiments
//! 1–2), Thearling–Smith entropy distributions (§3 Experiment 3),
//! constant-stride patterns (§4's module-map pathologies), random
//! graphs (connected components, §6) and sparse matrices with a
//! parameterized dense column (SpMV, §6). This crate generates all of
//! them deterministically from a caller-supplied RNG.

pub mod entropy;
pub mod graphs;
pub mod keys;
pub mod matrices;
pub mod spec;
pub mod strided;
pub mod zipf;

pub use entropy::{entropy_family, estimate_entropy_bits};
pub use graphs::Graph;
pub use keys::{duplicated_hotspot, hotspot_keys, max_contention, nas_is_keys, uniform_keys};
pub use matrices::CsrMatrix;
pub use spec::{generate_keys, point_rng, KeyRequest};
pub use strided::strided_addresses;
pub use zipf::{bit_reversal_addresses, zipf_keys};
