//! Zipf-distributed scatter keys.
//!
//! The paper's §3 experiments use hot-spot and entropy families; real
//! irregular applications (graph degrees, term frequencies) are closer
//! to Zipfian, where contention comes from a *tail* of warm locations
//! rather than a single hot one. This generator rounds out the
//! workload set for the model-validation sweeps.

use rand::Rng;

/// `n` keys over `[0, universe)` with Zipf exponent `s` (`s = 0` is
/// uniform; larger `s` concentrates mass on low-index keys). Uses
/// inverse-CDF sampling over the exact normalized weights.
///
/// # Panics
///
/// Panics if `universe == 0` or `s` is negative or non-finite.
#[must_use]
pub fn zipf_keys<R: Rng + ?Sized>(n: usize, universe: usize, s: f64, rng: &mut R) -> Vec<u64> {
    assert!(universe >= 1, "universe must be nonempty");
    assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and non-negative");
    // Cumulative weights w_i = 1 / (i+1)^s.
    let mut cdf = Vec::with_capacity(universe);
    let mut acc = 0.0f64;
    for i in 0..universe {
        acc += 1.0 / ((i + 1) as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let u = rng.random_range(0.0..total);
            cdf.partition_point(|&c| c < u) as u64
        })
        .collect()
}

/// The bit-reversal permutation addresses `rev(i)` for `i in 0..2^bits`
/// — the classic FFT access pattern, pathological for some interleaved
/// systems and a standard stress pattern for random mappings.
///
/// # Panics
///
/// Panics if `bits > 32`.
#[must_use]
pub fn bit_reversal_addresses(bits: u32) -> Vec<u64> {
    assert!(bits <= 32, "keep the pattern in memory");
    let n = 1u64 << bits;
    (0..n).map(|i| (i.reverse_bits() >> (64 - bits)) & (n - 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let keys = zipf_keys(40_000, 16, 0.0, &mut rng);
        let mut counts = vec![0usize; 16];
        for &k in &keys {
            counts[k as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < min * 2, "uniform counts too skewed: {counts:?}");
    }

    #[test]
    fn zipf_skew_concentrates_on_low_keys() {
        let mut rng = StdRng::seed_from_u64(2);
        let keys = zipf_keys(40_000, 1024, 1.2, &mut rng);
        let head = keys.iter().filter(|&&k| k < 8).count();
        assert!(head > keys.len() / 3, "head mass only {head}");
        assert!(keys.iter().all(|&k| k < 1024));
    }

    #[test]
    fn zipf_contention_grows_with_exponent() {
        use crate::keys::max_contention;
        let mut rng = StdRng::seed_from_u64(3);
        let mild = max_contention(&zipf_keys(20_000, 4096, 0.5, &mut rng));
        let harsh = max_contention(&zipf_keys(20_000, 4096, 1.5, &mut rng));
        assert!(harsh > 2 * mild, "mild={mild} harsh={harsh}");
    }

    #[test]
    fn bit_reversal_is_a_permutation() {
        let addrs = bit_reversal_addresses(10);
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1024u64).collect::<Vec<_>>());
        // Self-inverse: rev(rev(i)) = i.
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(addrs[a as usize], i as u64);
        }
    }

    #[test]
    fn bit_reversal_small_cases_exact() {
        assert_eq!(bit_reversal_addresses(1), vec![0, 1]);
        assert_eq!(bit_reversal_addresses(2), vec![0, 2, 1, 3]);
        assert_eq!(bit_reversal_addresses(3), vec![0, 4, 2, 6, 1, 5, 3, 7]);
    }
}
