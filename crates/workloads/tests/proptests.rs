//! Property tests for the workload generators: the experiments depend
//! on these invariants holding for *every* parameter combination, not
//! just the ones the tables sweep.

use dxbsp_workloads::{
    duplicated_hotspot, entropy_family, hotspot_keys, max_contention, nas_is_keys,
    strided_addresses, uniform_keys, zipf_keys, CsrMatrix, Graph,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Hot-spot keys contain exactly `k` copies of the hot address and
    /// achieve max contention exactly `k` when the background space is
    /// huge (collisions there are vanishingly unlikely).
    #[test]
    fn hotspot_contention_exact(n in 1usize..3000, k_frac in 0.0f64..=1.0, seed in 0u64..10_000) {
        let k = ((n as f64) * k_frac) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = hotspot_keys(n, k, 1 << 60, &mut rng);
        prop_assert_eq!(keys.len(), n);
        prop_assert_eq!(keys.iter().filter(|&&a| a == 0).count(), k);
        if k >= 2 {
            prop_assert_eq!(max_contention(&keys), k);
        }
    }

    /// Duplicated hot spots split the hot mass evenly across copies.
    #[test]
    fn duplication_splits_evenly(
        n in 1usize..2000,
        k_frac in 0.0f64..=1.0,
        copies in 1usize..64,
        seed in 0u64..10_000,
    ) {
        let k = ((n as f64) * k_frac) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = duplicated_hotspot(n, k, copies, 1 << 60, &mut rng);
        let per_copy: Vec<usize> =
            (0..copies as u64).map(|c| keys.iter().filter(|&&a| a == c).count()).collect();
        prop_assert_eq!(per_copy.iter().sum::<usize>(), k);
        let max = per_copy.iter().copied().max().unwrap_or(0);
        let min = per_copy.iter().copied().min().unwrap_or(0);
        prop_assert!(max - min <= 1, "uneven split {per_copy:?}");
    }

    /// Entropy families never grow in entropy and respect their mask.
    #[test]
    fn entropy_family_monotone(n in 2usize..1500, bits in 2u32..24, iters in 0usize..8, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fam = entropy_family(n, bits, iters, &mut rng);
        prop_assert_eq!(fam.len(), iters + 1);
        let mask = (1u64 << bits) - 1;
        for generation in &fam {
            prop_assert!(generation.iter().all(|&k| k & !mask == 0));
        }
        // Contention never decreases along the family (AND only merges
        // values; w.h.p. strict growth, guaranteed non-decrease is too
        // strong pointwise so compare first/last with slack).
        let first = max_contention(&fam[0]);
        let last = max_contention(fam.last().unwrap());
        prop_assert!(last + 1 >= first, "contention fell {first} → {last}");
    }

    /// Zipf keys stay in the declared universe for every exponent.
    #[test]
    fn zipf_in_range(n in 0usize..2000, universe in 1usize..5000, s in 0.0f64..3.0, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = zipf_keys(n, universe, s, &mut rng);
        prop_assert_eq!(keys.len(), n);
        prop_assert!(keys.iter().all(|&k| (k as usize) < universe));
    }

    /// NAS-IS keys respect their bit bound.
    #[test]
    fn nas_in_range(n in 0usize..2000, bits in 1u32..40, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = nas_is_keys(n, bits, &mut rng);
        prop_assert!(keys.iter().all(|&k| k < 1u64 << bits));
    }

    /// Strided addresses are an exact arithmetic sequence.
    #[test]
    fn strides_are_arithmetic(base in 0u64..1_000_000, stride in 0u64..10_000, n in 0usize..500) {
        let addrs = strided_addresses(base, stride, n);
        prop_assert_eq!(addrs.len(), n);
        for (i, &a) in addrs.iter().enumerate() {
            prop_assert_eq!(a, base.wrapping_add(stride.wrapping_mul(i as u64)));
        }
    }

    /// Graph generators produce in-range endpoints, and the union-find
    /// oracle agrees with a BFS oracle on every generated graph.
    #[test]
    fn graph_oracle_matches_bfs(n in 1usize..150, m in 0usize..300, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = if n >= 2 { Graph::random_gnm(n, m, &mut rng) } else { Graph::empty(n) };
        let labels = g.components_oracle();
        // BFS oracle.
        let mut adj = vec![Vec::new(); g.n];
        for &(u, v) in &g.edges {
            adj[u as usize].push(v as usize);
            adj[v as usize].push(u as usize);
        }
        let mut bfs = vec![u32::MAX; g.n];
        for start in 0..g.n {
            if bfs[start] != u32::MAX {
                continue;
            }
            let mut queue = vec![start];
            bfs[start] = start as u32;
            while let Some(v) = queue.pop() {
                for &w in &adj[v] {
                    if bfs[w] == u32::MAX {
                        bfs[w] = start as u32;
                        queue.push(w);
                    }
                }
            }
        }
        // Same-partition check between the two labelings.
        for i in 0..g.n {
            for j in (i + 1)..g.n.min(i + 20) {
                prop_assert_eq!(labels[i] == labels[j], bfs[i] == bfs[j], "vertices {},{}", i, j);
            }
        }
    }

    /// CSR invariants: offsets are monotone and bound the arrays, and
    /// the serial product matches a dense re-computation.
    #[test]
    fn csr_invariants(rows in 0usize..60, cols in 1usize..40, nnz in 0usize..6, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = CsrMatrix::random(rows, cols, nnz, &mut rng);
        prop_assert_eq!(a.row_ptr.len(), rows + 1);
        prop_assert!(a.row_ptr.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*a.row_ptr.last().unwrap_or(&0), a.nnz());
        let x: Vec<f64> = (0..cols).map(|i| (i as f64).cos()).collect();
        let y = a.multiply_serial(&x);
        // Dense oracle.
        for (r, &yr) in y.iter().enumerate() {
            let mut dense = vec![0.0f64; cols];
            for (c, v) in a.row(r) {
                dense[c as usize] += v;
            }
            let want: f64 = dense.iter().zip(&x).map(|(m, xv)| m * xv).sum();
            prop_assert!((yr - want).abs() < 1e-9, "row {r}: {yr} vs {want}");
        }
    }

    /// Uniform keys honour their range.
    #[test]
    fn uniform_in_range(n in 0usize..2000, range in 1u64..1_000_000, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = uniform_keys(n, range, &mut rng);
        prop_assert!(keys.iter().all(|&k| k < range));
    }
}
