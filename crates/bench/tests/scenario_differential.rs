//! Differential tests: the scenario pipeline must reproduce the
//! numbers the pre-refactor per-experiment code produced.
//!
//! The CSVs under `tests/golden/` are written by
//! `repro --quick --seed 1995 --csv ...` and pinned bit-for-bit,
//! headers included. The data columns of `exp2`/`exp3` still carry the
//! exact values of the old monolithic experiment functions; their
//! headers were regenerated once after the cosmetic renames
//! (`meas/pred` → `meas/dxbsp`, `iters` → `iter`) and `exp3`'s added
//! `meas/bsp` column, so every golden now pins the full CSV shape.

use dxbsp_bench::{run_builtin, Scale, Table};

const SEED: u64 = 1995;

/// Render a table the way `repro --csv` writes it.
fn csv(t: &Table) -> String {
    let mut out = String::new();
    out.push_str(&t.headers.join(","));
    out.push('\n');
    for row in &t.rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[test]
fn exp1_matches_pre_refactor_golden_exactly() {
    let t = run_builtin("exp1", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/exp1.csv"));
}

#[test]
fn fig1_matches_pre_refactor_golden_exactly() {
    let t = run_builtin("fig1", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/fig1.csv"));
}

#[test]
fn exp2_matches_golden_exactly() {
    let t = run_builtin("exp2", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/exp2.csv"));
}

#[test]
fn exp3_matches_golden_exactly() {
    let t = run_builtin("exp3", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/exp3.csv"));
}

#[test]
fn exp1_mixed_matches_golden_exactly() {
    let t = run_builtin("exp1_mixed", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/exp1_mixed.csv"));
}

#[test]
fn exp2_mixed_matches_golden_exactly() {
    let t = run_builtin("exp2_mixed", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/exp2_mixed.csv"));
}

#[test]
fn exp3_mixed_matches_golden_exactly() {
    let t = run_builtin("exp3_mixed", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/exp3_mixed.csv"));
}

#[test]
fn exp4_mixed_matches_golden_exactly() {
    let t = run_builtin("exp4_mixed", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/exp4_mixed.csv"));
}

#[test]
fn mixed_tier_goldens_quantify_the_uniform_misprediction() {
    // The point of the mixed-tier reruns: at full contention the hot
    // bank lands in the fast d=6 tier, so the scalar dxbsp prediction
    // (which must charge the slow tier's d=14 to stay sound) over-
    // predicts by more than 2x, while the generalized per-bank term
    // stays within a few percent of measured.
    let t = run_builtin("exp1_mixed", Scale::Quick, SEED);
    let h = &t.headers;
    let col = |name: &str| h.iter().position(|c| c == name).unwrap_or_else(|| panic!("{name}?"));
    let last = t.rows.last().expect("rows");
    let measured: f64 = last[col("measured")].parse().unwrap();
    let uniform: f64 = last[col("dxbsp-pred")].parse().unwrap();
    let tiered: f64 = last[col("tiered-pred")].parse().unwrap();
    assert!(uniform > measured * 2.0, "uniform {uniform} vs measured {measured}");
    assert!((measured - tiered).abs() / measured < 0.05, "tiered {tiered} vs {measured}");
}

#[test]
fn sort_oversample_matches_golden_exactly() {
    let t = run_builtin("sort_oversample", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/sort_oversample.csv"));
}

#[test]
fn sort_radix_vs_sample_matches_golden_exactly() {
    let t = run_builtin("sort_radix_vs_sample", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/sort_radix_vs_sample.csv"));
}

#[test]
fn pstream_scan_matches_golden_exactly() {
    let t = run_builtin("pstream_scan", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/pstream_scan.csv"));
}

#[test]
fn pstream_stencil_matches_golden_exactly() {
    let t = run_builtin("pstream_stencil", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/pstream_stencil.csv"));
}

#[test]
fn every_builtin_is_committed_as_a_scenario_file() {
    // examples/scenarios/builtin/<name>.toml is the dump of each
    // built-in at Full scale — the committed, runnable form of every
    // experiment. Regenerate with
    // `for n in $(dxbench list | awk '{print $1}'); do dxbench dump $n > .../$n.toml; done`.
    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios/builtin");
    for name in dxbsp_bench::scenarios::builtin_names() {
        let path = dir.join(format!("{name}.toml"));
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let committed =
            dxbsp_core::Scenario::from_toml(&text).unwrap_or_else(|e| panic!("{name}.toml: {e}"));
        let in_code = dxbsp_bench::scenarios::builtin(name, Scale::Full, 1995).unwrap();
        assert_eq!(committed, in_code, "{name}.toml drifted from the in-code definition");
    }
}

#[test]
fn every_committed_scenario_file_parses_validates_and_names_a_known_kind() {
    // The converse of the test above: whatever sits in the committed
    // scenario directory — including files no built-in claims — must be
    // loadable by `dxbench run` (parse, validate, registered kind).
    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios/builtin");
    let kinds = dxbsp_bench::sweep::kinds();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display())) {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let sc = dxbsp_core::Scenario::from_toml(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        sc.validate().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            kinds.contains(&sc.kind.as_str()),
            "{}: unregistered kind {}",
            path.display(),
            sc.kind
        );
        seen += 1;
    }
    assert!(
        seen >= dxbsp_bench::scenarios::builtin_names().len(),
        "only {seen} scenario files found"
    );
}
