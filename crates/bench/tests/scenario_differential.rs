//! Differential tests: the scenario pipeline must reproduce the
//! numbers the pre-refactor per-experiment code produced.
//!
//! The CSVs under `tests/golden/` were written by the old monolithic
//! experiment functions (`repro --quick --seed 1995 --csv ...`) before
//! the declarative scenario layer existed. `exp1` and `fig1` must match
//! bit-for-bit including headers; `exp2`/`exp3` changed cosmetic header
//! names (and `exp3` gained a trailing `meas/bsp` column), so those
//! compare data values only.

use dxbsp_bench::{run_builtin, Scale, Table};

const SEED: u64 = 1995;

/// Render a table the way `repro --csv` writes it.
fn csv(t: &Table) -> String {
    let mut out = String::new();
    out.push_str(&t.headers.join(","));
    out.push('\n');
    for row in &t.rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[test]
fn exp1_matches_pre_refactor_golden_exactly() {
    let t = run_builtin("exp1", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/exp1.csv"));
}

#[test]
fn fig1_matches_pre_refactor_golden_exactly() {
    let t = run_builtin("fig1", Scale::Quick, SEED);
    assert_eq!(csv(&t), include_str!("golden/fig1.csv"));
}

#[test]
fn exp2_matches_pre_refactor_golden_data() {
    // Header renamed meas/pred → meas/dxbsp; the data is unchanged.
    let t = run_builtin("exp2", Scale::Quick, SEED);
    let golden: Vec<&str> = include_str!("golden/exp2.csv").lines().skip(1).collect();
    let got: Vec<String> = t.rows.iter().map(|r| r.join(",")).collect();
    assert_eq!(got, golden);
}

#[test]
fn exp3_matches_pre_refactor_golden_data() {
    // Header renamed iters → iter and a trailing meas/bsp column was
    // added; the first six columns carry the pre-refactor data.
    let t = run_builtin("exp3", Scale::Quick, SEED);
    let golden: Vec<&str> = include_str!("golden/exp3.csv").lines().skip(1).collect();
    let got: Vec<String> = t.rows.iter().map(|r| r[..6].join(",")).collect();
    assert_eq!(got, golden);
}

#[test]
fn every_builtin_is_committed_as_a_scenario_file() {
    // examples/scenarios/builtin/<name>.toml is the dump of each
    // built-in at Full scale — the committed, runnable form of every
    // experiment. Regenerate with
    // `for n in $(dxbench list); do dxbench dump $n > .../$n.toml; done`.
    let dir =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios/builtin");
    for name in dxbsp_bench::scenarios::builtin_names() {
        let path = dir.join(format!("{name}.toml"));
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let committed =
            dxbsp_core::Scenario::from_toml(&text).unwrap_or_else(|e| panic!("{name}.toml: {e}"));
        let in_code = dxbsp_bench::scenarios::builtin(name, Scale::Full, 1995).unwrap();
        assert_eq!(committed, in_code, "{name}.toml drifted from the in-code definition");
    }
}
