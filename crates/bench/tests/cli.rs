//! End-to-end tests of the `dxtrace` → `dxsim` tool pair: capture an
//! algorithm trace to a file, replay it on several machines, and check
//! the outputs tell the paper's story.

use std::process::Command;

fn dxtrace() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dxtrace"))
}

fn dxsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dxsim"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dxbsp-cli-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join(name)
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn");
    assert!(
        out.status.success(),
        "command failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn measured_cycles(stdout: &str) -> u64 {
    stdout
        .lines()
        .find(|l| l.starts_with("measured cycles:"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no measured cycles in output:\n{stdout}"))
}

#[test]
fn scatter_trace_round_trips_through_both_tools() {
    let path = tmp("scatter.dxtr");
    let out =
        run_ok(dxtrace().args(["scatter", "--n", "8192", "--contention", "2048", "-o"]).arg(&path));
    assert!(out.contains("max contention 2048"), "{out}");

    let sim_out = run_ok(dxsim().arg("--trace").arg(&path).arg("--per-step"));
    let measured = measured_cycles(&sim_out);
    // The d·k floor: 14 × 2048.
    assert!(measured >= 14 * 2048, "measured {measured}");
    assert!(sim_out.contains("(d,x)-BSP charge"), "{sim_out}");
    assert!(sim_out.contains("scatter"), "--per-step must list the superstep");
}

#[test]
fn bank_delay_flag_changes_the_replay() {
    let path = tmp("hot.dxtr");
    run_ok(dxtrace().args(["scatter", "--n", "4096", "--contention", "4096", "-o"]).arg(&path));
    let slow = measured_cycles(&run_ok(dxsim().arg("--trace").arg(&path).args(["--delay", "14"])));
    let fast = measured_cycles(&run_ok(dxsim().arg("--trace").arg(&path).args(["--delay", "2"])));
    assert_eq!(slow, 14 * 4096);
    assert_eq!(fast, 2 * 4096);
}

#[test]
fn cc_trace_replays_with_model_agreement() {
    let path = tmp("cc.dxtr");
    run_ok(dxtrace().args(["cc", "--n", "2048", "--graph", "star", "-o"]).arg(&path));
    let out = run_ok(dxsim().arg("--trace").arg(&path));
    // measured/charged printed on the (d,x)-BSP line must be near 1.
    let line = out.lines().find(|l| l.contains("(d,x)-BSP charge")).expect("charge line");
    let ratio: f64 = line
        .split("measured/charged = ")
        .nth(1)
        .and_then(|s| s.trim_end_matches(')').parse().ok())
        .expect("ratio");
    assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio} in {line}");
}

#[test]
fn bank_cache_flag_defuses_the_hot_spot() {
    let path = tmp("cached.dxtr");
    run_ok(dxtrace().args(["scatter", "--n", "4096", "--contention", "4096", "-o"]).arg(&path));
    let plain = measured_cycles(&run_ok(dxsim().arg("--trace").arg(&path)));
    let cached = measured_cycles(&run_ok(
        dxsim().arg("--trace").arg(&path).args(["--cache", "8", "--hit", "1"]),
    ));
    assert!(cached < plain / 8, "cached {cached} vs plain {plain}");
}

#[test]
fn tiered_delay_replay_is_byte_identical_across_threads() {
    let path = tmp("tiered.dxtr");
    run_ok(dxtrace().args(["scatter", "--n", "8192", "--contention", "1024", "-o"]).arg(&path));
    let tiers = ["--tiers", "0..128=6,128..256=14", "--per-step"];
    let one = run_ok(dxsim().arg("--trace").arg(&path).args(["--threads", "1"]).args(tiers));
    let four = run_ok(dxsim().arg("--trace").arg(&path).args(["--threads", "4"]).args(tiers));
    assert_eq!(one, four, "per-bank tables must not depend on the worker count");
    assert!(one.contains("delay:   per-bank(d=6 x128, d=14 x128)"), "{one}");
    // The summary machine charges every bank at the slowest tier, so the
    // tiered replay can only be at or under the uniform-d one.
    let uniform =
        measured_cycles(&run_ok(dxsim().arg("--trace").arg(&path).args(["--delay", "14"])));
    assert!(measured_cycles(&one) <= uniform, "tiered {one} vs uniform {uniform}");
}

#[test]
fn wrong_processor_count_is_a_clear_error() {
    let path = tmp("p8.dxtr");
    run_ok(dxtrace().args(["scatter", "--n", "1024", "-o"]).arg(&path));
    let out = dxsim().arg("--trace").arg(&path).args(["--procs", "4"]).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pass --procs 8"), "{stderr}");
}

#[test]
fn missing_trace_file_is_a_clear_error() {
    let out = dxsim().args(["--trace", "/nonexistent/file.dxtr"]).output().expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn malformed_trace_file_is_a_diagnostic_not_a_panic() {
    let path = tmp("garbage.dxtr");
    std::fs::write(&path, b"this is not a trace file at all").expect("write");
    let out = dxsim().arg("--trace").arg(&path).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad magic"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn truncated_trace_file_is_a_diagnostic_not_a_panic() {
    let path = tmp("whole.dxtr");
    run_ok(dxtrace().args(["scatter", "--n", "256", "-o"]).arg(&path));
    let bytes = std::fs::read(&path).expect("read");
    let cut = tmp("truncated.dxtr");
    std::fs::write(&cut, &bytes[..bytes.len() / 2]).expect("write");
    let out = dxsim().arg("--trace").arg(&cut).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("truncated"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn degenerate_machine_flags_are_rejected_up_front() {
    let path = tmp("flags.dxtr");
    run_ok(dxtrace().args(["scatter", "--n", "256", "-o"]).arg(&path));
    for bad in [
        vec!["--procs", "0"],
        vec!["--delay", "0"],
        vec!["--gap", "0"],
        vec!["--expansion", "0"],
        vec!["--window", "0"],
        vec!["--sections", "7", "--ports", "1"], // 7 does not divide 256 banks
        vec!["--sections", "8", "--ports", "0"],
        vec!["--cache", "0"],
        vec!["--cache", "8", "--hit", "99"], // hit > delay 14
        vec!["--map", "banana"],
        vec!["--delay", "notanumber"],
        vec!["--delay", "6", "--tiers", "0..256=6"], // give one or the other
        vec!["--tiers", "0..10=6"],                  // does not cover the 256 banks
        vec!["--tiers", "0..128=6,200..256=14"],     // gap: must tile contiguously
        vec!["--tiers", "0..256=0"],                 // zero-delay tier
        vec!["--tiers", "0..256"],                   // missing =D
    ] {
        let out = dxsim().arg("--trace").arg(&path).args(&bad).output().expect("spawn");
        assert!(!out.status.success(), "{bad:?} was accepted");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.starts_with("dxsim:"), "{bad:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{bad:?}: {stderr}");
    }
}

#[test]
fn dxtrace_rejects_degenerate_sizes() {
    for bad in [
        vec!["scatter", "--procs", "0"],
        vec!["scatter", "--n", "0"],
        vec!["scatter", "--contention", "0"],
        vec!["binsearch", "--tree", "0"],
        vec!["scatter", "--n", "many"],
    ] {
        let out = dxtrace().args(&bad).output().expect("spawn");
        assert!(!out.status.success(), "{bad:?} was accepted");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.starts_with("dxtrace:"), "{bad:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{bad:?}: {stderr}");
    }
}

#[test]
fn dxtrace_without_output_prints_summary() {
    let out = run_ok(dxtrace().args(["randperm", "--n", "512"]));
    assert!(out.contains("supersteps:"), "{out}");
    assert!(out.contains("requests:"), "{out}");
}

#[test]
fn thread_count_does_not_change_the_output() {
    // The replay fans supersteps across worker threads; the output
    // tables must be byte-identical regardless of the worker count.
    let path = tmp("threads.dxtr");
    run_ok(dxtrace().args(["randperm", "--n", "4096", "-o"]).arg(&path));
    let outputs: Vec<String> = ["1", "4"]
        .iter()
        .map(|t| {
            run_ok(dxsim().arg("--trace").arg(&path).args([
                "--window",
                "8",
                "--latency",
                "5",
                "--per-step",
                "--threads",
                t,
            ]))
        })
        .collect();
    assert_eq!(outputs[0], outputs[1], "--threads 1 and --threads 4 disagree");
    assert!(outputs[0].contains("measured cycles:"), "{}", outputs[0]);
}

#[test]
fn zero_threads_is_rejected() {
    let path = tmp("threads0.dxtr");
    run_ok(dxtrace().args(["scatter", "--n", "256", "-o"]).arg(&path));
    let out = dxsim().arg("--trace").arg(&path).args(["--threads", "0"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"), "wrong diagnostic");
}

#[test]
fn multi_megabyte_replay_is_bounded_memory() {
    use dxbsp_core::AccessPattern;
    use dxbsp_machine::{TraceFileWriter, TraceStep};

    // Stream a trace to disk that is far bigger than anything dxsim
    // should hold at once: 200 supersteps x 4096 requests ≈ 10 MB.
    let path = tmp("big.dxtr");
    let mut writer = TraceFileWriter::create(&path).expect("create");
    let keys: Vec<u64> = (0..4096u64).map(|i| i * 7).collect();
    let step = TraceStep::new(AccessPattern::scatter(8, &keys)).labeled("bulk");
    for _ in 0..200 {
        writer.write_step(&step).expect("write step");
    }
    writer.finish().expect("finish");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    assert!(bytes > 8 * 1024 * 1024, "trace only {bytes} bytes");

    // The replay's own watermark proves the streaming path: the peak
    // number of supersteps resident in memory stays at the bounded
    // chunk size, well below the 200 steps replayed.
    let out = run_ok(dxsim().arg("--trace").arg(&path));
    let line = out
        .lines()
        .find(|l| l.starts_with("peak resident supersteps:"))
        .unwrap_or_else(|| panic!("no watermark line in:\n{out}"));
    let mut words = line.split_whitespace();
    let peak: usize = words.nth(3).and_then(|w| w.parse().ok()).expect("peak");
    let total: usize =
        words.nth(1).and_then(|w| w.trim_end_matches(')').parse().ok()).expect("total");
    assert_eq!(total, 200, "{line}");
    assert!(peak < total, "replay held every superstep at once: {line}");
}

#[test]
fn presets_select_paper_machines() {
    let path = tmp("preset.dxtr");
    run_ok(
        dxtrace()
            .args(["scatter", "--n", "4096", "--contention", "4096", "--procs", "16", "-o"])
            .arg(&path),
    );
    let out = run_ok(dxsim().arg("--trace").arg(&path).args(["--preset", "c90"]));
    assert!(out.contains("p=16 g=1 L=0 d=6 x=64"), "{out}");
    assert_eq!(measured_cycles(&out), 6 * 4096);
}

mod telemetry_cli {
    use super::{dxsim, dxtrace, run_ok, tmp};
    use dxbsp_core::SpecValue;
    use dxbsp_telemetry::{chrome, prometheus};
    use std::process::Command;

    fn dxprof() -> Command {
        Command::new(env!("CARGO_BIN_EXE_dxprof"))
    }

    fn dxbench() -> Command {
        Command::new(env!("CARGO_BIN_EXE_dxbench"))
    }

    #[test]
    fn dxprof_scenario_exports_round_trip_through_the_validators() {
        let chrome_path = tmp("prof.chrome.json");
        let prom_path = tmp("prof.prom");
        let summary_path = tmp("prof.summary.json");
        let out = run_ok(
            dxprof()
                .args(["--scenario", "exp1", "--quick", "--chrome"])
                .arg(&chrome_path)
                .arg("--prom")
                .arg(&prom_path)
                .arg("--summary")
                .arg(&summary_path),
        );
        assert!(out.contains("profiled: scenario exp1"), "{out}");
        assert!(out.contains("hottest bank:"), "{out}");

        let trace = std::fs::read_to_string(&chrome_path).expect("chrome trace");
        let events = chrome::validate(&trace).expect("valid trace_event JSON");
        assert!(events > 0, "empty chrome trace");

        let prom = std::fs::read_to_string(&prom_path).expect("prometheus text");
        let series = prometheus::lint(&prom).expect("lintable exposition");
        assert!(series > 0, "no prometheus series");

        let summary = std::fs::read_to_string(&summary_path).expect("summary");
        let v = SpecValue::from_json(summary.trim()).expect("summary parses");
        let attributed =
            v.get("attributed_cycles").and_then(SpecValue::as_int).expect("attributed_cycles");
        assert!(attributed > 0, "no cycles attributed");
    }

    #[test]
    fn dxprof_surfaces_the_delay_model_on_mixed_tier_scenarios() {
        let summary_path = tmp("prof.mixed.summary.json");
        let out = run_ok(
            dxprof().args(["--scenario", "exp1_mixed", "--quick", "--summary"]).arg(&summary_path),
        );
        assert!(out.contains("delay model: per-bank(d=6 x128, d=14 x128)"), "{out}");

        let summary = std::fs::read_to_string(&summary_path).expect("summary");
        let v = SpecValue::from_json(summary.trim()).expect("summary parses");
        let model = v.get("delay_model").and_then(SpecValue::as_str).expect("delay_model key");
        assert_eq!(model, "per-bank(d=6 x128, d=14 x128)");
        let tiers = v.get("tier_busy_cycles").expect("tier_busy_cycles table");
        assert!(tiers.get("d6").is_some() && tiers.get("d14").is_some(), "{summary}");
    }

    #[test]
    fn dxprof_profiles_a_trace_file() {
        let path = tmp("prof.dxtr");
        run_ok(dxtrace().args(["scatter", "--n", "2048", "--contention", "512", "-o"]).arg(&path));
        let out = run_ok(dxprof().arg("--trace").arg(&path).args(["--preset", "j90"]));
        assert!(out.contains("bound by:"), "{out}");
        assert!(out.contains("bank"), "{out}");
    }

    #[test]
    fn dxprof_requires_exactly_one_input() {
        for args in [vec![], vec!["--scenario", "exp1", "--trace", "x.dxtr"]] {
            let out = dxprof().args(&args).output().expect("spawn");
            assert!(!out.status.success(), "{args:?} was accepted");
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(stderr.contains("--scenario") || stderr.contains("usage"), "{stderr}");
        }
    }

    #[test]
    fn dxsim_profile_leaves_the_replay_untouched_across_threads() {
        // The --profile flag reruns the trace sequentially with probes
        // on; the replay's own output — including under a parallel
        // fan-out — must be byte-identical to each other and to an
        // unprofiled run, and the emitted profile must be valid.
        let path = tmp("profthreads.dxtr");
        run_ok(dxtrace().args(["randperm", "--n", "4096", "-o"]).arg(&path));
        let plain = run_ok(dxsim().arg("--trace").arg(&path).args(["--per-step"]));
        let heads: Vec<String> = ["1", "4"]
            .iter()
            .map(|t| {
                let profile = tmp(&format!("profthreads.{t}.json"));
                let out = run_ok(
                    dxsim()
                        .arg("--trace")
                        .arg(&path)
                        .args(["--per-step", "--threads", t, "--profile"])
                        .arg(&profile),
                );
                let trace = std::fs::read_to_string(&profile).expect("profile written");
                chrome::validate(&trace).expect("valid trace_event JSON");
                // Everything before the trailing `profile:` line (its
                // path embeds the thread count, so it is stripped
                // before comparing).
                out.split("\nprofile:").next().expect("head").to_string() + "\n"
            })
            .collect();
        assert_eq!(heads[0], heads[1], "--threads 1 and --threads 4 disagree");
        assert_eq!(plain, heads[0].trim_end_matches('\n').to_string() + "\n");
    }

    #[test]
    fn dxbench_check_hybrid_holds_the_declared_bound() {
        let json_path = tmp("hybrid.check.jsonl");
        let out = run_ok(
            dxbench()
                .args(["run", "exp4_hybrid", "--quick", "--check-hybrid", "--json"])
                .arg(&json_path),
        );
        assert!(out.contains("check-hybrid:"), "{out}");
        assert!(out.contains("within declared bound"), "{out}");

        let text = std::fs::read_to_string(&json_path).expect("check records");
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty(), "no records written");
        for line in lines {
            let v = SpecValue::from_json(line).expect("record parses");
            let values = v.get("values").expect("values object");
            let err = values.get("err").and_then(SpecValue::as_float).expect("err column");
            assert!(err <= 0.05, "realized error {err} exceeds the declared bound: {line}");
            assert!(values.get("full_measured").is_some(), "{line}");
        }
    }

    #[test]
    fn dxbench_check_hybrid_rejects_non_hybrid_scenarios() {
        let out =
            dxbench().args(["run", "exp1", "--quick", "--check-hybrid"]).output().expect("spawn");
        assert!(!out.status.success(), "exp1 has no hybrid bound but was accepted");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("hybrid_error_bound"), "{stderr}");
    }

    #[test]
    fn dxbench_list_marks_golden_pinned_scenarios() {
        let out = run_ok(dxbench().arg("list"));
        for line in out.lines() {
            let mut cols = line.split_whitespace();
            let (name, marker) = (cols.next().expect("name"), cols.next().expect("marker"));
            let expect = if [
                "exp1",
                "exp2",
                "exp3",
                "fig1",
                "exp1_mixed",
                "exp2_mixed",
                "exp3_mixed",
                "exp4_mixed",
                "sort_oversample",
                "sort_radix_vs_sample",
                "pstream_scan",
                "pstream_stencil",
            ]
            .contains(&name)
            {
                "golden"
            } else {
                "-"
            };
            assert_eq!(marker, expect, "{line}");
        }
    }

    #[test]
    fn dxbench_engine_choice_never_changes_the_table() {
        // The bank-epoch engine is bit-identical to the event-level
        // oracle, so the rendered table of a golden scenario — every
        // measured cycle count — must match byte for byte across
        // `--engine epoch` and `--engine event`. The JSON records (not
        // compared here) carry which engine ran.
        let epoch = run_ok(dxbench().args(["run", "exp1", "--quick", "--engine", "epoch"]));
        let event = run_ok(dxbench().args(["run", "exp1", "--quick", "--engine", "event"]));
        assert_eq!(epoch, event, "engines disagree on the measured table");
        let default = run_ok(dxbench().args(["run", "exp1", "--quick"]));
        assert_eq!(default, epoch, "default engine differs from --engine epoch");

        // The engine used rides along in the JSON records.
        let json_path = tmp("engine.records.jsonl");
        run_ok(
            dxbench()
                .args(["run", "exp1", "--quick", "--engine", "event", "--json"])
                .arg(&json_path),
        );
        let text = std::fs::read_to_string(&json_path).expect("records");
        for line in text.lines() {
            let v = SpecValue::from_json(line).expect("record parses");
            let values = v.get("values").expect("values object");
            assert_eq!(values.get("engine").and_then(SpecValue::as_str), Some("event"), "{line}");
        }
    }

    #[test]
    fn dxbench_records_carry_the_delay_model_on_mixed_tier_runs() {
        // Non-uniform points stamp their delay model and the tiered
        // prediction into the JSON records; uniform runs never do.
        let json_path = tmp("mixed.records.jsonl");
        run_ok(dxbench().args(["run", "exp1_mixed", "--quick", "--json"]).arg(&json_path));
        let text = std::fs::read_to_string(&json_path).expect("records");
        assert!(!text.is_empty(), "no records written");
        for line in text.lines() {
            let v = SpecValue::from_json(line).expect("record parses");
            let values = v.get("values").expect("values object");
            assert_eq!(
                values.get("delay_model").and_then(SpecValue::as_str),
                Some("per-bank(d=6 x128, d=14 x128)"),
                "{line}"
            );
            assert!(values.get("pred_tiered").and_then(SpecValue::as_int).is_some(), "{line}");
        }

        let uniform_path = tmp("uniform.records.jsonl");
        run_ok(dxbench().args(["run", "exp1", "--quick", "--json"]).arg(&uniform_path));
        let text = std::fs::read_to_string(&uniform_path).expect("records");
        for line in text.lines() {
            let v = SpecValue::from_json(line).expect("record parses");
            assert!(v.get("values").expect("values").get("delay_model").is_none(), "{line}");
        }
    }

    #[test]
    fn dxbench_json_surfaces_the_streaming_watermark() {
        // The pseudo-streaming scenarios stamp the session's
        // peak-resident watermark into every RunRecord: it must stay
        // at the declared chunk budget — flat across the n sweep —
        // proving the trace never materializes.
        let json_path = tmp("pstream.records.jsonl");
        run_ok(dxbench().args(["run", "pstream_scan", "--quick", "--json"]).arg(&json_path));
        let text = std::fs::read_to_string(&json_path).expect("records");
        let mut peaks = Vec::new();
        for line in text.lines() {
            let v = SpecValue::from_json(line).expect("record parses");
            let values = v.get("values").expect("values object");
            let peak =
                values.get("peak_resident").and_then(SpecValue::as_int).expect("peak_resident");
            let budget = values.get("budget").and_then(SpecValue::as_int).expect("budget");
            assert!(peak <= budget, "watermark {peak} over budget {budget}: {line}");
            peaks.push(peak);
        }
        assert!(peaks.len() >= 2, "need a sweep to prove flatness");
        assert!(peaks.windows(2).all(|w| w[0] == w[1]), "watermark grew with n: {peaks:?}");

        // The sorting scenarios carry the watermark too.
        let json_path = tmp("oversample.records.jsonl");
        run_ok(dxbench().args(["run", "sort_oversample", "--quick", "--json"]).arg(&json_path));
        let text = std::fs::read_to_string(&json_path).expect("records");
        for line in text.lines() {
            let v = SpecValue::from_json(line).expect("record parses");
            let values = v.get("values").expect("values object");
            assert!(values.get("peak_resident").and_then(SpecValue::as_int).is_some(), "{line}");
        }
    }

    #[test]
    fn dxbench_telemetry_rides_along_without_changing_the_table() {
        let tele_path = tmp("bench.tele.jsonl");
        let plain = run_ok(dxbench().args(["run", "exp1", "--quick"]));
        let probed =
            run_ok(dxbench().args(["run", "exp1", "--quick", "--telemetry"]).arg(&tele_path));
        assert_eq!(plain, probed, "telemetry changed the measured table");

        let tele = std::fs::read_to_string(&tele_path).expect("telemetry jsonl");
        let lines: Vec<&str> = tele.lines().collect();
        assert!(!lines.is_empty(), "no telemetry records");
        for line in lines {
            let v = SpecValue::from_json(line).expect("telemetry line parses");
            assert_eq!(v.get("scenario").and_then(SpecValue::as_str), Some("exp1"));
            let t = v.get("telemetry").expect("telemetry object");
            let attributed =
                t.get("attributed_cycles").and_then(SpecValue::as_int).expect("attributed");
            assert!(attributed > 0, "{line}");
        }
    }
}

mod repro_csv {
    use super::{run_ok, tmp};
    use std::process::Command;

    fn repro() -> Command {
        Command::new(env!("CARGO_BIN_EXE_repro"))
    }

    #[test]
    fn csv_export_writes_well_formed_tables() {
        let dir = tmp("csv-out");
        std::fs::create_dir_all(&dir).unwrap();
        run_ok(repro().args(["--quick", "--csv"]).arg(&dir).args(["exp1", "table1", "exp11"]));
        for (name, expect_header) in [
            ("exp1", "k,measured,dxbsp-pred,bsp-pred"),
            ("table1", "machine,procs,banks"),
            ("exp11", "x,ratio d=4"),
        ] {
            let path = dir.join(format!("{name}.csv"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing {}: {e}", path.display()));
            let mut lines = text.lines();
            let header = lines.next().expect("header");
            assert!(header.starts_with(expect_header), "{name}: {header}");
            let cols = header.split(',').count();
            let mut rows = 0;
            for line in lines {
                assert_eq!(line.split(',').count(), cols, "{name}: ragged row {line}");
                rows += 1;
            }
            assert!(rows >= 2, "{name}: only {rows} rows");
        }
    }

    #[test]
    fn repro_list_names_every_experiment() {
        let out = run_ok(repro().arg("--list"));
        for id in ["table1", "fig1", "exp1", "exp9", "exp11", "exp19", "ablation_cache"] {
            assert!(out.lines().any(|l| l.starts_with(id)), "missing {id} in --list");
        }
    }

    #[test]
    fn unknown_experiment_fails_cleanly() {
        let out = repro().args(["--quick", "no_such_experiment"]).output().expect("spawn");
        assert!(!out.status.success());
        assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
    }
}

/// End-to-end tests of the service front-end: `dxserved` must answer
/// the HTTP contract, stream bytes identical to `dxbench run --json`,
/// and absorb a `dxbench storm` without losing a record.
mod serve {
    use super::{run_ok, tmp};
    use dxbsp_bench::http;
    use dxbsp_telemetry::prometheus;
    use std::io::{BufRead, BufReader};
    use std::process::{Child, Command, Stdio};

    fn dxbench() -> Command {
        Command::new(env!("CARGO_BIN_EXE_dxbench"))
    }

    /// A running dxserved on an ephemeral port, killed on drop.
    struct Server {
        child: Child,
        addr: String,
    }

    impl Server {
        fn start(extra: &[&str]) -> Server {
            let mut child = Command::new(env!("CARGO_BIN_EXE_dxserved"))
                .args(["--addr", "127.0.0.1:0"])
                .args(extra)
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn dxserved");
            let stdout = child.stdout.take().expect("stdout piped");
            let mut line = String::new();
            BufReader::new(stdout).read_line(&mut line).expect("banner");
            let addr = line
                .trim()
                .strip_prefix("dxserved: listening on ")
                .unwrap_or_else(|| panic!("unexpected banner: {line}"))
                .to_string();
            Server { child, addr }
        }
    }

    impl Drop for Server {
        fn drop(&mut self) {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }

    #[test]
    fn dxserved_streams_bytes_identical_to_dxbench_run() {
        let server = Server::start(&[]);

        let health = http::get(&server.addr, "/healthz").expect("healthz");
        assert_eq!((health.status, health.text().as_str()), (200, "ok\n"));

        // The same spec through both front-ends: the committed TOML via
        // `dxbench run --json`, and its bytes POSTed to the server.
        let spec = run_ok(dxbench().args(["dump", "exp1", "--quick"]));
        let spec_path = tmp("serve-exp1.toml");
        std::fs::write(&spec_path, &spec).expect("write spec");
        let json_path = tmp("serve-exp1.jsonl");
        run_ok(dxbench().arg("run").arg(&spec_path).arg("--json").arg(&json_path));
        let cli_bytes = std::fs::read_to_string(&json_path).expect("cli records");

        let resp = http::post(&server.addr, "/run", spec.as_bytes()).expect("POST /run");
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert_eq!(resp.text(), cli_bytes, "served records differ from dxbench run --json");

        // The JSON spelling of the same scenario hits the same cache
        // entry (canonical content hash) and returns the same bytes.
        let sc = dxbsp_core::Scenario::from_toml(&spec).expect("spec parses");
        let resp2 = http::post(&server.addr, "/run", sc.to_json().as_bytes()).expect("POST json");
        assert_eq!(resp2.status, 200);
        assert_eq!(resp2.text(), cli_bytes, "JSON spelling diverged");

        // Live metrics lint clean and show the run was cached once.
        let metrics = http::get(&server.addr, "/metrics").expect("metrics").text();
        let series = prometheus::lint(&metrics).expect("lintable exposition");
        assert!(series > 0, "no series in {metrics}");
        assert!(metrics.contains("dxbsp_service_cache_hits_total 1"), "{metrics}");

        // Garbage specs are a clean 400, unknown paths a 404.
        let bad = http::post(&server.addr, "/run", b"not a scenario").expect("POST garbage");
        assert_eq!(bad.status, 400);
        assert!(bad.text().contains("\"retryable\""), "{}", bad.text());
        assert!(bad.text().contains("false"), "{}", bad.text());
        let missing = http::get(&server.addr, "/nope").expect("GET /nope");
        assert_eq!(missing.status, 404);
    }

    #[test]
    fn keep_alive_serves_many_requests_and_pipelines_on_one_connection() {
        let server = Server::start(&[]);

        // The reference bytes: the same spec through `dxbench run`.
        let spec = run_ok(dxbench().args(["dump", "exp1", "--quick"]));
        let spec_path = tmp("ka-exp1.toml");
        std::fs::write(&spec_path, &spec).expect("write spec");
        let json_path = tmp("ka-exp1.jsonl");
        run_ok(dxbench().arg("run").arg(&spec_path).arg("--json").arg(&json_path));
        let cli_bytes = std::fs::read_to_string(&json_path).expect("cli records");

        let mut conn = http::ClientConn::connect(&server.addr).expect("connect");
        // Several sequential requests over the one socket, each
        // byte-identical to the CLI output.
        for _ in 0..3 {
            let resp = conn.call("POST", "/run", spec.as_bytes()).expect("keep-alive POST");
            assert_eq!(resp.status, 200);
            assert_eq!(resp.text(), cli_bytes, "keep-alive body differs from dxbench run --json");
        }
        // Mixed endpoints on the same connection.
        let health = conn.call("GET", "/healthz", &[]).expect("healthz");
        assert_eq!((health.status, health.text().as_str()), (200, "ok\n"));
        let metrics = conn.call("GET", "/metrics", &[]).expect("metrics");
        assert_eq!(metrics.status, 200);
        prometheus::lint(&metrics.text()).expect("lintable exposition");
        // Errors are framed too, so the connection survives a 400.
        let bad = conn.call("POST", "/run", b"not a scenario").expect("bad spec");
        assert_eq!(bad.status, 400);
        let after = conn.call("POST", "/run", spec.as_bytes()).expect("POST after 400");
        assert_eq!(after.status, 200);
        assert_eq!(after.text(), cli_bytes);

        // Pipelining: queue two runs before reading either response;
        // both come back in order, bytes intact.
        conn.send("POST", "/run", spec.as_bytes()).expect("pipeline send 1");
        conn.send("POST", "/run", spec.as_bytes()).expect("pipeline send 2");
        assert_eq!(conn.read_response().expect("pipelined 1").text(), cli_bytes);
        assert_eq!(conn.read_response().expect("pipelined 2").text(), cli_bytes);
    }

    #[test]
    fn storm_keep_alive_variant_verifies_every_byte() {
        let server = Server::start(&[]);
        let out = run_ok(dxbench().args([
            "storm",
            "exp1",
            "--quick",
            "--addr",
            &server.addr,
            "--clients",
            "8",
            "--requests",
            "200",
            "--variants",
            "2",
            "--keep-alive",
        ]));
        assert!(out.contains("storm: 200 requests"), "{out}");
        assert!(out.contains("identical to dxbench run"), "{out}");
        assert!(out.contains("lint clean"), "{out}");
    }

    #[test]
    fn storm_drives_a_thousand_requests_without_losing_a_record() {
        let server = Server::start(&[]);
        let out = run_ok(dxbench().args([
            "storm",
            "exp1",
            "--quick",
            "--addr",
            &server.addr,
            "--clients",
            "16",
            "--requests",
            "1000",
            "--variants",
            "2",
        ]));
        assert!(out.contains("storm: 1000 requests"), "{out}");
        assert!(out.contains("identical to dxbench run"), "{out}");
        // Repeated sweeps must hit: 2 variants, 1000 requests → at
        // most 2 misses, so the hit-rate is far above zero.
        assert!(!out.contains(" 0 hits"), "{out}");
        assert!(out.contains("lint clean"), "{out}");
    }

    #[test]
    fn overload_is_a_structured_shed_not_a_panic() {
        // A server sized to shed almost immediately: one active slot,
        // no queue. Storm's retry loop must still land every request.
        let server = Server::start(&["--max-active", "1", "--queue-depth", "0"]);
        let out = run_ok(dxbench().args([
            "storm",
            "exp1",
            "--quick",
            "--addr",
            &server.addr,
            "--clients",
            "8",
            "--requests",
            "64",
        ]));
        assert!(out.contains("storm: 64 requests"), "{out}");
        assert!(out.contains("identical to dxbench run"), "{out}");
    }
}
