//! Differential tests of the execution service: a cache hit must be
//! indistinguishable from a fresh run, and the pooled sessions the
//! service draws on must never leak state between checkouts.

use dxbsp_bench::{records_to_jsonl, run_scenario, scenarios, ExecService, Scale, ServiceConfig};

fn service() -> ExecService {
    // Tests use private instances so hits/misses are attributable and
    // independent of whatever other tests pushed through the global.
    ExecService::new(ServiceConfig::default())
}

/// For every builtin scenario: a fresh `run_scenario` call, a service
/// miss, and a service hit must all produce byte-identical records and
/// tables. The only exception is the host-timed `hash-cost` kind
/// (table 3 measures wall-clock per element, so no two executions
/// agree); there the cache-hit identity is still asserted.
#[test]
fn cached_output_is_bit_identical_to_a_fresh_run_for_every_builtin() {
    let svc = service();
    for name in scenarios::builtin_names() {
        let sc = scenarios::builtin(name, Scale::Quick, 1995).unwrap();
        let deterministic = sc.kind != "hash-cost";
        let fresh = run_scenario(&sc).unwrap_or_else(|e| panic!("{name}: {e}"));
        let miss = svc.run(&sc).unwrap_or_else(|e| panic!("{name}: {e}"));
        let hit = svc.run(&sc).unwrap_or_else(|e| panic!("{name}: {e}"));
        if deterministic {
            assert_eq!(fresh.records, miss.records, "{name}: miss diverged from fresh run");
            assert_eq!(fresh.table.render(), miss.table.render(), "{name}: table diverged");
        }
        assert_eq!(
            records_to_jsonl(name, &miss.records),
            records_to_jsonl(name, &hit.records),
            "{name}: cache hit not byte-identical"
        );
        assert!(std::sync::Arc::ptr_eq(&miss, &hit), "{name}: second run was not a hit");
    }
    let stats = svc.stats();
    let n = scenarios::builtin_names().len() as u64;
    assert_eq!(stats.misses, n, "one miss per builtin");
    assert_eq!(stats.hits, n, "one hit per builtin");
}

/// SessionPool checkout under `--threads 1` and `--threads N` must be
/// byte-identical: worker count changes scheduling only, never
/// results. Separate service instances bypass the cache, so both runs
/// execute for real through the shared global pool.
#[test]
fn thread_count_never_changes_service_output() {
    let mut sc = scenarios::builtin("exp1", Scale::Quick, 7).unwrap();
    sc.threads = 1;
    let one = service().run(&sc).unwrap();
    sc.threads = 4;
    let four = service().run(&sc).unwrap();
    assert_eq!(
        records_to_jsonl(&sc.name, &one.records),
        records_to_jsonl(&sc.name, &four.records),
        "--threads 1 and --threads 4 disagree"
    );
    assert_eq!(one.table.render(), four.table.render());
}

/// The seed is part of the content hash: same grid, different seed,
/// different cache entry — and genuinely different records.
#[test]
fn seeds_split_cache_entries() {
    let svc = service();
    let a = scenarios::builtin("exp1", Scale::Quick, 1).unwrap();
    let b = scenarios::builtin("exp1", Scale::Quick, 2).unwrap();
    let out_a = svc.run(&a).unwrap();
    let out_b = svc.run(&b).unwrap();
    assert_eq!(svc.stats().misses, 2, "both seeds must execute");
    assert!(!std::sync::Arc::ptr_eq(&out_a, &out_b));
}

/// Presentational respellings of the same spec — the canonicalization
/// satellite, end to end: a TOML round-trip with decorated title and
/// thread count hits the cache entry of the original run.
#[test]
fn respelled_specs_hit_the_same_cache_entry() {
    let svc = service();
    let sc = scenarios::builtin("exp1", Scale::Quick, 1995).unwrap();
    let first = svc.run(&sc).unwrap();
    let mut respelled = dxbsp_core::Scenario::from_toml(&sc.to_toml()).unwrap();
    respelled.title = "a different presentation".to_string();
    respelled.threads = 3;
    let second = svc.run(&respelled).unwrap();
    assert!(std::sync::Arc::ptr_eq(&first, &second), "respelled spec missed the cache");
    assert_eq!(svc.stats().hits, 1);
}
