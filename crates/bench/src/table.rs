//! Fixed-width table rendering for experiment output.
//!
//! Tables are presentation only: experiments produce typed rows
//! ([`crate::record::Cell`]) that become both [`Table`]s (via
//! [`Table::from_cells`]) and [`crate::record::RunRecord`]s, so the
//! rendered text and the JSON-lines output always agree.

use std::fmt::Write as _;

use crate::record::Cell;

/// A printable experiment result: a title, column headers, data rows,
/// and free-form notes (the "how to read this" the paper's captions
/// carry).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    /// Experiment title (e.g. "Experiment 1: scatter vs. contention").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified by the experiment).
    pub rows: Vec<Vec<String>>,
    /// Caption/notes lines printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Build a table from typed rows: integers render exactly, floats
    /// via [`fmt_f`], strings verbatim — the one formatting convention
    /// every experiment shares.
    ///
    /// # Panics
    ///
    /// Panics if any row's width differs from the header count.
    #[must_use]
    pub fn from_cells(title: impl Into<String>, headers: &[&str], rows: &[Vec<Cell>]) -> Self {
        let mut t = Table::new(title, headers);
        for row in rows {
            t.push_row(row.iter().map(Cell::display).collect());
        }
        t
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a caption/note line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Parses column `col` of every row as `f64` (for assertions in
    /// tests and for the EXPERIMENTS.md shape checks).
    #[must_use]
    pub fn column_f64(&self, col: usize) -> Vec<f64> {
        self.rows.iter().map(|r| r[col].trim().parse::<f64>().unwrap_or(f64::NAN)).collect()
    }
}

/// Formats a float with three significant decimals (table cells).
#[must_use]
pub fn fmt_f(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["k", "cycles"]);
        t.push_row(vec!["1".into(), "8192".into()]);
        t.push_row(vec!["1024".into(), "14336".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("   k  cycles"));
        assert!(s.contains("1024   14336"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn column_parse_roundtrips() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push_row(vec!["1".into(), "2.5".into()]);
        t.push_row(vec!["2".into(), "7".into()]);
        assert_eq!(t.column_f64(1), vec![2.5, 7.0]);
    }

    #[test]
    fn non_numeric_cells_become_nan() {
        let mut t = Table::new("demo", &["x"]);
        t.push_row(vec!["hello".into()]);
        assert!(t.column_f64(0)[0].is_nan());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }
}
