//! The generic scenario driver.
//!
//! [`run_scenario`] is the single entry point from a declarative
//! [`Scenario`] to structured results: it validates the scenario,
//! dispatches on the scenario's `kind` to an executor, and returns the
//! unified output — [`RunRecord`]s carrying measurement and prediction
//! side by side, plus the rendered-table projection. Executors expand
//! the sweep axes with [`Sweep::matrix`](dxbsp_core::Sweep::matrix) and
//! run points on per-worker sessions via
//! [`parallel_map_with`](crate::runner::parallel_map_with), so results
//! are byte-identical at any thread count.

use dxbsp_core::{DxError, MachineParams, MachineSpec, Scenario, SweepPoint};

use crate::experiments;
use crate::record::RunRecord;
use crate::table::Table;

/// The structured result of executing a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutput {
    /// One record per executed run (measurement + predictions).
    pub records: Vec<RunRecord>,
    /// The table projection of the records.
    pub table: Table,
}

impl ScenarioOutput {
    /// Assemble the unified output from one set of typed rows: the
    /// first `point_cols` columns are sweep coordinates, the rest
    /// results. The table projection gets the scenario's title and
    /// notes.
    #[must_use]
    pub(crate) fn build(
        sc: &Scenario,
        headers: &[&str],
        rows: &[Vec<crate::record::Cell>],
        point_cols: usize,
    ) -> Self {
        let records =
            rows.iter().map(|row| RunRecord::from_row(headers, row, point_cols)).collect();
        let mut table =
            Table::from_cells(crate::experiments::scatter::scenario_title(sc), headers, rows);
        for note in &sc.notes {
            table.note(note.clone());
        }
        ScenarioOutput { records, table }
    }
}

/// An executor for one scenario kind.
pub type Executor = fn(&Scenario) -> Result<ScenarioOutput, DxError>;

/// The kind registry: every scenario `kind` the driver can execute.
pub const KINDS: &[(&str, Executor)] = &[
    ("scatter-sweep", experiments::scatter::run_scatter_sweep),
    ("hybrid-sweep", experiments::hybrid::run_hybrid_sweep),
    ("injection-order", experiments::scatter::run_injection_order),
    ("cc-trace", experiments::fig1::run_cc_trace),
    ("inventory", experiments::tables::run_inventory),
    ("calibration", experiments::tables::run_calibration),
    ("hash-cost", experiments::tables::run_hash_cost),
    ("modmap", experiments::modmap::run_modmap),
    ("mapping-compare", experiments::modmap::run_mapping_compare),
    ("slackness", experiments::modmap::run_slackness),
    ("network-sections", experiments::network::run_network_sections),
    ("window-ablation", experiments::ablation::run_window),
    ("bank-cache", experiments::ablation::run_bank_cache),
    ("strip-mining", experiments::ablation::run_strip_mining),
    ("emulation", experiments::emulation::run_emulation),
    ("emulation-contention", experiments::emulation::run_emulation_contention),
    ("binary-search", experiments::algo_bench::run_binary_search),
    ("random-perm", experiments::algo_bench::run_random_perm),
    ("spmv", experiments::algo_bench::run_spmv),
    ("connected", experiments::algo_bench::run_connected),
    ("list-ranking", experiments::extensions::run_list_ranking),
    ("cc-variants", experiments::extensions::run_cc_variants),
    ("merge", experiments::extensions::run_merge),
    ("logp", experiments::extensions::run_logp),
    ("hash-congestion", experiments::extensions::run_hash_congestion),
    ("remedies", experiments::extensions::run_remedies),
    ("sorts", experiments::extensions::run_sorts),
];

/// The registered scenario kinds, in registry order.
#[must_use]
pub fn kinds() -> Vec<&'static str> {
    KINDS.iter().map(|(name, _)| *name).collect()
}

/// Validate and execute a scenario.
///
/// # Errors
///
/// Anything [`Scenario::validate`] rejects, [`DxError::Unknown`] for an
/// unregistered kind, and whatever the executor reports about
/// kind-specific parameters.
pub fn run_scenario(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    sc.validate()?;
    let (_, exec) = KINDS
        .iter()
        .find(|(name, _)| *name == sc.kind)
        .ok_or_else(|| DxError::unknown("scenario kind", sc.kind.clone()))?;
    if sc.threads > 0 {
        crate::runner::set_sweep_threads(sc.threads);
    }
    exec(sc)
}

/// The machine a sweep point runs on: the scenario's machine spec, with
/// a string-valued `machine` axis replacing the preset and integer axes
/// `p`/`g`/`l`/`d`/`x` overriding individual parameters.
///
/// # Errors
///
/// [`DxError::Unknown`] for an unknown `machine` coordinate,
/// [`DxError::Invalid`] for degenerate overrides.
pub fn machine_for_point(sc: &Scenario, pt: &SweepPoint) -> Result<MachineParams, DxError> {
    let base = match pt.str("machine") {
        Some(name) => MachineSpec::lookup_preset(name)?,
        None => sc.machine.resolve()?,
    };
    let to_usize = |v: u64, what: &str| {
        usize::try_from(v).map_err(|_| DxError::invalid(format!("axis `{what}` out of range")))
    };
    MachineParams::try_new(
        pt.u64("p").map_or(Ok(base.p), |v| to_usize(v, "p"))?,
        pt.u64("g").unwrap_or(base.g),
        pt.u64("l").unwrap_or(base.l),
        pt.u64("d").unwrap_or(base.d),
        pt.u64("x").map_or(Ok(base.x), |v| to_usize(v, "x"))?,
    )
}

/// The problem size at a sweep point: an `n` axis if present, else the
/// scenario's `n` field.
///
/// # Errors
///
/// [`DxError::Invalid`] when neither is given.
pub fn point_n(sc: &Scenario, pt: &SweepPoint) -> Result<usize, DxError> {
    if let Some(n) = pt.u64("n") {
        return usize::try_from(n).map_err(|_| DxError::invalid("axis `n` out of range"));
    }
    sc.n.ok_or_else(|| DxError::invalid("scenario needs `n` (field or sweep axis)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_kind_is_a_clean_error() {
        let sc = Scenario::new("x", "no-such-kind", 1);
        let err = run_scenario(&sc).unwrap_err();
        assert!(err.to_string().contains("no-such-kind"), "{err}");
    }

    #[test]
    fn registry_names_are_unique() {
        let names = kinds();
        for (i, a) in names.iter().enumerate() {
            assert!(!names[i + 1..].contains(a), "duplicate kind {a}");
        }
    }

    #[test]
    fn machine_axis_replaces_preset_and_int_axes_override() {
        use dxbsp_core::{Axis, Sweep};
        let mut sc = Scenario::new("x", "scatter-sweep", 1);
        sc.sweep = Sweep::new(vec![Axis::strs("machine", ["c90"]), Axis::ints("d", [30])]);
        let pt = &sc.sweep.matrix()[0];
        let m = machine_for_point(&sc, pt).unwrap();
        // C90 base (p=16, x=64) with the d axis applied on top.
        assert_eq!((m.p, m.d, m.x), (16, 30, 64));
    }
}
