//! The generic scenario driver.
//!
//! [`run_scenario`] is the single entry point from a declarative
//! [`Scenario`] to structured results: it validates the scenario,
//! dispatches on the scenario's `kind` to an executor, and returns the
//! unified output — [`RunRecord`]s carrying measurement and prediction
//! side by side, plus the rendered-table projection. Executors expand
//! the sweep axes with [`Sweep::matrix`](dxbsp_core::Sweep::matrix) and
//! run points on per-worker sessions via
//! [`parallel_map_with`](crate::runner::parallel_map_with), so results
//! are byte-identical at any thread count.

use dxbsp_core::{BankDelayModel, DxError, MachineParams, MachineSpec, Scenario, SweepPoint};

use crate::experiments;
use crate::record::RunRecord;
use crate::table::Table;

/// The structured result of executing a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutput {
    /// One record per executed run (measurement + predictions).
    pub records: Vec<RunRecord>,
    /// The table projection of the records.
    pub table: Table,
}

impl ScenarioOutput {
    /// Assemble the unified output from one set of typed rows: the
    /// first `point_cols` columns are sweep coordinates, the rest
    /// results. The table projection gets the scenario's title and
    /// notes.
    #[must_use]
    pub(crate) fn build(
        sc: &Scenario,
        headers: &[&str],
        rows: &[Vec<crate::record::Cell>],
        point_cols: usize,
    ) -> Self {
        let records =
            rows.iter().map(|row| RunRecord::from_row(headers, row, point_cols)).collect();
        let mut table =
            Table::from_cells(crate::experiments::scatter::scenario_title(sc), headers, rows);
        for note in &sc.notes {
            table.note(note.clone());
        }
        ScenarioOutput { records, table }
    }
}

/// An executor for one scenario kind.
pub type Executor = fn(&Scenario) -> Result<ScenarioOutput, DxError>;

/// The kind registry: every scenario `kind` the driver can execute.
pub const KINDS: &[(&str, Executor)] = &[
    ("scatter-sweep", experiments::scatter::run_scatter_sweep),
    ("hybrid-sweep", experiments::hybrid::run_hybrid_sweep),
    ("injection-order", experiments::scatter::run_injection_order),
    ("cc-trace", experiments::fig1::run_cc_trace),
    ("inventory", experiments::tables::run_inventory),
    ("calibration", experiments::tables::run_calibration),
    ("hash-cost", experiments::tables::run_hash_cost),
    ("modmap", experiments::modmap::run_modmap),
    ("mapping-compare", experiments::modmap::run_mapping_compare),
    ("slackness", experiments::modmap::run_slackness),
    ("network-sections", experiments::network::run_network_sections),
    ("window-ablation", experiments::ablation::run_window),
    ("bank-cache", experiments::ablation::run_bank_cache),
    ("strip-mining", experiments::ablation::run_strip_mining),
    ("emulation", experiments::emulation::run_emulation),
    ("emulation-contention", experiments::emulation::run_emulation_contention),
    ("binary-search", experiments::algo_bench::run_binary_search),
    ("random-perm", experiments::algo_bench::run_random_perm),
    ("spmv", experiments::algo_bench::run_spmv),
    ("connected", experiments::algo_bench::run_connected),
    ("list-ranking", experiments::extensions::run_list_ranking),
    ("cc-variants", experiments::extensions::run_cc_variants),
    ("merge", experiments::extensions::run_merge),
    ("logp", experiments::extensions::run_logp),
    ("hash-congestion", experiments::extensions::run_hash_congestion),
    ("remedies", experiments::extensions::run_remedies),
    ("sorts", experiments::extensions::run_sorts),
    ("sort-oversample", experiments::sorting::run_sort_oversample),
    ("sort-compare", experiments::sorting::run_sort_compare),
    ("pstream", experiments::pstream::run_pstream),
];

/// The registered scenario kinds, in registry order.
#[must_use]
pub fn kinds() -> Vec<&'static str> {
    KINDS.iter().map(|(name, _)| *name).collect()
}

/// Validate and execute a scenario.
///
/// # Errors
///
/// Anything [`Scenario::validate`] rejects, [`DxError::Unknown`] for an
/// unregistered kind, and whatever the executor reports about
/// kind-specific parameters.
pub fn run_scenario(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    sc.validate()?;
    let (_, exec) = KINDS
        .iter()
        .find(|(name, _)| *name == sc.kind)
        .ok_or_else(|| DxError::unknown("scenario kind", sc.kind.clone()))?;
    // Only the sweep kinds that thread the full BankDelayModel into
    // their workers can honor non-uniform delays; every other kind
    // would silently run the scalar summary `d` instead.
    let nonuniform = sc.machine.has_nonuniform_delay()
        || sc.sweep.axes.iter().any(|a| a.param == "degraded_banks");
    if nonuniform && sc.kind != "scatter-sweep" && sc.kind != "hybrid-sweep" {
        return Err(DxError::invalid(format!(
            "scenario kind `{}` supports uniform bank delay only; non-uniform machines \
             (per_bank/tiers/degraded_banks) need kind `scatter-sweep` or `hybrid-sweep`",
            sc.kind
        )));
    }
    if sc.threads > 0 {
        crate::runner::set_sweep_threads(sc.threads);
    }
    exec(sc)
}

/// The machine a sweep point runs on: the scenario's machine spec, with
/// a string-valued `machine` axis replacing the preset and integer axes
/// `p`/`g`/`l`/`d`/`x` overriding individual parameters.
///
/// # Errors
///
/// [`DxError::Unknown`] for an unknown `machine` coordinate,
/// [`DxError::Invalid`] for degenerate overrides.
pub fn machine_for_point(sc: &Scenario, pt: &SweepPoint) -> Result<MachineParams, DxError> {
    machine_and_delay_for_point(sc, pt).map(|(m, _)| m)
}

/// [`machine_for_point`] plus the bank-delay model in force at the
/// point. The model comes from the `machine` axis preset (or the
/// scenario's machine spec); a `d` axis resets it to `Uniform(d)`, and
/// a `degraded_banks` axis then overwrites the first `k` banks with the
/// scenario's `degraded_d` parameter — the degraded-bank ablation.
///
/// # Errors
///
/// Everything [`machine_for_point`] rejects, plus [`DxError::Invalid`]
/// when a `degraded_banks` axis lacks the `degraded_d` parameter,
/// degrades more banks than the machine has, or the resolved model does
/// not fit the (possibly axis-overridden) machine shape.
pub fn machine_and_delay_for_point(
    sc: &Scenario,
    pt: &SweepPoint,
) -> Result<(MachineParams, BankDelayModel), DxError> {
    let (base, base_model) = match pt.str("machine") {
        Some(name) => MachineSpec::lookup_preset_model(name)?,
        None => sc.machine.resolve_model()?,
    };
    let to_usize = |v: u64, what: &str| {
        usize::try_from(v).map_err(|_| DxError::invalid(format!("axis `{what}` out of range")))
    };
    let p = pt.u64("p").map_or(Ok(base.p), |v| to_usize(v, "p"))?;
    let x = pt.u64("x").map_or(Ok(base.x), |v| to_usize(v, "x"))?;
    let banks =
        p.checked_mul(x).ok_or_else(|| DxError::invalid("machine: bank count p*x overflows"))?;
    // A `d` axis dials the uniform delay, replacing whatever model the
    // spec carried (exp4-style sweeps assume this).
    let mut model = match pt.u64("d") {
        Some(d) => BankDelayModel::uniform(d),
        None => base_model,
    };
    if let Some(k) = pt.u64("degraded_banks") {
        let k = to_usize(k, "degraded_banks")?;
        let degraded_d = sc.param_u64("degraded_d", 0)?;
        if degraded_d == 0 {
            return Err(DxError::invalid(
                "sweep axis `degraded_banks` needs params.degraded_d (> 0)",
            ));
        }
        if k > banks {
            return Err(DxError::invalid(format!(
                "axis `degraded_banks` = {k} exceeds the machine's {banks} banks"
            )));
        }
        model.validate(p, banks)?;
        let mut delays: Vec<u64> = (0..banks).map(|b| model.service(b)).collect();
        for slot in delays.iter_mut().take(k) {
            *slot = degraded_d;
        }
        model = BankDelayModel::per_bank(delays);
    }
    model.validate(p, banks)?;
    let m = MachineParams::try_new(
        p,
        pt.u64("g").unwrap_or(base.g),
        pt.u64("l").unwrap_or(base.l),
        model.uniform_summary(),
        x,
    )?;
    Ok((m, model))
}

/// The problem size at a sweep point: an `n` axis if present, else the
/// scenario's `n` field.
///
/// # Errors
///
/// [`DxError::Invalid`] when neither is given.
pub fn point_n(sc: &Scenario, pt: &SweepPoint) -> Result<usize, DxError> {
    if let Some(n) = pt.u64("n") {
        return usize::try_from(n).map_err(|_| DxError::invalid("axis `n` out of range"));
    }
    sc.n.ok_or_else(|| DxError::invalid("scenario needs `n` (field or sweep axis)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_kind_is_a_clean_error() {
        let sc = Scenario::new("x", "no-such-kind", 1);
        let err = run_scenario(&sc).unwrap_err();
        assert!(err.to_string().contains("no-such-kind"), "{err}");
    }

    #[test]
    fn registry_names_are_unique() {
        let names = kinds();
        for (i, a) in names.iter().enumerate() {
            assert!(!names[i + 1..].contains(a), "duplicate kind {a}");
        }
    }

    #[test]
    fn machine_axis_replaces_preset_and_int_axes_override() {
        use dxbsp_core::{Axis, Sweep};
        let mut sc = Scenario::new("x", "scatter-sweep", 1);
        sc.sweep = Sweep::new(vec![Axis::strs("machine", ["c90"]), Axis::ints("d", [30])]);
        let pt = &sc.sweep.matrix()[0];
        let m = machine_for_point(&sc, pt).unwrap();
        // C90 base (p=16, x=64) with the d axis applied on top.
        assert_eq!((m.p, m.d, m.x), (16, 30, 64));
    }
}
