//! ASCII line/scatter charts for the figure experiments.
//!
//! The paper's evaluation is mostly *figures*; the `repro` binary can
//! render each experiment's series as a terminal chart (`--plot`) so
//! the knees and crossovers are visible without leaving the shell.

use crate::table::Table;

/// A renderable chart: named series of `(x, y)` points on optionally
/// logarithmic axes.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Chart title.
    pub title: String,
    /// Plot-area width in character cells.
    pub width: usize,
    /// Plot-area height in character cells.
    pub height: usize,
    /// Log-scale the x axis (points with `x ≤ 0` are dropped).
    pub log_x: bool,
    /// Log-scale the y axis (points with `y ≤ 0` are dropped).
    pub log_y: bool,
    series: Vec<Series>,
}

/// One named series: `(name, marker, points)`.
type Series = (String, char, Vec<(f64, f64)>);

/// Marker characters assigned to series in order.
const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

impl Chart {
    /// An empty chart with a default 64×20 plot area.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            width: 64,
            height: 20,
            log_x: false,
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Switches both axes to log scale (the shape the paper's
    /// contention figures use).
    #[must_use]
    pub fn log_log(mut self) -> Self {
        self.log_x = true;
        self.log_y = true;
        self
    }

    /// Adds a named series; markers are assigned round-robin.
    pub fn add_series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) {
        let mark = MARKS[self.series.len() % MARKS.len()];
        self.series.push((name.into(), mark, points));
    }

    fn transform(&self, x: f64, y: f64) -> Option<(f64, f64)> {
        let tx = if self.log_x {
            if x <= 0.0 {
                return None;
            }
            x.log10()
        } else {
            x
        };
        let ty = if self.log_y {
            if y <= 0.0 {
                return None;
            }
            y.log10()
        } else {
            y
        };
        (tx.is_finite() && ty.is_finite()).then_some((tx, ty))
    }

    /// Renders the chart (empty string when no plottable points).
    #[must_use]
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, _, ps)| ps.iter().filter_map(|&(x, y)| self.transform(x, y)))
            .collect();
        if pts.is_empty() {
            return String::new();
        }
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if x1 - x0 < 1e-12 {
            x1 = x0 + 1.0;
        }
        if y1 - y0 < 1e-12 {
            y1 = y0 + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (_, mark, ps) in &self.series {
            for &(x, y) in ps {
                let Some((tx, ty)) = self.transform(x, y) else { continue };
                let cx = ((tx - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
                let cy = ((ty - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                // First series to claim a cell keeps it; overlaps show
                // the earlier (usually "measured") marker.
                if grid[row][cx] == ' ' {
                    grid[row][cx] = *mark;
                }
            }
        }

        let unscale = |v: f64, log: bool| if log { 10f64.powf(v) } else { v };
        let mut out = String::new();
        out.push_str(&format!("-- {} --\n", self.title));
        for (name, mark, _) in &self.series {
            out.push_str(&format!("   {mark} {name}\n"));
        }
        out.push_str(&format!(
            "  y: {:.3e} .. {:.3e}{}\n",
            unscale(y0, self.log_y),
            unscale(y1, self.log_y),
            if self.log_y { " (log)" } else { "" }
        ));
        for row in grid {
            out.push_str("  |");
            out.extend(row);
            out.push('\n');
        }
        out.push_str("  +");
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "   x: {:.3e} .. {:.3e}{}\n",
            unscale(x0, self.log_x),
            unscale(x1, self.log_x),
            if self.log_x { " (log)" } else { "" }
        ));
        out
    }
}

/// Builds a chart from table columns: `x_col` against each of `y_cols`
/// (columns that fail to parse as numbers are skipped point-wise).
#[must_use]
pub fn chart_from_table(t: &Table, x_col: usize, y_cols: &[usize], log_log: bool) -> Chart {
    let mut chart = Chart::new(t.title.clone());
    if log_log {
        chart = chart.log_log();
    }
    let xs = t.column_f64(x_col);
    for &yc in y_cols {
        let ys = t.column_f64(yc);
        let pts: Vec<(f64, f64)> = xs
            .iter()
            .zip(&ys)
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .map(|(&x, &y)| (x, y))
            .collect();
        chart.add_series(t.headers[yc].clone(), pts);
    }
    chart
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_and_legend() {
        let mut c = Chart::new("demo");
        c.add_series("measured", vec![(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]);
        let s = c.render();
        assert!(s.contains("-- demo --"));
        assert!(s.contains("* measured"));
        assert!(s.matches('*').count() >= 3); // legend + ≥3 plotted cells... at least the points
    }

    #[test]
    fn empty_chart_renders_empty() {
        let c = Chart::new("empty");
        assert_eq!(c.render(), "");
    }

    #[test]
    fn log_log_drops_nonpositive_points() {
        let mut c = Chart::new("log").log_log();
        c.add_series("s", vec![(0.0, 1.0), (10.0, 100.0), (100.0, 1.0)]);
        let s = c.render();
        assert!(s.contains("(log)"));
        // Two valid points survive.
        assert!(s.matches('*').count() >= 2);
    }

    #[test]
    fn corner_points_land_on_edges() {
        let mut c = Chart::new("corners");
        c.width = 10;
        c.height = 5;
        c.add_series("s", vec![(0.0, 0.0), (1.0, 1.0)]);
        let s = c.render();
        let rows: Vec<&str> = s.lines().filter(|l| l.starts_with("  |")).collect();
        assert_eq!(rows.len(), 5);
        // Max-y point in the top row, min-y in the bottom row.
        assert!(rows[0].ends_with('*'));
        assert_eq!(rows[4].chars().nth(3), Some('*'));
    }

    #[test]
    fn chart_from_table_picks_columns() {
        let mut t = Table::new("tbl", &["k", "measured", "pred"]);
        t.push_row(vec!["1".into(), "10".into(), "12".into()]);
        t.push_row(vec!["2".into(), "20".into(), "19".into()]);
        let c = chart_from_table(&t, 0, &[1, 2], true);
        let s = c.render();
        assert!(s.contains("* measured"));
        assert!(s.contains("o pred"));
    }

    #[test]
    fn degenerate_single_point_does_not_panic() {
        let mut c = Chart::new("one");
        c.add_series("s", vec![(5.0, 5.0)]);
        let s = c.render();
        assert!(!s.is_empty());
    }
}

/// Renders a bank-occupancy Gantt chart from a simulator event log:
/// one row per bank (busiest first, up to `max_rows`), time on the x
/// axis, `#` where the bank is in service. Makes hot-bank serialization
/// visible at a glance.
#[must_use]
pub fn gantt_from_events(
    events: &[dxbsp_machine::RequestEvent],
    total_cycles: u64,
    max_rows: usize,
    width: usize,
) -> String {
    if events.is_empty() || total_cycles == 0 || width == 0 {
        return String::new();
    }
    let max_bank = events.iter().map(|e| e.bank).max().unwrap_or(0);
    let mut busy = vec![0u64; max_bank + 1];
    for e in events {
        busy[e.bank] += e.end - e.start;
    }
    let mut order: Vec<usize> = (0..=max_bank).filter(|&b| busy[b] > 0).collect();
    order.sort_unstable_by_key(|&b| std::cmp::Reverse(busy[b]));
    order.truncate(max_rows);

    let scale =
        |t: u64| -> usize { ((t as f64 / total_cycles as f64) * width as f64).floor() as usize };
    let mut out = String::new();
    out.push_str(&format!(
        "-- bank occupancy (top {} of {} active banks, {} cycles) --\n",
        order.len(),
        busy.iter().filter(|&&b| b > 0).count(),
        total_cycles
    ));
    for &b in &order {
        let mut row = vec![' '; width];
        for e in events.iter().filter(|e| e.bank == b) {
            let from = scale(e.start).min(width - 1);
            let to = scale(e.end).clamp(from + 1, width);
            for cell in &mut row[from..to] {
                *cell = '#';
            }
        }
        out.push_str(&format!("  bank {b:>5} |"));
        out.extend(row);
        out.push_str(&format!("| {:>6} busy\n", busy[b]));
    }
    out
}

#[cfg(test)]
mod gantt_tests {
    use super::*;
    use dxbsp_core::{AccessPattern, Interleaved};
    use dxbsp_machine::{SimConfig, Simulator};

    #[test]
    fn gantt_shows_the_hot_bank_as_a_solid_row() {
        let cfg = SimConfig::new(2, 8, 4).with_event_log();
        let sim = Simulator::new(cfg);
        let res = sim.run(&AccessPattern::scatter(2, &vec![0u64; 32]), &Interleaved::new(8));
        let g = gantt_from_events(&res.events, res.cycles, 4, 40);
        assert!(g.contains("bank     0"), "{g}");
        // The hot bank is busy the whole run: its row is all '#'.
        let row = g.lines().find(|l| l.contains("bank     0")).unwrap();
        let body: String = row.chars().skip_while(|&c| c != '|').skip(1).take(40).collect();
        assert!(body.chars().all(|c| c == '#'), "{body:?}");
    }

    #[test]
    fn gantt_of_empty_log_is_empty() {
        assert_eq!(gantt_from_events(&[], 100, 4, 40), "");
    }

    #[test]
    fn gantt_row_count_respects_cap() {
        let cfg = SimConfig::new(4, 16, 2).with_event_log();
        let sim = Simulator::new(cfg);
        let addrs: Vec<u64> = (0..64).collect();
        let res = sim.run(&AccessPattern::scatter(4, &addrs), &Interleaved::new(16));
        let g = gantt_from_events(&res.events, res.cycles, 5, 30);
        assert_eq!(g.lines().filter(|l| l.contains("bank")).count(), 6); // header + 5 rows
    }
}
