//! # dxbsp-bench — the experiment harness
//!
//! Every experiment is a declarative [`dxbsp_core::Scenario`] (see
//! [`scenarios`] for the built-ins, or write your own `.toml` for
//! `dxbench run`) executed by the generic sweep driver in [`sweep`].
//! The same pipeline drives the `repro` and `dxbench` binaries, the
//! Criterion benches, and the integration tests that assert the
//! paper's qualitative claims; the per-experiment functions in
//! [`experiments`] are thin wrappers over [`run_builtin`].

pub mod experiments;
pub mod http;
pub mod plot;
pub mod profile;
pub mod record;
pub mod runner;
pub mod scenarios;
pub mod service;
pub mod storm;
pub mod sweep;
pub mod table;

pub use plot::{chart_from_table, Chart};
pub use profile::{profile_scenario, profile_trace, text_report, Profile};
pub use record::{records_to_jsonl, telemetry_to_jsonl, write_records_jsonl, Cell, RunRecord};
pub use service::{finalize_records, ExecService, ServiceConfig, ServiceStats};
pub use sweep::{run_scenario, ScenarioOutput};
pub use table::Table;

/// Run a built-in scenario by name and return its table.
///
/// Built-in definitions are static and validated, so failures here are
/// programming errors; this panics rather than forcing every legacy
/// `expN(scale, seed)` wrapper to thread a `Result`.
///
/// # Panics
///
/// If `name` is not a built-in or its executor reports an error.
#[must_use]
pub fn run_builtin(name: &str, scale: Scale, seed: u64) -> Table {
    let sc = scenarios::builtin(name, scale, seed)
        .unwrap_or_else(|e| panic!("built-in scenario {name}: {e}"));
    sweep::run_scenario(&sc).unwrap_or_else(|e| panic!("scenario {name}: {e}")).table
}

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes for tests and smoke runs (seconds).
    Quick,
    /// Paper-scale sizes (`S = 64K` elements etc.).
    Full,
}

impl Scale {
    /// The scatter size `S` (the paper uses 64K for all §3 runs).
    #[must_use]
    pub fn scatter_n(self) -> usize {
        match self {
            Scale::Quick => 8 * 1024,
            Scale::Full => 64 * 1024,
        }
    }

    /// Element count for the §6 algorithm experiments.
    #[must_use]
    pub fn algo_n(self) -> usize {
        match self {
            Scale::Quick => 4 * 1024,
            Scale::Full => 32 * 1024,
        }
    }

    /// Trials to average where the workload is randomized.
    #[must_use]
    pub fn trials(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 7,
        }
    }
}
