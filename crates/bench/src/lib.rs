//! # dxbsp-bench — the experiment harness
//!
//! One module per table/figure of the paper (see DESIGN.md §4 for the
//! experiment index). Every experiment is a pure function from a
//! [`Scale`] (and a seed) to a printable [`table::Table`], so the same
//! code drives the `repro` binary, the Criterion benches, and the
//! integration tests that assert the paper's qualitative claims.

pub mod experiments;
pub mod plot;
pub mod runner;
pub mod table;

pub use plot::{chart_from_table, Chart};
pub use table::Table;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes for tests and smoke runs (seconds).
    Quick,
    /// Paper-scale sizes (`S = 64K` elements etc.).
    Full,
}

impl Scale {
    /// The scatter size `S` (the paper uses 64K for all §3 runs).
    #[must_use]
    pub fn scatter_n(self) -> usize {
        match self {
            Scale::Quick => 8 * 1024,
            Scale::Full => 64 * 1024,
        }
    }

    /// Element count for the §6 algorithm experiments.
    #[must_use]
    pub fn algo_n(self) -> usize {
        match self {
            Scale::Quick => 4 * 1024,
            Scale::Full => 32 * 1024,
        }
    }

    /// Trials to average where the workload is randomized.
    #[must_use]
    pub fn trials(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 7,
        }
    }
}
