//! Probed profiling runs — the library behind the `dxprof` binary and
//! `dxsim --profile`.
//!
//! A profile run executes a workload with a live
//! [`Recorder`] attached to the probe seam
//! and returns everything the exporters need: per-bank dwell tracks,
//! queue-wait distributions, stall intervals, and the per-superstep
//! `max(L, g·h, d·R)` attribution. Two sources are supported:
//!
//! - **Scenarios** ([`profile_scenario`]): any `scatter-sweep` scenario
//!   (built-in or file), profiling one sweep point end to end;
//! - **Trace files** ([`profile_trace`]): any `.dxt` capture, streamed
//!   through a probed [`Session`] so arbitrarily long programs profile
//!   in O(one superstep) memory.
//!
//! Instrumentation never perturbs the run: the profiled cycle count is
//! bit-identical to the unprobed run's (pinned by the differential
//! tests in `dxbsp-machine`), and the recorder attributes every cycle
//! of the clock — `recorder.attributed_cycles() == cycles`.

use dxbsp_core::{AxisValue, BankDelayModel, BankMap, DxError, EngineKind, Scenario};
use dxbsp_machine::{Session, SimConfig, SimulatorBackend, TraceFileReader};
use dxbsp_telemetry::Recorder;
use dxbsp_workloads::generate_keys;

use crate::experiments;
use crate::experiments::scatter::prepare;

/// Everything one probed run produced.
#[derive(Debug)]
pub struct Profile {
    /// The recorder that observed the run, ready for the exporters.
    pub recorder: Recorder,
    /// Human-readable description of what ran (scenario point or trace
    /// path), for report headers.
    pub source: String,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Memory requests executed.
    pub requests: usize,
    /// Total simulated cycles.
    pub cycles: u64,
    /// The simulator engine actually in force for the run
    /// ([`SimConfig::engine_in_force`]) — `BankEpoch` unless the
    /// scenario pinned the event loop or a feature forced the punt.
    pub engine: EngineKind,
    /// The bank-delay model the run realized (uniform unless the
    /// scenario described tiers, `per_bank`, or degraded banks).
    pub delay: BankDelayModel,
}

/// Profiles one sweep point of a scenario with probes on.
///
/// `point` selects the sweep-grid point (row-major, as `dxbench run`
/// would execute them); `None` profiles the **last** point — in the
/// contention ladders of the paper's experiments that is the most
/// contended, most interesting one.
///
/// # Errors
///
/// [`DxError::Invalid`] for kinds without a profiled executor (capture
/// a trace and use [`profile_trace`]), out-of-range points, and
/// whatever scenario validation or workload generation reports.
pub fn profile_scenario(sc: &Scenario, point: Option<usize>) -> Result<Profile, DxError> {
    sc.validate()?;
    if sc.kind != "scatter-sweep" && sc.kind != "hybrid-sweep" {
        return Err(DxError::invalid(format!(
            "scenario kind `{}` has no profiled executor; capture a trace with dxtrace and \
             profile it with --trace",
            sc.kind
        )));
    }
    let prepared = prepare(sc)?;
    let idx = point.unwrap_or(prepared.len() - 1);
    let p = prepared.get(idx).ok_or_else(|| {
        DxError::invalid(format!(
            "point {idx} out of range: scenario `{}` has {} sweep points",
            sc.name,
            prepared.len()
        ))
    })?;
    let salt = p.pt.salt();
    let keys = generate_keys(&sc.workload, &p.req, sc.seed, salt)?;
    let mut rec = Recorder::new();
    rec.set_delay_model(&p.delay);
    // The backend inherits the scenario's execution mode, so profiling
    // a hybrid scenario shows its closed-form charges as
    // `modeled_steps` in the summary. It comes from the session pool,
    // like every other service-core run.
    let mut backend = experiments::pooled_backend_with(&p.m, sc.exec, sc.engine);
    let cycles = experiments::measured_scatter_model_probed_in(
        &mut backend,
        &p.m,
        &p.delay,
        &keys,
        sc.seed ^ salt,
        &mut rec,
    );
    let engine = backend.simulator().config().engine_in_force();
    let fmt_axis = |v: &AxisValue| match v {
        AxisValue::Int(i) => i.to_string(),
        AxisValue::Float(f) => f.to_string(),
        AxisValue::Str(s) => s.clone(),
    };
    let coords: Vec<String> =
        p.pt.coords.iter().map(|c| format!("{}={}", c.axis, fmt_axis(&c.value))).collect();
    let source = if coords.is_empty() {
        format!("scenario {} (single point)", sc.name)
    } else {
        format!("scenario {} point {idx} [{}]", sc.name, coords.join(", "))
    };
    Ok(Profile {
        recorder: rec,
        source,
        supersteps: 1,
        requests: keys.len(),
        cycles,
        engine,
        delay: p.delay.clone(),
    })
}

/// Profiles a stored trace file with probes on, streaming supersteps
/// through a probed [`Session`] on the machine described by `cfg`.
///
/// # Errors
///
/// [`DxError::Invalid`] for unreadable or corrupt trace files.
pub fn profile_trace(path: &str, cfg: SimConfig, map: &dyn BankMap) -> Result<Profile, DxError> {
    let mut reader = TraceFileReader::open(std::path::Path::new(path))
        .map_err(|e| DxError::invalid(format!("cannot load {path}: {e}")))?;
    let mut rec = Recorder::new();
    let engine = cfg.engine_in_force();
    let delay = cfg.delay.clone();
    rec.set_delay_model(&delay);
    let mut session = Session::new(SimulatorBackend::new(cfg));
    let summary = session.run_stream_probed(&mut reader, map, &mut rec);
    if let Some(e) = reader.error() {
        return Err(DxError::invalid(format!("trace {path}: {e}")));
    }
    Ok(Profile {
        recorder: rec,
        source: format!("trace {path}"),
        supersteps: summary.supersteps,
        requests: summary.requests,
        cycles: summary.cycles,
        engine,
        delay,
    })
}

/// The plain-text report `dxprof` prints: run header, cost-attribution
/// split, queueing and stall aggregates, and the flame-style per-bank
/// dwell profile.
#[must_use]
pub fn text_report(p: &Profile, top: usize) -> String {
    let rec = &p.recorder;
    let (l, pr, b) = rec.bound_counts();
    let (hot_bank, hot_dwell) = rec.hottest_bank();
    let mut out = String::new();
    out.push_str(&format!("profiled: {}\n", p.source));
    out.push_str(&format!(
        "{} supersteps, {} requests, {} cycles (attributed: {})\n",
        p.supersteps,
        p.requests,
        p.cycles,
        rec.attributed_cycles()
    ));
    out.push_str(&format!(
        "bound by: latency {l}, processor {pr}, bank {b} (of {} supersteps)\n",
        rec.supersteps()
    ));
    out.push_str(&format!(
        "execution: {} simulated ({} engine), {} charged closed-form\n",
        rec.simulated_steps(),
        p.engine.name(),
        rec.modeled_steps()
    ));
    out.push_str(&format!("delay model: {}\n", p.delay.describe()));
    out.push_str(&format!(
        "queue wait: {} cycles total, p99 ≤ {}; window stalls: {} cycles; cascades: {}\n",
        rec.queue_wait_hist().sum(),
        rec.queue_wait_hist().quantile_bound(0.99),
        rec.stall_cycles(),
        rec.cascades()
    ));
    out.push_str(&format!("hottest bank: #{hot_bank} with {hot_dwell} dwell cycles\n\n"));
    out.push_str(&rec.dwell_report(top, 48));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use crate::Scale;
    use dxbsp_core::SpecValue;
    use dxbsp_telemetry::{chrome, prometheus};

    fn exp1_profile() -> Profile {
        let sc = scenarios::builtin("exp1", Scale::Quick, 1995).unwrap();
        profile_scenario(&sc, None).unwrap()
    }

    #[test]
    fn scenario_profile_attributes_every_cycle() {
        let p = exp1_profile();
        assert_eq!(p.recorder.attributed_cycles(), p.cycles);
        assert_eq!(p.recorder.requests(), p.requests as u64);
        assert_eq!(p.recorder.supersteps(), 1);
        // exp1's last point is the full-contention scatter: bank-bound.
        assert_eq!(p.recorder.bound_counts().2, 1);
    }

    #[test]
    fn scenario_profile_round_trips_through_the_exporters() {
        let p = exp1_profile();
        let json = chrome::trace_json(&p.recorder);
        let events = chrome::validate(&json).expect("chrome trace validates");
        assert!(events > 0, "trace must carry events");
        let prom = prometheus::render(&p.recorder.registry());
        let samples = prometheus::lint(&prom).expect("prometheus output lints");
        assert!(samples > 0, "metrics must carry samples");
        let summary = p.recorder.summary();
        assert_eq!(
            summary.get("attributed_cycles").and_then(SpecValue::as_int),
            Some(i64::try_from(p.cycles).unwrap())
        );
    }

    #[test]
    fn profile_is_deterministic_and_matches_the_unprobed_sweep() {
        let a = exp1_profile();
        let b = exp1_profile();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.recorder.summary(), b.recorder.summary());
    }

    #[test]
    fn point_selection_and_errors() {
        let sc = scenarios::builtin("exp1", Scale::Quick, 1995).unwrap();
        let first = profile_scenario(&sc, Some(0)).unwrap();
        let last = profile_scenario(&sc, None).unwrap();
        // Contention ladder: the last (k = n) point costs far more.
        assert!(last.cycles > first.cycles * 4, "{} vs {}", last.cycles, first.cycles);
        let err = profile_scenario(&sc, Some(10_000)).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let other = scenarios::builtin("table1", Scale::Quick, 1995).unwrap();
        let err = profile_scenario(&other, None).unwrap_err();
        assert!(err.to_string().contains("--trace"), "{err}");
    }

    #[test]
    fn hybrid_scenario_profile_reports_modeled_steps() {
        let sc = scenarios::builtin("exp4_hybrid", Scale::Quick, 1995).unwrap();
        let p = profile_scenario(&sc, Some(0)).unwrap();
        // The hotspot point classifies inside the declared bound: the
        // superstep is charged closed-form, not event-level simulated.
        assert_eq!(p.recorder.modeled_steps(), 1);
        assert_eq!(p.recorder.simulated_steps(), 0);
        assert_eq!(p.recorder.attributed_cycles(), p.cycles);
        let summary = p.recorder.summary();
        assert_eq!(summary.get("modeled_steps").and_then(SpecValue::as_int), Some(1));
        let report = text_report(&p, 4);
        assert!(report.contains("1 charged closed-form"), "{report}");
    }

    #[test]
    fn trace_profile_streams_and_attributes() {
        use dxbsp_core::{AccessPattern, Interleaved};
        use dxbsp_machine::{TraceFileWriter, TraceStep};
        let path = std::env::temp_dir().join("dxbsp_profile_trace_test.dxt");
        let mut w = TraceFileWriter::create(&path).unwrap();
        let mut hot = TraceStep::new(AccessPattern::scatter(4, &vec![7u64; 64]));
        hot.label = "hot".into();
        let spread = TraceStep::new(AccessPattern::scatter(4, &(0..64u64).collect::<Vec<_>>()));
        w.write_step(&hot).unwrap();
        w.write_step(&spread).unwrap();
        w.finish().unwrap();

        let cfg = SimConfig::new(4, 32, 8);
        let p = profile_trace(path.to_str().unwrap(), cfg.clone(), &Interleaved::new(32)).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(p.supersteps, 2);
        assert_eq!(p.requests, 128);
        assert_eq!(p.recorder.attributed_cycles(), p.cycles);
        // The hot superstep's label survives into the step tracks.
        assert_eq!(p.recorder.steps()[0].label, "hot");
        assert_eq!(p.recorder.steps()[0].report.binding(), "bank");
        let err = profile_trace("/no/such/file.dxt", cfg, &Interleaved::new(32)).unwrap_err();
        assert!(err.to_string().contains("cannot load"), "{err}");
    }

    #[test]
    fn text_report_names_the_hot_bank() {
        let p = exp1_profile();
        let report = text_report(&p, 8);
        let (hot, _) = p.recorder.hottest_bank();
        assert!(report.contains(&format!("hottest bank: #{hot}")), "{report}");
        assert!(report.contains("dwell profile"), "{report}");
    }
}
