//! `dxprof` — profile a scenario or trace file with probes on.
//!
//! ```text
//! dxprof --scenario <name|file.toml|file.json> [--point I] [--quick] [--seed N]
//! dxprof --trace FILE [--preset c90|j90|t90] [--procs P] [--delay D]
//!        [--expansion X] [--gap G] [--latency L] [--sync L] [--window W]
//!        [--map hashed|interleaved] [--seed S]
//!
//! outputs (any combination; `-` writes to stdout):
//!   --chrome PATH    Chrome trace_event JSON (chrome://tracing, Perfetto)
//!   --prom PATH      Prometheus text-format metrics
//!   --summary PATH   compact JSON summary
//!   --top N          banks shown in the dwell report (default 16)
//! ```
//!
//! The run executes with a telemetry [`Recorder`] on the probe seam —
//! bit-identical cycles to an unprobed run — then prints a dwell
//! report: which banks the time went to, how much of it was queueing,
//! and which `max(L, g·h, d·R)` term bound each superstep.
//!
//! [`Recorder`]: dxbsp_telemetry::Recorder

use dxbsp_bench::{profile_scenario, profile_trace, scenarios, text_report, Profile, Scale};
use dxbsp_core::{DxError, Interleaved, MachineParams, Scenario, SpecValue};
use dxbsp_hash::{Degree, HashedBanks};
use dxbsp_machine::SimConfig;
use dxbsp_telemetry::{chrome, prometheus};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn die(msg: &str) -> ! {
    eprintln!("dxprof: {msg}");
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: dxprof --scenario <name|file.toml|file.json> [--point I] [--quick] [--seed N]\n       dxprof --trace FILE [--preset c90|j90|t90] [--procs P] [--delay D] [--expansion X] [--gap G] [--latency L] [--sync L] [--window W] [--map hashed|interleaved] [--seed S]\noutputs: [--chrome PATH] [--prom PATH] [--summary PATH] [--top N]  (`-` = stdout)"
    );
    std::process::exit(2);
}

struct Args {
    scenario: Option<String>,
    trace: Option<String>,
    point: Option<usize>,
    quick: bool,
    seed: Option<u64>,
    procs: usize,
    delay: u64,
    expansion: usize,
    gap: u64,
    latency: u64,
    sync: u64,
    window: Option<usize>,
    map: String,
    chrome: Option<String>,
    prom: Option<String>,
    summary: Option<String>,
    top: usize,
}

#[allow(clippy::too_many_lines)]
fn parse_args() -> Args {
    let mut args = Args {
        scenario: None,
        trace: None,
        point: None,
        quick: false,
        seed: None,
        procs: 8,
        delay: 14,
        expansion: 32,
        gap: 1,
        latency: 0,
        sync: 0,
        window: None,
        map: "hashed".into(),
        chrome: None,
        prom: None,
        summary: None,
        top: 16,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        let parse = |name: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| die(&format!("{name} must be an integer")))
        };
        match a.as_str() {
            "--scenario" => args.scenario = Some(val("--scenario")),
            "--trace" => args.trace = Some(val("--trace")),
            "--point" => args.point = Some(parse("--point", val("--point")) as usize),
            "--quick" => args.quick = true,
            "--seed" => args.seed = Some(parse("--seed", val("--seed"))),
            "--preset" => match val("--preset").as_str() {
                "c90" => {
                    args.procs = 16;
                    args.delay = 6;
                    args.expansion = 64;
                }
                "j90" => {
                    args.procs = 8;
                    args.delay = 14;
                    args.expansion = 32;
                }
                "t90" => {
                    args.procs = 32;
                    args.delay = 4;
                    args.expansion = 32;
                }
                other => die(&format!("unknown preset {other} (c90|j90|t90)")),
            },
            "--procs" => args.procs = parse("--procs", val("--procs")) as usize,
            "--delay" => args.delay = parse("--delay", val("--delay")),
            "--expansion" => args.expansion = parse("--expansion", val("--expansion")) as usize,
            "--gap" => args.gap = parse("--gap", val("--gap")),
            "--latency" => args.latency = parse("--latency", val("--latency")),
            "--sync" => args.sync = parse("--sync", val("--sync")),
            "--window" => args.window = Some(parse("--window", val("--window")) as usize),
            "--map" => args.map = val("--map"),
            "--chrome" => args.chrome = Some(val("--chrome")),
            "--prom" => args.prom = Some(val("--prom")),
            "--summary" => args.summary = Some(val("--summary")),
            "--top" => args.top = parse("--top", val("--top")) as usize,
            "--help" | "-h" => usage(),
            other => die(&format!("unknown argument {other}")),
        }
    }
    if args.scenario.is_some() == args.trace.is_some() {
        die("pass exactly one of --scenario or --trace");
    }
    if args.procs == 0 || args.delay == 0 || args.gap == 0 || args.expansion == 0 {
        die("--procs, --delay, --gap and --expansion must be at least 1");
    }
    if args.window == Some(0) {
        die("--window must be at least 1");
    }
    if args.map != "hashed" && args.map != "interleaved" {
        die(&format!("unknown map {} (hashed|interleaved)", args.map));
    }
    args
}

/// A scenario from a `.toml`/`.json` file path, or a built-in by name.
fn load_scenario(target: &str, quick: bool, seed: Option<u64>) -> Result<Scenario, DxError> {
    if target.ends_with(".toml") || target.ends_with(".json") {
        let text = std::fs::read_to_string(target)
            .map_err(|e| DxError::invalid(format!("cannot read {target}: {e}")))?;
        let mut sc = if target.ends_with(".toml") {
            Scenario::from_toml(&text)?
        } else {
            Scenario::from_json(&text)?
        };
        if let Some(seed) = seed {
            sc.seed = seed;
        }
        Ok(sc)
    } else {
        let scale = if quick { Scale::Quick } else { Scale::Full };
        scenarios::builtin(target, scale, seed.unwrap_or(1995))
    }
}

fn run(args: &Args) -> Result<Profile, DxError> {
    if let Some(target) = &args.scenario {
        let sc = load_scenario(target, args.quick, args.seed)?;
        return profile_scenario(&sc, args.point);
    }
    let path = args.trace.as_deref().expect("checked in parse_args");
    let m = MachineParams::new(args.procs, args.gap, args.sync, args.delay, args.expansion);
    let mut cfg = SimConfig::from_params(&m).with_latency(args.latency);
    if let Some(w) = args.window {
        cfg = cfg.with_window(w);
    }
    match args.map.as_str() {
        "interleaved" => profile_trace(path, cfg, &Interleaved::new(m.banks())),
        _ => {
            let mut rng = StdRng::seed_from_u64(args.seed.unwrap_or(1995));
            let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
            profile_trace(path, cfg, &map)
        }
    }
}

fn emit(path: &str, what: &str, content: &str) {
    if path == "-" {
        print!("{content}");
        if !content.ends_with('\n') {
            println!();
        }
    } else if let Err(e) = std::fs::write(path, content) {
        die(&format!("cannot write {what} to {path}: {e}"));
    }
}

fn main() {
    let args = parse_args();
    let profile = run(&args).unwrap_or_else(|e| die(&e.to_string()));
    if let Some(path) = &args.chrome {
        emit(path, "chrome trace", &chrome::trace_json(&profile.recorder));
    }
    if let Some(path) = &args.prom {
        emit(path, "prometheus metrics", &prometheus::render(&profile.recorder.registry()));
    }
    if let Some(path) = &args.summary {
        let mut summary = profile.recorder.summary();
        summary.set("engine", SpecValue::Str(profile.engine.name().to_string()));
        let mut json = summary.to_json();
        json.push('\n');
        emit(path, "summary", &json);
    }
    print!("{}", text_report(&profile, args.top));
}
