//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--quick] [--seed N] [--plot] [--csv DIR] [<experiment> ...]
//! repro --list
//! ```
//!
//! With no experiment names, runs everything in DESIGN.md order.
//! `--plot` adds an ASCII chart under figure-shaped experiments;
//! `--csv DIR` additionally writes each table as `DIR/<name>.csv`.

use dxbsp_bench::experiments as exp;
use dxbsp_bench::{chart_from_table, Scale, Table};

type Runner = fn(Scale, u64) -> Table;

/// Plot spec: (x column, y columns, log-log axes).
type PlotSpec = Option<(usize, &'static [usize], bool)>;

struct Experiment {
    name: &'static str,
    desc: &'static str,
    run: Runner,
    plot: PlotSpec,
}

fn registry() -> Vec<Experiment> {
    let e = |name, desc, run, plot| Experiment { name, desc, run, plot };
    vec![
        e(
            "table1",
            "machine inventory (banks vs. processors)",
            (|_, _| exp::tables::table1()) as Runner,
            None,
        ),
        e("table2", "calibrated simulator parameters", |s, _| exp::tables::table2(s), None),
        e(
            "fig1",
            "CC-trace patterns: measured vs. predicted",
            exp::fig1::fig1,
            Some((0, &[2, 3, 4], true)),
        ),
        e(
            "exp1",
            "scatter vs. contention sweep",
            exp::scatter::exp1_contention,
            Some((0, &[1, 2, 3], true)),
        ),
        e(
            "exp2",
            "duplicating a hot location",
            exp::scatter::exp2_duplication,
            Some((0, &[1, 2], true)),
        ),
        e("exp3", "entropy distributions", exp::scatter::exp3_entropy, Some((1, &[2, 3, 4], true))),
        e("exp4", "expansion-factor sweep", exp::scatter::exp4_expansion, Some((0, &[1, 2], true))),
        e(
            "exp4_hybrid",
            "hybrid 100x expansion x delay grid",
            exp::hybrid::exp4_hybrid_sweep,
            None,
        ),
        e(
            "exp1_mixed",
            "contention sweep on the mixed-tier machine",
            |s, seed| dxbsp_bench::run_builtin("exp1_mixed", s, seed),
            Some((0, &[1, 2, 3], true)),
        ),
        e(
            "exp2_mixed",
            "hot-location duplication on the mixed-tier machine",
            |s, seed| dxbsp_bench::run_builtin("exp2_mixed", s, seed),
            Some((0, &[1, 2], true)),
        ),
        e(
            "exp3_mixed",
            "entropy distributions on the mixed-tier machine",
            |s, seed| dxbsp_bench::run_builtin("exp3_mixed", s, seed),
            Some((1, &[2, 3], true)),
        ),
        e(
            "exp4_mixed",
            "degraded-bank ablation on the mixed-tier machine",
            |s, seed| dxbsp_bench::run_builtin("exp4_mixed", s, seed),
            None,
        ),
        e("exp5", "sectioned-network congestion (a)(b)(c)", exp::network::exp5_network, None),
        e(
            "exp6",
            "module-map contention vs. expansion",
            exp::modmap::exp6_modmap,
            Some((0, &[3], false)),
        ),
        e(
            "exp6b",
            "slackness vs. bank-load balance",
            exp::modmap::exp6b_slackness,
            Some((0, &[3], false)),
        ),
        e("table3", "hash evaluation costs", exp::tables::table3, None),
        e(
            "exp7",
            "binary search: naive / QRQW / EREW",
            exp::algo_bench::exp7_binary_search,
            Some((0, &[1, 2, 3], true)),
        ),
        e(
            "exp8",
            "random permutation: darts vs. radix sort",
            exp::algo_bench::exp8_random_perm,
            Some((0, &[2, 3], true)),
        ),
        e(
            "exp9",
            "SpMV vs. dense-column length",
            exp::algo_bench::exp9_spmv,
            Some((1, &[2, 3, 4], true)),
        ),
        e(
            "exp10",
            "connected components across graph families",
            exp::algo_bench::exp10_connected,
            None,
        ),
        e(
            "exp11",
            "QRQW emulation work ratio over (d,x)",
            exp::emulation::exp11_emulation,
            Some((0, &[1, 3], true)),
        ),
        e(
            "exp11b",
            "emulated step cost vs. contention",
            exp::emulation::exp11_contention,
            Some((0, &[2, 3], true)),
        ),
        e(
            "exp_machines",
            "C90 vs. J90 contention comparison",
            exp::scatter::exp_machines,
            Some((0, &[1, 3], true)),
        ),
        e(
            "exp12",
            "list ranking: textbook vs. deactivating Wyllie",
            exp::extensions::exp12_list_ranking,
            Some((0, &[3, 4], true)),
        ),
        e(
            "exp13",
            "CC variants: Greiner vs. random mate",
            exp::extensions::exp13_cc_variants,
            None,
        ),
        e(
            "exp14",
            "Zipf scatter model validation",
            exp::extensions::exp14_zipf,
            Some((1, &[2, 3, 4], true)),
        ),
        e(
            "exp15",
            "parallel co-ranking merge",
            exp::extensions::exp15_merge,
            Some((0, &[2], true)),
        ),
        e(
            "exp16",
            "(d,x)-LogP vs. classic LogP",
            exp::extensions::exp16_logp,
            Some((0, &[1, 2, 3], true)),
        ),
        e(
            "exp17",
            "hash-degree congestion comparison",
            exp::extensions::exp17_hash_congestion,
            None,
        ),
        e(
            "exp18",
            "contention remedies: duplication & combining",
            exp::extensions::exp18_remedies,
            Some((0, &[1, 2, 4], true)),
        ),
        e(
            "exp19",
            "EREW radix vs. QRQW sample sort",
            exp::extensions::exp19_sorts,
            Some((0, &[1, 2], true)),
        ),
        e(
            "sort_oversample",
            "sample-sort oversampling sweep",
            |s, seed| dxbsp_bench::run_builtin("sort_oversample", s, seed),
            Some((0, &[3], false)),
        ),
        e(
            "sort_radix_vs_sample",
            "EREW radix width vs. QRQW sample sort",
            |s, seed| dxbsp_bench::run_builtin("sort_radix_vs_sample", s, seed),
            Some((0, &[2, 4], true)),
        ),
        e(
            "pstream_scan",
            "out-of-core prefix scan, chunk-generated supersteps",
            |s, seed| dxbsp_bench::run_builtin("pstream_scan", s, seed),
            Some((0, &[4], true)),
        ),
        e(
            "pstream_stencil",
            "1-D stencil stream under the hybrid engine",
            |s, seed| dxbsp_bench::run_builtin("pstream_stencil", s, seed),
            Some((0, &[4], true)),
        ),
        e(
            "ablation_mapping",
            "interleaved vs. hashed banks under strides",
            exp::modmap::ablation_mapping,
            Some((0, &[1, 2], true)),
        ),
        e(
            "ablation_window",
            "outstanding-request window sweep",
            exp::ablation::ablation_window,
            None,
        ),
        e(
            "ablation_cache",
            "Tera-style per-bank caches (§7)",
            exp::ablation::ablation_bank_cache,
            Some((0, &[1, 2], true)),
        ),
        e(
            "ablation_injection",
            "injection-order sensitivity (§7)",
            exp::scatter::ablation_injection_order,
            None,
        ),
        e(
            "ablation_strip",
            "vector strip-mining sensitivity",
            exp::ablation::ablation_strip_mining,
            None,
        ),
    ]
}

fn write_csv(dir: &str, name: &str, table: &Table) -> std::io::Result<()> {
    use std::io::Write as _;
    std::fs::create_dir_all(dir)?;
    let path = format!("{dir}/{name}.csv");
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(f, "{}", table.headers.join(","))?;
    for row in &table.rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut seed = 1995u64; // SPAA '95
    let mut plot = false;
    let mut csv_dir: Option<String> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--plot" => plot = true,
            "--csv" => csv_dir = Some(it.next().unwrap_or_else(|| die("--csv needs a directory"))),
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--list" => {
                for e in registry() {
                    println!("{:<18} {}", e.name, e.desc);
                }
                return;
            }
            "--help" | "-h" => {
                println!("usage: repro [--quick] [--seed N] [--plot] [--csv DIR] [--list] [verify | <experiment> ...]");
                return;
            }
            "verify" => {
                let checks = exp::shapes::verify_all(scale, seed);
                print!("{}", exp::shapes::render_checks(&checks));
                let failed = checks.iter().filter(|c| !c.pass).count();
                std::process::exit(if failed == 0 { 0 } else { 1 });
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => names.push(other.to_string()),
        }
    }

    let reg = registry();
    let selected: Vec<&Experiment> = if names.is_empty() {
        reg.iter().collect()
    } else {
        names
            .iter()
            .map(|n| {
                reg.iter()
                    .find(|e| e.name == n)
                    .unwrap_or_else(|| die(&format!("unknown experiment {n} (try --list)")))
            })
            .collect()
    };

    println!(
        "(d,x)-BSP reproduction — scale: {:?}, seed: {seed}, {} experiment(s)\n",
        scale,
        selected.len()
    );
    for e in selected {
        let start = std::time::Instant::now();
        let table = (e.run)(scale, seed);
        println!("{}", table.render());
        if plot {
            if let Some((x, ys, log)) = e.plot {
                print!("{}", chart_from_table(&table, x, ys, log).render());
            }
        }
        if let Some(dir) = &csv_dir {
            if let Err(err) = write_csv(dir, e.name, &table) {
                eprintln!("repro: failed to write CSV for {}: {err}", e.name);
            }
        }
        println!("  [{} in {:.2?}]\n", e.name, start.elapsed());
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
