//! dxserved — the scenario execution server.
//!
//!     dxserved [--addr HOST:PORT] [--workers N] [--cache N]
//!              [--max-active N] [--queue-depth N]
//!
//! A hand-rolled HTTP/1.1 front-end over the same
//! [`ExecService`] core the `dxbench`/`dxsim` CLIs run through: a
//! session pool of warm simulators, a content-addressed RunRecord
//! cache, and admission control (bounded queue, structured shed).
//!
//! Endpoints:
//!   `POST /run`      body is a scenario spec (TOML, or JSON when it
//!                    starts with `{`). Streams the run's JSON-lines
//!                    records — byte-identical to
//!                    `dxbench run <spec> --json -` — flushing each
//!                    line as it is written. Overload is a `503` with
//!                    a JSON error body, never a dropped connection.
//!   `GET /metrics`   live Prometheus registry: pool occupancy, cache
//!                    hit/miss, queue depth, shed count, latency.
//!   `GET /healthz`   liveness probe.
//!
//! `--addr` defaults to `127.0.0.1:0` (ephemeral); the bound address
//! is printed on stdout as `dxserved: listening on HOST:PORT` so
//! scripts can scrape it. `--workers` sizes the connection-handling
//! pool; actual run concurrency is governed by the service's
//! admission control (`--max-active`/`--queue-depth`), and `--cache`
//! bounds the result cache in records.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use dxbsp_bench::http;
use dxbsp_bench::{finalize_records, write_records_jsonl, ExecService, ServiceConfig};
use dxbsp_core::{DxError, Scenario};
use dxbsp_telemetry::prometheus;

fn die(msg: &str) -> ! {
    eprintln!("dxserved: {msg}");
    std::process::exit(2);
}

struct Args {
    addr: String,
    workers: usize,
    cfg: ServiceConfig,
    custom_cfg: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        workers: 16,
        cfg: ServiceConfig::default(),
        custom_cfg: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next().cloned().unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        let parse = |what: &str, v: String| {
            v.parse::<usize>().unwrap_or_else(|_| die(&format!("{what} needs an integer")))
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--workers" => args.workers = parse("--workers", value("--workers")).max(1),
            "--cache" => {
                args.cfg.cache_records = parse("--cache", value("--cache"));
                args.custom_cfg = true;
            }
            "--max-active" => {
                args.cfg.max_active = parse("--max-active", value("--max-active")).max(1);
                args.custom_cfg = true;
            }
            "--queue-depth" => {
                args.cfg.queue_depth = parse("--queue-depth", value("--queue-depth"));
                args.custom_cfg = true;
            }
            other => die(&format!(
                "unknown option {other}\nusage: dxserved [--addr HOST:PORT] [--workers N] [--cache N] [--max-active N] [--queue-depth N]"
            )),
        }
    }
    args
}

/// Parse a request body as a scenario spec: JSON when it leads with
/// `{`, TOML otherwise.
fn parse_scenario(body: &[u8]) -> Result<Scenario, DxError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| DxError::invalid("request body is not valid UTF-8"))?;
    if text.trim_start().starts_with('{') {
        Scenario::from_json(text)
    } else {
        Scenario::from_toml(text)
    }
}

fn error_body(err: &DxError) -> String {
    let mut obj = dxbsp_core::SpecValue::table();
    obj.set("error", dxbsp_core::SpecValue::Str(err.to_string()));
    obj.set("retryable", dxbsp_core::SpecValue::Bool(err.is_overloaded()));
    let mut body = obj.to_json();
    body.push('\n');
    body
}

/// Answer with either framing, honoring the client's keep-alive
/// choice: framed responses keep the connection open, close-delimited
/// ones end it.
fn reply(
    stream: &mut TcpStream,
    keep: bool,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) {
    let _ = if keep {
        http::respond_framed(stream, status, reason, content_type, body)
    } else {
        http::respond(stream, status, reason, content_type, body)
    };
}

fn handle_run(service: &ExecService, stream: &mut TcpStream, body: &[u8], keep: bool) {
    let result = parse_scenario(body).and_then(|sc| service.run(&sc).map(|out| (sc, out)));
    match result {
        Ok((sc, out)) => {
            let records = finalize_records(&sc, &out.records);
            if keep {
                // Keep-alive needs Content-Length framing, so the
                // body is assembled up front — same bytes, buffered.
                let mut body = Vec::new();
                let _ = write_records_jsonl(&mut body, &sc.name, &records);
                reply(stream, true, 200, "OK", "application/jsonl", &body);
            } else {
                // Stream the records exactly as `dxbench run --json -`
                // prints them: one JSON object per line, flushed per
                // record so the client sees progress live.
                if http::write_head(stream, 200, "OK", "application/jsonl").is_ok() {
                    let _ = write_records_jsonl(stream, &sc.name, &records);
                }
            }
        }
        Err(err) if err.is_overloaded() => {
            reply(
                stream,
                keep,
                503,
                "Service Unavailable",
                "application/json",
                error_body(&err).as_bytes(),
            );
        }
        Err(err) => {
            reply(
                stream,
                keep,
                400,
                "Bad Request",
                "application/json",
                error_body(&err).as_bytes(),
            );
        }
    }
}

fn handle(service: &ExecService, stream: TcpStream) {
    let Ok(mut conn) = http::ServerConn::new(stream) else { return };
    loop {
        let req = match conn.next_request() {
            Ok(Some(req)) => req,
            // Clean hangup between requests — done.
            Ok(None) => return,
            Err(e) => {
                let _ = http::respond(
                    conn.stream_mut(),
                    400,
                    "Bad Request",
                    "text/plain",
                    format!("bad request: {e}\n").as_bytes(),
                );
                return;
            }
        };
        let keep = req.keep_alive();
        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/run") => handle_run(service, conn.stream_mut(), &req.body, keep),
            ("GET", "/metrics") => {
                let text = prometheus::render(&service.registry());
                reply(
                    conn.stream_mut(),
                    keep,
                    200,
                    "OK",
                    "text/plain; version=0.0.4",
                    text.as_bytes(),
                );
            }
            ("GET", "/healthz") => {
                reply(conn.stream_mut(), keep, 200, "OK", "text/plain", b"ok\n");
            }
            _ => {
                reply(conn.stream_mut(), keep, 404, "Not Found", "text/plain", b"not found\n");
            }
        }
        if !keep {
            return;
        }
    }
}

fn main() {
    let args = parse_args();
    // A bespoke sizing gets its own service; the default shares the
    // process-global instance (same object the CLIs use in-process).
    let service: &'static ExecService = if args.custom_cfg {
        Box::leak(Box::new(ExecService::new(args.cfg)))
    } else {
        ExecService::global()
    };
    let listener = TcpListener::bind(&args.addr)
        .unwrap_or_else(|e| die(&format!("cannot bind {}: {e}", args.addr)));
    let local = listener.local_addr().unwrap_or_else(|e| die(&format!("local_addr: {e}")));
    println!("dxserved: listening on {local}");
    let _ = std::io::stdout().flush();

    let listener = Arc::new(listener);
    let mut workers = Vec::new();
    for _ in 0..args.workers {
        let listener = Arc::clone(&listener);
        workers.push(std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _peer)) => handle(service, stream),
                Err(e) => {
                    eprintln!("dxserved: accept: {e}");
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            }
        }));
    }
    for w in workers {
        let _ = w.join();
    }
}
