//! dxbench — run declarative scenarios.
//!
//!     dxbench list
//!     dxbench dump <name> [--quick] [--seed N]
//!     dxbench run <file.toml|file.json|builtin-name> [options]
//!
//! `list` prints the built-in scenario names. `dump` prints a built-in
//! as a TOML scenario file (the starting point for editing your own).
//! `run` executes a scenario file — or a built-in by name — and prints
//! its table; `--json PATH` additionally writes the unified JSON-lines
//! records (one object per run, measurement and predictions side by
//! side), with `-` for stdout.
//!
//! Options for `run`:
//!   --quick           built-in names only: reduced problem sizes
//!   --seed N          built-in names only: override the RNG seed
//!   --json PATH       write JSON-lines records to PATH (`-` = stdout)
//!   --threads N       override the scenario's worker thread count
//!   --engine E        override the simulator engine: `epoch` (bulk
//!                     bank-epoch execution, the default) or `event`
//!                     (the per-request event loop). Bit-identical
//!                     measurements either way; `--json` records carry
//!                     the engine used.
//!   --telemetry PATH  run with probes on and write one telemetry
//!                     summary object per point as JSON-lines (`-` =
//!                     stdout); `--json` records also gain a
//!                     `telemetry` field. Measurements are unchanged:
//!                     probed runs are bit-identical.
//!   --check-hybrid    differential mode for hybrid scenarios: run as
//!                     declared, rerun forced to full simulation, and
//!                     fail unless every point's cycles agree within
//!                     the declared `hybrid_error_bound`. `--json`
//!                     records gain `full_measured` and `err` columns.
//!
//!     dxbench storm <file.toml|name> --addr HOST:PORT [options]
//!
//! `storm` is the load generator for `dxserved`: it replays the
//! scenario (cycling `--variants` seed variants) from `--clients`
//! concurrent connections until `--requests` total requests have been
//! answered, verifies every JSON-lines body byte-for-byte against a
//! local reference run, and reports a latency histogram plus the
//! server's cache hit-rate and shed count scraped from `/metrics`.
//!
//! Options for `storm`:
//!   --addr HOST:PORT  the running dxserved (required)
//!   --clients N       concurrent client threads (default 16)
//!   --requests N      total requests to issue (default 1000)
//!   --variants N      distinct seed variants to cycle (default 2)
//!
//! Scenario execution — both `run` here and `POST /run` on `dxserved`
//! — goes through the shared [`ExecService`]: a session pool of warm
//! simulators, a content-addressed result cache, and admission
//! control. The CLI and the server are the same code path, byte for
//! byte.

use std::process::ExitCode;

use dxbsp_bench::{
    finalize_records, scenarios, storm, telemetry_to_jsonl, write_records_jsonl, Cell, ExecService,
    RunRecord, Scale,
};
use dxbsp_core::{DxError, EngineKind, ExecMode, Scenario};

fn die(msg: &str) -> ! {
    eprintln!("dxbench: {msg}");
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: dxbench list\n       dxbench dump <name> [--quick] [--seed N]\n       dxbench run <file.toml|file.json|name> [--quick] [--seed N] [--json PATH] [--threads N] [--engine epoch|event] [--telemetry PATH] [--check-hybrid]\n       dxbench storm <file.toml|file.json|name> --addr HOST:PORT [--clients N] [--requests N] [--variants N] [--keep-alive] [--quick] [--seed N]"
    );
    std::process::exit(2);
}

struct Opts {
    target: String,
    scale: Scale,
    seed: Option<u64>,
    json: Option<String>,
    threads: Option<usize>,
    engine: Option<EngineKind>,
    telemetry: Option<String>,
    check_hybrid: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut target = None;
    let mut scale = Scale::Full;
    let mut seed = None;
    let mut json = None;
    let mut threads = None;
    let mut engine = None;
    let mut telemetry = None;
    let mut check_hybrid = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                let v = it.next().unwrap_or_else(|| die("--seed needs a value"));
                seed = Some(v.parse().unwrap_or_else(|_| die("--seed needs an integer")));
            }
            "--json" => {
                json = Some(it.next().unwrap_or_else(|| die("--json needs a path")).clone())
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| die("--threads needs a value"));
                threads = Some(v.parse().unwrap_or_else(|_| die("--threads needs an integer")));
            }
            "--engine" => {
                let v = it.next().unwrap_or_else(|| die("--engine needs a value"));
                engine = Some(
                    EngineKind::parse(v)
                        .unwrap_or_else(|| die(&format!("unknown engine {v} (epoch|event)"))),
                );
            }
            "--telemetry" => {
                telemetry =
                    Some(it.next().unwrap_or_else(|| die("--telemetry needs a path")).clone());
            }
            "--check-hybrid" => check_hybrid = true,
            other if other.starts_with('-') => die(&format!("unknown option {other}")),
            other => {
                if target.replace(other.to_string()).is_some() {
                    die("expected exactly one scenario");
                }
            }
        }
    }
    let Some(target) = target else { usage() };
    Opts { target, scale, seed, json, threads, engine, telemetry, check_hybrid }
}

/// A scenario from a `.toml`/`.json` file path, or a built-in by name.
fn load(opts: &Opts) -> Result<Scenario, DxError> {
    let t = &opts.target;
    if t.ends_with(".toml") || t.ends_with(".json") {
        let text = std::fs::read_to_string(t)
            .map_err(|e| DxError::invalid(format!("cannot read {t}: {e}")))?;
        let mut sc = if t.ends_with(".toml") {
            Scenario::from_toml(&text)?
        } else {
            Scenario::from_json(&text)?
        };
        if let Some(seed) = opts.seed {
            sc.seed = seed;
        }
        Ok(sc)
    } else {
        scenarios::builtin(t, opts.scale, opts.seed.unwrap_or(1995))
    }
}

/// The differential hybrid check: run the scenario as declared
/// (hybrid), rerun it forced to full event-level simulation, and assert
/// every point's cycle count sits within the declared error bound.
/// Returns the hybrid records augmented with `full_measured` and `err`
/// columns so `--json` captures the realized-vs-declared comparison.
fn check_hybrid(sc: &Scenario, hybrid: &[RunRecord]) -> Result<Vec<RunRecord>, DxError> {
    let Some(bound) = sc.exec.error_bound() else {
        return Err(DxError::invalid(
            "--check-hybrid needs a scenario declaring `hybrid_error_bound`",
        ));
    };
    let mut full_sc = sc.clone();
    full_sc.exec = ExecMode::Full;
    let full = ExecService::global().run(&full_sc)?;
    if hybrid.len() != full.records.len() {
        return Err(DxError::invalid(format!(
            "check-hybrid: {} hybrid records vs {} full records",
            hybrid.len(),
            full.records.len()
        )));
    }
    let mut augmented = Vec::with_capacity(hybrid.len());
    let mut max_err = 0.0f64;
    let mut violations = 0usize;
    for (h, f) in hybrid.iter().zip(&full.records) {
        if h.point != f.point {
            return Err(DxError::invalid(format!(
                "check-hybrid: point mismatch {:?} vs {:?}",
                h.point, f.point
            )));
        }
        let cycles = |rec: &RunRecord| {
            rec.get("measured")
                .and_then(Cell::as_f64)
                .ok_or_else(|| DxError::invalid("check-hybrid: record lacks a numeric `measured`"))
        };
        let (hv, fv) = (cycles(h)?, cycles(f)?);
        let err = if fv == 0.0 { f64::from(u8::from(hv != 0.0)) } else { (fv - hv).abs() / fv };
        max_err = max_err.max(err);
        if err > bound {
            violations += 1;
            eprintln!("check-hybrid: point {:?}: hybrid {hv} vs full {fv} (err {err:.6})", h.point);
        }
        augmented
            .push(h.clone().with("full_measured", Cell::Float(fv)).with("err", Cell::Float(err)));
    }
    println!(
        "check-hybrid: {} points, max realized error {max_err:.6} within declared bound {bound}",
        hybrid.len()
    );
    if violations > 0 {
        return Err(DxError::invalid(format!(
            "check-hybrid: {violations} point(s) exceed the declared bound {bound}"
        )));
    }
    Ok(augmented)
}

fn cmd_run(args: &[String]) -> Result<(), DxError> {
    let opts = parse_opts(args);
    let mut sc = load(&opts)?;
    if let Some(threads) = opts.threads {
        sc.threads = threads;
    }
    if let Some(engine) = opts.engine {
        sc.engine = engine;
    }
    if opts.telemetry.is_some() {
        sc.telemetry = true;
    }
    // Execution goes through the shared service core — the same pool,
    // cache and admission path `dxserved` serves from.
    let out = ExecService::global().run(&sc)?;
    let mut records =
        if opts.check_hybrid { check_hybrid(&sc, &out.records)? } else { out.records.clone() };
    // The engine rides along in the JSON records (not the table, which
    // stays byte-identical across engines).
    records = finalize_records(&sc, &records);
    let mut stdout_taken = false;
    if let Some(path) = &opts.telemetry {
        if path == "-" {
            let jsonl = telemetry_to_jsonl(&sc.name, &records);
            print!("{jsonl}");
            stdout_taken = true;
        } else {
            std::fs::write(path, telemetry_to_jsonl(&sc.name, &records))
                .map_err(|e| DxError::invalid(format!("cannot write {path}: {e}")))?;
        }
    }
    if let Some(path) = &opts.json {
        // Stream with a flush per record, so a pipe reader sees each
        // line as it is produced instead of a block-buffered burst.
        let write_err = |e: std::io::Error| DxError::invalid(format!("cannot write {path}: {e}"));
        if path == "-" {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            write_records_jsonl(&mut lock, &sc.name, &records)
                .map_err(|e| DxError::invalid(format!("cannot write to stdout: {e}")))?;
            stdout_taken = true;
        } else {
            let mut file = std::fs::File::create(path).map_err(write_err)?;
            write_records_jsonl(&mut file, &sc.name, &records).map_err(write_err)?;
        }
    }
    if !stdout_taken {
        print!("{}", out.table.render());
    }
    Ok(())
}

fn cmd_storm(args: &[String]) -> Result<(), DxError> {
    let mut opts = storm::StormOpts::default();
    let mut target = None;
    let mut scale = Scale::Full;
    let mut seed = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next().cloned().unwrap_or_else(|| die(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr"),
            "--clients" => {
                opts.clients = value("--clients")
                    .parse()
                    .unwrap_or_else(|_| die("--clients needs an integer"));
            }
            "--requests" => {
                opts.requests = value("--requests")
                    .parse()
                    .unwrap_or_else(|_| die("--requests needs an integer"));
            }
            "--variants" => {
                opts.variants = value("--variants")
                    .parse()
                    .unwrap_or_else(|_| die("--variants needs an integer"));
            }
            "--keep-alive" => opts.keep_alive = true,
            "--quick" => scale = Scale::Quick,
            "--seed" => {
                seed = Some(
                    value("--seed").parse().unwrap_or_else(|_| die("--seed needs an integer")),
                );
            }
            other if other.starts_with('-') => die(&format!("unknown option {other}")),
            other => {
                if target.replace(other.to_string()).is_some() {
                    die("expected exactly one scenario");
                }
            }
        }
    }
    let Some(target) = target else { usage() };
    if opts.addr.is_empty() {
        die("storm needs --addr HOST:PORT (a running dxserved)");
    }
    let load_opts = Opts {
        target,
        scale,
        seed,
        json: None,
        threads: None,
        engine: None,
        telemetry: None,
        check_hybrid: false,
    };
    let sc = load(&load_opts)?;
    let report = storm::storm(&sc, &opts)?;
    print!("{}", report.render());
    if !report.clean() {
        return Err(DxError::invalid("storm: records lost, duplicated, or mismatched"));
    }
    Ok(())
}

fn cmd_dump(args: &[String]) -> Result<(), DxError> {
    let opts = parse_opts(args);
    let sc = scenarios::builtin(&opts.target, opts.scale, opts.seed.unwrap_or(1995))?;
    print!("{}", sc.to_toml());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => {
            for name in scenarios::builtin_names() {
                let marker = if scenarios::has_golden(name) { "golden" } else { "-" };
                println!("{name:<18} {marker}");
            }
            Ok(())
        }
        Some("dump") => cmd_dump(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("storm") => cmd_storm(&args[1..]),
        _ => usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("dxbench: {err}");
            ExitCode::FAILURE
        }
    }
}
