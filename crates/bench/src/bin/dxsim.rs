//! `dxsim` — replay a trace file on a configurable simulated machine.
//!
//! ```text
//! dxsim --trace FILE [machine options]
//!
//! machine options:
//!   --procs P       processors             (default 8)
//!   --delay D       bank delay d           (default 14, J90-like)
//!   --tiers SPEC    per-bank delay tiers, e.g. 0..128=6,128..256=14
//!   --expansion X   banks per processor    (default 32)
//!   --gap G         issue gap g            (default 1)
//!   --latency L     transit latency        (default 0)
//!   --sync L        per-superstep overhead (default 0)
//!   --window W      outstanding requests   (default unbounded)
//!   --sections S --ports R                 sectioned network
//!   --cache LINES --hit H                  per-bank cache
//!   --map hashed|interleaved               bank mapping (default hashed)
//!   --engine epoch|event                   simulator engine (default epoch)
//!   --seed S                               hash draw (default 1995)
//!   --threads N     replay worker threads  (default: available parallelism)
//!   --per-step                             print each superstep
//!   --profile OUT   write a Chrome trace_event profile of the replay
//! ```
//!
//! Prints measured cycles next to the (d,x)-BSP and plain-BSP charges —
//! the paper's predicted-vs-measured methodology on stored traces.
//!
//! The replay streams: supersteps are read off disk in bounded chunks
//! of [`CHUNK`] and their buffers recycled, so replaying a
//! multi-gigabyte trace holds at most `CHUNK` supersteps in memory (the
//! `peak resident supersteps` line reports the realized watermark).
//! The chunk size is fixed regardless of `--threads`, so the printed
//! tables are byte-identical for any worker count.
//!
//! `--profile OUT.json` runs a second, sequential probed replay after
//! the normal one and writes a Chrome `trace_event` profile (load it in
//! chrome://tracing or Perfetto). The probed replay is bit-identical to
//! the main one, so the printed tables do not change — at any thread
//! count.

use dxbsp_bench::runner::{parallel_map_with, set_sweep_threads};
use dxbsp_core::{BankDelayModel, BankMap, CostModel, EngineKind, Interleaved, MachineParams};
use dxbsp_hash::{Degree, HashedBanks};
use dxbsp_machine::{
    Backend, ModelBackend, SessionPool, SimConfig, SimResult, TraceFileReader, TraceStep,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Supersteps resident at once: one chunk is read, fanned across the
/// replay workers, folded into the running totals, and its buffers
/// reused for the next chunk.
const CHUNK: usize = 64;

struct Args {
    trace: Option<String>,
    procs: usize,
    delay: u64,
    delay_given: bool,
    tiers: Option<String>,
    expansion: usize,
    gap: u64,
    latency: u64,
    sync: u64,
    window: Option<usize>,
    sections: Option<(usize, usize)>,
    cache: Option<(usize, u64)>,
    map: String,
    engine: EngineKind,
    seed: u64,
    threads: Option<usize>,
    per_step: bool,
    gantt: bool,
    profile: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        trace: None,
        procs: 8,
        delay: 14,
        delay_given: false,
        tiers: None,
        expansion: 32,
        gap: 1,
        latency: 0,
        sync: 0,
        window: None,
        sections: None,
        cache: None,
        map: "hashed".into(),
        engine: EngineKind::default(),
        seed: 1995,
        threads: None,
        per_step: false,
        gantt: false,
        profile: None,
    };
    let mut sections = None;
    let mut ports = None;
    let mut cache_lines = None;
    let mut cache_hit = 1u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        let parse = |name: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| die(&format!("{name} must be an integer")))
        };
        match a.as_str() {
            "--trace" => args.trace = Some(val("--trace")),
            "--preset" => match val("--preset").as_str() {
                "c90" => {
                    args.procs = 16;
                    args.delay = 6;
                    args.expansion = 64;
                }
                "j90" => {
                    args.procs = 8;
                    args.delay = 14;
                    args.expansion = 32;
                }
                "t90" => {
                    args.procs = 32;
                    args.delay = 4;
                    args.expansion = 32;
                }
                other => die(&format!("unknown preset {other} (c90|j90|t90)")),
            },
            "--procs" => args.procs = parse("--procs", val("--procs")) as usize,
            "--delay" => {
                args.delay = parse("--delay", val("--delay"));
                args.delay_given = true;
            }
            "--tiers" => args.tiers = Some(val("--tiers")),
            "--expansion" => args.expansion = parse("--expansion", val("--expansion")) as usize,
            "--gap" => args.gap = parse("--gap", val("--gap")),
            "--latency" => args.latency = parse("--latency", val("--latency")),
            "--sync" => args.sync = parse("--sync", val("--sync")),
            "--window" => args.window = Some(parse("--window", val("--window")) as usize),
            "--sections" => sections = Some(parse("--sections", val("--sections")) as usize),
            "--ports" => ports = Some(parse("--ports", val("--ports")) as usize),
            "--cache" => cache_lines = Some(parse("--cache", val("--cache")) as usize),
            "--hit" => cache_hit = parse("--hit", val("--hit")),
            "--map" => args.map = val("--map"),
            "--engine" => {
                let v = val("--engine");
                args.engine = EngineKind::parse(&v)
                    .unwrap_or_else(|| die(&format!("unknown engine {v} (epoch|event)")));
            }
            "--seed" => args.seed = parse("--seed", val("--seed")),
            "--threads" => args.threads = Some(parse("--threads", val("--threads")) as usize),
            "--per-step" => args.per_step = true,
            "--gantt" => args.gantt = true,
            "--profile" => args.profile = Some(val("--profile")),
            "--help" | "-h" => {
                println!("usage: dxsim --trace FILE [--preset c90|j90|t90] [--gantt] [--procs P] [--delay D] [--tiers 0..B1=D1,B1..B2=D2,...] [--expansion X] [--gap G] [--latency L] [--sync L] [--window W] [--sections S --ports R] [--cache LINES --hit H] [--map hashed|interleaved] [--engine epoch|event] [--seed S] [--threads N] [--per-step] [--profile OUT.json]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    if let (Some(s), Some(r)) = (sections, ports) {
        args.sections = Some((s, r));
    } else if sections.is_some() || ports.is_some() {
        die("--sections and --ports must be given together");
    }
    args.cache = cache_lines.map(|l| (l, cache_hit));
    validate(&args);
    args
}

/// Rejects configurations the simulator cannot represent before they
/// turn into panics (zero banks, sections that do not tile the banks,
/// cache hits slower than the bank itself).
fn validate(args: &Args) {
    if args.procs == 0 {
        die("--procs must be at least 1");
    }
    if args.delay == 0 {
        die("--delay must be at least 1");
    }
    if args.delay_given && args.tiers.is_some() {
        die("give --delay or --tiers, not both");
    }
    if args.gap == 0 {
        die("--gap must be at least 1");
    }
    if args.expansion == 0 {
        die("--expansion must be at least 1");
    }
    let banks = args
        .procs
        .checked_mul(args.expansion)
        .unwrap_or_else(|| die("--procs x --expansion overflows the bank count"));
    if args.window == Some(0) {
        die("--window must be at least 1");
    }
    if let Some((s, r)) = args.sections {
        if s == 0 || banks % s != 0 {
            die(&format!("--sections must be a nonzero divisor of the bank count ({banks})"));
        }
        if r == 0 {
            die("--ports must be at least 1");
        }
    }
    if let Some((lines, hit)) = args.cache {
        if lines == 0 {
            die("--cache must be at least 1 line");
        }
        if hit == 0 || hit > args.delay {
            die(&format!("--hit must be between 1 and the bank delay ({})", args.delay));
        }
    }
    if args.map != "hashed" && args.map != "interleaved" {
        die(&format!("unknown map {} (hashed|interleaved)", args.map));
    }
    if args.threads == Some(0) {
        die("--threads must be at least 1");
    }
}

/// Parses a `--tiers` spec like `0..128=6,128..256=14` into a per-bank
/// delay model. The half-open ranges must tile the banks contiguously
/// from 0 and cover all of them, mirroring the scenario-TOML `tiers`
/// table.
fn parse_tiers(spec: &str, banks: usize) -> BankDelayModel {
    let mut delays: Vec<u64> = Vec::new();
    for part in spec.split(',') {
        let (range, d) = part
            .split_once('=')
            .unwrap_or_else(|| die(&format!("--tiers segment `{part}` must be START..END=D")));
        let (a, b) = range
            .split_once("..")
            .unwrap_or_else(|| die(&format!("--tiers range `{range}` must be START..END")));
        let start: usize = a
            .trim()
            .parse()
            .unwrap_or_else(|_| die(&format!("--tiers range start `{a}` must be an integer")));
        let end: usize = b
            .trim()
            .parse()
            .unwrap_or_else(|_| die(&format!("--tiers range end `{b}` must be an integer")));
        let d: u64 = d
            .trim()
            .parse()
            .unwrap_or_else(|_| die(&format!("--tiers delay `{d}` must be an integer")));
        if d == 0 {
            die("--tiers delays must be at least 1");
        }
        if start != delays.len() || end <= start {
            die(&format!(
                "--tiers ranges must tile the banks contiguously from 0 (next range must start at {})",
                delays.len()
            ));
        }
        delays.resize(end, d);
    }
    if delays.len() != banks {
        die(&format!("--tiers covers {} banks but the machine has {banks}", delays.len()));
    }
    BankDelayModel::per_bank(delays)
}

/// One superstep's report-table row — O(label) metadata kept instead of
/// the superstep itself, so `--per-step` works on streamed replays.
struct StepMeta {
    label: String,
    requests: usize,
    max_k: usize,
    cycles: u64,
}

/// Everything one streamed replay accrues.
struct Replay {
    supersteps: usize,
    requests: usize,
    measured: u64,
    dx: u64,
    bsp: u64,
    peak_resident: usize,
    per_step: Vec<StepMeta>,
    busiest: Option<(usize, String, SimResult)>,
}

/// Streams the trace off disk chunk by chunk, charging the simulator
/// and both cost models in a single pass. Within a chunk, supersteps
/// fan across the sweep workers (each owning one simulator plus the two
/// model backends, reusing their scratch across its share); supersteps
/// are independent, so the totals are identical to a sequential replay
/// for any worker count — and at most [`CHUNK`] supersteps are ever in
/// memory.
fn replay_stream<M: BankMap + Sync>(
    args: &Args,
    path: &str,
    cfg: SimConfig,
    m: &MachineParams,
    map: &M,
) -> Replay {
    let mut reader = TraceFileReader::open(std::path::Path::new(path))
        .unwrap_or_else(|e| die(&format!("cannot load {path}: {e}")));
    let mut chunk: Vec<TraceStep> = Vec::new();
    let mut rep = Replay {
        supersteps: 0,
        requests: 0,
        measured: 0,
        dx: 0,
        bsp: 0,
        peak_resident: 0,
        per_step: Vec::new(),
        busiest: None,
    };
    loop {
        let mut len = 0;
        while len < CHUNK {
            if chunk.len() == len {
                chunk.push(TraceStep::default());
            }
            match reader.read_step(&mut chunk[len]) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => die(&format!("cannot load {path}: {e}")),
            }
            // Traces record their own processor counts; require consistency.
            let step = &chunk[len];
            if step.pattern.procs() != args.procs {
                die(&format!(
                    "trace was captured for {} processors (step '{}'); pass --procs {}",
                    step.pattern.procs(),
                    step.label,
                    step.pattern.procs()
                ));
            }
            len += 1;
        }
        if len == 0 {
            break;
        }
        rep.peak_resident = rep.peak_resident.max(len);
        let outs = parallel_map_with(
            &chunk[..len],
            || {
                (
                    SessionPool::global().checkout(cfg.clone()),
                    ModelBackend::new(*m, CostModel::DxBsp),
                    ModelBackend::new(*m, CostModel::Bsp),
                )
            },
            |(sim, dxm, bspm), step| {
                (
                    sim.step(&step.pattern, map).into_result(),
                    dxm.step(&step.pattern, map).cycles,
                    bspm.step(&step.pattern, map).cycles,
                )
            },
        );
        for (step, (res, dx, bsp)) in chunk[..len].iter().zip(outs) {
            let idx = rep.supersteps;
            rep.supersteps += 1;
            rep.requests += res.requests;
            rep.measured += res.cycles + step.local_work + cfg.sync_overhead;
            rep.dx += dx + step.local_work + m.l;
            rep.bsp += bsp + step.local_work + m.l;
            if args.per_step {
                let prof = step.pattern.contention_profile();
                rep.per_step.push(StepMeta {
                    label: step.label.clone(),
                    requests: prof.total_requests,
                    max_k: prof.max_location_contention,
                    cycles: res.cycles,
                });
            }
            if args.gantt {
                let better = match &rep.busiest {
                    Some((_, _, best)) => res.cycles >= best.cycles,
                    None => true,
                };
                if better {
                    rep.busiest = Some((idx, step.label.clone(), res));
                }
            }
        }
    }
    rep
}

fn main() {
    let args = parse_args();
    let path = args.trace.clone().unwrap_or_else(|| die("missing --trace FILE"));

    let model = match &args.tiers {
        Some(spec) => parse_tiers(spec, args.procs * args.expansion),
        None => BankDelayModel::uniform(args.delay),
    };
    if let Some((_, hit)) = args.cache {
        if hit > model.min_service() {
            die(&format!(
                "--hit must be between 1 and the fastest tier's delay ({})",
                model.min_service()
            ));
        }
    }
    let m = MachineParams::new(
        args.procs,
        args.gap,
        args.sync,
        model.uniform_summary(),
        args.expansion,
    );
    let mut cfg = SimConfig::from_params(&m)
        .with_delay_model(model.clone())
        .with_latency(args.latency)
        .with_engine(args.engine);
    if let Some(w) = args.window {
        cfg = cfg.with_window(w);
    }
    if let Some((s, r)) = args.sections {
        cfg = cfg.with_sections(s, r);
    }
    if let Some((lines, hit)) = args.cache {
        cfg = cfg.with_bank_cache(lines, hit);
    }
    if args.gantt {
        cfg = cfg.with_event_log();
    }
    if let Some(t) = args.threads {
        set_sweep_threads(t);
    }

    let rep = match args.map.as_str() {
        "interleaved" => replay_stream(&args, &path, cfg.clone(), &m, &Interleaved::new(m.banks())),
        "hashed" => {
            let mut rng = StdRng::seed_from_u64(args.seed);
            let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
            replay_stream(&args, &path, cfg.clone(), &m, &map)
        }
        other => die(&format!("unknown map {other}")),
    };

    println!("machine: p={} g={} L={} d={} x={} (B={})", m.p, m.g, m.l, m.d, m.x, m.banks());
    println!("delay:   {}", model.describe());
    println!("engine:  {}", cfg.engine_in_force().name());
    println!("trace:   {} supersteps, {} requests", rep.supersteps, rep.requests);
    println!("peak resident supersteps: {} (of {})", rep.peak_resident, rep.supersteps);
    println!();
    println!("measured cycles:   {}", rep.measured);
    println!(
        "(d,x)-BSP charge:  {}  (measured/charged = {:.3})",
        rep.dx,
        rep.measured as f64 / rep.dx.max(1) as f64
    );
    println!(
        "plain-BSP charge:  {}  (measured/charged = {:.3})",
        rep.bsp,
        rep.measured as f64 / rep.bsp.max(1) as f64
    );

    if args.per_step {
        println!();
        println!("{:>4} {:>24} {:>10} {:>8} {:>10}", "#", "label", "requests", "max k", "cycles");
        for (i, meta) in rep.per_step.iter().enumerate() {
            println!(
                "{i:>4} {:>24} {:>10} {:>8} {:>10}",
                meta.label, meta.requests, meta.max_k, meta.cycles
            );
        }
    }

    if args.gantt {
        // Show the busiest superstep's occupancy.
        if let Some((idx, label, sr)) = &rep.busiest {
            println!();
            println!("busiest superstep: #{idx} ({label})");
            print!("{}", dxbsp_bench::plot::gantt_from_events(&sr.events, sr.cycles, 12, 64));
        }
    }

    if let Some(out) = &args.profile {
        // A second, sequential probed replay: bit-identical cycles (the
        // differential tests pin this), so everything printed above is
        // unchanged by profiling.
        let profile = match args.map.as_str() {
            "interleaved" => dxbsp_bench::profile_trace(&path, cfg, &Interleaved::new(m.banks())),
            _ => {
                let mut rng = StdRng::seed_from_u64(args.seed);
                let map = HashedBanks::random(Degree::Linear, m.banks(), &mut rng);
                dxbsp_bench::profile_trace(&path, cfg, &map)
            }
        }
        .unwrap_or_else(|e| die(&e.to_string()));
        let json = dxbsp_telemetry::chrome::trace_json(&profile.recorder);
        std::fs::write(out, json)
            .unwrap_or_else(|e| die(&format!("cannot write profile to {out}: {e}")));
        println!();
        println!("profile: {out} ({} supersteps probed)", profile.supersteps);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("dxsim: {msg}");
    std::process::exit(2);
}
