//! `dxtrace` — capture an algorithm's memory-access trace to a file.
//!
//! ```text
//! dxtrace <algorithm> [options] -o trace.dxtr
//!
//! algorithms:
//!   scatter   --n N --contention K          hot-spot scatter (§3 Exp 1)
//!   cc        --n N [--graph random|grid|chain|star] [--m M]
//!   spmv      --n N [--dense D]             CSR SpMV (Fig 12)
//!   randperm  --n N                         dart-throwing permutation
//!   binsearch --n N [--tree M]              QRQW replicated search
//!
//! common options:  --procs P (default 8)   --seed S (default 1995)
//! ```
//!
//! The output replays with `dxsim` on any machine configuration —
//! the trace-driven methodology of the paper's Figure 1 as a tool pair.
//!
//! Capture streams: each algorithm runs through its `*_with` entry
//! point against a `StreamingTracer` whose sink writes every
//! superstep to disk the moment its barrier fires, so the trace is
//! never materialized and capture memory stays O(one superstep) no
//! matter how long the algorithm runs.

use std::fs::File;
use std::io::BufWriter;

use dxbsp_algos::{binary_search, connected, random_perm, spmv, TraceBuilder};
use dxbsp_core::AccessPattern;
use dxbsp_machine::{StepSink, TraceFileWriter, TraceStep};
use dxbsp_workloads::{hotspot_keys, CsrMatrix, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Args {
    algorithm: String,
    n: usize,
    contention: usize,
    graph: String,
    m: Option<usize>,
    dense: usize,
    tree: usize,
    procs: usize,
    seed: u64,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        algorithm: String::new(),
        n: 16 * 1024,
        contention: 1,
        graph: "random".into(),
        m: None,
        dense: 0,
        tree: 16 * 1024,
        procs: 8,
        seed: 1995,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--n" => args.n = val("--n").parse().unwrap_or_else(|_| die("--n must be an integer")),
            "--contention" => {
                args.contention = val("--contention")
                    .parse()
                    .unwrap_or_else(|_| die("--contention must be an integer"));
            }
            "--graph" => args.graph = val("--graph"),
            "--m" => {
                args.m = Some(val("--m").parse().unwrap_or_else(|_| die("--m must be an integer")))
            }
            "--dense" => {
                args.dense =
                    val("--dense").parse().unwrap_or_else(|_| die("--dense must be an integer"));
            }
            "--tree" => {
                args.tree =
                    val("--tree").parse().unwrap_or_else(|_| die("--tree must be an integer"));
            }
            "--procs" => {
                args.procs =
                    val("--procs").parse().unwrap_or_else(|_| die("--procs must be an integer"));
            }
            "--seed" => {
                args.seed =
                    val("--seed").parse().unwrap_or_else(|_| die("--seed must be an integer"))
            }
            "-o" | "--out" => args.out = Some(val("-o")),
            "--help" | "-h" => {
                println!("usage: dxtrace <scatter|cc|spmv|randperm|binsearch> [--n N] [--contention K] [--graph G] [--m M] [--dense D] [--tree M] [--procs P] [--seed S] -o FILE");
                std::process::exit(0);
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other if args.algorithm.is_empty() => args.algorithm = other.to_string(),
            other => die(&format!("unexpected argument {other}")),
        }
    }
    if args.algorithm.is_empty() {
        die("missing algorithm (try --help)");
    }
    if args.procs == 0 {
        die("--procs must be at least 1");
    }
    if args.n == 0 {
        die("--n must be at least 1");
    }
    if args.contention == 0 {
        die("--contention must be at least 1");
    }
    if args.tree == 0 {
        die("--tree must be at least 1");
    }
    args
}

/// The capture sink: accumulates the summary stats and, when `-o` was
/// given, appends each superstep to the trace file as it arrives. The
/// emitted buffer is recycled back to the tracer, so steady-state
/// capture allocates nothing per superstep.
struct CaptureSink {
    writer: Option<(String, TraceFileWriter<BufWriter<File>>)>,
    steps: usize,
    requests: usize,
    max_k: usize,
}

impl CaptureSink {
    fn new(out: Option<&str>) -> Self {
        let writer = out.map(|path| {
            let w = TraceFileWriter::create(std::path::Path::new(path))
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            (path.to_string(), w)
        });
        Self { writer, steps: 0, requests: 0, max_k: 0 }
    }

    /// Patches the trace file's step count and flushes it.
    fn finish(self) {
        if let Some((path, writer)) = self.writer {
            writer.finish().unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        }
    }
}

impl StepSink for CaptureSink {
    fn emit(&mut self, mut step: TraceStep) -> TraceStep {
        self.steps += 1;
        self.requests += step.pattern.len();
        let k = step.pattern.contention_profile().max_location_contention;
        self.max_k = self.max_k.max(k);
        if let Some((path, writer)) = &mut self.writer {
            writer.write_step(&step).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        }
        step.recycle();
        step
    }
}

/// Runs the requested algorithm, streaming its supersteps into `sink`.
fn capture(args: &Args, sink: &mut dyn StepSink) {
    let mut rng = StdRng::seed_from_u64(args.seed);
    let p = args.procs;
    match args.algorithm.as_str() {
        "scatter" => {
            // A single synthesized superstep — no tracer needed.
            let keys = hotspot_keys(args.n, args.contention.min(args.n), 1 << 40, &mut rng);
            sink.emit(TraceStep::new(AccessPattern::scatter(p, &keys)).labeled("scatter"));
        }
        "cc" => {
            let n = args.n;
            let g = match args.graph.as_str() {
                "random" => Graph::random_gnm(n, args.m.unwrap_or(2 * n), &mut rng),
                "grid" => {
                    let side = (n as f64).sqrt() as usize;
                    Graph::grid(side, side)
                }
                "chain" => Graph::chain(n),
                "star" => Graph::star(n),
                other => die(&format!("unknown graph family {other}")),
            };
            let mut tb = TraceBuilder::streaming(p, sink);
            connected::connected_with(&mut tb, &g);
            let _ = tb.finish();
        }
        "spmv" => {
            let a = CsrMatrix::random_with_dense_column(
                args.n,
                args.n,
                4,
                args.dense.min(args.n),
                &mut rng,
            );
            let x: Vec<f64> = (0..args.n).map(|i| i as f64).collect();
            let mut tb = TraceBuilder::streaming(p, sink);
            spmv::spmv_with(&mut tb, &a, &x);
            let _ = tb.finish();
        }
        "randperm" => {
            let mut tb = TraceBuilder::streaming(p, sink);
            random_perm::darts_with(&mut tb, args.n, 1.5, &mut rng);
            let _ = tb.finish();
        }
        "binsearch" => {
            let mut keys: Vec<u64> =
                (0..args.tree).map(|_| rng.random_range(0..1u64 << 40)).collect();
            keys.sort_unstable();
            keys.dedup();
            let queries: Vec<u64> = (0..args.n).map(|_| rng.random_range(0..1u64 << 40)).collect();
            let mut tb = TraceBuilder::streaming(p, sink);
            binary_search::replicated_with(&mut tb, &keys, &queries, 8, false, &mut rng);
            let _ = tb.finish();
        }
        other => die(&format!("unknown algorithm {other} (try --help)")),
    }
}

fn main() {
    let args = parse_args();
    let mut sink = CaptureSink::new(args.out.as_deref());
    capture(&args, &mut sink);
    let (steps, requests, max_k) = (sink.steps, sink.requests, sink.max_k);
    sink.finish();
    match &args.out {
        Some(path) => {
            println!(
                "wrote {path}: {steps} supersteps, {requests} requests, max contention {max_k}"
            );
        }
        None => {
            println!("algorithm: {}", args.algorithm);
            println!("supersteps: {steps}");
            println!("requests:   {requests}");
            println!("max k:      {max_k}");
            println!("(pass -o FILE to save the trace)");
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("dxtrace: {msg}");
    std::process::exit(2);
}
