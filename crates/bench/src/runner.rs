//! Parallel parameter sweeps.
//!
//! Each sweep point is an independent deterministic simulation, so
//! experiments fan points out across OS threads: the input is split
//! into contiguous chunks, one per worker, and each worker returns its
//! results as one contiguous block — no per-item locks. Determinism is
//! preserved because every point derives its RNG from `(seed, point
//! index)`, never from thread identity, and per-worker state is fully
//! reset per point — so the output is byte-identical for any thread
//! count.
//!
//! Workers can carry reusable state ([`parallel_map_with`]): a sweep
//! hands each worker one simulator session whose scratch allocations
//! (bank vectors, event queue, streams) persist across the grid points
//! of its chunk instead of being reallocated per point.
//!
//! The worker count defaults to the machine's available parallelism
//! and can be pinned process-wide ([`set_sweep_threads`]) — the `dxsim`
//! `--threads` flag plumbs through here.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker-count override; 0 means "auto" (available
/// parallelism).
static SWEEP_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Pins the number of sweep worker threads process-wide. `0` restores
/// the default (the machine's available parallelism). Results do not
/// depend on this — only wall-clock time does.
pub fn set_sweep_threads(threads: usize) {
    SWEEP_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count sweeps currently run with.
#[must_use]
pub fn sweep_threads() -> usize {
    match SWEEP_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(4, std::num::NonZero::get),
        n => n,
    }
}

/// Applies `f` to every item, in parallel, preserving order.
///
/// `f` must be deterministic per item for reproducible experiments.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, || (), move |(), item| f(item))
}

/// Like [`parallel_map`], but each worker thread first builds its own
/// state with `init` and threads it through every item of its chunk —
/// the hook that lets a sweep reuse one simulator session (scratch
/// allocations and all) across grid points instead of rebuilding it
/// per point.
///
/// `f` must produce the same result for an item regardless of what the
/// state previously processed (simulator sessions guarantee this: the
/// scratch is reset bit-exactly per run), so the output is identical
/// for any worker count.
pub fn parallel_map_with<T, R, S, I, F>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let threads = sweep_threads().min(items.len());
    if threads <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    // Each worker owns one contiguous chunk of the input and builds its
    // block of results locally; concatenating the blocks in spawn order
    // restores the input order.
    let chunk = items.len().div_ceil(threads);
    let (init, f) = (&init, &f);
    std::thread::scope(|scope| {
        let workers: Vec<_> = items
            .chunks(chunk)
            .map(|block| {
                scope.spawn(move || {
                    let mut state = init();
                    block.iter().map(|item| f(&mut state, item)).collect::<Vec<R>>()
                })
            })
            .collect();
        workers.into_iter().flat_map(|w| w.join().expect("sweep worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out: Vec<u32> = parallel_map(&Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_works() {
        assert_eq!(parallel_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn heavier_work_still_ordered() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map(&items, |&i| {
            // Unequal work per item to shake out ordering bugs.
            (0..(i * 1000)).fold(0usize, |a, b| a.wrapping_add(b)) % 7 + i
        });
        for (i, &v) in out.iter().enumerate() {
            assert!(v >= i && v < i + 7);
        }
    }

    #[test]
    fn chunk_boundaries_do_not_scramble_results() {
        // Lengths around typical core counts exercise uneven last chunks.
        for len in [2usize, 3, 5, 7, 8, 9, 15, 16, 17, 63, 65] {
            let items: Vec<usize> = (0..len).collect();
            let out = parallel_map(&items, |&x| x + 100);
            assert_eq!(out, (100..100 + len).collect::<Vec<_>>(), "len={len}");
        }
    }

    #[test]
    fn worker_state_is_per_thread_and_reused() {
        // Each worker increments its own counter: totals per result
        // reflect positions within a chunk, never cross-thread sharing.
        let items: Vec<usize> = (0..40).collect();
        let out = parallel_map_with(
            &items,
            || 0usize,
            |count, &x| {
                *count += 1;
                (x, *count)
            },
        );
        assert_eq!(out.len(), items.len());
        for (i, &(x, count)) in out.iter().enumerate() {
            assert_eq!(x, i);
            assert!(count >= 1, "state not threaded through");
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u64> = (0..257).collect();
        let mut snapshots = Vec::new();
        for threads in [1usize, 2, 3, 8] {
            set_sweep_threads(threads);
            assert_eq!(sweep_threads(), threads);
            snapshots.push(parallel_map_with(&items, || 7u64, |s, &x| x.wrapping_mul(*s)));
        }
        set_sweep_threads(0);
        for pair in snapshots.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }
}
