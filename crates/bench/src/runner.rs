//! Parallel parameter sweeps.
//!
//! Each sweep point is an independent deterministic simulation, so
//! experiments fan points out across OS threads: a shared atomic work
//! index hands out points, `parking_lot`-guarded slots collect results
//! in order. Determinism is preserved because every point derives its
//! RNG from `(seed, point index)`, never from thread identity.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Applies `f` to every item, in parallel, preserving order.
///
/// `f` must be deterministic per item for reproducible experiments.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let threads = threads.min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock() = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out: Vec<u32> = parallel_map(&Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_works() {
        assert_eq!(parallel_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn heavier_work_still_ordered() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map(&items, |&i| {
            // Unequal work per item to shake out ordering bugs.
            (0..(i * 1000)).fold(0usize, |a, b| a.wrapping_add(b)) % 7 + i
        });
        for (i, &v) in out.iter().enumerate() {
            assert!(v >= i && v < i + 7);
        }
    }
}
