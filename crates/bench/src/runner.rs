//! Parallel parameter sweeps.
//!
//! Each sweep point is an independent deterministic simulation, so
//! experiments fan points out across OS threads: the input is split
//! into contiguous chunks, one per worker, and each worker returns its
//! results as one contiguous block — no per-item locks. Determinism is
//! preserved because every point derives its RNG from `(seed, point
//! index)`, never from thread identity.

/// Applies `f` to every item, in parallel, preserving order.
///
/// `f` must be deterministic per item for reproducible experiments.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    // Each worker owns one contiguous chunk of the input and builds its
    // block of results locally; concatenating the blocks in spawn order
    // restores the input order.
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let workers: Vec<_> = items
            .chunks(chunk)
            .map(|block| scope.spawn(move || block.iter().map(f).collect::<Vec<R>>()))
            .collect();
        workers.into_iter().flat_map(|w| w.join().expect("sweep worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out: Vec<u32> = parallel_map(&Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_works() {
        assert_eq!(parallel_map(&[41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn heavier_work_still_ordered() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map(&items, |&i| {
            // Unequal work per item to shake out ordering bugs.
            (0..(i * 1000)).fold(0usize, |a, b| a.wrapping_add(b)) % 7 + i
        });
        for (i, &v) in out.iter().enumerate() {
            assert!(v >= i && v < i + 7);
        }
    }

    #[test]
    fn chunk_boundaries_do_not_scramble_results() {
        // Lengths around typical core counts exercise uneven last chunks.
        for len in [2usize, 3, 5, 7, 8, 9, 15, 16, 17, 63, 65] {
            let items: Vec<usize> = (0..len).collect();
            let out = parallel_map(&items, |&x| x + 100);
            assert_eq!(out, (100..100 + len).collect::<Vec<_>>(), "len={len}");
        }
    }
}
