//! The built-in scenario definitions.
//!
//! Every experiment the repo reproduces is expressed as a declarative
//! [`Scenario`] here — the same structure a user writes in a `.toml`
//! file for `dxbench run`. The legacy `expN_*` functions are wrappers
//! over these definitions, so "the experiment" and "its scenario file"
//! cannot drift apart. `dxbench dump <name>` prints any of them.

use dxbsp_core::{Axis, DxError, MachineSpec, Scenario, SpecValue, Sweep, WorkloadSpec};

use crate::Scale;

/// The names of all built-in scenarios, in `repro` registry order.
#[must_use]
pub fn builtin_names() -> Vec<&'static str> {
    vec![
        "table1",
        "table2",
        "fig1",
        "exp1",
        "exp2",
        "exp3",
        "exp4",
        "exp4_hybrid",
        "exp1_mixed",
        "exp2_mixed",
        "exp3_mixed",
        "exp4_mixed",
        "exp5",
        "exp6",
        "exp6b",
        "table3",
        "exp7",
        "exp8",
        "exp9",
        "exp10",
        "exp11",
        "exp11b",
        "exp_machines",
        "exp12",
        "exp13",
        "exp14",
        "exp15",
        "exp16",
        "exp17",
        "exp18",
        "exp19",
        "sort_oversample",
        "sort_radix_vs_sample",
        "pstream_scan",
        "pstream_stencil",
        "ablation_mapping",
        "ablation_window",
        "ablation_cache",
        "ablation_injection",
        "ablation_strip",
    ]
}

/// Built-ins whose rendered table is pinned bit-for-bit by a golden
/// CSV under `tests/golden/` (`dxbench list` marks them).
pub const GOLDEN_PINNED: &[&str] = &[
    "exp1",
    "exp2",
    "exp3",
    "fig1",
    "exp1_mixed",
    "exp2_mixed",
    "exp3_mixed",
    "exp4_mixed",
    "sort_oversample",
    "sort_radix_vs_sample",
    "pstream_scan",
    "pstream_stencil",
];

/// Whether the built-in `name` has a pinned golden CSV.
#[must_use]
pub fn has_golden(name: &str) -> bool {
    GOLDEN_PINNED.contains(&name)
}

fn ints(param: &str, values: impl IntoIterator<Item = usize>) -> Axis {
    Axis::ints(param, values.into_iter().map(|v| v as u64))
}

/// Geometric series `1, 1·step, 1·step², … ≤ limit`, plus `limit`
/// itself when `closed` (the Experiment 1/2 contention ladders).
fn geometric(step: usize, limit: usize, closed: bool) -> Vec<usize> {
    let mut v: Vec<usize> = std::iter::successors(Some(1usize), |&k| k.checked_mul(step))
        .take_while(|&k| k <= limit)
        .collect();
    if closed && v.last() != Some(&limit) {
        v.push(limit);
    }
    v
}

/// A custom machine with the paper's `g = 1`, `l = 0` defaults.
fn machine_pdx(p: usize, d: u64, x: usize) -> MachineSpec {
    MachineSpec { p: Some(p), d: Some(d), x: Some(x), ..MachineSpec::default() }
}

/// Build the built-in scenario `name` at the given scale and seed.
///
/// # Errors
///
/// [`DxError::Unknown`] for a name that is not a built-in. Every
/// returned scenario is already validated.
#[allow(clippy::too_many_lines)]
pub fn builtin(name: &str, scale: Scale, seed: u64) -> Result<Scenario, DxError> {
    let n = scale.scatter_n();
    let an = scale.algo_n();
    let sc = match name {
        "table1" => Scenario {
            title: "Table 1: memory banks in commercial high-bandwidth machines".into(),
            notes: vec![
                "Expansion factors far above 1 are the norm; the C90/J90 delays are the paper's."
                    .into(),
            ],
            ..Scenario::new(name, "inventory", seed)
        },
        "table2" => Scenario {
            title: "Table 2: calibrated (d,x)-BSP parameters of the simulated machines".into(),
            n: Some(n),
            sweep: Sweep::new(vec![Axis::strs("machine", ["c90", "j90", "mixed"])]),
            notes: vec![format!("fitted from {n}-request hammer and unit-stride micro-patterns")],
            ..Scenario::new(name, "calibration", seed)
        },
        "table3" => {
            let hn = match scale {
                Scale::Quick => 1usize << 18,
                Scale::Full => 1 << 21,
            };
            Scenario {
                title: "Table 3: hash-function evaluation cost".into(),
                n: Some(hn),
                notes: vec![
                    "paper reports Cray C90 clocks/element; ordering and rough ratios are the claim"
                        .into(),
                ],
                ..Scenario::new(name, "hash-cost", seed)
            }
            .with_param("trials", SpecValue::Int(scale.trials() as i64))
        }
        "fig1" => Scenario {
            title: format!(
                "Figure 1: CC-trace access patterns, measured vs. predicted (n={an}, J90-like)"
            ),
            n: Some(an),
            workload: WorkloadSpec::CcGraph { star_leaves: an / 4, edges_per_node: 2, salt: 0xF1 },
            notes: vec![
                "high-contention steps (the star's hooks/shortcuts) blow past the BSP prediction"
                    .into(),
            ],
            ..Scenario::new(name, "cc-trace", seed)
        },
        "exp1" => Scenario {
            title: format!("Experiment 1: scatter vs. contention (n={n}, p=8, d=14, x=32)"),
            n: Some(n),
            workload: WorkloadSpec::Hotspot { range: 1 << 40 },
            sweep: Sweep::new(vec![ints("k", geometric(4, n, true))]),
            notes: vec![
                "paper Fig: BSP stays flat while measured time grows with slope d·k past the knee"
                    .into(),
            ],
            ..Scenario::new(name, "scatter-sweep", seed)
        },
        "exp2" => {
            let k = n / 8;
            Scenario {
                title: format!("Experiment 2: duplicating a contention-{k} location (n={n})"),
                n: Some(n),
                workload: WorkloadSpec::DuplicatedHotspot { range: 1 << 40 },
                sweep: Sweep::new(vec![ints("copies", geometric(2, k, false))]),
                models: vec!["dxbsp".into()],
                notes: vec![
                    "each copy absorbs ⌈k/c⌉ requests; enough copies restores the flat regime"
                        .into(),
                ],
                ..Scenario::new(name, "scatter-sweep", seed)
            }
            .with_param("k", SpecValue::Int(k as i64))
        }
        "exp3" => Scenario {
            title: format!("Experiment 3: entropy distributions (n={n}, iterated AND)"),
            n: Some(n),
            workload: WorkloadSpec::Entropy { bits: 22, iterations: 8, salt: 0xE27 },
            sweep: Sweep::new(vec![ints("iter", 0..=8)]),
            notes: vec![
                "contention rises with each AND iteration; the (d,x)-BSP keeps tracking it".into(),
            ],
            ..Scenario::new(name, "scatter-sweep", seed)
        },
        "exp4" => Scenario {
            title: format!("Experiment 4: expansion sweep (uniform scatter, n={n}, p=8)"),
            n: Some(n),
            machine: machine_pdx(8, 6, 1),
            workload: WorkloadSpec::Uniform { range: 1 << 40 },
            sweep: Sweep::new(vec![
                ints("x", [1, 2, 4, 8, 16, 32, 64, 128]),
                Axis::ints("d", [6, 14]),
            ]),
            models: vec!["dxbsp".into()],
            notes: vec![
                "the model's even-spread term flattens at x = d; measured time keeps improving a little past it"
                    .into(),
            ],
            ..Scenario::new(name, "scatter-sweep", seed)
        }
        .with_param("report", SpecValue::Str("per-element-by-d".into())),
        "exp4_hybrid" => Scenario {
            title: format!(
                "Experiment 4H: hybrid 100x grid — expansion x delay (hotspot n={n}, k={})",
                n / 2
            ),
            n: Some(n),
            machine: machine_pdx(8, 6, 1),
            workload: WorkloadSpec::Hotspot { range: 1 << 40 },
            sweep: Sweep::new(vec![
                ints("x", [1, 2, 4, 8, 16, 32, 64, 128]),
                ints("d", 6..=205),
            ]),
            models: vec![],
            exec: dxbsp_core::ExecMode::hybrid(0.05),
            notes: vec![
                "1600 grid points vs exp4's 16: classification runs once per x row, every d point is an O(1) closed-form charge within the declared 5% bound"
                    .into(),
            ],
            ..Scenario::new(name, "hybrid-sweep", seed)
        }
        .with_param("k", SpecValue::Int((n / 2) as i64)),
        "exp1_mixed" => Scenario {
            title: format!(
                "Experiment 1M: scatter vs. contention on the mixed-tier machine (n={n})"
            ),
            n: Some(n),
            machine: MachineSpec::preset("mixed"),
            workload: WorkloadSpec::Hotspot { range: 1 << 40 },
            sweep: Sweep::new(vec![ints("k", geometric(4, n, true))]),
            notes: vec![
                "exp1's ladder on the fused C90/J90 machine: the scalar models charge the \
                 slow-tier d=14 everywhere, so they over-predict whenever the binding bank \
                 is a fast SRAM one — the tiered-pred column charges the bank that binds"
                    .into(),
            ],
            ..Scenario::new(name, "scatter-sweep", seed)
        },
        "exp2_mixed" => {
            let k = n / 8;
            Scenario {
                title: format!(
                    "Experiment 2M: duplicating a contention-{k} location on the mixed-tier \
                     machine (n={n})"
                ),
                n: Some(n),
                machine: MachineSpec::preset("mixed"),
                workload: WorkloadSpec::DuplicatedHotspot { range: 1 << 40 },
                sweep: Sweep::new(vec![ints("copies", geometric(2, k, false))]),
                models: vec!["dxbsp".into()],
                notes: vec![
                    "copies land on both tiers; the uniform-d prediction misses that a \
                     fast-tier replica clears its queue 2.3x sooner"
                        .into(),
                ],
                ..Scenario::new(name, "scatter-sweep", seed)
            }
            .with_param("k", SpecValue::Int(k as i64))
        }
        "exp3_mixed" => Scenario {
            title: format!(
                "Experiment 3M: entropy distributions on the mixed-tier machine (n={n})"
            ),
            n: Some(n),
            machine: MachineSpec::preset("mixed"),
            workload: WorkloadSpec::Entropy { bits: 22, iterations: 8, salt: 0xE27 },
            sweep: Sweep::new(vec![ints("iter", 0..=8)]),
            notes: vec![
                "as contention concentrates, which tier hosts the hot bank decides the cost; \
                 uniform d=14 cannot express the distinction"
                    .into(),
            ],
            ..Scenario::new(name, "scatter-sweep", seed)
        },
        "exp4_mixed" => Scenario {
            title: format!(
                "Experiment 4M: degraded-bank ablation on the mixed-tier machine (n={n})"
            ),
            n: Some(n),
            machine: MachineSpec::preset("mixed"),
            workload: WorkloadSpec::Uniform { range: 1 << 40 },
            sweep: Sweep::new(vec![ints("degraded_banks", [0, 1, 8, 32, 128])]),
            models: vec!["dxbsp".into()],
            notes: vec![
                "the first k banks degrade to d=56 (a failing DRAM row): the uniform model \
                 must charge all 256 banks at 56 to stay sound, the tiered term charges \
                 only the banks that are actually slow"
                    .into(),
            ],
            ..Scenario::new(name, "scatter-sweep", seed)
        }
        .with_param("degraded_d", SpecValue::Int(56)),
        "exp_machines" => Scenario {
            title: format!("Machine comparison: contention sweep on both Cray presets (n={n})"),
            n: Some(n),
            workload: WorkloadSpec::Hotspot { range: 1 << 40 },
            sweep: Sweep::new(vec![
                ints("k", [1, 64, 1024, n / 4, n]),
                Axis::strs("machine", ["c90", "j90"]),
            ]),
            models: vec!["dxbsp".into()],
            notes: vec![
                "at high contention the J90 pays d=14 per hot request vs the C90's d=6: ratio → 14/6"
                    .into(),
            ],
            ..Scenario::new(name, "scatter-sweep", seed)
        }
        .with_param("report", SpecValue::Str("by-machine".into())),
        "exp5" => Scenario {
            title: format!("Experiment 5: sectioned network, 8 sections x 2 ports (n={n})"),
            n: Some(n),
            machine: machine_pdx(8, 14, 32),
            notes: vec![
                "(c) saturates one section's ports; paper saw up to 2.5x over prediction".into(),
            ],
            ..Scenario::new(name, "network-sections", seed)
        }
        .with_param("sections", SpecValue::Int(8))
        .with_param("ports", SpecValue::Int(2)),
        "exp6" => Scenario {
            title: format!(
                "Experiment 6: module-map contention vs. expansion (worst-case pattern, n={n})"
            ),
            n: Some(n),
            machine: machine_pdx(8, 14, 1),
            sweep: Sweep::new(vec![ints("x", [1, 2, 4, 8, 16, 32, 64, 128])]),
            notes: vec![
                "ratio → 1 as expansion grows: extra banks absorb hashing imbalance (paper §4)"
                    .into(),
            ],
            ..Scenario::new(name, "modmap", seed)
        },
        "exp6b" => Scenario {
            title: "Experiment 6b: slackness vs. bank-load balance (B=256, linear hash)".into(),
            sweep: Sweep::new(vec![ints("slack", [1, 2, 4, 16, 64, 256])]),
            notes: vec![
                "low slackness: balls-in-bins Θ(log B / log log B) overhead; high slackness: → 1"
                    .into(),
            ],
            ..Scenario::new(name, "slackness", seed)
        }
        .with_param("trials", SpecValue::Int(scale.trials() as i64)),
        "exp7" => Scenario {
            title: format!("Experiment 7: binary search, m={an} tree keys (cycles)"),
            n: Some(an),
            sweep: Sweep::new(vec![ints(
                "queries",
                [an / 16, an / 4, an, an * 4].into_iter().filter(|&q| q >= 64),
            )]),
            notes: vec![
                "bounded replication beats both the contended naive walk and the sort-heavy EREW version"
                    .into(),
            ],
            ..Scenario::new(name, "binary-search", seed)
        },
        "exp8" => Scenario {
            title: "Experiment 8 (Fig 11): random permutation, QRQW darts vs. EREW radix sort (cycles)"
                .into(),
            sweep: Sweep::new(vec![ints("n", [an / 4, an, an * 4])]),
            notes: vec!["paper: the QRQW algorithm wins over a wide range of problem sizes".into()],
            ..Scenario::new(name, "random-perm", seed)
        },
        "exp9" => {
            let mut dense: Vec<usize> = [0usize, 1, 4, 16, 64, 256, 1024]
                .into_iter()
                .map(|d| (d * an) / 1024)
                .chain(std::iter::once(an))
                .collect();
            dense.dedup();
            Scenario {
                title: format!(
                    "Experiment 9 (Fig 12): SpMV vs. dense-column length ({an} rows, 4/row)"
                ),
                n: Some(an),
                sweep: Sweep::new(vec![ints("dense_len", dense)]),
                notes: vec![
                    "measured = whole SpMV; once d·k passes the dense phases the dense column dominates"
                        .into(),
                ],
                ..Scenario::new(name, "spmv", seed)
            }
        }
        "exp10" => Scenario {
            title: format!("Experiment 10: connected components (n={an}, cycles)"),
            n: Some(an),
            workload: WorkloadSpec::GraphFamily { salt: 10 },
            sweep: Sweep::new(vec![Axis::strs("graph", ["random m=2n", "grid", "chain", "star"])]),
            notes: vec![
                "star graphs concentrate hooking/shortcutting on one vertex: the paper's high-contention case"
                    .into(),
            ],
            ..Scenario::new(name, "connected", seed)
        },
        "exp11" => Scenario {
            title: format!("Experiment 11: QRQW emulation work ratio (n={n} vprocs, p=8)"),
            n: Some(n),
            machine: machine_pdx(8, 4, 1),
            sweep: Sweep::new(vec![ints("x", [1, 2, 4, 8, 16, 32, 64])]),
            notes: vec![
                "ratio ≈ d/x while x ≤ d (Thm 5.1), flattening to O(1) once x ≥ d (Thm 5.2)".into(),
            ],
            ..Scenario::new(name, "emulation", seed)
        },
        "exp11b" => Scenario {
            title: format!("Experiment 11b: emulated step cost vs. QRQW contention (n={n})"),
            n: Some(n),
            sweep: Sweep::new(vec![ints("k", [1, 16, 256, 1024, 4096])]),
            notes: vec![
                "measured cost stays under the reconstructed Thm 5.1/5.2 bounds at every k".into(),
            ],
            ..Scenario::new(name, "emulation-contention", seed)
        },
        "exp12" => Scenario {
            title: "Extension E12: list ranking, textbook vs. deactivating Wyllie (cycles)".into(),
            sweep: Sweep::new(vec![ints("n", [an / 4, an, an * 2])]),
            notes: vec![
                "the tail hot spot costs the textbook version d·Θ(n); deactivation removes it"
                    .into(),
            ],
            ..Scenario::new(name, "list-ranking", seed)
        },
        "exp13" => Scenario {
            title: format!("Extension E13: CC variants (n={an}, cycles)"),
            n: Some(an),
            workload: WorkloadSpec::GraphFamily { salt: 13 },
            sweep: Sweep::new(vec![Axis::strs("graph", ["random m=2n", "grid", "chain", "star"])]),
            notes: vec![
                "random mating spreads hook writes but pays more rounds; neither dominates everywhere"
                    .into(),
            ],
            ..Scenario::new(name, "cc-variants", seed)
        },
        "exp14" => Scenario {
            title: format!("Extension E14: Zipf scatters (n={n}, universe 64K)"),
            n: Some(n),
            workload: WorkloadSpec::Zipf { universe: 64 * 1024 },
            sweep: Sweep::new(vec![Axis::floats("s", [0.0, 0.5, 0.8, 1.0, 1.2, 1.5])]),
            notes: vec![
                "Zipf tails add many warm locations; the single-k model still brackets the cost"
                    .into(),
            ],
            ..Scenario::new(name, "scatter-sweep", seed)
        },
        "exp15" => Scenario {
            title: "Extension E15: parallel co-ranking merge".into(),
            sweep: Sweep::new(vec![ints("n", [an / 2, an, an * 2])]),
            notes: vec![
                "boundary searches contend at most p-fold; chunk merges are contention-free sweeps"
                    .into(),
            ],
            ..Scenario::new(name, "merge", seed)
        },
        "exp16" => Scenario {
            title: format!("Extension E16: (d,x)-LogP vs. classic LogP (n={n}, o=2, L=10)"),
            n: Some(n),
            machine: machine_pdx(8, 14, 32),
            sweep: Sweep::new(vec![ints("k", [1, 64, 1024, n / 4, n])]),
            notes: vec![
                "same story as Exp 1: the bank terms rescue LogP exactly as they rescue BSP".into(),
            ],
            ..Scenario::new(name, "logp", seed)
        },
        "exp17" => Scenario {
            title: "Extension E17: max bank load under each hash degree (B=256)".into(),
            n: Some(n),
            sweep: Sweep::new(vec![Axis::strs(
                "pattern",
                ["consecutive", "stride 256", "stride 4096", "bit-reversal", "random-ish"],
            )]),
            notes: vec![
                "all degrees spread these adversaries comparably at this slackness ([EK93]'s finding)"
                    .into(),
            ],
            ..Scenario::new(name, "hash-congestion", seed)
        }
        .with_param("trials", SpecValue::Int(scale.trials() as i64)),
        "exp18" => Scenario {
            title: format!("Extension E18: contention remedies as primitives (n={n})"),
            n: Some(n),
            sweep: Sweep::new(vec![ints("k", [1, 256, 4096, n / 2, n])]),
            notes: vec![
                "duplication flattens reads (Exp 2's fix); combining flattens reducing writes"
                    .into(),
            ],
            ..Scenario::new(name, "remedies", seed)
        },
        "exp19" => Scenario {
            title: "Extension E19: EREW radix sort vs. QRQW sample sort (cycles)".into(),
            sweep: Sweep::new(vec![ints("n", [an / 2, an, an * 2])]),
            notes: vec![
                "bounded splitter contention buys fewer full passes than 8-bit radix on 40-bit keys"
                    .into(),
            ],
            ..Scenario::new(name, "sorts", seed)
        },
        "sort_oversample" => Scenario {
            title: format!("Sorting S1: sample-sort oversampling sweep (n={an}, 40-bit keys)"),
            n: Some(an),
            workload: WorkloadSpec::SortKeys { bits: 40 },
            sweep: Sweep::new(vec![ints("oversample", [1, 2, 4, 8, 16, 32])]),
            notes: vec![
                "more samples tighten bucket balance toward n/buckets while the replicated \
                 splitter lookup keeps its QRQW contention bounded — the streamed run's \
                 peak-resident watermark rides along"
                    .into(),
            ],
            ..Scenario::new(name, "sort-oversample", seed)
        }
        .with_param("buckets", SpecValue::Int(16)),
        "sort_radix_vs_sample" => Scenario {
            title: format!("Sorting S2: EREW radix width vs. QRQW sample sort (n={an}, 40-bit keys)"),
            n: Some(an),
            workload: WorkloadSpec::SortKeys { bits: 40 },
            sweep: Sweep::new(vec![ints("radix_bits", [2, 4, 8, 12])]),
            notes: vec![
                "bounded splitter contention buys a single partition pass; radix pays \
                 ⌈40/width⌉ full EREW passes (and a p·2^width histogram per pass past 8 bits)"
                    .into(),
            ],
            ..Scenario::new(name, "sort-compare", seed)
        }
        .with_param("buckets", SpecValue::Int(16))
        .with_param("oversample", SpecValue::Int(8)),
        "pstream_scan" => Scenario {
            title: "Pstream P1: out-of-core prefix scan, chunk-generated supersteps (chunk=128)"
                .into(),
            workload: WorkloadSpec::PseudoStream { kernel: "scan".into(), chunk: 128 },
            sweep: Sweep::new(vec![ints("n", [an, an * 4, an * 16])]),
            models: vec!["dxbsp".into()],
            notes: vec![
                "the trace never materializes: the peak-resident watermark stays at the \
                 chunk budget while total requests grow 16x"
                    .into(),
            ],
            ..Scenario::new(name, "pstream", seed)
        },
        "pstream_stencil" => Scenario {
            title: "Pstream P2: 1-D stencil stream under the hybrid engine (chunk=128)".into(),
            workload: WorkloadSpec::PseudoStream { kernel: "stencil".into(), chunk: 128 },
            sweep: Sweep::new(vec![ints("n", [an, an * 4, an * 16])]),
            models: vec!["dxbsp".into()],
            exec: dxbsp_core::ExecMode::hybrid(0.05),
            notes: vec![
                "every halo chunk is conflict-free on the interleaved map, so the hybrid \
                 engine charges the whole stream closed-form (modeled == supersteps), \
                 bit-identical to event-level execution"
                    .into(),
            ],
            ..Scenario::new(name, "pstream", seed)
        },
        "ablation_mapping" => Scenario {
            title: format!("Ablation A1: interleaved vs. hashed banks under stride access (n={n})"),
            n: Some(n),
            sweep: Sweep::new(vec![ints("stride", [1, 2, 4, 8, 16, 64, 256, 1024])]),
            notes: vec![
                "power-of-two strides collapse interleaving onto few banks; hashing is stride-oblivious"
                    .into(),
            ],
            ..Scenario::new(name, "mapping-compare", seed)
        },
        "ablation_window" => Scenario {
            title: format!("Ablation A2: outstanding-request window (n={n}, latency=20)"),
            n: Some(n),
            sweep: Sweep::new(vec![ints("window", [1, 2, 4, 8, 16, 64, 0])]),
            notes: vec![
                "the model assumes latency hiding: narrow windows break the prediction, wide ones restore it"
                    .into(),
            ],
            ..Scenario::new(name, "window-ablation", seed)
        },
        "ablation_cache" => Scenario {
            title: format!(
                "Ablation A3: per-bank caches vs. hot-spot contention (n={n}, 8 lines, hit=1)"
            ),
            n: Some(n),
            sweep: Sweep::new(vec![ints("k", [1, 64, 1024, n / 4, n])]),
            notes: vec![
                "a Tera-style bank cache converts d·k serialization into ≈ k cycles at the hot bank"
                    .into(),
            ],
            ..Scenario::new(name, "bank-cache", seed)
        },
        "ablation_injection" => Scenario {
            title: format!("Ablation A4: injection order of the same request multiset (n={n})"),
            n: Some(n),
            workload: WorkloadSpec::Uniform { range: 1 << 24 },
            notes: vec![
                "§7: the (d,x)-BSP ignores injection order; this bounds how much that can matter"
                    .into(),
            ],
            ..Scenario::new(name, "injection-order", seed)
        },
        "ablation_strip" => Scenario {
            title: format!("Ablation A5: vector strip-mining (uniform scatter, n={n})"),
            n: Some(n),
            sweep: Sweep::new(vec![Axis::strs(
                "strip",
                ["none", "vl=64 startup=5", "vl=64 startup=50", "vl=16 startup=50", "vl=4 startup=50"],
            )]),
            notes: vec![
                "Cray-like vl=64 with modest startup stays within a few % of the pipelined model"
                    .into(),
            ],
            ..Scenario::new(name, "strip-mining", seed)
        },
        other => return Err(DxError::unknown("built-in scenario", other.to_string())),
    };
    sc.validate()?;
    Ok(sc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_validates_at_both_scales() {
        for name in builtin_names() {
            for scale in [Scale::Quick, Scale::Full] {
                let sc = builtin(name, scale, 1).unwrap();
                assert_eq!(sc.name, name);
                sc.validate().unwrap();
            }
        }
    }

    #[test]
    fn every_builtin_round_trips_through_toml_and_json() {
        for name in builtin_names() {
            let sc = builtin(name, Scale::Quick, 42).unwrap();
            let toml = sc.to_toml();
            let back = Scenario::from_toml(&toml).unwrap_or_else(|e| panic!("{name}: {e}\n{toml}"));
            assert_eq!(sc, back, "TOML round-trip for {name}");
            let json = sc.to_json();
            let back = Scenario::from_json(&json).unwrap();
            assert_eq!(sc, back, "JSON round-trip for {name}");
        }
    }

    #[test]
    fn unknown_builtin_is_a_clean_error() {
        let err = builtin("exp99", Scale::Quick, 0).unwrap_err();
        assert!(err.to_string().contains("exp99"), "{err}");
    }

    #[test]
    fn builtin_kinds_are_registered() {
        let kinds = crate::sweep::kinds();
        for name in builtin_names() {
            let sc = builtin(name, Scale::Quick, 0).unwrap();
            assert!(kinds.contains(&sc.kind.as_str()), "{name} kind {} unregistered", sc.kind);
        }
    }
}
