//! `dxbench storm` — a load generator for `dxserved`.
//!
//! Storm replays a scenario grid against a running server from many
//! concurrent clients and verifies the *service contract*, not just
//! liveness: every response's JSON-lines body must be byte-identical
//! to what `dxbench run --json` would print for the same spec, no
//! record may be lost or duplicated, and overload must surface as a
//! clean `503` (which storm retries and counts) rather than a dropped
//! connection. Latencies go into the telemetry log-bucket histogram;
//! cache hit/miss/shed deltas are scraped from `/metrics`, which is
//! also run through the Prometheus linter.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dxbsp_core::{DxError, Scenario};
use dxbsp_telemetry::prometheus;
use dxbsp_telemetry::LogHistogram;

use crate::http;
use crate::record::records_to_jsonl;
use crate::service::finalize_records;
use crate::sweep::run_scenario;

/// Load-generation knobs.
#[derive(Debug, Clone)]
pub struct StormOpts {
    /// `host:port` of the running `dxserved`.
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Total requests to issue across all clients.
    pub requests: usize,
    /// Distinct scenario variants (seeds `seed..seed+variants`)
    /// cycled across requests — >1 exercises both cache misses and
    /// hits on repeated sweeps.
    pub variants: u64,
    /// Reuse one persistent connection per client (HTTP keep-alive
    /// with `Content-Length`-framed responses) instead of a fresh
    /// connection per request. Bytes are verified identically.
    pub keep_alive: bool,
}

impl Default for StormOpts {
    fn default() -> Self {
        StormOpts {
            addr: String::new(),
            clients: 16,
            requests: 1000,
            variants: 2,
            keep_alive: false,
        }
    }
}

/// What a storm run observed.
#[derive(Debug)]
pub struct StormReport {
    /// Requests issued (and answered `200`).
    pub ok: usize,
    /// `503 Overloaded` responses absorbed by retry.
    pub shed_retries: u64,
    /// Total JSON-lines records received.
    pub records: usize,
    /// Records expected (`requests × records-per-run`).
    pub expected_records: usize,
    /// Responses whose bytes differed from the local reference.
    pub mismatches: usize,
    /// Wall-clock for the whole storm.
    pub elapsed: Duration,
    /// Per-request latency, log-bucketed (µs).
    pub latency_us: LogHistogram,
    /// Cache hits gained server-side during the storm.
    pub cache_hits: u64,
    /// Cache misses gained server-side during the storm.
    pub cache_misses: u64,
    /// Requests the server shed during the storm.
    pub shed: u64,
    /// Samples in the final `/metrics` scrape (it linted clean).
    pub metric_samples: usize,
}

impl StormReport {
    /// True when the contract held: every request answered, bytes
    /// identical, nothing lost or duplicated.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.mismatches == 0 && self.records == self.expected_records
    }

    /// Server-side cache hit rate over the storm window.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Human-readable summary.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn render(&self) -> String {
        let secs = self.elapsed.as_secs_f64().max(1e-9);
        let mut out = String::new();
        out.push_str(&format!(
            "storm: {} requests in {:.2}s ({:.0} req/s), {} records ({} expected)\n",
            self.ok,
            secs,
            self.ok as f64 / secs,
            self.records,
            self.expected_records,
        ));
        out.push_str(&format!(
            "latency: p50 {}µs  p90 {}µs  p99 {}µs  max {}µs\n",
            self.latency_us.quantile_bound(0.50),
            self.latency_us.quantile_bound(0.90),
            self.latency_us.quantile_bound(0.99),
            self.latency_us.max(),
        ));
        out.push_str(&format!(
            "cache: {} hits / {} misses ({:.1}% hit rate)  shed: {} ({} retried)\n",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.hit_rate(),
            self.shed,
            self.shed_retries,
        ));
        out.push_str(&format!(
            "bytes: {}  metrics: {} samples lint clean\n",
            if self.mismatches == 0 { "identical to dxbench run" } else { "MISMATCHED" },
            self.metric_samples,
        ));
        out
    }
}

/// One counter/gauge sample by exact name from a Prometheus text
/// scrape (histogram series carry suffixes and never collide).
fn scrape(text: &str, name: &str) -> u64 {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            let (n, v) = l.rsplit_once(' ')?;
            (n == name).then(|| v.parse::<f64>().ok())?
        })
        .map_or(0, |v| {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            {
                v.round() as u64
            }
        })
}

fn io_err(what: &str, e: &std::io::Error) -> DxError {
    DxError::invalid(format!("storm: {what}: {e}"))
}

/// Drive the storm: compute local reference outputs for each variant,
/// hammer the server from `opts.clients` threads, and verify every
/// byte. See [`StormReport`].
///
/// # Errors
///
/// [`DxError::Invalid`] for connection failures, non-`200`/`503`
/// responses, metrics that fail the Prometheus linter, or a local
/// reference run failing.
#[allow(clippy::too_many_lines)]
pub fn storm(sc: &Scenario, opts: &StormOpts) -> Result<StormReport, DxError> {
    if opts.clients == 0 || opts.requests == 0 || opts.variants == 0 {
        return Err(DxError::invalid("storm: clients, requests and variants must be > 0"));
    }
    // The scenario grid: one variant per seed. Reference bodies are
    // computed locally through the same service core the server uses,
    // so the comparison is exactly "dxbench run --json would print
    // this".
    let mut bodies = Vec::new();
    let mut expected = Vec::new();
    for i in 0..opts.variants {
        let mut v = sc.clone();
        v.seed = sc.seed.wrapping_add(i);
        let out = run_scenario(&v)?;
        expected.push(records_to_jsonl(&v.name, &finalize_records(&v, &out.records)));
        bodies.push(v.to_toml());
    }
    let per_run: usize = expected.iter().map(|e| e.lines().count()).sum::<usize>() / expected.len();

    let before = http::get(&opts.addr, "/metrics").map_err(|e| io_err("GET /metrics", &e))?;
    let before = before.text();

    let next = AtomicUsize::new(0);
    let shed_retries = AtomicU64::new(0);
    let mismatches = AtomicUsize::new(0);
    let records = AtomicUsize::new(0);
    let ok = AtomicUsize::new(0);
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let started = Instant::now();

    std::thread::scope(|s| {
        for _ in 0..opts.clients {
            s.spawn(|| {
                let mut local_lat = Vec::new();
                // The client's persistent connection in keep-alive
                // mode; dropped (and re-dialed) on any transport
                // error so one broken socket costs one reconnect.
                let mut conn: Option<http::ClientConn> = None;
                let post = |conn: &mut Option<http::ClientConn>, body: &[u8]| {
                    if !opts.keep_alive {
                        return http::post(&opts.addr, "/run", body);
                    }
                    if conn.is_none() {
                        *conn = Some(http::ClientConn::connect(&opts.addr)?);
                    }
                    let c = conn.as_mut().expect("connection just dialed");
                    let resp = c.call("POST", "/run", body);
                    if resp.is_err() {
                        *conn = None;
                    }
                    resp
                };
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= opts.requests {
                        break;
                    }
                    let variant = idx % usize::try_from(opts.variants).unwrap_or(1);
                    let body = bodies[variant].as_bytes();
                    let t0 = Instant::now();
                    let resp = loop {
                        match post(&mut conn, body) {
                            Ok(r) if r.status == 503 => {
                                shed_retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(2));
                            }
                            other => break other,
                        }
                    };
                    let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                    local_lat.push(us);
                    match resp {
                        Ok(r) if r.status == 200 => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            let text = r.text();
                            records.fetch_add(text.lines().count(), Ordering::Relaxed);
                            if text != expected[variant] {
                                mismatches.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(r) => failures
                            .lock()
                            .expect("failure list")
                            .push(format!("request {idx}: HTTP {}", r.status)),
                        Err(e) => failures
                            .lock()
                            .expect("failure list")
                            .push(format!("request {idx}: {e}")),
                    }
                }
                latencies.lock().expect("latency list").extend(local_lat);
            });
        }
    });
    let elapsed = started.elapsed();

    let failures = failures.into_inner().expect("failure list");
    if let Some(first) = failures.first() {
        return Err(DxError::invalid(format!(
            "storm: {} request(s) failed; first: {first}",
            failures.len()
        )));
    }

    let after = http::get(&opts.addr, "/metrics").map_err(|e| io_err("GET /metrics", &e))?;
    let after = after.text();
    let metric_samples = prometheus::lint(&after)
        .map_err(|e| DxError::invalid(format!("storm: /metrics failed lint: {e}")))?;

    let mut latency_us = LogHistogram::new();
    for us in latencies.into_inner().expect("latency list") {
        latency_us.record(us);
    }
    let delta = |name: &str| scrape(&after, name).saturating_sub(scrape(&before, name));
    Ok(StormReport {
        ok: ok.into_inner(),
        shed_retries: shed_retries.into_inner(),
        records: records.into_inner(),
        expected_records: opts.requests * per_run,
        mismatches: mismatches.into_inner(),
        elapsed,
        latency_us,
        cache_hits: delta("dxbsp_service_cache_hits_total"),
        cache_misses: delta("dxbsp_service_cache_misses_total"),
        shed: delta("dxbsp_service_shed_total"),
        metric_samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_reads_exact_names_only() {
        let text = "# HELP x y\ndxbsp_service_cache_hits_total 42\n\
                    dxbsp_service_cache_misses_total 7\n";
        assert_eq!(scrape(text, "dxbsp_service_cache_hits_total"), 42);
        assert_eq!(scrape(text, "dxbsp_service_cache_misses_total"), 7);
        assert_eq!(scrape(text, "dxbsp_service_cache"), 0);
    }

    #[test]
    fn degenerate_opts_are_rejected() {
        let sc = crate::scenarios::builtin("exp1", crate::Scale::Quick, 1).unwrap();
        let opts = StormOpts { addr: "127.0.0.1:1".into(), clients: 0, ..StormOpts::default() };
        assert!(storm(&sc, &opts).unwrap_err().is_invalid());
    }

    #[test]
    fn report_renders_rates() {
        let mut latency_us = LogHistogram::new();
        latency_us.record(100);
        let rep = StormReport {
            ok: 10,
            shed_retries: 1,
            records: 40,
            expected_records: 40,
            mismatches: 0,
            elapsed: Duration::from_millis(500),
            latency_us,
            cache_hits: 8,
            cache_misses: 2,
            shed: 1,
            metric_samples: 30,
        };
        assert!(rep.clean());
        assert!((rep.hit_rate() - 0.8).abs() < 1e-12);
        let text = rep.render();
        assert!(text.contains("80.0% hit rate"), "{text}");
        assert!(text.contains("identical to dxbench run"), "{text}");
    }
}
