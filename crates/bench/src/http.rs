//! A deliberately tiny HTTP/1.1 layer over [`std::net`].
//!
//! `dxserved` and the `dxbench storm` client speak a small, strict
//! subset of HTTP/1.1 — enough for `curl`, Prometheus scrapers and
//! our own tools, with no dependency footprint:
//!
//! * requests carry an optional `Content-Length` body (no chunked
//!   *request* bodies);
//! * by default responses are `Connection: close` and close-delimited,
//!   which is what lets `POST /run` *stream* JSON-lines records: the
//!   server writes and flushes each line as it goes and the body ends
//!   when the socket does — valid HTTP/1.1, zero framing overhead;
//! * a client that sends `Connection: keep-alive` explicitly opts into
//!   persistent connections: the server answers with
//!   `Content-Length`-framed responses ([`respond_framed`]) and reads
//!   the next request off the same socket ([`ServerConn`]). Because
//!   the reader survives between requests, *pipelined* requests —
//!   several sent before the first response is read — are served in
//!   order with nothing dropped. [`ClientConn`] is the client half.
//!
//! Malformed input is an [`io::Error`]: the server turns it into a
//! `400`, never a panic.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on request bodies (a scenario spec is a few KB; 4 MiB is
/// generous) — keeps a hostile `Content-Length` from ballooning.
pub const MAX_BODY: usize = 4 << 20;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path only; no query parsing).
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (lowercase), if any.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client explicitly opted into a persistent
    /// connection. Only `Connection: keep-alive` counts: clients that
    /// send nothing (curl, urllib) get the legacy close-delimited
    /// streaming responses, which is what they parse.
    #[must_use]
    pub fn keep_alive(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Read one request from the stream (request line, headers, and a
/// `Content-Length` body if declared).
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] for malformed syntax or an oversized
/// body, plus any transport error.
pub fn read_request(stream: &TcpStream) -> io::Result<Request> {
    read_request_from(&mut BufReader::new(stream))?.ok_or_else(|| bad("empty request line"))
}

/// Read one request from a persistent reader. `Ok(None)` is a clean
/// EOF at a request boundary — the client hung up between requests,
/// which on a keep-alive connection is not an error.
///
/// # Errors
///
/// As [`read_request`].
pub fn read_request_from<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?.to_string();
    let path = parts.next().ok_or_else(|| bad("request line lacks a target"))?.to_string();
    let version = parts.next().ok_or_else(|| bad("request line lacks a version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported protocol version"));
    }
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().map_err(|_| bad("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    if len > MAX_BODY {
        return Err(bad("request body too large"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { method, path, headers, body }))
}

/// The server half of a (possibly persistent) connection: a buffered
/// reader that survives between requests — so bytes a pipelining
/// client sent early are never discarded — plus the raw stream for
/// writing responses.
#[derive(Debug)]
pub struct ServerConn {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl ServerConn {
    /// Wrap an accepted stream.
    ///
    /// # Errors
    ///
    /// If the stream cannot be cloned for the read half.
    pub fn new(stream: TcpStream) -> io::Result<ServerConn> {
        // Small framed responses must not sit in Nagle's buffer
        // waiting for the client's ACK of the previous exchange.
        stream.set_nodelay(true)?;
        Ok(ServerConn { reader: BufReader::new(stream.try_clone()?), stream })
    }

    /// The next request on the connection; `Ok(None)` when the client
    /// closed cleanly between requests.
    ///
    /// # Errors
    ///
    /// As [`read_request`].
    pub fn next_request(&mut self) -> io::Result<Option<Request>> {
        read_request_from(&mut self.reader)
    }

    /// The write half, for responses.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// Write a response head: status line, standard headers, and the blank
/// line. The body follows on the raw stream — writers that stream
/// (JSON-lines) flush per line; [`respond`] sends a complete body.
///
/// # Errors
///
/// Any transport error.
pub fn write_head(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// Write a complete, close-delimited response.
///
/// # Errors
///
/// Any transport error.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write_head(stream, status, reason, content_type)?;
    stream.write_all(body)?;
    stream.flush()
}

/// Write a complete, `Content-Length`-framed response that keeps the
/// connection open — the keep-alive counterpart of [`respond`].
///
/// # Errors
///
/// Any transport error.
pub fn respond_framed(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// A response as the client sees it.
#[derive(Debug)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// The full (close-delimited) body.
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Client side: one request, one connection. Sends `body` with a
/// `Content-Length`, reads the close-delimited response to EOF.
///
/// # Errors
///
/// Connection failures, transport errors, or a malformed status line.
pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    // Skip response headers; the body is close-delimited.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim_end_matches(['\r', '\n']).is_empty() {
            break;
        }
    }
    let mut body = Vec::new();
    reader.read_to_end(&mut body)?;
    Ok(Response { status, body })
}

/// A persistent client connection: many requests over one socket,
/// with `Content-Length`-framed responses. [`send`](ClientConn::send)
/// and [`read_response`](ClientConn::read_response) are split so a
/// caller can *pipeline* — queue several requests before reading the
/// first response; the server answers in order.
#[derive(Debug)]
pub struct ClientConn {
    addr: String,
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl ClientConn {
    /// Open a persistent connection to `addr`.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> io::Result<ClientConn> {
        let stream = TcpStream::connect(addr)?;
        // `send` writes head then body; without nodelay the second
        // write stalls on Nagle + the peer's delayed ACK (~40ms per
        // request on loopback).
        stream.set_nodelay(true)?;
        Ok(ClientConn {
            addr: addr.to_string(),
            reader: BufReader::new(stream.try_clone()?),
            stream,
        })
    }

    /// Send one request (with `Connection: keep-alive`) without
    /// waiting for its response.
    ///
    /// # Errors
    ///
    /// Any transport error.
    pub fn send(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<()> {
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr,
            body.len()
        )?;
        self.stream.write_all(body)?;
        self.stream.flush()
    }

    /// Read the next response off the connection. Requires the server
    /// to frame with `Content-Length` (which keep-alive responses do);
    /// a close-delimited response is an error — the connection is not
    /// reusable after one.
    ///
    /// # Errors
    ///
    /// Transport errors, a malformed status line, or an unframed
    /// response.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("connection closed before a response"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut len: Option<usize> = None;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed inside response headers"));
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    len = Some(value.trim().parse().map_err(|_| bad("bad content-length"))?);
                }
            }
        }
        let len = len.ok_or_else(|| bad("keep-alive response lacks a content-length"))?;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        Ok(Response { status, body })
    }

    /// One request/response round trip over the persistent connection.
    ///
    /// # Errors
    ///
    /// See [`send`](ClientConn::send) and
    /// [`read_response`](ClientConn::read_response).
    pub fn call(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        self.send(method, path, body)?;
        self.read_response()
    }
}

/// `GET` shorthand.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, &[])
}

/// `POST` shorthand.
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: &str, path: &str, body: &[u8]) -> io::Result<Response> {
    request(addr, "POST", path, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trip a request and a streamed response through a real
    /// socket pair: the client helper against `read_request`/
    /// `write_head` on an ephemeral port.
    #[test]
    fn client_and_server_halves_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let req = read_request(&stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/run");
            assert_eq!(req.body, b"name = \"x\"");
            assert_eq!(req.header("content-length"), Some("10"));
            let mut stream = stream;
            write_head(&mut stream, 200, "OK", "application/jsonl").unwrap();
            // Stream two lines with a flush between — close-delimited.
            stream.write_all(b"{\"a\":1}\n").unwrap();
            stream.flush().unwrap();
            stream.write_all(b"{\"a\":2}\n").unwrap();
        });
        let resp = post(&addr, "/run", b"name = \"x\"").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text(), "{\"a\":1}\n{\"a\":2}\n");
        server.join().unwrap();
    }

    /// A keep-alive connection serves several requests in order, with
    /// framed responses, and sees a clean EOF when the client is done.
    #[test]
    fn keep_alive_round_trips_many_requests_on_one_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = ServerConn::new(stream).unwrap();
            let mut served = 0;
            while let Some(req) = conn.next_request().unwrap() {
                assert!(req.keep_alive());
                let body = format!("echo:{}", String::from_utf8_lossy(&req.body));
                respond_framed(conn.stream_mut(), 200, "OK", "text/plain", body.as_bytes())
                    .unwrap();
                served += 1;
            }
            served
        });
        let mut client = ClientConn::connect(&addr).unwrap();
        for i in 0..3 {
            let resp = client.call("POST", "/x", format!("{i}").as_bytes()).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.text(), format!("echo:{i}"));
        }
        drop(client);
        assert_eq!(server.join().unwrap(), 3);
    }

    /// Pipelining: both requests hit the socket before the first
    /// response is read, and nothing buffered is lost.
    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = ServerConn::new(stream).unwrap();
            while let Some(req) = conn.next_request().unwrap() {
                respond_framed(conn.stream_mut(), 200, "OK", "text/plain", &req.body).unwrap();
            }
        });
        let mut client = ClientConn::connect(&addr).unwrap();
        client.send("POST", "/a", b"first").unwrap();
        client.send("POST", "/b", b"second").unwrap();
        assert_eq!(client.read_response().unwrap().text(), "first");
        assert_eq!(client.read_response().unwrap().text(), "second");
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn plain_requests_do_not_opt_into_keep_alive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let req = read_request(&stream).unwrap();
        assert!(!req.keep_alive());
        client.join().unwrap();
    }

    #[test]
    fn malformed_requests_error_cleanly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"NONSENSE\r\n\r\n").unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let err = read_request(&stream).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        client.join().unwrap();
    }

    #[test]
    fn oversized_bodies_are_rejected_up_front() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let err = read_request(&stream).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        client.join().unwrap();
    }
}
