//! The unified result schema.
//!
//! Every executed scenario point becomes a [`RunRecord`]: named,
//! typed cells split into the *point* (where in the sweep grid the run
//! sits) and the *values* (what was measured, and what each cost model
//! predicted, side by side). Tables are projections of records
//! ([`crate::table::Table::from_cells`]) and the JSON-lines sink
//! ([`records_to_jsonl`]) serializes them one object per line, so a
//! scenario's numbers leave the process exactly once, in one shape.

use dxbsp_core::SpecValue;

use crate::table::fmt_f;

/// One typed cell of a result record.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// An integer (cycle counts, contention, sizes).
    Int(i64),
    /// A float (ratios, per-element costs, entropies).
    Float(f64),
    /// A label (machine names, graph families, orderings).
    Str(String),
}

impl Cell {
    /// An integer cell from any unsigned count.
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds `i64::MAX` (no experiment measures 2^63
    /// cycles).
    #[must_use]
    pub fn int(v: u64) -> Self {
        Cell::Int(i64::try_from(v).expect("count fits i64"))
    }

    /// An integer cell from a size.
    #[must_use]
    pub fn size(v: usize) -> Self {
        Cell::int(v as u64)
    }

    /// A string cell.
    #[must_use]
    pub fn str(v: impl Into<String>) -> Self {
        Cell::Str(v.into())
    }

    /// A cell from a sweep-axis coordinate.
    #[must_use]
    pub fn from_axis(value: &dxbsp_core::AxisValue) -> Self {
        use dxbsp_core::AxisValue;
        match value {
            #[allow(clippy::cast_possible_wrap)]
            AxisValue::Int(v) => Cell::Int(*v as i64),
            AxisValue::Float(v) => Cell::Float(*v),
            AxisValue::Str(v) => Cell::str(v.clone()),
        }
    }

    /// Numeric view (integers widened); `None` for strings.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            #[allow(clippy::cast_precision_loss)]
            Cell::Int(v) => Some(*v as f64),
            Cell::Float(v) => Some(*v),
            Cell::Str(_) => None,
        }
    }

    /// Render for a table cell: integers exactly, floats via
    /// [`fmt_f`], strings verbatim.
    #[must_use]
    pub fn display(&self) -> String {
        match self {
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => fmt_f(*v),
            Cell::Str(v) => v.clone(),
        }
    }

    fn to_spec(&self) -> SpecValue {
        match self {
            Cell::Int(v) => SpecValue::Int(*v),
            Cell::Float(v) => SpecValue::Float(*v),
            Cell::Str(v) => SpecValue::Str(v.clone()),
        }
    }
}

/// One executed run: sweep-point coordinates plus named result values
/// (measurements and model predictions side by side).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    /// Sweep-grid coordinates (`k = 256`, `machine = "c90"`, …).
    pub point: Vec<(String, Cell)>,
    /// Named results (`measured`, `pred_dxbsp`, `k_real`, …).
    pub values: Vec<(String, Cell)>,
    /// Compact telemetry summary (present only when the scenario ran
    /// with probes on; see `dxbsp_telemetry::Recorder::summary`).
    pub telemetry: Option<SpecValue>,
}

impl RunRecord {
    /// Build a record from one row of named cells: the first
    /// `point_cols` columns are sweep coordinates, the rest results.
    #[must_use]
    pub fn from_row(headers: &[&str], row: &[Cell], point_cols: usize) -> Self {
        assert_eq!(headers.len(), row.len(), "record width mismatch");
        let mut rec = RunRecord::default();
        for (i, (h, cell)) in headers.iter().zip(row).enumerate() {
            let slot = if i < point_cols { &mut rec.point } else { &mut rec.values };
            slot.push(((*h).to_string(), cell.clone()));
        }
        rec
    }

    /// Look up a cell by name, points first.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Cell> {
        self.point.iter().chain(&self.values).find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Append a result value (builder-style).
    #[must_use]
    pub fn with(mut self, name: &str, cell: Cell) -> Self {
        self.values.push((name.to_string(), cell));
        self
    }

    /// Attach a telemetry summary (builder-style).
    #[must_use]
    pub fn with_telemetry(mut self, summary: SpecValue) -> Self {
        self.telemetry = Some(summary);
        self
    }

    /// Serialize as one JSON object: `{"scenario": …, "point": {…},
    /// "values": {…}}`.
    #[must_use]
    pub fn to_json(&self, scenario: &str) -> String {
        let pairs = |items: &[(String, Cell)]| {
            SpecValue::Table(items.iter().map(|(k, v)| (k.clone(), v.to_spec())).collect())
        };
        let mut obj = SpecValue::table();
        obj.set("scenario", SpecValue::Str(scenario.to_string()));
        obj.set("point", pairs(&self.point));
        obj.set("values", pairs(&self.values));
        if let Some(t) = &self.telemetry {
            obj.set("telemetry", t.clone());
        }
        obj.to_json()
    }
}

/// Serialize records as JSON-lines (one record object per line).
#[must_use]
pub fn records_to_jsonl(scenario: &str, records: &[RunRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&rec.to_json(scenario));
        out.push('\n');
    }
    out
}

/// Write records as JSON-lines, **flushing after every record** so a
/// streaming consumer (a pipe reader, an HTTP client) sees each line
/// as soon as it is serialized instead of waiting for a block buffer
/// to fill. Bytes are identical to [`records_to_jsonl`].
///
/// # Errors
///
/// Any error from the underlying writer.
pub fn write_records_jsonl<W: std::io::Write>(
    w: &mut W,
    scenario: &str,
    records: &[RunRecord],
) -> std::io::Result<()> {
    for rec in records {
        writeln!(w, "{}", rec.to_json(scenario))?;
        w.flush()?;
    }
    Ok(())
}

/// Serialize just the telemetry payloads as JSON-lines: one
/// `{"scenario": …, "point": {…}, "telemetry": {…}}` object per record
/// that carries a summary. Records without telemetry are skipped.
#[must_use]
pub fn telemetry_to_jsonl(scenario: &str, records: &[RunRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        let Some(t) = &rec.telemetry else { continue };
        let mut obj = SpecValue::table();
        obj.set("scenario", SpecValue::Str(scenario.to_string()));
        obj.set(
            "point",
            SpecValue::Table(rec.point.iter().map(|(k, v)| (k.clone(), v.to_spec())).collect()),
        );
        obj.set("telemetry", t.clone());
        out.push_str(&obj.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_row_splits_point_and_values() {
        let rec = RunRecord::from_row(
            &["k", "measured", "pred_dxbsp"],
            &[Cell::Int(256), Cell::Int(3976), Cell::Int(3584)],
            1,
        );
        assert_eq!(rec.point.len(), 1);
        assert_eq!(rec.values.len(), 2);
        assert_eq!(rec.get("measured"), Some(&Cell::Int(3976)));
        assert_eq!(rec.get("k"), Some(&Cell::Int(256)));
        assert_eq!(rec.get("nope"), None);
    }

    #[test]
    fn jsonl_is_one_parseable_object_per_line() {
        let rec = RunRecord::from_row(
            &["k", "measured", "ratio", "machine"],
            &[Cell::Int(1), Cell::Int(1059), Cell::Float(1.034), Cell::str("j90")],
            1,
        );
        let text = records_to_jsonl("exp1", &[rec.clone(), rec]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = SpecValue::from_json(line).unwrap();
            assert_eq!(v.get("scenario").and_then(SpecValue::as_str), Some("exp1"));
            assert_eq!(v.get("point").unwrap().get("k").and_then(SpecValue::as_int), Some(1));
            let values = v.get("values").unwrap();
            assert_eq!(values.get("measured").and_then(SpecValue::as_int), Some(1059));
            assert_eq!(values.get("ratio").and_then(SpecValue::as_float), Some(1.034));
            assert_eq!(values.get("machine").and_then(SpecValue::as_str), Some("j90"));
        }
    }

    #[test]
    fn telemetry_payload_rides_along_only_when_present() {
        let rec = RunRecord::from_row(&["k", "measured"], &[Cell::Int(4), Cell::Int(99)], 1);
        assert!(!rec.to_json("exp1").contains("telemetry"));
        let mut summary = SpecValue::table();
        summary.set("hot_bank", SpecValue::Int(3));
        let rec = rec.with_telemetry(summary);
        let v = SpecValue::from_json(&rec.to_json("exp1")).unwrap();
        let tele = v.get("telemetry").expect("telemetry object");
        assert_eq!(tele.get("hot_bank").and_then(SpecValue::as_int), Some(3));
    }

    #[test]
    fn telemetry_jsonl_skips_unprobed_records() {
        let plain = RunRecord::from_row(&["k", "measured"], &[Cell::Int(4), Cell::Int(99)], 1);
        let mut summary = SpecValue::table();
        summary.set("requests", SpecValue::Int(64));
        let probed = plain.clone().with_telemetry(summary);
        let text = telemetry_to_jsonl("exp1", &[plain, probed]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "unprobed record is skipped");
        let v = SpecValue::from_json(lines[0]).unwrap();
        assert_eq!(v.get("scenario").and_then(SpecValue::as_str), Some("exp1"));
        assert_eq!(v.get("point").unwrap().get("k").and_then(SpecValue::as_int), Some(4));
        let tele = v.get("telemetry").unwrap();
        assert_eq!(tele.get("requests").and_then(SpecValue::as_int), Some(64));
        assert!(v.get("values").is_none(), "measurement values live in --json, not here");
    }

    #[test]
    fn streaming_writer_is_byte_identical_and_flushes_per_record() {
        struct CountingWriter {
            buf: Vec<u8>,
            flushes: usize,
        }
        impl std::io::Write for CountingWriter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.buf.extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.flushes += 1;
                Ok(())
            }
        }
        let rec = RunRecord::from_row(
            &["k", "measured", "machine"],
            &[Cell::Int(1), Cell::Int(1059), Cell::str("j90")],
            1,
        );
        let records = vec![rec.clone(), rec.clone(), rec];
        let mut w = CountingWriter { buf: Vec::new(), flushes: 0 };
        write_records_jsonl(&mut w, "exp1", &records).unwrap();
        assert_eq!(w.buf, records_to_jsonl("exp1", &records).into_bytes());
        assert_eq!(w.flushes, records.len(), "one flush per record");
    }

    #[test]
    fn cell_display_matches_table_conventions() {
        assert_eq!(Cell::Int(14336).display(), "14336");
        assert_eq!(Cell::Float(1.0).display(), "1.000");
        assert_eq!(Cell::str("star").display(), "star");
    }
}
