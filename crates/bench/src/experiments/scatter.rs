//! §3 scatter experiments: contention sweep (Exp 1), duplication
//! (Exp 2), entropy distributions (Exp 3), expansion sweep (Exp 4).

use dxbsp_core::{predict_scatter, predict_scatter_bsp, ScatterShape};
use dxbsp_workloads::{duplicated_hotspot, entropy_family, hotspot_keys, max_contention};

use crate::runner::parallel_map_with;
use crate::table::{fmt_f, Table};
use crate::Scale;

/// Experiment 1: scatter time vs. maximum location contention `k`.
/// Measured cycles against the (d,x)-BSP and plain-BSP predictions:
/// flat until the knee `d·k > max(g·n/p, d·n/(x·p))`, then slope `d`.
#[must_use]
pub fn exp1_contention(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let n = scale.scatter_n();
    let ks: Vec<usize> = std::iter::successors(Some(1usize), |&k| Some(k * 4))
        .take_while(|&k| k <= n)
        .chain(std::iter::once(n))
        .collect();

    let rows = parallel_map_with(
        &ks,
        || super::backend(&m),
        |be, &k| {
            let mut rng = super::point_rng(seed, k as u64);
            let keys = hotspot_keys(n, k, 1 << 40, &mut rng);
            let k_real = max_contention(&keys);
            let measured = super::measured_scatter_in(be, &m, &keys, seed ^ k as u64);
            let shape = ScatterShape::new(n, k_real);
            (k, k_real, measured, predict_scatter(&m, shape), predict_scatter_bsp(&m, shape))
        },
    );

    let mut t = Table::new(
        format!("Experiment 1: scatter vs. contention (n={n}, p={}, d={}, x={})", m.p, m.d, m.x),
        &["k", "measured", "dxbsp-pred", "bsp-pred", "meas/dxbsp", "meas/bsp"],
    );
    for (k, _k_real, meas, dx, bsp) in rows {
        t.push_row(vec![
            k.to_string(),
            meas.to_string(),
            dx.to_string(),
            bsp.to_string(),
            fmt_f(meas as f64 / dx as f64),
            fmt_f(meas as f64 / bsp as f64),
        ]);
    }
    t.note("paper Fig: BSP stays flat while measured time grows with slope d·k past the knee");
    t
}

/// Experiment 2: duplicating the hot location into `c` copies recovers
/// performance (`k` effective contention drops to `⌈k/c⌉`).
#[must_use]
pub fn exp2_duplication(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let n = scale.scatter_n();
    let k = n / 8;
    let copies: Vec<usize> =
        std::iter::successors(Some(1usize), |&c| Some(c * 2)).take_while(|&c| c <= k).collect();

    let rows = parallel_map_with(
        &copies,
        || super::backend(&m),
        |be, &c| {
            let mut rng = super::point_rng(seed, c as u64);
            let keys = duplicated_hotspot(n, k, c, 1 << 40, &mut rng);
            let measured = super::measured_scatter_in(be, &m, &keys, seed ^ c as u64);
            let predicted = predict_scatter(&m, ScatterShape::new(n, k.div_ceil(c)));
            (c, measured, predicted)
        },
    );

    let mut t = Table::new(
        format!("Experiment 2: duplicating a contention-{k} location (n={n})"),
        &["copies", "measured", "dxbsp-pred", "meas/pred"],
    );
    for (c, meas, pred) in rows {
        t.push_row(vec![
            c.to_string(),
            meas.to_string(),
            pred.to_string(),
            fmt_f(meas as f64 / pred as f64),
        ]);
    }
    t.note("each copy absorbs ⌈k/c⌉ requests; enough copies restores the flat regime");
    t
}

/// Experiment 3: Thearling–Smith entropy distributions — predicted vs.
/// measured as the AND-iterations concentrate the key distribution.
#[must_use]
pub fn exp3_entropy(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let n = scale.scatter_n();
    let iterations = 8usize;
    let mut rng = super::point_rng(seed, 0xE27);
    let family = entropy_family(n, 22, iterations, &mut rng);

    let idx: Vec<usize> = (0..family.len()).collect();
    let rows = parallel_map_with(
        &idx,
        || super::backend(&m),
        |be, &i| {
            let keys = &family[i];
            let k = max_contention(keys);
            let measured = super::measured_scatter_in(be, &m, keys, seed ^ i as u64);
            let shape = ScatterShape::new(n, k);
            (i, k, measured, predict_scatter(&m, shape), predict_scatter_bsp(&m, shape))
        },
    );

    let mut t = Table::new(
        format!("Experiment 3: entropy distributions (n={n}, iterated AND)"),
        &["iters", "max k", "measured", "dxbsp-pred", "bsp-pred", "meas/dxbsp"],
    );
    for (i, k, meas, dx, bsp) in rows {
        t.push_row(vec![
            i.to_string(),
            k.to_string(),
            meas.to_string(),
            dx.to_string(),
            bsp.to_string(),
            fmt_f(meas as f64 / dx as f64),
        ]);
    }
    t.note("contention rises with each AND iteration; the (d,x)-BSP keeps tracking it");
    t
}

/// Experiment 4: effect of the expansion factor — cycles per element of
/// a uniform random scatter as `x` grows, for both Cray bank delays.
/// Banks keep helping beyond `x = d` (queueing variance), the paper's
/// second headline result.
#[must_use]
pub fn exp4_expansion(scale: Scale, seed: u64) -> Table {
    let n = scale.scatter_n();
    let xs: Vec<usize> = [1usize, 2, 4, 8, 16, 32, 64, 128].to_vec();
    let ds = [6u64, 14];

    let mut t = Table::new(
        format!("Experiment 4: expansion sweep (uniform scatter, n={n}, p=8)"),
        &["x", "cyc/elem d=6", "cyc/elem d=14", "pred d=6", "pred d=14"],
    );
    let rows = parallel_map_with(
        &xs,
        || super::backend(&super::default_machine()),
        |be, &x| {
            let mut cells = vec![x.to_string()];
            let mut meas = Vec::new();
            let mut pred = Vec::new();
            for &d in &ds {
                let m = dxbsp_core::MachineParams::new(8, 1, 0, d, x);
                let mut rng = super::point_rng(seed, (x as u64) << 8 | d);
                let keys = dxbsp_workloads::uniform_keys(n, 1 << 40, &mut rng);
                let cycles = super::measured_scatter_in(be, &m, &keys, seed ^ (x as u64 * d));
                meas.push(cycles as f64 / n as f64);
                let k = max_contention(&keys);
                pred.push(predict_scatter(&m, ScatterShape::new(n, k)) as f64 / n as f64);
            }
            cells.extend(meas.iter().map(|&c| fmt_f(c)));
            cells.extend(pred.iter().map(|&c| fmt_f(c)));
            cells
        },
    );
    for row in rows {
        t.push_row(row);
    }
    t.note("the model's even-spread term flattens at x = d; measured time keeps improving a little past it");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp1_bsp_misses_high_contention() {
        let t = exp1_contention(Scale::Quick, 1);
        let meas_over_bsp = t.column_f64(5);
        // At k = n the BSP misprediction is enormous.
        assert!(meas_over_bsp.last().unwrap() > &10.0, "{meas_over_bsp:?}");
        // While the (d,x)-BSP stays within a small constant everywhere.
        for r in t.column_f64(4) {
            assert!(r < 3.0 && r > 0.5, "dxbsp ratio {r}");
        }
    }

    #[test]
    fn exp2_duplication_recovers_flat_time() {
        let t = exp2_duplication(Scale::Quick, 2);
        let measured = t.column_f64(1);
        let first = measured[0];
        let last = *measured.last().unwrap();
        assert!(last < first / 4.0, "duplication did not help: {measured:?}");
    }

    #[test]
    fn exp3_contention_grows_along_family() {
        let t = exp3_entropy(Scale::Quick, 3);
        let k = t.column_f64(1);
        assert!(k.last().unwrap() > &(k[0] * 4.0), "{k:?}");
        for r in t.column_f64(5) {
            assert!(r < 3.0, "dxbsp ratio {r}");
        }
    }

    #[test]
    fn exp4_expansion_improves_underbanked_machines() {
        let t = exp4_expansion(Scale::Quick, 4);
        let d14 = t.column_f64(2);
        // Cycles per scattered element across the whole machine: x=1 is
        // memory-bound near d/(x·p) = 14/8 = 1.75; x=128 approaches the
        // processor floor g/p = 0.125.
        assert!(d14[0] > 1.5, "{d14:?}");
        assert!(d14.last().unwrap() < &0.2, "{d14:?}");
        // Monotone non-increasing (within small noise).
        for w in d14.windows(2) {
            assert!(w[1] <= w[0] * 1.05, "{d14:?}");
        }
    }
}

/// Machine comparison: the same contention sweep on the C90-like
/// (SRAM, d=6, x=64) and J90-like (DRAM, d=14, x=32) presets — the
/// paper validates its model on both and notes "cray C90 results are
/// qualitatively similar".
#[must_use]
pub fn exp_machines(scale: Scale, seed: u64) -> Table {
    use dxbsp_core::presets;
    let n = scale.scatter_n();
    let machines = [("C90", presets::cray_c90()), ("J90", presets::cray_j90())];
    let ks: Vec<usize> = vec![1, 64, 1024, n / 4, n];

    let mut t = Table::new(
        format!("Machine comparison: contention sweep on both Cray presets (n={n})"),
        &["k", "C90 measured", "C90 pred", "J90 measured", "J90 pred", "J90/C90"],
    );
    let rows = parallel_map_with(
        &ks,
        || super::backend(&machines[0].1),
        |be, &k| {
            let mut cells = vec![k.to_string()];
            let mut measured = Vec::new();
            for (_, m) in &machines {
                let mut rng = super::point_rng(seed, (k as u64) << 8 | m.d);
                let keys = hotspot_keys(n, k, 1 << 40, &mut rng);
                let k_real = max_contention(&keys);
                let meas = super::measured_scatter_in(be, m, &keys, seed ^ (k as u64 * m.d));
                measured.push(meas);
                cells.push(meas.to_string());
                cells.push(predict_scatter(m, ScatterShape::new(n, k_real)).to_string());
            }
            cells.push(fmt_f(measured[1] as f64 / measured[0] as f64));
            cells
        },
    );
    for row in rows {
        t.push_row(row);
    }
    t.note("at high contention the J90 pays d=14 per hot request vs the C90's d=6: ratio → 14/6");
    t
}

/// Ablation A4 (§7): the order of injecting messages into the network.
/// The same multiset of requests is issued (a) in workload order,
/// (b) sorted by destination bank — maximal burstiness per bank — and
/// (c) bank-interleaved (round-robin over banks) — minimal burstiness.
#[must_use]
pub fn ablation_injection_order(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let n = scale.scatter_n();
    let mut rng = super::point_rng(seed, 0xA4);
    let keys = dxbsp_workloads::uniform_keys(n, 1 << 24, &mut rng);
    let map = super::hashed_map(&m, seed);
    let mut backend = super::backend(&m);

    // Per-processor reorderings of the same element set.
    let original = dxbsp_core::AccessPattern::scatter(m.p, &keys);
    let mut sorted_keys = keys.clone();
    sorted_keys.sort_unstable_by_key(|&a| {
        use dxbsp_core::BankMap;
        map.bank_of(a)
    });
    let sorted = dxbsp_core::AccessPattern::scatter(m.p, &sorted_keys);
    // Round-robin over banks: take one element per bank in rotation.
    let mut by_bank: Vec<Vec<u64>> = vec![Vec::new(); m.banks()];
    for &a in &keys {
        use dxbsp_core::BankMap;
        by_bank[map.bank_of(a)].push(a);
    }
    let mut interleaved_keys = Vec::with_capacity(n);
    let mut level = 0usize;
    while interleaved_keys.len() < n {
        for bank in &by_bank {
            if let Some(&a) = bank.get(level) {
                interleaved_keys.push(a);
            }
        }
        level += 1;
    }
    let interleaved = dxbsp_core::AccessPattern::scatter(m.p, &interleaved_keys);

    let mut t = Table::new(
        format!("Ablation A4: injection order of the same request multiset (n={n})"),
        &["order", "measured", "total queue wait"],
    );
    for (name, pat) in [
        ("workload order", &original),
        ("sorted by bank", &sorted),
        ("bank-interleaved", &interleaved),
    ] {
        use dxbsp_machine::Backend;
        let res = backend.step(pat, &map).into_result();
        t.push_row(vec![name.into(), res.cycles.to_string(), res.total_queue_wait().to_string()]);
    }
    t.note("§7: the (d,x)-BSP ignores injection order; this bounds how much that can matter");
    t
}

#[cfg(test)]
mod machine_cmp_tests {
    use super::*;

    #[test]
    fn j90_pays_more_per_hot_request() {
        let t = exp_machines(Scale::Quick, 1);
        let ratio = t.column_f64(5);
        // At k=n the ratio approaches d_J90/d_C90 = 14/6 ≈ 2.33.
        let last = *ratio.last().unwrap();
        assert!(last > 1.8 && last < 3.0, "{ratio:?}");
    }

    #[test]
    fn injection_order_moves_queueing_not_throughput_much() {
        let t = ablation_injection_order(Scale::Quick, 2);
        let cycles = t.column_f64(1);
        // All three orders drain within 2x of each other on a balanced
        // machine: the model's order-obliviousness is justified here.
        let max = cycles.iter().cloned().fold(0.0, f64::max);
        let min = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 2.0, "{cycles:?}");
    }
}
