//! §3 scatter experiments: contention sweep (Exp 1), duplication
//! (Exp 2), entropy distributions (Exp 3), expansion sweep (Exp 4),
//! the cross-machine comparison, and the injection-order ablation.
//!
//! All of them are `scatter-sweep` scenarios now: the generic executor
//! [`run_scatter_sweep`] expands the sweep axes, generates the workload
//! family at each point, measures on per-worker simulator sessions and
//! attaches the closed-form predictions. The public `expN_*` functions
//! are thin wrappers over the built-in scenario definitions in
//! [`crate::scenarios`].

use dxbsp_core::{
    pattern_breakdown_delayed, predict_scatter, predict_scatter_bsp, AccessPattern, BankDelayModel,
    DxError, MachineParams, ScatterShape, Scenario, SpecValue, SweepPoint, WorkloadSpec,
};
use dxbsp_telemetry::Recorder;
use dxbsp_workloads::{generate_keys, max_contention, KeyRequest};

use crate::record::{Cell, RunRecord};
use crate::runner::parallel_map_with;
use crate::sweep::{machine_and_delay_for_point, point_n, ScenarioOutput};
use crate::table::Table;
use crate::Scale;

/// One sweep point, resolved ahead of the parallel phase so machine or
/// size errors surface before any worker starts. Shared with
/// [`crate::profile`], which profiles a single prepared point.
pub(crate) struct Prepared {
    pub(crate) pt: SweepPoint,
    pub(crate) m: MachineParams,
    pub(crate) delay: BankDelayModel,
    pub(crate) n: usize,
    pub(crate) req: KeyRequest,
}

pub(crate) fn prepare(sc: &Scenario) -> Result<Vec<Prepared>, DxError> {
    let param_k = sc.param_u64("k", 0)?;
    let param_copies = sc.param_u64("copies", 1)?;
    sc.sweep
        .matrix()
        .into_iter()
        .map(|pt| {
            let (m, delay) = machine_and_delay_for_point(sc, &pt)?;
            let n = point_n(sc, &pt)?;
            let k = pt.u64("k").unwrap_or(param_k);
            let copies = pt.u64("copies").unwrap_or(param_copies);
            let req = KeyRequest {
                n,
                k: usize::try_from(k).map_err(|_| DxError::invalid("k out of range"))?,
                copies: usize::try_from(copies)
                    .map_err(|_| DxError::invalid("copies out of range"))?,
                iteration: usize::try_from(pt.u64("iter").unwrap_or(0))
                    .map_err(|_| DxError::invalid("iter out of range"))?,
                exponent: pt.f64("s").unwrap_or(0.0),
            };
            Ok(Prepared { pt, m, delay, n, req })
        })
        .collect()
}

struct PointResult {
    k_real: usize,
    measured: u64,
    preds: Vec<u64>,
    /// The generalized `max(L, g·h, max_b d_b·R_b)` prediction, present
    /// only at points whose delay model is non-uniform (where the
    /// scalar `pred_*` columns are the uniform-`d` mispredictions the
    /// mixed-tier experiments quantify).
    pred_tiered: Option<u64>,
    telemetry: Option<SpecValue>,
}

/// Whether the workload's contention emerges from the distribution
/// (worth a `max k` column) rather than being dialed in by an axis.
fn contention_is_emergent(wl: &WorkloadSpec) -> bool {
    matches!(
        wl,
        WorkloadSpec::Uniform { .. }
            | WorkloadSpec::Entropy { .. }
            | WorkloadSpec::Zipf { .. }
            | WorkloadSpec::NasIs { .. }
            | WorkloadSpec::GoldenDistinct { .. }
    )
}

/// The generic scatter-sweep executor: workload keys → one measured
/// superstep per point → predictions from every requested model.
pub fn run_scatter_sweep(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let prepared = prepare(sc)?;
    let base_m = prepared.first().map_or_else(|| sc.machine.resolve(), |p| Ok(p.m))?;
    let duplicated = matches!(sc.workload, WorkloadSpec::DuplicatedHotspot { .. });
    let models = sc.models.clone();
    let results: Vec<Result<PointResult, DxError>> = parallel_map_with(
        &prepared,
        // Workers check a warm session out of the global pool (and
        // inherit the scenario's execution mode and engine): hybrid
        // sweeps charge eligible supersteps closed-form, and
        // `engine = "event"` scenarios pin the per-request oracle.
        || super::pooled_backend_with(&base_m, sc.exec, sc.engine),
        |be, p| {
            let be = &mut **be;
            let salt = p.pt.salt();
            let keys = generate_keys(&sc.workload, &p.req, sc.seed, salt)?;
            let k_real = max_contention(&keys);
            // Probed and unprobed measurements are bit-identical (the
            // differential tests pin this), so the telemetry flag never
            // changes a scenario's numbers — only its payload.
            let (measured, telemetry) = if sc.telemetry {
                let mut rec = Recorder::new();
                rec.set_delay_model(&p.delay);
                let cycles = super::measured_scatter_model_probed_in(
                    be,
                    &p.m,
                    &p.delay,
                    &keys,
                    sc.seed ^ salt,
                    &mut rec,
                );
                (cycles, Some(rec.summary()))
            } else {
                let cycles =
                    super::measured_scatter_model_in(be, &p.m, &p.delay, &keys, sc.seed ^ salt);
                (cycles, None)
            };
            let k_pred = if duplicated { p.req.k.div_ceil(p.req.copies.max(1)) } else { k_real };
            let shape = ScatterShape::new(p.n, k_pred);
            let preds = models
                .iter()
                .map(|model| match model.as_str() {
                    "bsp" => predict_scatter_bsp(&p.m, shape),
                    _ => predict_scatter(&p.m, shape),
                })
                .collect();
            // At non-uniform points, also charge the generalized bank
            // term on the *actual* per-point pattern and mapping — the
            // tiered prediction the scalar models mispredict against.
            let pred_tiered = if p.delay.as_uniform().is_none() {
                let map = super::hashed_map(&p.m, sc.seed ^ salt);
                let pat = AccessPattern::scatter(p.m.p, &keys);
                Some(pattern_breakdown_delayed(&p.m, &p.delay, &pat, &map).total())
            } else {
                None
            };
            Ok(PointResult { k_real, measured, preds, pred_tiered, telemetry })
        },
    );
    let results: Vec<PointResult> = results.into_iter().collect::<Result<_, _>>()?;

    let records: Vec<RunRecord> = prepared
        .iter()
        .zip(&results)
        .map(|(p, r)| {
            let mut rec = RunRecord::default();
            for c in &p.pt.coords {
                rec.point.push((c.axis.clone(), Cell::from_axis(&c.value)));
            }
            rec = rec
                .with("n", Cell::size(p.n))
                .with("k_real", Cell::size(r.k_real))
                .with("measured", Cell::int(r.measured));
            for (model, &pred) in sc.models.iter().zip(&r.preds) {
                rec = rec.with(&format!("pred_{model}"), Cell::int(pred));
            }
            if let Some(tiered) = r.pred_tiered {
                rec = rec.with("pred_tiered", Cell::int(tiered));
                rec = rec.with("delay_model", Cell::str(p.delay.describe()));
            }
            if let Some(t) = &r.telemetry {
                rec = rec.with_telemetry(t.clone());
            }
            rec
        })
        .collect();

    let table = match sc.param_str("report", "generic")? {
        "per-element-by-d" => per_element_by_d_table(sc, &prepared, &results)?,
        "by-machine" => by_machine_table(sc, &prepared, &results)?,
        "generic" => generic_scatter_table(sc, &prepared, &results),
        other => return Err(DxError::unknown("report", other)),
    };
    Ok(ScenarioOutput { records, table })
}

/// The default projection: axis coordinates, emergent contention,
/// measured cycles, one prediction column and one measured/predicted
/// ratio column per model.
fn generic_scatter_table(sc: &Scenario, prepared: &[Prepared], results: &[PointResult]) -> Table {
    let mut headers: Vec<String> = sc.sweep.axes.iter().map(|a| a.param.clone()).collect();
    let emergent = contention_is_emergent(&sc.workload);
    if emergent {
        headers.push("max k".to_string());
    }
    headers.push("measured".to_string());
    for model in &sc.models {
        headers.push(format!("{model}-pred"));
    }
    // Non-uniform sweeps carry the generalized bank-term prediction
    // next to the scalar models it corrects. Uniform sweeps (all the
    // pinned goldens) never see these columns.
    let tiered = results.iter().any(|r| r.pred_tiered.is_some());
    if tiered {
        headers.push("tiered-pred".to_string());
    }
    for model in &sc.models {
        headers.push(format!("meas/{model}"));
    }
    if tiered {
        headers.push("meas/tiered".to_string());
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<Cell>> = prepared
        .iter()
        .zip(results)
        .map(|(p, r)| {
            let mut row: Vec<Cell> =
                p.pt.coords.iter().map(|c| Cell::from_axis(&c.value)).collect();
            if emergent {
                row.push(Cell::size(r.k_real));
            }
            row.push(Cell::int(r.measured));
            for &pred in &r.preds {
                row.push(Cell::int(pred));
            }
            if tiered {
                row.push(Cell::int(r.pred_tiered.unwrap_or(0)));
            }
            #[allow(clippy::cast_precision_loss)]
            for &pred in &r.preds {
                row.push(Cell::Float(r.measured as f64 / pred as f64));
            }
            #[allow(clippy::cast_precision_loss)]
            if tiered {
                row.push(Cell::Float(
                    r.measured as f64 / r.pred_tiered.unwrap_or(r.measured).max(1) as f64,
                ));
            }
            row
        })
        .collect();
    let mut t = Table::from_cells(scenario_title(sc), &header_refs, &rows);
    for note in &sc.notes {
        t.note(note.clone());
    }
    t
}

/// Experiment 4's projection: rows per `x`, measured and predicted
/// cycles **per element** pivoted over the `d` axis.
fn per_element_by_d_table(
    sc: &Scenario,
    prepared: &[Prepared],
    results: &[PointResult],
) -> Result<Table, DxError> {
    let ds: Vec<u64> = sc
        .sweep
        .axes
        .iter()
        .find(|a| a.param == "d")
        .ok_or_else(|| DxError::invalid("report per-element-by-d needs a `d` axis"))?
        .values
        .iter()
        .filter_map(dxbsp_core::AxisValue::as_u64)
        .collect();
    let mut headers = vec!["x".to_string()];
    headers.extend(ds.iter().map(|d| format!("cyc/elem d={d}")));
    headers.extend(ds.iter().map(|d| format!("pred d={d}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for chunk in prepared.chunks(ds.len()).zip(results.chunks(ds.len())) {
        let (ps, rs) = chunk;
        let x = ps[0].pt.u64("x").ok_or_else(|| {
            DxError::invalid("report per-element-by-d needs an `x` axis before `d`")
        })?;
        #[allow(clippy::cast_precision_loss)]
        let mut row = vec![Cell::int(x)];
        #[allow(clippy::cast_precision_loss)]
        row.extend(ps.iter().zip(rs).map(|(p, r)| Cell::Float(r.measured as f64 / p.n as f64)));
        #[allow(clippy::cast_precision_loss)]
        row.extend(ps.iter().zip(rs).map(|(p, r)| Cell::Float(r.preds[0] as f64 / p.n as f64)));
        rows.push(row);
    }
    let mut t = Table::from_cells(scenario_title(sc), &header_refs, &rows);
    for note in &sc.notes {
        t.note(note.clone());
    }
    Ok(t)
}

/// The machine-comparison projection: rows per leading axis value,
/// measured and predicted pivoted over the `machine` axis, with a
/// last-vs-first measured ratio.
fn by_machine_table(
    sc: &Scenario,
    prepared: &[Prepared],
    results: &[PointResult],
) -> Result<Table, DxError> {
    let machines: Vec<String> = sc
        .sweep
        .axes
        .iter()
        .find(|a| a.param == "machine")
        .ok_or_else(|| DxError::invalid("report by-machine needs a `machine` axis"))?
        .values
        .iter()
        .filter_map(|v| v.as_str().map(str::to_uppercase))
        .collect();
    let lead = sc
        .sweep
        .axes
        .first()
        .ok_or_else(|| DxError::invalid("report by-machine needs a leading axis"))?
        .param
        .clone();
    let mut headers = vec![lead.clone()];
    for name in &machines {
        headers.push(format!("{name} measured"));
        headers.push(format!("{name} pred"));
    }
    headers.push(format!(
        "{}/{}",
        machines.last().map_or("", String::as_str),
        machines.first().map_or("", String::as_str)
    ));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (ps, rs) in prepared.chunks(machines.len()).zip(results.chunks(machines.len())) {
        let mut row = vec![ps[0].pt.get(&lead).map_or(Cell::str("-"), Cell::from_axis)];
        for r in rs {
            row.push(Cell::int(r.measured));
            row.push(Cell::int(r.preds[0]));
        }
        #[allow(clippy::cast_precision_loss)]
        row.push(Cell::Float(rs.last().map_or(0, |r| r.measured) as f64 / rs[0].measured as f64));
        rows.push(row);
    }
    let mut t = Table::from_cells(scenario_title(sc), &header_refs, &rows);
    for note in &sc.notes {
        t.note(note.clone());
    }
    Ok(t)
}

pub(crate) fn scenario_title(sc: &Scenario) -> String {
    if sc.title.is_empty() {
        sc.name.clone()
    } else {
        sc.title.clone()
    }
}

/// Ablation A4 (§7): the order of injecting messages into the network.
/// The same multiset of requests is issued (a) in workload order,
/// (b) sorted by destination bank — maximal burstiness per bank — and
/// (c) bank-interleaved (round-robin over banks) — minimal burstiness.
pub fn run_injection_order(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    use dxbsp_core::BankMap;
    use dxbsp_machine::Backend;
    let m = sc.machine.resolve()?;
    let n = sc.n.ok_or_else(|| DxError::invalid("injection-order needs `n`"))?;
    let salt = sc.param_u64("salt", 0xA4)?;
    if !matches!(sc.workload, WorkloadSpec::Uniform { .. }) {
        return Err(DxError::invalid("injection-order needs a uniform workload"));
    }
    let keys = generate_keys(&sc.workload, &KeyRequest::of(n), sc.seed, salt)?;
    let map = super::hashed_map(&m, sc.seed);
    let mut backend = super::backend(&m);

    // Per-processor reorderings of the same element set.
    let original = dxbsp_core::AccessPattern::scatter(m.p, &keys);
    let mut sorted_keys = keys.clone();
    sorted_keys.sort_unstable_by_key(|&a| map.bank_of(a));
    let sorted = dxbsp_core::AccessPattern::scatter(m.p, &sorted_keys);
    // Round-robin over banks: take one element per bank in rotation.
    let mut by_bank: Vec<Vec<u64>> = vec![Vec::new(); m.banks()];
    for &a in &keys {
        by_bank[map.bank_of(a)].push(a);
    }
    let mut interleaved_keys = Vec::with_capacity(n);
    let mut level = 0usize;
    while interleaved_keys.len() < n {
        for bank in &by_bank {
            if let Some(&a) = bank.get(level) {
                interleaved_keys.push(a);
            }
        }
        level += 1;
    }
    let interleaved = dxbsp_core::AccessPattern::scatter(m.p, &interleaved_keys);

    let headers = ["order", "measured", "total queue wait"];
    let mut rows = Vec::new();
    for (name, pat) in [
        ("workload order", &original),
        ("sorted by bank", &sorted),
        ("bank-interleaved", &interleaved),
    ] {
        let res = backend.step(pat, &map).into_result();
        rows.push(vec![Cell::str(name), Cell::int(res.cycles), Cell::int(res.total_queue_wait())]);
    }
    let records = rows.iter().map(|row| RunRecord::from_row(&headers, row, 1)).collect();
    let mut t = Table::from_cells(scenario_title(sc), &headers, &rows);
    for note in &sc.notes {
        t.note(note.clone());
    }
    Ok(ScenarioOutput { records, table: t })
}

/// Experiment 1: scatter time vs. maximum location contention `k`.
/// Measured cycles against the (d,x)-BSP and plain-BSP predictions:
/// flat until the knee `d·k > max(g·n/p, d·n/(x·p))`, then slope `d`.
#[must_use]
pub fn exp1_contention(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp1", scale, seed)
}

/// Experiment 2: duplicating the hot location into `c` copies recovers
/// performance (`k` effective contention drops to `⌈k/c⌉`).
#[must_use]
pub fn exp2_duplication(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp2", scale, seed)
}

/// Experiment 3: Thearling–Smith entropy distributions — predicted vs.
/// measured as the AND-iterations concentrate the key distribution.
#[must_use]
pub fn exp3_entropy(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp3", scale, seed)
}

/// Experiment 4: effect of the expansion factor — cycles per element of
/// a uniform random scatter as `x` grows, for both Cray bank delays.
/// Banks keep helping beyond `x = d` (queueing variance), the paper's
/// second headline result.
#[must_use]
pub fn exp4_expansion(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp4", scale, seed)
}

/// Machine comparison: the same contention sweep on the C90-like
/// (SRAM, d=6, x=64) and J90-like (DRAM, d=14, x=32) presets — the
/// paper validates its model on both and notes "cray C90 results are
/// qualitatively similar".
#[must_use]
pub fn exp_machines(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp_machines", scale, seed)
}

/// Ablation A4 wrapper: see [`run_injection_order`].
#[must_use]
pub fn ablation_injection_order(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("ablation_injection", scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp1_bsp_misses_high_contention() {
        let t = exp1_contention(Scale::Quick, 1);
        let meas_over_bsp = t.column_f64(5);
        // At k = n the BSP misprediction is enormous.
        assert!(meas_over_bsp.last().unwrap() > &10.0, "{meas_over_bsp:?}");
        // While the (d,x)-BSP stays within a small constant everywhere.
        for r in t.column_f64(4) {
            assert!(r < 3.0 && r > 0.5, "dxbsp ratio {r}");
        }
    }

    #[test]
    fn exp2_duplication_recovers_flat_time() {
        let t = exp2_duplication(Scale::Quick, 2);
        let measured = t.column_f64(1);
        let first = measured[0];
        let last = *measured.last().unwrap();
        assert!(last < first / 4.0, "duplication did not help: {measured:?}");
    }

    #[test]
    fn exp3_contention_grows_along_family() {
        let t = exp3_entropy(Scale::Quick, 3);
        let k = t.column_f64(1);
        assert!(k.last().unwrap() > &(k[0] * 4.0), "{k:?}");
        for r in t.column_f64(5) {
            assert!(r < 3.0, "dxbsp ratio {r}");
        }
    }

    #[test]
    fn exp4_expansion_improves_underbanked_machines() {
        let t = exp4_expansion(Scale::Quick, 4);
        let d14 = t.column_f64(2);
        // Cycles per scattered element across the whole machine: x=1 is
        // memory-bound near d/(x·p) = 14/8 = 1.75; x=128 approaches the
        // processor floor g/p = 0.125.
        assert!(d14[0] > 1.5, "{d14:?}");
        assert!(d14.last().unwrap() < &0.2, "{d14:?}");
        // Monotone non-increasing (within small noise).
        for w in d14.windows(2) {
            assert!(w[1] <= w[0] * 1.05, "{d14:?}");
        }
    }
}

#[cfg(test)]
mod machine_cmp_tests {
    use super::*;

    #[test]
    fn j90_pays_more_per_hot_request() {
        let t = exp_machines(Scale::Quick, 1);
        let ratio = t.column_f64(5);
        // At k=n the ratio approaches d_J90/d_C90 = 14/6 ≈ 2.33.
        let last = *ratio.last().unwrap();
        assert!(last > 1.8 && last < 3.0, "{ratio:?}");
    }

    #[test]
    fn injection_order_moves_queueing_not_throughput_much() {
        let t = ablation_injection_order(Scale::Quick, 2);
        let cycles = t.column_f64(1);
        // All three orders drain within 2x of each other on a balanced
        // machine: the model's order-obliviousness is justified here.
        let max = cycles.iter().cloned().fold(0.0, f64::max);
        let min = cycles.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 2.0, "{cycles:?}");
    }
}
