//! Ablations A2/A3/A5: the latency-hiding window, per-bank caches,
//! and vector strip-mining.
//!
//! The (d,x)-BSP charges supersteps as if processors can keep issuing
//! while earlier requests are in flight — true of vectorized Cray code,
//! not of a blocking-load processor. The `window-ablation` kind bounds
//! the window and shows where the model's predictions stop applying,
//! which is the boundary of the paper's machine class; `bank-cache` and
//! `strip-mining` probe two hardware remedies/second-order effects.

use dxbsp_core::{predict_scatter, DxError, ScatterShape, Scenario};
use dxbsp_machine::{Backend, SimConfig, SimulatorBackend};
use dxbsp_workloads::uniform_keys;

use crate::record::Cell;
use crate::runner::parallel_map;
use crate::sweep::ScenarioOutput;
use crate::table::Table;
use crate::Scale;

/// The `window-ablation` executor: sweep the per-processor
/// outstanding-request window (the `window` axis; 0 = unbounded) for a
/// uniform scatter with nonzero memory latency (param `latency`).
pub fn run_window(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let n = sc.n.ok_or_else(|| DxError::invalid("window-ablation needs `n`"))?;
    let latency = sc.param_u64("latency", 20)?;
    let mut rng = super::point_rng(sc.seed, sc.param_u64("salt", 0xA2)?);
    let keys = uniform_keys(n, 1 << 40, &mut rng);
    let pat = dxbsp_core::AccessPattern::scatter(m.p, &keys);
    let map = super::hashed_map(&m, sc.seed);
    let pred = predict_scatter(&m, ScatterShape::new(n, dxbsp_workloads::max_contention(&keys)));

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let w = pt
            .u64("window")
            .ok_or_else(|| DxError::invalid("window-ablation needs a `window` axis"))?;
        let mut cfg = SimConfig::from_params(&m).with_latency(latency);
        if w > 0 {
            cfg = cfg.with_window(
                usize::try_from(w).map_err(|_| DxError::invalid("window out of range"))?,
            );
        }
        let cycles = SimulatorBackend::new(cfg).step(&pat, &map).cycles;
        #[allow(clippy::cast_precision_loss)]
        Ok(vec![
            if w == 0 { Cell::str("unbounded") } else { Cell::int(w) },
            Cell::int(cycles),
            Cell::Float(cycles as f64 / pred as f64),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["window", "measured", "meas/dxbsp-pred"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `bank-cache` executor (§7 extension): per-bank caches defuse
/// hot-spot contention — "the effects of caching at the memory banks
/// (available on the Tera and discussed by Hsu and Smith \[HS93\])".
/// The d·k serialization becomes ≈ hit_delay·k once the hot line is
/// resident. Sweeps the hot-spot contention `k` axis.
pub fn run_bank_cache(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let n = sc.n.ok_or_else(|| DxError::invalid("bank-cache needs `n`"))?;
    let lines = usize::try_from(sc.param_u64("cache_lines", 8)?)
        .map_err(|_| DxError::invalid("cache_lines out of range"))?;
    let hit = sc.param_u64("cache_hit", 1)?;
    let salt_xor = sc.param_u64("salt_xor", 0xA3)?;
    let map = super::hashed_map(&m, sc.seed);
    let plain_cfg = SimConfig::from_params(&m);
    let cached_cfg = SimConfig::from_params(&m).with_bank_cache(lines, hit);

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let k = pt.u64("k").ok_or_else(|| DxError::invalid("bank-cache needs a `k` axis"))?;
        let k = usize::try_from(k).map_err(|_| DxError::invalid("k out of range"))?;
        let mut rng = super::point_rng(sc.seed, pt.salt() ^ salt_xor);
        let keys = dxbsp_workloads::hotspot_keys(n, k, 1 << 40, &mut rng);
        let pat = dxbsp_core::AccessPattern::scatter(m.p, &keys);
        let p = SimulatorBackend::new(plain_cfg.clone()).step(&pat, &map);
        let c = SimulatorBackend::new(cached_cfg.clone()).step(&pat, &map).into_result();
        let hits: usize = c.banks.iter().map(|b| b.cache_hits).sum();
        #[allow(clippy::cast_precision_loss)]
        Ok(vec![
            Cell::size(k),
            Cell::int(p.cycles),
            Cell::int(c.cycles),
            Cell::Float(p.cycles as f64 / c.cycles as f64),
            Cell::size(hits),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["k", "no cache", "with cache", "speedup", "cache hits"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `strip-mining` executor: Cray processors issue through
/// 64-element vector registers with a startup cost per strip; the
/// `strip` axis (`"none"` or `"vl=V startup=S"`) shows when that
/// second-order effect matters (short strips or big startup) and when
/// the model's perfectly pipelined issue assumption is safe.
pub fn run_strip_mining(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let n = sc.n.ok_or_else(|| DxError::invalid("strip-mining needs `n`"))?;
    let mut rng = super::point_rng(sc.seed, sc.param_u64("salt", 0xA5)?);
    let keys = uniform_keys(n, 1 << 40, &mut rng);
    let pat = dxbsp_core::AccessPattern::scatter(m.p, &keys);
    let map = super::hashed_map(&m, sc.seed);
    let pred = predict_scatter(&m, ScatterShape::new(n, dxbsp_workloads::max_contention(&keys)));

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let spec = pt
            .str("strip")
            .ok_or_else(|| DxError::invalid("strip-mining needs a string `strip` axis"))?;
        let mut cfg = SimConfig::from_params(&m);
        if let Some((vl, startup)) = parse_strip(spec)? {
            cfg = cfg.with_strip_mining(vl, startup);
        }
        let cycles = SimulatorBackend::new(cfg).step(&pat, &map).cycles;
        #[allow(clippy::cast_precision_loss)]
        Ok(vec![Cell::str(spec), Cell::int(cycles), Cell::Float(cycles as f64 / pred as f64)])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["strip", "measured", "meas/dxbsp-pred"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// Parse a `strip` coordinate: `"none"`, or `"vl=64 startup=5"`.
fn parse_strip(spec: &str) -> Result<Option<(usize, u64)>, DxError> {
    if spec == "none" {
        return Ok(None);
    }
    let mut vl = None;
    let mut startup = None;
    for part in spec.split_whitespace() {
        if let Some(v) = part.strip_prefix("vl=") {
            vl = v.parse::<usize>().ok();
        } else if let Some(v) = part.strip_prefix("startup=") {
            startup = v.parse::<u64>().ok();
        }
    }
    match (vl, startup) {
        (Some(vl), Some(su)) if vl > 0 => Ok(Some((vl, su))),
        _ => Err(DxError::invalid(format!(
            "strip coordinate `{spec}` is not `none` or `vl=V startup=S`"
        ))),
    }
}

/// Ablation A2: sweeps the per-processor outstanding-request window for
/// a uniform scatter with nonzero memory latency.
#[must_use]
pub fn ablation_window(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("ablation_window", scale, seed)
}

/// Ablation A3: per-bank caches vs. hot-spot contention.
#[must_use]
pub fn ablation_bank_cache(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("ablation_cache", scale, seed)
}

/// Ablation A5: vector strip-mining vs. the pipelined-issue assumption.
#[must_use]
pub fn ablation_strip_mining(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("ablation_strip", scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_windows_break_the_model() {
        let t = ablation_window(Scale::Quick, 1);
        let ratios = t.column_f64(2);
        // window=1 serializes round trips: far above the prediction.
        assert!(ratios[0] > 5.0, "{ratios:?}");
        // unbounded window matches the model.
        assert!(ratios.last().unwrap() < &2.0, "{ratios:?}");
        // Monotone non-increasing in window size.
        for w in ratios.windows(2) {
            assert!(w[1] <= w[0] * 1.01, "{ratios:?}");
        }
    }

    #[test]
    fn strip_axis_parser_rejects_garbage() {
        assert_eq!(parse_strip("none").unwrap(), None);
        assert_eq!(parse_strip("vl=64 startup=5").unwrap(), Some((64, 5)));
        assert!(parse_strip("vl=64").is_err());
        assert!(parse_strip("vl=0 startup=5").is_err());
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    #[test]
    fn cache_speedup_grows_with_contention() {
        let t = ablation_bank_cache(Scale::Quick, 1);
        let speedup = t.column_f64(3);
        assert!(speedup[0] < 1.5, "no contention, no effect: {speedup:?}");
        assert!(speedup.last().unwrap() > &5.0, "hot spot must benefit: {speedup:?}");
    }
}

#[cfg(test)]
mod strip_tests {
    use super::*;

    #[test]
    fn cray_like_strips_barely_move_the_model() {
        let t = ablation_strip_mining(Scale::Quick, 1);
        let ratios = t.column_f64(2);
        // No strips: ~1. vl=64/startup=5: within ~10%.
        assert!(ratios[0] < 1.2, "{ratios:?}");
        assert!(ratios[1] < 1.25, "{ratios:?}");
        // Pathological vl=4/startup=50 breaks the assumption visibly.
        assert!(ratios.last().unwrap() > &3.0, "{ratios:?}");
        // Monotone: shorter strips / bigger startup never help.
        for w in ratios.windows(2) {
            assert!(w[1] >= w[0] * 0.99, "{ratios:?}");
        }
    }
}
