//! Ablation A2: how the latency-hiding assumption (unbounded
//! outstanding requests) affects the model's validity.
//!
//! The (d,x)-BSP charges supersteps as if processors can keep issuing
//! while earlier requests are in flight — true of vectorized Cray code,
//! not of a blocking-load processor. This ablation bounds the window
//! and shows where the model's predictions stop applying, which is the
//! boundary of the paper's machine class.

use dxbsp_core::{predict_scatter, ScatterShape};
use dxbsp_machine::{Backend, SimConfig, SimulatorBackend};
use dxbsp_workloads::uniform_keys;

use crate::runner::parallel_map;
use crate::table::{fmt_f, Table};
use crate::Scale;

/// Sweeps the per-processor outstanding-request window for a uniform
/// scatter with nonzero memory latency.
#[must_use]
pub fn ablation_window(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let latency = 20u64;
    let n = scale.scatter_n();
    let windows: Vec<Option<usize>> =
        vec![Some(1), Some(2), Some(4), Some(8), Some(16), Some(64), None];

    let mut rng = super::point_rng(seed, 0xA2);
    let keys = uniform_keys(n, 1 << 40, &mut rng);
    let pat = dxbsp_core::AccessPattern::scatter(m.p, &keys);
    let map = super::hashed_map(&m, seed);
    let pred = predict_scatter(&m, ScatterShape::new(n, dxbsp_workloads::max_contention(&keys)));

    let rows = parallel_map(&windows, |w| {
        let mut cfg = SimConfig::from_params(&m).with_latency(latency);
        if let Some(w) = w {
            cfg = cfg.with_window(*w);
        }
        let cycles = SimulatorBackend::new(cfg).step(&pat, &map).cycles;
        (*w, cycles)
    });

    let mut t = Table::new(
        format!("Ablation A2: outstanding-request window (n={n}, latency={latency})"),
        &["window", "measured", "meas/dxbsp-pred"],
    );
    for (w, cycles) in rows {
        t.push_row(vec![
            w.map_or_else(|| "unbounded".into(), |w| w.to_string()),
            cycles.to_string(),
            fmt_f(cycles as f64 / pred as f64),
        ]);
    }
    t.note("the model assumes latency hiding: narrow windows break the prediction, wide ones restore it");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_windows_break_the_model() {
        let t = ablation_window(Scale::Quick, 1);
        let ratios = t.column_f64(2);
        // window=1 serializes round trips: far above the prediction.
        assert!(ratios[0] > 5.0, "{ratios:?}");
        // unbounded window matches the model.
        assert!(ratios.last().unwrap() < &2.0, "{ratios:?}");
        // Monotone non-increasing in window size.
        for w in ratios.windows(2) {
            assert!(w[1] <= w[0] * 1.01, "{ratios:?}");
        }
    }
}

/// Ablation A3 (§7 extension): per-bank caches defuse hot-spot
/// contention — "the effects of caching at the memory banks (available
/// on the Tera and discussed by Hsu and Smith \[HS93\])". The d·k
/// serialization becomes ≈ hit_delay·k once the hot line is resident.
#[must_use]
pub fn ablation_bank_cache(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let n = scale.scatter_n();
    let ks: Vec<usize> = vec![1, 64, 1024, n / 4, n];

    let map = super::hashed_map(&m, seed);
    let plain_cfg = SimConfig::from_params(&m);
    let cached_cfg = SimConfig::from_params(&m).with_bank_cache(8, 1);

    let rows = parallel_map(&ks, |&k| {
        let mut rng = super::point_rng(seed, k as u64 ^ 0xA3);
        let keys = dxbsp_workloads::hotspot_keys(n, k, 1 << 40, &mut rng);
        let pat = dxbsp_core::AccessPattern::scatter(m.p, &keys);
        let p = SimulatorBackend::new(plain_cfg).step(&pat, &map);
        let c = SimulatorBackend::new(cached_cfg).step(&pat, &map).into_result();
        let hits: usize = c.banks.iter().map(|b| b.cache_hits).sum();
        (k, p.cycles, c.cycles, hits)
    });

    let mut t = Table::new(
        format!("Ablation A3: per-bank caches vs. hot-spot contention (n={n}, 8 lines, hit=1)"),
        &["k", "no cache", "with cache", "speedup", "cache hits"],
    );
    for (k, p, c, hits) in rows {
        t.push_row(vec![
            k.to_string(),
            p.to_string(),
            c.to_string(),
            fmt_f(p as f64 / c as f64),
            hits.to_string(),
        ]);
    }
    t.note("a Tera-style bank cache converts d·k serialization into ≈ k cycles at the hot bank");
    t
}

#[cfg(test)]
mod cache_tests {
    use super::*;

    #[test]
    fn cache_speedup_grows_with_contention() {
        let t = ablation_bank_cache(Scale::Quick, 1);
        let speedup = t.column_f64(3);
        assert!(speedup[0] < 1.5, "no contention, no effect: {speedup:?}");
        assert!(speedup.last().unwrap() > &5.0, "hot spot must benefit: {speedup:?}");
    }
}

/// Ablation A5: vector strip-mining. Cray processors issue through
/// 64-element vector registers with a startup cost per strip; this
/// sweep shows when that second-order effect matters (short strips or
/// big startup) and when the model's perfectly pipelined issue
/// assumption is safe.
#[must_use]
pub fn ablation_strip_mining(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let n = scale.scatter_n();
    let mut rng = super::point_rng(seed, 0xA5);
    let keys = uniform_keys(n, 1 << 40, &mut rng);
    let pat = dxbsp_core::AccessPattern::scatter(m.p, &keys);
    let map = super::hashed_map(&m, seed);
    let pred = predict_scatter(&m, ScatterShape::new(n, dxbsp_workloads::max_contention(&keys)));

    let configs: Vec<Option<(usize, u64)>> =
        vec![None, Some((64, 5)), Some((64, 50)), Some((16, 50)), Some((4, 50))];
    let rows = parallel_map(&configs, |c| {
        let mut cfg = SimConfig::from_params(&m);
        if let Some((vl, startup)) = c {
            cfg = cfg.with_strip_mining(*vl, *startup);
        }
        let cycles = SimulatorBackend::new(cfg).step(&pat, &map).cycles;
        (*c, cycles)
    });

    let mut t = Table::new(
        format!("Ablation A5: vector strip-mining (uniform scatter, n={n})"),
        &["strip", "measured", "meas/dxbsp-pred"],
    );
    for (c, cycles) in rows {
        t.push_row(vec![
            c.map_or_else(|| "none".into(), |(vl, su)| format!("vl={vl} startup={su}")),
            cycles.to_string(),
            fmt_f(cycles as f64 / pred as f64),
        ]);
    }
    t.note("Cray-like vl=64 with modest startup stays within a few % of the pipelined model");
    t
}

#[cfg(test)]
mod strip_tests {
    use super::*;

    #[test]
    fn cray_like_strips_barely_move_the_model() {
        let t = ablation_strip_mining(Scale::Quick, 1);
        let ratios = t.column_f64(2);
        // No strips: ~1. vl=64/startup=5: within ~10%.
        assert!(ratios[0] < 1.2, "{ratios:?}");
        assert!(ratios[1] < 1.25, "{ratios:?}");
        // Pathological vl=4/startup=50 breaks the assumption visibly.
        assert!(ratios.last().unwrap() > &3.0, "{ratios:?}");
        // Monotone: shorter strips / bigger startup never help.
        for w in ratios.windows(2) {
            assert!(w[1] >= w[0] * 0.99, "{ratios:?}");
        }
    }
}
