//! Tables 1–3: machine inventory, calibrated parameters, hash costs.

use std::time::Instant;

use dxbsp_core::presets;
use dxbsp_hash::{Degree, PolyHash};
use dxbsp_machine::calibrate;

use crate::table::{fmt_f, Table};
use crate::Scale;

/// Table 1: memory banks vs. processors in commercial machines — the
/// motivation for the expansion factor `x`.
#[must_use]
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: memory banks in commercial high-bandwidth machines",
        &["machine", "procs", "banks", "expansion x", "bank delay d", "source"],
    );
    for row in presets::table1_inventory() {
        t.push_row(vec![
            row.name.to_string(),
            row.processors.to_string(),
            row.banks.to_string(),
            row.expansion().to_string(),
            row.bank_delay.map_or_else(|| "-".into(), |d| d.to_string()),
            match row.provenance {
                presets::Provenance::PaperText => "paper".into(),
                presets::Provenance::Reconstructed => "reconstructed".into(),
            },
        ]);
    }
    t.note("Expansion factors far above 1 are the norm; the C90/J90 delays are the paper's.");
    t
}

/// Table 2: fitted model parameters of the simulated machines — the
/// calibration the paper performs on the real C90/J90.
#[must_use]
pub fn table2(scale: Scale) -> Table {
    let n = scale.scatter_n();
    let mut t = Table::new(
        "Table 2: calibrated (d,x)-BSP parameters of the simulated machines",
        &["machine", "p", "x", "configured d", "fitted d", "configured g", "fitted g"],
    );
    for (name, m) in [("C90-like", presets::cray_c90()), ("J90-like", presets::cray_j90())] {
        let backend = super::backend(&m);
        let cal = calibrate(backend.simulator(), n);
        t.push_row(vec![
            name.into(),
            m.p.to_string(),
            m.x.to_string(),
            m.d.to_string(),
            fmt_f(cal.d),
            m.g.to_string(),
            fmt_f(cal.g),
        ]);
    }
    t.note(format!("fitted from {n}-request hammer and unit-stride micro-patterns"));
    t
}

/// Table 3: evaluation cost of the hash functions (host wall-clock,
/// ns/element; the paper reports Cray clocks/element — the *relative*
/// ordering linear < quadratic < cubic is the reproducible claim).
#[must_use]
pub fn table3(scale: Scale, seed: u64) -> Table {
    let n = match scale {
        Scale::Quick => 1 << 18,
        Scale::Full => 1 << 21,
    };
    let mut rng = super::point_rng(seed, 3);
    let keys: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9E37_79B9)).collect();
    let mut t =
        Table::new("Table 3: hash-function evaluation cost", &["hash", "ns/element", "relative"]);
    let mut base = None;
    for deg in Degree::all() {
        let h = PolyHash::random(deg, 64, 10, &mut rng);
        let mut out = Vec::new();
        // Warm up, then take the best of `trials` timings (least noisy
        // estimator for a tight loop).
        h.eval_batch(&keys, &mut out);
        let mut best = f64::INFINITY;
        for _ in 0..scale.trials() {
            let start = Instant::now();
            h.eval_batch(&keys, &mut out);
            let per = start.elapsed().as_nanos() as f64 / n as f64;
            best = best.min(per);
        }
        std::hint::black_box(&out);
        let rel = base.map_or(1.0, |b: f64| best / b);
        if base.is_none() {
            base = Some(best);
        }
        t.push_row(vec![deg.name().into(), fmt_f(best), fmt_f(rel)]);
    }
    t.note("paper reports Cray C90 clocks/element; ordering and rough ratios are the claim");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_both_crays() {
        let t = table1();
        let names: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(names.contains(&"Cray C90"));
        assert!(names.contains(&"Cray J90"));
    }

    #[test]
    fn table2_calibration_roundtrips() {
        let t = table2(Scale::Quick);
        for row in &t.rows {
            let configured: f64 = row[3].parse().unwrap();
            let fitted: f64 = row[4].parse().unwrap();
            assert!((configured - fitted).abs() / configured < 0.15, "{row:?}");
        }
    }

    #[test]
    fn table3_orders_hash_costs() {
        let t = table3(Scale::Quick, 42);
        let rel = t.column_f64(2);
        assert_eq!(rel.len(), 3);
        assert_eq!(rel[0], 1.0);
        // Host timing noise allows slack, but cubic must not beat linear.
        assert!(rel[2] >= 1.0, "cubic cheaper than linear: {rel:?}");
    }
}
