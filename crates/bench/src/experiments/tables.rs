//! Tables 1–3: machine inventory, calibrated parameters, hash costs.
//!
//! Three scenario kinds live here: `inventory` (static machine table),
//! `calibration` (fit `d`/`g` on each machine of a `machine` axis), and
//! `hash-cost` (host-timed hash evaluation). The public `tableN`
//! functions are wrappers over the built-in scenarios.

use std::time::Instant;

use dxbsp_core::{presets, DxError, Scenario};
use dxbsp_hash::{Degree, PolyHash};
use dxbsp_machine::{calibrate, calibrate_tiers, SimConfig, SimulatorBackend};

use crate::record::Cell;
use crate::sweep::{machine_and_delay_for_point, ScenarioOutput};
use crate::table::Table;
use crate::Scale;

/// The `inventory` executor: the paper's Table 1 rows, straight from
/// the preset registry (no sweep, no measurement).
pub fn run_inventory(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let headers = ["machine", "procs", "banks", "expansion x", "bank delay d", "source"];
    let rows: Vec<Vec<Cell>> = presets::table1_inventory()
        .iter()
        .map(|row| {
            vec![
                Cell::str(row.name),
                Cell::size(row.processors),
                Cell::size(row.banks),
                Cell::size(row.expansion()),
                row.bank_delay.map_or(Cell::str("-"), Cell::int),
                Cell::str(match row.provenance {
                    presets::Provenance::PaperText => "paper",
                    presets::Provenance::Reconstructed => "reconstructed",
                }),
            ]
        })
        .collect();
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `calibration` executor: for every machine on the `machine` axis,
/// fit `d` and `g` from micro-patterns and report them next to the
/// configured values. Machines with non-uniform delay models (the
/// `mixed` preset) calibrate per tier: one row per delay class, each
/// fitted by hammering a bank of that tier.
pub fn run_calibration(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let n = sc.n.ok_or_else(|| DxError::invalid("calibration needs `n`"))?;
    let headers = ["machine", "p", "x", "configured d", "fitted d", "configured g", "fitted g"];
    let mut rows = Vec::new();
    for pt in sc.sweep.matrix() {
        let name = pt
            .str("machine")
            .ok_or_else(|| DxError::invalid("calibration needs a `machine` axis"))?;
        let (m, delay) = machine_and_delay_for_point(sc, &pt)?;
        let backend =
            SimulatorBackend::new(SimConfig::from_params(&m).with_delay_model(delay.clone()));
        let cal = calibrate(backend.simulator(), n);
        if delay.as_uniform().is_some() {
            rows.push(vec![
                Cell::str(format!("{}-like", name.to_uppercase())),
                Cell::size(m.p),
                Cell::size(m.x),
                Cell::int(m.d),
                Cell::Float(cal.d),
                Cell::int(m.g),
                Cell::Float(cal.g),
            ]);
        } else {
            for tier in calibrate_tiers(backend.simulator(), n) {
                rows.push(vec![
                    Cell::str(format!("{}-like d={} tier", name.to_uppercase(), tier.d)),
                    Cell::size(m.p),
                    Cell::size(m.x),
                    Cell::int(tier.d),
                    Cell::Float(tier.fitted),
                    Cell::int(m.g),
                    Cell::Float(cal.g),
                ]);
            }
        }
    }
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `hash-cost` executor: host wall-clock per element for each hash
/// degree (the paper reports Cray clocks/element — the *relative*
/// ordering linear < quadratic < cubic is the reproducible claim).
///
/// The degrees share one RNG stream in order, so this stays a
/// sequential loop rather than a sweep axis.
pub fn run_hash_cost(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let n = sc.n.ok_or_else(|| DxError::invalid("hash-cost needs `n`"))?;
    let trials = usize::try_from(sc.param_u64("trials", 3)?)
        .map_err(|_| DxError::invalid("trials out of range"))?;
    let salt = sc.param_u64("salt", 3)?;
    let mut rng = super::point_rng(sc.seed, salt);
    let keys: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9E37_79B9)).collect();
    let headers = ["hash", "ns/element", "relative"];
    let mut rows = Vec::new();
    let mut base = None;
    for deg in Degree::all() {
        let h = PolyHash::random(deg, 64, 10, &mut rng);
        let mut out = Vec::new();
        // Warm up, then take the best of `trials` timings (least noisy
        // estimator for a tight loop).
        h.eval_batch(&keys, &mut out);
        let mut best = f64::INFINITY;
        for _ in 0..trials {
            let start = Instant::now();
            h.eval_batch(&keys, &mut out);
            #[allow(clippy::cast_precision_loss)]
            let per = start.elapsed().as_nanos() as f64 / n as f64;
            best = best.min(per);
        }
        std::hint::black_box(&out);
        let rel = base.map_or(1.0, |b: f64| best / b);
        if base.is_none() {
            base = Some(best);
        }
        rows.push(vec![Cell::str(deg.name()), Cell::Float(best), Cell::Float(rel)]);
    }
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// Table 1: memory banks vs. processors in commercial machines — the
/// motivation for the expansion factor `x`.
#[must_use]
pub fn table1() -> Table {
    crate::run_builtin("table1", Scale::Quick, 0)
}

/// Table 2: fitted model parameters of the simulated machines — the
/// calibration the paper performs on the real C90/J90.
#[must_use]
pub fn table2(scale: Scale) -> Table {
    crate::run_builtin("table2", scale, 0)
}

/// Table 3: evaluation cost of the hash functions (host wall-clock,
/// ns/element).
#[must_use]
pub fn table3(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("table3", scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_both_crays() {
        let t = table1();
        let names: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(names.contains(&"Cray C90"));
        assert!(names.contains(&"Cray J90"));
    }

    #[test]
    fn table2_calibration_roundtrips() {
        let t = table2(Scale::Quick);
        for row in &t.rows {
            let configured: f64 = row[3].parse().unwrap();
            let fitted: f64 = row[4].parse().unwrap();
            assert!((configured - fitted).abs() / configured < 0.15, "{row:?}");
        }
    }

    #[test]
    fn table3_orders_hash_costs() {
        let t = table3(Scale::Quick, 42);
        let rel = t.column_f64(2);
        assert_eq!(rel.len(), 3);
        assert_eq!(rel[0], 1.0);
        // Host timing noise allows slack, but cubic must not beat linear.
        assert!(rel[2] >= 1.0, "cubic cheaper than linear: {rel:?}");
    }
}
