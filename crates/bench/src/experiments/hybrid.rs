//! The hybrid large-grid sweep: classification reuse across the `d`
//! axis.
//!
//! A `hybrid-sweep` scenario sweeps `x` (outer) × `d` (inner) over one
//! workload. Which bank each key resolves to depends on the bank count
//! `x·p` but not on the bank delay, so the [`Classifier`] runs **once
//! per `x` row** and the resulting [`StepShape`](dxbsp_core::StepShape)
//! is charged closed-form at every `d` point in O(1) — this is what
//! lets a hybrid run cover a grid two orders of magnitude denser than
//! the event-level Experiment 4 in less wall-clock than the original
//! needed. Points the classifier refuses (and every point of a run
//! forced to [`ExecMode::Full`], as `dxbench run --check-hybrid` does)
//! fall back to the discrete-event simulator on the *same* pattern and
//! bank mapping, so the two modes are directly comparable per point.

use dxbsp_core::{
    AccessPattern, BankDelayModel, BankMap, ChargeParams, Classifier, DxError, ExecMode, Scenario,
    SweepPoint,
};
use dxbsp_machine::{Backend, SimConfig};
use dxbsp_workloads::{generate_keys, KeyRequest};

use crate::record::{Cell, RunRecord};
use crate::sweep::{machine_for_point, ScenarioOutput};
use crate::table::Table;

/// The generic hybrid-sweep executor. Requires sweep axes `x` then `d`
/// and a fixed `n`; contention comes from the workload (plus an
/// optional `k` parameter, as in scatter sweeps).
///
/// # Errors
///
/// [`DxError::Invalid`] for a malformed sweep (missing axes, missing
/// `n`) and anything machine resolution or key generation reports.
pub fn run_hybrid_sweep(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let axes = &sc.sweep.axes;
    if axes.len() != 2 || axes[0].param != "x" || axes[1].param != "d" {
        return Err(DxError::invalid("hybrid-sweep needs sweep axes `x` then `d`"));
    }
    let n = sc.n.ok_or_else(|| DxError::invalid("hybrid-sweep needs `n`"))?;
    let k =
        usize::try_from(sc.param_u64("k", 0)?).map_err(|_| DxError::invalid("k out of range"))?;
    let bound_ppm = match sc.exec {
        ExecMode::Hybrid { error_bound_ppm } => Some(error_bound_ppm),
        ExecMode::Full => None,
    };
    let d_count = axes[1].values.len();
    let matrix = sc.sweep.matrix();

    let mut classifier = Classifier::new();
    // The event-level fallback, checked out of the session pool
    // lazily: an all-analytic hybrid run never touches a simulator at
    // all, and a mixed run recycles a warm session.
    let mut backend: Option<dxbsp_machine::PooledBackend<'static>> = None;
    let mut bank_buf: Vec<u32> = Vec::new();
    let mut records = Vec::with_capacity(matrix.len());
    let mut summary = Vec::new();

    for chunk in matrix.chunks(d_count) {
        let m0 = machine_for_point(sc, &chunk[0])?;
        let x = chunk[0].u64("x").unwrap_or(m0.x as u64);
        // Keys, bank mapping and hence the step classification are
        // shared by the whole d-row; only the charge parameters change
        // along it.
        let req = KeyRequest { n, k, copies: 1, iteration: 0, exponent: 0.0 };
        let keys = generate_keys(&sc.workload, &req, sc.seed, x)?;
        let map = super::hashed_map(&m0, sc.seed ^ x);
        let pat = AccessPattern::scatter(m0.p, &keys);
        map.fill_banks(pat.addrs(), &mut bank_buf);
        let shape = classifier.analyze(&pat, &bank_buf, m0.banks());

        let mut modeled = 0usize;
        let mut simulated = 0usize;
        let mut row_cycles: Vec<u64> = Vec::with_capacity(chunk.len());
        for pt in chunk {
            let m = machine_for_point(sc, pt)?;
            let dm = BankDelayModel::uniform(m.d);
            let verdict = bound_ppm.map(|ppm| shape.charge(&ChargeParams::new(m.g, &dm, 0, ppm)));
            let (measured, was_modeled) = match verdict {
                Some(v) if v.is_analytic() => (v.cycles, true),
                _ => {
                    let cfg = SimConfig::from_params(&m);
                    let be = backend.get_or_insert_with(|| {
                        dxbsp_machine::SessionPool::global().checkout(cfg.clone())
                    });
                    if *be.simulator().config() != cfg {
                        be.reconfigure(cfg);
                    }
                    (be.step(&pat, &map).cycles, false)
                }
            };
            if was_modeled {
                modeled += 1;
            } else {
                simulated += 1;
            }
            row_cycles.push(measured);
            records.push(point_record(pt, n, measured, was_modeled));
        }
        summary.push(summary_row(x, &row_cycles, n, modeled, simulated));
    }

    let headers = ["x", "points", "modeled", "simulated", "cyc/elem @ d_min", "cyc/elem @ d_max"];
    let mut table = Table::from_cells(super::scatter::scenario_title(sc), &headers, &summary);
    for note in &sc.notes {
        table.note(note.clone());
    }
    Ok(ScenarioOutput { records, table })
}

fn point_record(pt: &SweepPoint, n: usize, measured: u64, modeled: bool) -> RunRecord {
    let mut rec = RunRecord::default();
    for c in &pt.coords {
        rec.point.push((c.axis.clone(), Cell::from_axis(&c.value)));
    }
    rec.with("n", Cell::size(n))
        .with("measured", Cell::int(measured))
        .with("modeled", Cell::int(u64::from(modeled)))
}

#[allow(clippy::cast_precision_loss)]
fn summary_row(x: u64, cycles: &[u64], n: usize, modeled: usize, simulated: usize) -> Vec<Cell> {
    let cpe = |c: u64| Cell::Float(c as f64 / n as f64);
    vec![
        Cell::int(x),
        Cell::size(cycles.len()),
        Cell::size(modeled),
        Cell::size(simulated),
        cpe(cycles.first().copied().unwrap_or(0)),
        cpe(cycles.last().copied().unwrap_or(0)),
    ]
}

/// Experiment 4H wrapper: the 100×-denser hybrid expansion × delay
/// grid. See [`run_hybrid_sweep`].
#[must_use]
pub fn exp4_hybrid_sweep(scale: crate::Scale, seed: u64) -> Table {
    crate::run_builtin("exp4_hybrid", scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn hybrid_sc(scale: Scale) -> Scenario {
        crate::scenarios::builtin("exp4_hybrid", scale, 1995).unwrap()
    }

    #[test]
    fn hybrid_sweep_models_the_whole_grid() {
        let sc = hybrid_sc(Scale::Quick);
        let out = run_hybrid_sweep(&sc).unwrap();
        assert_eq!(out.records.len(), sc.sweep.size());
        // The hotspot rows classify as Bounded with slack well inside
        // the declared 5% bound at every d ≥ 6: everything is modeled.
        for rec in &out.records {
            assert_eq!(rec.get("modeled"), Some(&Cell::Int(1)), "{rec:?}");
        }
    }

    #[test]
    fn forced_full_matches_hybrid_within_declared_bound() {
        let mut sc = hybrid_sc(Scale::Quick);
        let bound = sc.exec.error_bound().unwrap();
        // Shrink the grid so the event-level arm stays test-sized.
        sc.sweep.axes[0] = dxbsp_core::Axis::ints("x", [1, 8]);
        sc.sweep.axes[1] = dxbsp_core::Axis::ints("d", [6, 50, 205]);
        let hybrid = run_hybrid_sweep(&sc).unwrap();
        sc.exec = ExecMode::Full;
        let full = run_hybrid_sweep(&sc).unwrap();
        assert_eq!(hybrid.records.len(), full.records.len());
        for (h, f) in hybrid.records.iter().zip(&full.records) {
            let hv = h.get("measured").and_then(Cell::as_f64).unwrap();
            let fv = f.get("measured").and_then(Cell::as_f64).unwrap();
            assert_eq!(f.get("modeled"), Some(&Cell::Int(0)));
            let err = (fv - hv).abs() / fv;
            assert!(err <= bound, "point {:?}: hybrid {hv} vs full {fv} (err {err})", h.point);
        }
    }

    #[test]
    fn hybrid_sweep_rejects_malformed_axes() {
        let mut sc = hybrid_sc(Scale::Quick);
        sc.sweep.axes.swap(0, 1);
        let err = run_hybrid_sweep(&sc).unwrap_err();
        assert!(err.to_string().contains("`x` then `d`"), "{err}");
    }
}
