//! The `pstream` executor: bulk-synchronous pseudo-streaming kernels
//! across the problem-size axis.
//!
//! Each point builds a [`PstreamSpec`] from the scenario's
//! `pseudo-stream` workload (kernel + chunk budget) and pulls the
//! generated supersteps straight through a simulator session with
//! [`Session::run_stream`] — the trace never materializes, and the
//! session's `peak_step_requests` watermark proves the bounded-memory
//! claim: it stays within the declared [`PstreamSpec::step_budget`]
//! however large `n` grows. The streamed checksum is verified against
//! the sequential oracle, the same stream is re-generated through each
//! requested [`CostModel`](dxbsp_core::CostModel) lens for
//! predictions, and under a hybrid
//! execution mode the conflict-free chunks charge closed-form
//! (`modeled` column).

use dxbsp_core::{BankDelayModel, DxError, Interleaved, Scenario, SpecValue, WorkloadSpec};
use dxbsp_machine::Session;
use dxbsp_pstream::{Kernel, PstreamSpec};
use dxbsp_telemetry::Recorder;

use crate::record::Cell;
use crate::runner::parallel_map;
use crate::sweep::{point_n, ScenarioOutput};

/// Salt separating the virtual input's element stream per point.
const INPUT_SALT: u64 = 0xF10;

/// The `pstream` executor.
pub fn run_pstream(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let WorkloadSpec::PseudoStream { ref kernel, chunk } = sc.workload else {
        return Err(DxError::invalid("pstream needs a `pseudo-stream` workload"));
    };
    let kernel = Kernel::parse(kernel)?;
    // Contiguous chunks interleave conflict-free; a hashed map would
    // turn the streaming story into a congestion one.
    let map = Interleaved::new(m.banks());

    let points = sc.sweep.matrix();
    let results: Vec<(Vec<Cell>, Option<SpecValue>)> = parallel_map(&points, |pt| {
        let n = point_n(sc, pt)?;
        let salt = pt.salt();
        let spec = PstreamSpec::new(kernel, n, chunk, m.p, sc.seed ^ salt ^ INPUT_SALT)?;

        let mut session = Session::new(super::backend_with(&m, sc.exec, sc.engine));
        let mut source = spec.source();
        let (summary, telemetry) = if sc.telemetry {
            let mut rec = Recorder::new();
            rec.set_delay_model(&BankDelayModel::uniform(m.d));
            let s = session.run_stream_probed(&mut source, &map, &mut rec);
            (s, Some(rec.summary()))
        } else {
            (session.run_stream(&mut source, &map), None)
        };
        if source.checksum() != Some(spec.oracle()) {
            return Err(DxError::invalid("streamed checksum disagrees with the oracle"));
        }
        let peak = session.peak_step_requests();
        if peak > spec.step_budget() {
            return Err(DxError::invalid(format!(
                "peak-resident watermark {peak} exceeds the declared chunk budget {}",
                spec.step_budget()
            )));
        }

        #[allow(clippy::cast_precision_loss)]
        let mut cells = vec![
            Cell::size(n),
            Cell::size(spec.chunks()),
            Cell::size(summary.supersteps),
            Cell::size(summary.requests),
            Cell::int(summary.cycles),
        ];
        for model in &sc.models {
            let mut ms = Session::new(super::model_backend(&m, super::sorting::cost_model(model)));
            let pred = ms.run_stream(&mut spec.source(), &map).cycles;
            cells.push(Cell::int(pred));
        }
        cells.push(Cell::size(session.modeled_steps()));
        cells.push(Cell::size(peak));
        cells.push(Cell::size(spec.step_budget()));
        Ok((cells, telemetry))
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;

    let (rows, telemetries): (Vec<Vec<Cell>>, Vec<Option<SpecValue>>) = results.into_iter().unzip();
    let mut headers = vec!["n", "chunks", "supersteps", "requests", "measured"];
    let pred_headers: Vec<String> = sc.models.iter().map(|mo| format!("{mo}-pred")).collect();
    headers.extend(pred_headers.iter().map(String::as_str));
    headers.extend(["modeled", "peak_resident", "budget"]);
    let mut out = ScenarioOutput::build(sc, &headers, &rows, 1);
    for (rec, telemetry) in out.records.iter_mut().zip(telemetries) {
        if let Some(t) = telemetry {
            *rec = std::mem::take(rec).with_telemetry(t);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxbsp_core::{Axis, Sweep};

    fn scenario(kernel: &str) -> Scenario {
        let mut sc = Scenario::new("t-pstream", "pstream", 1995);
        sc.workload = WorkloadSpec::PseudoStream { kernel: kernel.into(), chunk: 128 };
        sc.sweep = Sweep::new(vec![Axis::ints("n", [1 << 10, 1 << 13, 1 << 16])]);
        sc
    }

    #[test]
    fn peak_resident_is_flat_across_problem_sizes() {
        for kernel in ["scan", "reduce", "stencil"] {
            let out = run_pstream(&scenario(kernel)).unwrap();
            let peaks = out.table.column_f64(8);
            let budgets = out.table.column_f64(9);
            assert!(
                peaks.windows(2).all(|w| (w[0] - w[1]).abs() < f64::EPSILON),
                "{kernel}: watermark must not grow with n: {peaks:?}"
            );
            for (p, b) in peaks.iter().zip(&budgets) {
                assert!(p <= b, "{kernel}: peak {p} over budget {b}");
            }
            // Work grows with n even though residency does not.
            let requests = out.table.column_f64(3);
            assert!(requests.last().unwrap() > &(requests[0] * 10.0), "{requests:?}");
        }
    }

    #[test]
    fn hybrid_mode_models_every_chunk() {
        let mut sc = scenario("scan");
        sc.exec = dxbsp_core::ExecMode::hybrid(0.05);
        let out = run_pstream(&sc).unwrap();
        let modeled = out.table.column_f64(7);
        let supersteps = out.table.column_f64(2);
        assert_eq!(modeled, supersteps, "hybrid must charge every conflict-free chunk");
        // And hybrid numbers are bit-identical to full simulation.
        let full = run_pstream(&scenario("scan")).unwrap();
        assert_eq!(out.table.column_f64(4), full.table.column_f64(4));
    }

    #[test]
    fn telemetry_rides_along_without_changing_numbers() {
        let mut sc = scenario("stencil");
        sc.sweep = Sweep::new(vec![Axis::ints("n", [1 << 12])]);
        let plain = run_pstream(&sc).unwrap();
        sc.telemetry = true;
        let probed = run_pstream(&sc).unwrap();
        assert_eq!(plain.table.rows, probed.table.rows);
        assert!(probed.records[0].telemetry.is_some());
        assert!(plain.records[0].telemetry.is_none());
    }

    #[test]
    fn pstream_rejects_wrong_workloads() {
        let mut sc = scenario("scan");
        sc.workload = WorkloadSpec::None;
        assert!(run_pstream(&sc).is_err());
        let bad = scenario("quicksort");
        assert!(run_pstream(&bad).is_err());
    }
}
