//! Experiment 5: network-section congestion (the paper's versions
//! (a), (b), (c)).
//!
//! The Cray J90 memory network is split into subsections with limited
//! injection bandwidth. The paper times three placements of an
//! otherwise identical scatter:
//!
//! * **(a)** addresses spread uniformly over all sections — matches the
//!   prediction;
//! * **(b)** each processor's addresses confined to a distinct section
//!   — still balanced, still matches;
//! * **(c)** every processor's addresses in *one* section — the section
//!   port saturates and measured time runs up to ~2.5× the
//!   sectionless prediction. "A more refined model would be needed to
//!   take account of this \[ST91\], but … even in what we expect to be
//!   the worst case the predictions are not catastrophic."

use dxbsp_core::{predict_scatter, Interleaved, MachineParams, ScatterShape};
use dxbsp_machine::{Backend, SimConfig, SimulatorBackend};

use crate::table::{fmt_f, Table};
use crate::Scale;

/// Builds the three placements over a sectioned machine and compares
/// measured cycles with the sectionless (d,x)-BSP prediction.
#[must_use]
pub fn exp5_network(scale: Scale, seed: u64) -> Table {
    let m = MachineParams::new(8, 1, 0, 14, 32);
    let n = scale.scatter_n();
    let sections = 8usize;
    let ports = 2usize; // per-section injection, < p: saturable
    let banks = m.banks();
    let per_section = banks / sections;
    let cfg = SimConfig::from_params(&m).with_sections(sections, ports);
    let mut backend = SimulatorBackend::new(cfg);
    let map = Interleaved::new(banks);
    let mut rng = super::point_rng(seed, 5);

    // Uniform random bank targets, then constrain per version. Using
    // bank-index addresses directly keeps placements exact.
    let uniform: Vec<u64> =
        (0..n).map(|_| rand::Rng::random_range(&mut rng, 0..banks as u64)).collect();
    let version_a = uniform.clone();
    // (b): processor i (element index mod p) uses section i % sections.
    let version_b: Vec<u64> = uniform
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let sec = (i % m.p) % sections;
            (sec * per_section) as u64 + a % per_section as u64
        })
        .collect();
    // (c): everything in section 0.
    let version_c: Vec<u64> = uniform.iter().map(|&a| a % per_section as u64).collect();

    let pred = predict_scatter(&m, ScatterShape::new(n, 4)); // near-uniform k
    let mut t = Table::new(
        format!("Experiment 5: sectioned network, {sections} sections x {ports} ports (n={n})"),
        &["version", "measured", "sectionless pred", "meas/pred"],
    );
    for (name, keys) in [
        ("(a) uniform", &version_a),
        ("(b) per-proc section", &version_b),
        ("(c) one section", &version_c),
    ] {
        let pat = dxbsp_core::AccessPattern::scatter(m.p, keys);
        let res = backend.step(&pat, &map);
        t.push_row(vec![
            name.into(),
            res.cycles.to_string(),
            pred.to_string(),
            fmt_f(res.cycles as f64 / pred as f64),
        ]);
    }
    t.note("(c) saturates one section's ports; paper saw up to 2.5x over prediction");
    t
}

/// The largest measured/predicted ratio of the three versions (used by
/// tests and EXPERIMENTS.md).
#[must_use]
pub fn worst_ratio(t: &Table) -> f64 {
    t.column_f64(3).into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_versions_match_prediction() {
        let t = exp5_network(Scale::Quick, 1);
        let ratios = t.column_f64(3);
        assert!(ratios[0] < 1.6, "(a) ratio {}", ratios[0]);
        assert!(ratios[1] < 1.6, "(b) ratio {}", ratios[1]);
    }

    #[test]
    fn congested_version_overshoots_like_the_paper() {
        let t = exp5_network(Scale::Quick, 1);
        let ratios = t.column_f64(3);
        // (c) must clearly exceed the balanced versions but stay
        // "not catastrophic" (paper saw ≤ 2.5×; ports=2 of 8 procs
        // gives up to 4× here).
        assert!(ratios[2] > 1.8, "(c) ratio {}", ratios[2]);
        assert!(ratios[2] < 6.0, "(c) ratio {}", ratios[2]);
        assert!(worst_ratio(&t) == ratios[2]);
    }
}
