//! Experiment 5: network-section congestion (the paper's versions
//! (a), (b), (c)).
//!
//! The Cray J90 memory network is split into subsections with limited
//! injection bandwidth. The paper times three placements of an
//! otherwise identical scatter:
//!
//! * **(a)** addresses spread uniformly over all sections — matches the
//!   prediction;
//! * **(b)** each processor's addresses confined to a distinct section
//!   — still balanced, still matches;
//! * **(c)** every processor's addresses in *one* section — the section
//!   port saturates and measured time runs up to ~2.5× the
//!   sectionless prediction. "A more refined model would be needed to
//!   take account of this \[ST91\], but … even in what we expect to be
//!   the worst case the predictions are not catastrophic."

use dxbsp_core::{predict_scatter, DxError, Interleaved, ScatterShape, Scenario};
use dxbsp_machine::{Backend, SimConfig, SimulatorBackend};

use crate::record::Cell;
use crate::sweep::ScenarioOutput;
use crate::table::Table;
use crate::Scale;

/// The `network-sections` executor: build the three placements over a
/// sectioned machine (params `sections`, `ports`) and compare measured
/// cycles with the sectionless (d,x)-BSP prediction.
pub fn run_network_sections(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let n = sc.n.ok_or_else(|| DxError::invalid("network-sections needs `n`"))?;
    let sections = usize::try_from(sc.param_u64("sections", 8)?)
        .map_err(|_| DxError::invalid("sections out of range"))?;
    let ports = usize::try_from(sc.param_u64("ports", 2)?)
        .map_err(|_| DxError::invalid("ports out of range"))?;
    let banks = m.banks();
    if sections == 0 || banks % sections != 0 {
        return Err(DxError::invalid(format!(
            "sections ({sections}) must divide the bank count ({banks})"
        )));
    }
    let per_section = banks / sections;
    let cfg = SimConfig::from_params(&m).with_sections(sections, ports);
    let mut backend = SimulatorBackend::new(cfg);
    let map = Interleaved::new(banks);
    let mut rng = super::point_rng(sc.seed, sc.param_u64("salt", 5)?);

    // Uniform random bank targets, then constrain per version. Using
    // bank-index addresses directly keeps placements exact.
    let uniform: Vec<u64> =
        (0..n).map(|_| rand::Rng::random_range(&mut rng, 0..banks as u64)).collect();
    let version_a = uniform.clone();
    // (b): processor i (element index mod p) uses section i % sections.
    let version_b: Vec<u64> = uniform
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let sec = (i % m.p) % sections;
            (sec * per_section) as u64 + a % per_section as u64
        })
        .collect();
    // (c): everything in section 0.
    let version_c: Vec<u64> = uniform.iter().map(|&a| a % per_section as u64).collect();

    let pred_k = sc.param_u64("pred_k", 4)?; // near-uniform k
    let pred = predict_scatter(
        &m,
        ScatterShape::new(
            n,
            usize::try_from(pred_k).map_err(|_| DxError::invalid("pred_k out of range"))?,
        ),
    );
    let mut rows = Vec::new();
    for (name, keys) in [
        ("(a) uniform", &version_a),
        ("(b) per-proc section", &version_b),
        ("(c) one section", &version_c),
    ] {
        let pat = dxbsp_core::AccessPattern::scatter(m.p, keys);
        let res = backend.step(&pat, &map);
        #[allow(clippy::cast_precision_loss)]
        rows.push(vec![
            Cell::str(name),
            Cell::int(res.cycles),
            Cell::int(pred),
            Cell::Float(res.cycles as f64 / pred as f64),
        ]);
    }
    let headers = ["version", "measured", "sectionless pred", "meas/pred"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// Builds the three placements over a sectioned machine and compares
/// measured cycles with the sectionless (d,x)-BSP prediction.
#[must_use]
pub fn exp5_network(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp5", scale, seed)
}

/// The largest measured/predicted ratio of the three versions (used by
/// tests and EXPERIMENTS.md).
#[must_use]
pub fn worst_ratio(t: &Table) -> f64 {
    t.column_f64(3).into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_versions_match_prediction() {
        let t = exp5_network(Scale::Quick, 1);
        let ratios = t.column_f64(3);
        assert!(ratios[0] < 1.6, "(a) ratio {}", ratios[0]);
        assert!(ratios[1] < 1.6, "(b) ratio {}", ratios[1]);
    }

    #[test]
    fn congested_version_overshoots_like_the_paper() {
        let t = exp5_network(Scale::Quick, 1);
        let ratios = t.column_f64(3);
        // (c) must clearly exceed the balanced versions but stay
        // "not catastrophic" (paper saw ≤ 2.5×; ports=2 of 8 procs
        // gives up to 4× here).
        assert!(ratios[2] > 1.8, "(c) ratio {}", ratios[2]);
        assert!(ratios[2] < 6.0, "(c) ratio {}", ratios[2]);
        assert!(worst_ratio(&t) == ratios[2]);
    }
}
