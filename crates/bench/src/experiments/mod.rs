//! The experiments, one module per paper table/figure.
//!
//! Experiment IDs follow DESIGN.md §4. Every function takes a
//! [`Scale`](crate::Scale) and a seed and returns a rendered
//! [`Table`](crate::Table); the `repro` binary prints them, the
//! integration tests assert their shapes, and EXPERIMENTS.md records a
//! snapshot.

pub mod ablation;
pub mod algo_bench;
pub mod emulation;
pub mod extensions;
pub mod fig1;
pub mod hybrid;
pub mod modmap;
pub mod network;
pub mod pstream;
pub mod scatter;
pub mod shapes;
pub mod sorting;
pub mod tables;

use dxbsp_core::{
    pattern_breakdown_delayed, AccessPattern, BankDelayModel, BankMap, CostModel, EngineKind,
    ExecMode, MachineParams,
};
use dxbsp_hash::{Degree, HashedBanks};
use dxbsp_machine::{
    Backend, ModelBackend, PooledBackend, Probe, SessionPool, SimConfig, SimulatorBackend,
    StepReport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The J90-like default machine of the §3 experiments: 8 dedicated
/// processors, bank delay 14 (DRAM), expansion 32, negligible `L`.
#[must_use]
pub fn default_machine() -> MachineParams {
    dxbsp_core::presets::cray_j90()
}

/// A seeded RNG for sweep point `idx` of experiment seed `seed`
/// (independent streams per point, stable across thread schedules).
#[must_use]
pub fn point_rng(seed: u64, idx: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(idx))
}

/// A random (linear-hash) bank mapping for `m`, seeded.
#[must_use]
pub fn hashed_map(m: &MachineParams, seed: u64) -> HashedBanks {
    HashedBanks::random(Degree::Linear, m.banks(), &mut point_rng(seed, 0xBA17))
}

/// A simulator backend realizing `m` — the "measured" side of every
/// experiment. Step many patterns through one backend to reuse its
/// per-run working state.
#[must_use]
pub fn backend(m: &MachineParams) -> SimulatorBackend {
    SimulatorBackend::from_params(m)
}

/// A simulator backend realizing `m` under execution mode `exec` and
/// inner engine `engine` — hybrid scenarios route here so provably
/// cheap supersteps take the closed-form path instead of the event
/// loop, and `--engine event` scenarios pin the per-request oracle.
#[must_use]
pub fn backend_with(m: &MachineParams, exec: ExecMode, engine: EngineKind) -> SimulatorBackend {
    SimulatorBackend::new(SimConfig::from_params(m).with_exec(exec).with_engine(engine))
}

/// Like [`backend_with`], but checked out of the process-wide
/// [`SessionPool`] — sweep workers and service runs route here so a
/// warm simulator session (scratch, classifier state) is recycled
/// instead of rebuilt per worker. Checkout reconfigures the session
/// when its config differs, which is bit-exact, so results are
/// identical to a fresh [`backend_with`].
#[must_use]
pub fn pooled_backend_with(
    m: &MachineParams,
    exec: ExecMode,
    engine: EngineKind,
) -> PooledBackend<'static> {
    SessionPool::global().checkout(SimConfig::from_params(m).with_exec(exec).with_engine(engine))
}

/// A model backend charging `model` costs on `m` — the "predicted"
/// side of every experiment.
#[must_use]
pub fn model_backend(m: &MachineParams, model: CostModel) -> ModelBackend {
    ModelBackend::new(*m, model)
}

/// One pattern through all three cost lenses: `(measured, dx, bsp)` —
/// simulated cycles, the (d,x)-BSP charge, and the plain-BSP charge.
#[must_use]
pub fn predicted_and_measured(
    m: &MachineParams,
    pat: &AccessPattern,
    map: &dyn BankMap,
) -> (u64, u64, u64) {
    let measured = backend(m).step(pat, map).cycles;
    let dx = model_backend(m, CostModel::DxBsp).step(pat, map).cycles;
    let bsp = model_backend(m, CostModel::Bsp).step(pat, map).cycles;
    (measured, dx, bsp)
}

/// Measured cycles of scattering `keys` on the simulated `m` under a
/// seeded random bank mapping.
#[must_use]
pub fn measured_scatter(m: &MachineParams, keys: &[u64], seed: u64) -> u64 {
    measured_scatter_in(&mut backend(m), m, keys, seed)
}

/// Like [`measured_scatter`], but through a caller-owned backend so a
/// sweep worker reuses one scratch allocation across its grid points
/// (reconfiguring when `m` differs from the backend's current machine).
/// The scratch reset is bit-exact, so the result is identical to a
/// fresh [`measured_scatter`] call.
#[must_use]
pub fn measured_scatter_in(
    backend: &mut SimulatorBackend,
    m: &MachineParams,
    keys: &[u64],
    seed: u64,
) -> u64 {
    measured_scatter_model_in(backend, m, &BankDelayModel::uniform(m.d), keys, seed)
}

/// Like [`measured_scatter_in`], but realizing an explicit
/// [`BankDelayModel`] instead of the uniform `m.d` — the mixed-tier
/// and degraded-bank sweeps route here. With `Uniform(m.d)` this is
/// exactly [`measured_scatter_in`] (same config, same cycles).
#[must_use]
pub fn measured_scatter_model_in(
    backend: &mut SimulatorBackend,
    m: &MachineParams,
    delay: &BankDelayModel,
    keys: &[u64],
    seed: u64,
) -> u64 {
    // Reconfiguring preserves the backend's execution mode and inner
    // engine: a hybrid sweep stays hybrid across grid points, an
    // event-engine sweep stays on the event loop.
    let cfg = SimConfig::from_params(m)
        .with_delay_model(delay.clone())
        .with_exec(backend.simulator().config().exec)
        .with_engine(backend.simulator().config().engine);
    if *backend.simulator().config() != cfg {
        backend.reconfigure(cfg);
    }
    let map = hashed_map(m, seed);
    let pat = AccessPattern::scatter(m.p, keys);
    backend.step(&pat, &map).cycles
}

/// Like [`measured_scatter_in`], but with a telemetry probe observing
/// the superstep. The probe sees the same begin/end hooks a
/// [`dxbsp_machine::Session`] fires, so a `Recorder` attached here
/// yields a complete per-point summary — and because instrumentation
/// never perturbs the simulation, the returned cycle count is
/// bit-identical to the unprobed helper's.
#[must_use]
pub fn measured_scatter_probed_in<P: Probe>(
    backend: &mut SimulatorBackend,
    m: &MachineParams,
    keys: &[u64],
    seed: u64,
    probe: &mut P,
) -> u64 {
    measured_scatter_model_probed_in(backend, m, &BankDelayModel::uniform(m.d), keys, seed, probe)
}

/// Like [`measured_scatter_probed_in`], but realizing an explicit
/// [`BankDelayModel`]. The attached step report's model attribution is
/// the generalized `max(L, g·h, max_b d_b·R_b)` breakdown, which for
/// `Uniform(m.d)` collapses to the scalar charge bit-for-bit.
#[must_use]
pub fn measured_scatter_model_probed_in<P: Probe>(
    backend: &mut SimulatorBackend,
    m: &MachineParams,
    delay: &BankDelayModel,
    keys: &[u64],
    seed: u64,
    probe: &mut P,
) -> u64 {
    let cfg = SimConfig::from_params(m)
        .with_delay_model(delay.clone())
        .with_exec(backend.simulator().config().exec)
        .with_engine(backend.simulator().config().engine);
    if *backend.simulator().config() != cfg {
        backend.reconfigure(cfg);
    }
    let map = hashed_map(m, seed);
    let pat = AccessPattern::scatter(m.p, keys);
    probe.superstep_begin(0, pat.len());
    let out = backend.step_probed(&pat, &map, probe);
    let report = StepReport {
        index: 0,
        requests: pat.len(),
        memory_cycles: out.cycles,
        local_work: 0,
        sync_overhead: 0,
        total_cycles: out.cycles,
        modeled: out.modeled,
        model: pattern_breakdown_delayed(m, delay, &pat, &map),
    };
    probe.superstep_end("scatter", &report);
    out.cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_machine_is_the_paper_j90() {
        let m = default_machine();
        assert_eq!((m.p, m.d, m.x), (8, 14, 32));
    }

    #[test]
    fn point_rngs_are_independent_streams() {
        use rand::Rng;
        let a: u64 = point_rng(1, 0).random();
        let b: u64 = point_rng(1, 1).random();
        let a2: u64 = point_rng(1, 0).random();
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn measured_scatter_is_deterministic() {
        let m = default_machine();
        let keys: Vec<u64> = (0..1000).collect();
        assert_eq!(measured_scatter(&m, &keys, 7), measured_scatter(&m, &keys, 7));
    }
}
