//! Executable shape claims: every qualitative statement EXPERIMENTS.md
//! makes about a table or figure, as a checked predicate over the
//! regenerated data. `repro verify` runs the whole checklist; the
//! integration suite runs it too, so the documentation cannot drift
//! from what the code actually produces.

use crate::table::Table;
use crate::Scale;

/// One verified claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeCheck {
    /// Experiment the claim belongs to.
    pub experiment: &'static str,
    /// The claim, in the words EXPERIMENTS.md uses.
    pub claim: &'static str,
    /// What the regenerated data showed.
    pub observed: String,
    /// Whether the claim held.
    pub pass: bool,
}

fn check(
    experiment: &'static str,
    claim: &'static str,
    pass: bool,
    observed: String,
) -> ShapeCheck {
    ShapeCheck { experiment, claim, observed, pass }
}

fn last(t: &Table, col: usize) -> f64 {
    *t.column_f64(col).last().unwrap_or(&f64::NAN)
}

/// Runs the full checklist at the given scale.
#[must_use]
pub fn verify_all(scale: Scale, seed: u64) -> Vec<ShapeCheck> {
    let mut out = Vec::new();

    // E1: BSP misses high contention; (d,x)-BSP tracks everywhere.
    let e1 = super::scatter::exp1_contention(scale, seed);
    let worst_bsp = last(&e1, 5);
    let dx_ok = e1.column_f64(4).iter().all(|&r| r > 0.5 && r < 3.0);
    out.push(check(
        "exp1",
        "meas/BSP blows up at k = n while meas/(d,x)-BSP stays within small constants",
        worst_bsp > 10.0 && dx_ok,
        format!("meas/BSP at k=n: {worst_bsp:.1}; dxbsp ratios in band: {dx_ok}"),
    ));

    // E2: duplication restores the flat regime.
    let e2 = super::scatter::exp2_duplication(scale, seed);
    let meas = e2.column_f64(1);
    out.push(check(
        "exp2",
        "enough copies of the hot location restore the flat regime",
        *meas.last().unwrap() < meas[0] / 4.0,
        format!("first {} → last {}", meas[0], meas.last().unwrap()),
    ));

    // E4: expansion keeps helping toward the processor floor.
    let e4 = super::scatter::exp4_expansion(scale, seed);
    let d14 = e4.column_f64(2);
    out.push(check(
        "exp4",
        "cycles/element falls from ≈d/(x·p) toward the g/p floor as x grows",
        d14[0] > 1.5 && *d14.last().unwrap() < 0.2,
        format!("x=1: {:.3}, x=128: {:.3}", d14[0], d14.last().unwrap()),
    ));

    // E5: version (c) overshoots, (a)/(b) do not.
    let e5 = super::network::exp5_network(scale, seed);
    let ratios = e5.column_f64(3);
    out.push(check(
        "exp5",
        "only the one-section placement exceeds the sectionless prediction materially",
        ratios[0] < 1.6 && ratios[1] < 1.6 && ratios[2] > 1.8,
        format!("(a) {:.2} (b) {:.2} (c) {:.2}", ratios[0], ratios[1], ratios[2]),
    ));

    // E6b: slackness balances bank loads.
    let e6b = super::modmap::exp6b_slackness(scale, seed);
    let overhead = e6b.column_f64(3);
    out.push(check(
        "exp6b",
        "bank-load overhead decays from balls-in-bins levels to ≈1 with slackness",
        overhead[0] > 2.0 && *overhead.last().unwrap() < 1.3,
        format!("slack 1: {:.2}, slack max: {:.2}", overhead[0], overhead.last().unwrap()),
    ));

    // T3: hash cost ordering.
    let t3 = super::tables::table3(scale, seed);
    let rel = t3.column_f64(2);
    out.push(check(
        "table3",
        "hash evaluation cost orders linear ≤ quadratic ≤ cubic (within noise)",
        rel[2] >= 1.0 && rel[2] + 0.15 >= rel[1],
        format!("relative costs {rel:?}"),
    ));

    // E7/E8: QRQW algorithms win.
    let e7 = super::algo_bench::exp7_binary_search(scale, seed);
    let e7_ok = e7.column_f64(4).iter().all(|&r| r > 1.0);
    out.push(check(
        "exp7",
        "replicated-tree search beats the EREW sort-merge at every query count",
        e7_ok,
        format!("erew/qrqw ratios {:?}", e7.column_f64(4)),
    ));
    let e8 = super::algo_bench::exp8_random_perm(scale, seed);
    let e8_ok = e8.column_f64(4).iter().all(|&r| r > 1.0);
    out.push(check(
        "exp8",
        "dart-throwing beats the EREW radix-sort permutation at every size",
        e8_ok,
        format!("erew/qrqw ratios {:?}", e8.column_f64(4)),
    ));

    // E9: the dense column dominates past the knee.
    let e9 = super::algo_bench::exp9_spmv(scale, seed);
    let spmv = e9.column_f64(2);
    out.push(check(
        "exp9",
        "SpMV time grows with the dense column once d·k dominates",
        *spmv.last().unwrap() > 2.0 * spmv[0],
        format!("flat {} → dense {}", spmv[0], spmv.last().unwrap()),
    ));

    // E11: d/x regime then flat.
    let e11 = super::emulation::exp11_emulation(scale, seed);
    let ratio_d16 = e11.column_f64(3);
    out.push(check(
        "exp11",
        "emulation work ratio ≈ d/x for x ≤ d, flattening to O(1) past x = d",
        ratio_d16[0] > 8.0 && *ratio_d16.last().unwrap() < 4.0,
        format!("x=1: {:.2}, x=64: {:.2}", ratio_d16[0], ratio_d16.last().unwrap()),
    ));

    // A3: bank caches defuse the hot spot.
    let a3 = super::ablation::ablation_bank_cache(scale, seed);
    let speedup = a3.column_f64(3);
    out.push(check(
        "ablation_cache",
        "a per-bank cache converts d·k into ≈k at the hot bank",
        *speedup.last().unwrap() > 5.0,
        format!("speedup at k=n: {:.1}", speedup.last().unwrap()),
    ));

    // E12: deactivation removes the list-ranking hot spot.
    let e12 = super::extensions::exp12_list_ranking(scale, seed);
    let e12_ok = e12.column_f64(5).iter().all(|&s| s > 1.5);
    out.push(check(
        "exp12",
        "deactivating Wyllie beats the textbook version at every size",
        e12_ok,
        format!("speedups {:?}", e12.column_f64(5)),
    ));

    out
}

/// Renders the checklist.
#[must_use]
pub fn render_checks(checks: &[ShapeCheck]) -> String {
    let mut out = String::new();
    let passed = checks.iter().filter(|c| c.pass).count();
    out.push_str(&format!("== shape verification: {passed}/{} claims hold ==\n", checks.len()));
    for c in checks {
        out.push_str(&format!(
            "  [{}] {:<14} {}\n{:20}observed: {}\n",
            if c.pass { "ok" } else { "FAIL" },
            c.experiment,
            c.claim,
            "",
            c.observed
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_holds_at_quick_scale() {
        let checks = verify_all(Scale::Quick, 1995);
        assert!(checks.len() >= 12);
        let failures: Vec<&ShapeCheck> = checks.iter().filter(|c| !c.pass).collect();
        assert!(failures.is_empty(), "failed claims: {failures:#?}");
    }

    #[test]
    fn rendering_includes_verdicts() {
        let checks = vec![ShapeCheck {
            experiment: "demo",
            claim: "water is wet",
            observed: "wet".into(),
            pass: true,
        }];
        let s = render_checks(&checks);
        assert!(s.contains("1/1 claims hold"));
        assert!(s.contains("[ok] demo"));
    }
}
