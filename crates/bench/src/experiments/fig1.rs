//! Figure 1: predicted vs. measured time for access patterns drawn
//! from a connected-components trace, as a function of contention.
//!
//! The paper's motivating figure replays memory access patterns
//! extracted from a trace of Greiner's CC algorithm on the J90 and
//! shows that models without bank delay (BSP/LogP) underpredict the
//! high-contention patterns badly while the (d,x)-BSP tracks them. We
//! do the same: run our CC implementation on a random graph, take its
//! per-superstep access patterns, replay each on the simulator, and
//! compare against both predictions.

use dxbsp_algos::connected::connected_traced;
use dxbsp_core::{CostModel, DxError, Scenario, WorkloadSpec};
use dxbsp_machine::Backend;
use dxbsp_workloads::Graph;

use crate::record::{Cell, RunRecord};
use crate::sweep::ScenarioOutput;
use crate::table::Table;
use crate::Scale;

/// The `cc-trace` executor: build the scenario's graph, trace connected
/// components on it, replay every superstep through the hardware
/// simulator and both cost models, and report per-step contention vs.
/// measured and predicted cycles (sorted by contention).
pub fn run_cc_trace(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let n = sc.n.ok_or_else(|| DxError::invalid("cc-trace needs `n`"))?;
    let WorkloadSpec::CcGraph { star_leaves, edges_per_node, salt } = sc.workload else {
        return Err(DxError::invalid("cc-trace needs a `cc-graph` workload"));
    };
    let mut rng = super::point_rng(sc.seed, salt);
    // A random graph plus a star component: the star is what generates
    // the high-contention patterns the figure needs.
    let mut g = Graph::random_gnm(n, edges_per_node * n, &mut rng);
    let star_center = 0u32;
    let leaves = u32::try_from(star_leaves)
        .map_err(|_| DxError::invalid("cc-trace star_leaves out of range"))?;
    for leaf in 1..leaves {
        g.edges.push((star_center, leaf));
    }
    let traced = connected_traced(m.p, &g);

    // One backend per cost lens, reused across every trace step.
    let mut hardware = super::backend(&m);
    let mut dx_model = super::model_backend(&m, CostModel::DxBsp);
    let mut bsp_model = super::model_backend(&m, CostModel::Bsp);
    let map = super::hashed_map(&m, sc.seed);
    let mut points: Vec<(usize, usize, u64, u64, u64)> = Vec::new();
    for step in &traced.trace {
        if step.pattern.is_empty() {
            continue;
        }
        let prof = step.pattern.contention_profile();
        let measured = hardware.step(&step.pattern, &map).cycles;
        let dx = dx_model.step(&step.pattern, &map).cycles;
        let bsp = bsp_model.step(&step.pattern, &map).cycles;
        points.push((prof.max_location_contention, prof.total_requests, measured, dx, bsp));
    }
    points.sort_unstable();

    let headers = ["contention", "requests", "measured", "dxbsp-pred", "bsp-pred", "meas/bsp"];
    #[allow(clippy::cast_precision_loss)]
    let rows: Vec<Vec<Cell>> = points
        .into_iter()
        .map(|(k, reqs, meas, dx, bsp)| {
            vec![
                Cell::size(k),
                Cell::size(reqs),
                Cell::int(meas),
                Cell::int(dx),
                Cell::int(bsp),
                Cell::Float(meas as f64 / bsp as f64),
            ]
        })
        .collect();
    let records: Vec<RunRecord> =
        rows.iter().map(|row| RunRecord::from_row(&headers, row, 2)).collect();
    let mut t = Table::from_cells(super::scatter::scenario_title(sc), &headers, &rows);
    for note in &sc.notes {
        t.note(note.clone());
    }
    Ok(ScenarioOutput { records, table: t })
}

/// Builds Figure 1's series: per CC superstep, contention vs. measured
/// and predicted cycles, via the built-in `fig1` scenario.
#[must_use]
pub fn fig1(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("fig1", scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_contention_steps_break_bsp() {
        let t = fig1(Scale::Quick, 1);
        assert!(t.rows.len() > 5, "need a spread of contention levels");
        let contention = t.column_f64(0);
        let meas_over_bsp = t.column_f64(5);
        // The most contended step must be badly underpredicted by BSP…
        let worst = contention
            .iter()
            .zip(&meas_over_bsp)
            .max_by(|a, b| a.0.partial_cmp(b.0).unwrap())
            .unwrap();
        assert!(*worst.1 > 3.0, "BSP ratio at k={} is {}", worst.0, worst.1);
        // …while low-contention *bulk* steps are fine under both models
        // (tiny steps always pay the d-cycle bank floor, so restrict to
        // steps with real volume).
        let requests = t.column_f64(1);
        let best = contention
            .iter()
            .zip(&requests)
            .zip(&meas_over_bsp)
            .filter(|((_, &r), _)| r >= 1000.0)
            .min_by(|a, b| a.0 .0.partial_cmp(b.0 .0).unwrap())
            .unwrap();
        assert!(*best.1 < 3.0, "low-k BSP ratio {}", best.1);
    }

    #[test]
    fn dxbsp_tracks_every_step() {
        let t = fig1(Scale::Quick, 2);
        let meas = t.column_f64(2);
        let dx = t.column_f64(3);
        for (m, d) in meas.iter().zip(&dx) {
            let ratio = m / d;
            assert!(ratio < 3.0 && ratio > 0.3, "dxbsp ratio {ratio}");
        }
    }
}
