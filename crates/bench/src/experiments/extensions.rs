//! Extension experiments (paper §7's "currently looking into" list,
//! implemented): list ranking, CC algorithm variants, Zipf validation,
//! parallel merging, the (d,x)-LogP, hash congestion, contention
//! remedies, and sorting.

use dxbsp_algos::{connected, list_ranking, merge};
use dxbsp_core::{DxError, Scenario};

use super::algo_bench::{graph_family, trace_cycles};
use crate::record::Cell;
use crate::runner::parallel_map;
use crate::sweep::ScenarioOutput;
use crate::table::Table;
use crate::Scale;

/// The `list-ranking` executor (E12): textbook Wyllie (tail hot spot)
/// vs. the deactivating variant, across the `n` axis. The §7 pointer to
/// \[RM94\]: on a bank-delay machine the "EREW-looking" textbook
/// version pays `d·Θ(n)` at the tail.
pub fn run_list_ranking(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let n = crate::sweep::point_n(sc, pt)?;
        let mut rng = super::point_rng(sc.seed, pt.salt());
        let (succ, _) = list_ranking::random_list(n, &mut rng);
        let naive = list_ranking::wyllie_naive_traced(m.p, &succ);
        let smart = list_ranking::wyllie_traced(m.p, &succ);
        if naive.value.0 != smart.value.0 {
            return Err(DxError::invalid("list-ranking variants disagree"));
        }
        let peak_naive = *naive.value.1.contention_per_round.iter().max().unwrap_or(&0);
        let peak_smart = *smart.value.1.contention_per_round.iter().max().unwrap_or(&0);
        let trace_seed = sc.seed ^ pt.salt();
        let cn = trace_cycles(&m, &naive.trace, trace_seed);
        let cs = trace_cycles(&m, &smart.trace, trace_seed);
        #[allow(clippy::cast_precision_loss)]
        Ok(vec![
            Cell::size(n),
            Cell::size(peak_naive),
            Cell::size(peak_smart),
            Cell::int(cn),
            Cell::int(cs),
            Cell::Float(cn as f64 / cs as f64),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["n", "peak k naive", "peak k deact", "naive", "deactivating", "speedup"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `cc-variants` executor (E13): deterministic hook-to-min
/// (Greiner) vs. random mate, per `graph` axis family. Needs a
/// `graph-family` workload for the RNG salt.
pub fn run_cc_variants(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let n = sc.n.ok_or_else(|| DxError::invalid("cc-variants needs `n`"))?;
    let dxbsp_core::WorkloadSpec::GraphFamily { salt } = sc.workload else {
        return Err(DxError::invalid("cc-variants needs a `graph-family` workload"));
    };
    let coin_salt = sc.param_u64("coin_salt", 0xC0)?;

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let name = pt
            .str("graph")
            .ok_or_else(|| DxError::invalid("cc-variants needs a string `graph` axis"))?;
        let g = graph_family(name, n, sc.seed, salt)?;
        let det = connected::connected_traced(m.p, &g);
        let mut coin = super::point_rng(sc.seed, coin_salt);
        let rnd = connected::random_mate_traced(m.p, &g, &mut coin);
        let oracle = g.components_oracle();
        if !connected::same_partition(&det.value.0, &oracle)
            || !connected::same_partition(&rnd.value.0, &oracle)
        {
            return Err(DxError::invalid("cc-variants disagree with the oracle"));
        }
        let dc = trace_cycles(&m, &det.trace, sc.seed);
        let rc = trace_cycles(&m, &rnd.trace, sc.seed);
        #[allow(clippy::cast_precision_loss)]
        Ok(vec![
            Cell::str(name),
            Cell::size(det.value.1.rounds),
            Cell::int(dc),
            Cell::size(rnd.value.1.rounds),
            Cell::int(rc),
            Cell::Float(rc as f64 / dc as f64),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers =
        ["graph", "greiner rounds", "greiner", "rmate rounds", "random-mate", "rmate/greiner"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `merge` executor (E15): parallel co-ranking merge — cycles
/// across the `n` axis (per side), with the co-rank boundary contention
/// reported (bounded by p).
pub fn run_merge(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let n = crate::sweep::point_n(sc, pt)?;
        let mut rng = super::point_rng(sc.seed, pt.salt());
        let mut a: Vec<u64> =
            (0..n).map(|_| rand::Rng::random_range(&mut rng, 0..1u64 << 40)).collect();
        let mut b: Vec<u64> =
            (0..n).map(|_| rand::Rng::random_range(&mut rng, 0..1u64 << 40)).collect();
        a.sort_unstable();
        b.sort_unstable();
        let t = merge::merge_traced(m.p, &a, &b);
        if t.value != merge::merge_oracle(&a, &b) {
            return Err(DxError::invalid("merge disagrees with the oracle"));
        }
        let co_rank_k = t
            .trace
            .iter()
            .find(|s| s.label == "co-rank")
            .map_or(0, |s| s.pattern.contention_profile().max_location_contention);
        let cycles = trace_cycles(&m, &t.trace, sc.seed ^ pt.salt());
        #[allow(clippy::cast_precision_loss)]
        Ok(vec![
            Cell::size(n),
            Cell::size(co_rank_k),
            Cell::int(cycles),
            Cell::Float(cycles as f64 / (2 * n) as f64),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["n per side", "co-rank k", "cycles", "cycles/elem"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `logp` executor (E16): the (d,x)-LogP. §2 says the d/x extension
/// applies to LogP directly; the `k` axis shows the extended LogP
/// tracking the simulator where classic LogP goes flat, mirroring
/// Experiment 1.
pub fn run_logp(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    use dxbsp_core::LogPParams;
    use dxbsp_machine::Backend;
    let n = sc.n.ok_or_else(|| DxError::invalid("logp needs `n`"))?;
    let base = sc.machine.resolve()?;
    let l = sc.param_u64("logp_l", 10)?;
    let o = sc.param_u64("logp_o", 2)?;
    let lp = LogPParams::new(l, o, base.g, base.p, base.d, base.x);
    let m = dxbsp_core::MachineParams::try_new(lp.p, lp.g.max(lp.o), 0, lp.d, lp.x)?;
    let salt_xor = sc.param_u64("salt_xor", 0x10)?;

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let k = pt.u64("k").ok_or_else(|| DxError::invalid("logp needs a `k` axis"))?;
        let k = usize::try_from(k).map_err(|_| DxError::invalid("k out of range"))?;
        let mut rng = super::point_rng(sc.seed, pt.salt() ^ salt_xor);
        let keys = dxbsp_workloads::hotspot_keys(n, k, 1 << 40, &mut rng);
        let pat = dxbsp_core::AccessPattern::scatter(lp.p, &keys);
        let map = super::hashed_map(&m, sc.seed);
        let measured = super::backend(&m).step(&pat, &map).cycles;
        let dx_logp = lp.pattern_cost(&pat, &map);
        let classic = lp.pattern_cost_classic(&pat);
        #[allow(clippy::cast_precision_loss)]
        Ok(vec![
            Cell::size(k),
            Cell::int(measured),
            Cell::int(dx_logp),
            Cell::int(classic),
            Cell::Float(measured as f64 / dx_logp as f64),
            Cell::Float(measured as f64 / classic as f64),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["k", "measured", "dx-logp", "classic logp", "meas/dx", "meas/classic"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// Build one of the named adversarial address patterns used by the
/// `hash-congestion` kind.
fn congestion_input(name: &str, n: usize) -> Result<Vec<u64>, DxError> {
    use dxbsp_workloads::{bit_reversal_addresses, strided_addresses};
    match name {
        "consecutive" => Ok((0..n as u64).collect()),
        "bit-reversal" => Ok(bit_reversal_addresses(16)),
        "random-ish" => Ok((0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect()),
        other => match other.strip_prefix("stride ").and_then(|s| s.parse::<u64>().ok()) {
            Some(stride) => Ok(strided_addresses(0, stride, n)),
            None => Err(DxError::unknown("congestion pattern", other.to_string())),
        },
    }
}

/// The `hash-congestion` executor (E17): congestion behaviour of the
/// hash degrees (\[EK93\]'s comparison) — max bank load of adversarial
/// inputs (the `pattern` axis) under h1/h2/h3.
pub fn run_hash_congestion(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    use dxbsp_hash::{max_load_over_trials, Degree};
    let n = sc.n.ok_or_else(|| DxError::invalid("hash-congestion needs `n`"))?;
    let banks = usize::try_from(sc.param_u64("banks", 256)?)
        .map_err(|_| DxError::invalid("banks out of range"))?;
    let trials = usize::try_from(sc.param_u64("trials", 3)?)
        .map_err(|_| DxError::invalid("trials out of range"))?;

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let name = pt
            .str("pattern")
            .ok_or_else(|| DxError::invalid("hash-congestion needs a string `pattern` axis"))?;
        let addrs = congestion_input(name, n)?;
        let mut cells = vec![Cell::str(name), Cell::size(addrs.len().div_ceil(banks))];
        for deg in Degree::all() {
            let mut rng = super::point_rng(sc.seed, deg.coefficients() as u64);
            let rep = max_load_over_trials(&addrs, banks, deg, trials, &mut rng);
            cells.push(Cell::Float(rep.mean_max_load));
        }
        Ok(cells)
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["pattern", "ideal", "h1 linear", "h2 quadratic", "h3 cubic"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `remedies` executor (E18): the §3 remedies as library primitives
/// — plain gather vs. advisor-driven duplication vs. combining tree,
/// across the hot-spot `k` axis, measured on the simulator.
pub fn run_remedies(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    use dxbsp_algos::scatter_gather;
    use std::collections::HashMap;
    let m = sc.machine.resolve()?;
    let n = sc.n.ok_or_else(|| DxError::invalid("remedies needs `n`"))?;

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let k = pt.u64("k").ok_or_else(|| DxError::invalid("remedies needs a `k` axis"))?;
        let k = usize::try_from(k).map_err(|_| DxError::invalid("k out of range"))?;
        let keys: Vec<u64> = (0..n).map(|i| if i < k { 0 } else { 1000 + i as u64 }).collect();
        let src: HashMap<u64, u64> = keys.iter().map(|&a| (a, a)).collect();
        let values = vec![1u64; n];
        let plain_g = scatter_gather::gather_traced(m.p, &keys, &src);
        let dup = scatter_gather::gather_with_duplication_traced(&m, &keys, &src);
        let combining = scatter_gather::scatter_combining_traced(m.p, &keys, &values);
        let trace_seed = sc.seed ^ pt.salt();
        Ok(vec![
            Cell::size(k),
            Cell::int(trace_cycles(&m, &plain_g.trace, trace_seed)),
            Cell::int(trace_cycles(&m, &dup.trace, trace_seed)),
            Cell::size(dup.value.1.duplicated.first().map_or(0, |d| d.1)),
            Cell::int(trace_cycles(&m, &combining.trace, trace_seed)),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["k", "plain gather", "auto-duplicated", "copies", "combining scatter"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `sorts` executor (E19): three sorts on one machine — EREW radix
/// \[ZB91\], QRQW sample sort (replicated-splitter lookup), and the
/// contention each carries, across the `n` axis. The RV87 motivation
/// for the binary-search experiment, completed.
pub fn run_sorts(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    use dxbsp_algos::{radix_sort, sample_sort};
    let m = sc.machine.resolve()?;
    let radix_bits = u32::try_from(sc.param_u64("radix_bits", 8)?)
        .map_err(|_| DxError::invalid("radix_bits out of range"))?;
    let splitters = usize::try_from(sc.param_u64("splitters", 16)?)
        .map_err(|_| DxError::invalid("splitters out of range"))?;
    let replication = usize::try_from(sc.param_u64("replication", 8)?)
        .map_err(|_| DxError::invalid("replication out of range"))?;

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let n = crate::sweep::point_n(sc, pt)?;
        let mut rng = super::point_rng(sc.seed, pt.salt());
        let keys: Vec<u64> =
            (0..n).map(|_| rand::Rng::random_range(&mut rng, 0..1u64 << 40)).collect();
        let radix = radix_sort::sort_traced(m.p, &keys, radix_bits);
        let sample = sample_sort::sample_sort_traced(m.p, &keys, splitters, replication, &mut rng);
        let mut expect = keys.clone();
        expect.sort_unstable();
        if sample.value.0 != expect {
            return Err(DxError::invalid("sample sort output is not sorted"));
        }
        let trace_seed = sc.seed ^ pt.salt();
        let rc = trace_cycles(&m, &radix.trace, trace_seed);
        let scy = trace_cycles(&m, &sample.trace, trace_seed);
        #[allow(clippy::cast_precision_loss)]
        Ok(vec![
            Cell::size(n),
            Cell::int(rc),
            Cell::int(scy),
            Cell::size(sample.value.1.lookup_contention),
            Cell::Float(rc as f64 / scy as f64),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["n", "radix (EREW)", "sample (QRQW)", "lookup k", "radix/sample"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// Extension E12: list ranking, textbook vs. deactivating Wyllie.
#[must_use]
pub fn exp12_list_ranking(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp12", scale, seed)
}

/// Extension E13: CC variants per graph family.
#[must_use]
pub fn exp13_cc_variants(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp13", scale, seed)
}

/// Extension E14: model validation on Zipf-distributed scatters — the
/// (d,x)-BSP keeps tracking as the exponent raises tail contention.
#[must_use]
pub fn exp14_zipf(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp14", scale, seed)
}

/// Extension E15: parallel co-ranking merge.
#[must_use]
pub fn exp15_merge(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp15", scale, seed)
}

/// Extension E16: the (d,x)-LogP vs. classic LogP.
#[must_use]
pub fn exp16_logp(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp16", scale, seed)
}

/// Extension E17: max bank load under each hash degree.
#[must_use]
pub fn exp17_hash_congestion(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp17", scale, seed)
}

/// Extension E18: contention remedies as primitives.
#[must_use]
pub fn exp18_remedies(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp18", scale, seed)
}

/// Extension E19: EREW radix sort vs. QRQW sample sort.
#[must_use]
pub fn exp19_sorts(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp19", scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listrank_deactivation_wins_and_grows() {
        let t = exp12_list_ranking(Scale::Quick, 1);
        let speedup = t.column_f64(5);
        for s in &speedup {
            assert!(*s > 1.5, "deactivation must win: {speedup:?}");
        }
        // The naive peak contention scales with n.
        let peaks = t.column_f64(1);
        assert!(peaks.last().unwrap() > &(peaks[0] * 1.5), "{peaks:?}");
    }

    #[test]
    fn cc_variants_both_correct_and_comparable() {
        let t = exp13_cc_variants(Scale::Quick, 2);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let ratio: f64 = row[5].parse().unwrap();
            assert!(ratio > 0.1 && ratio < 20.0, "{row:?}");
        }
    }

    #[test]
    fn zipf_tracked_by_model() {
        let t = exp14_zipf(Scale::Quick, 3);
        for r in t.column_f64(5) {
            assert!(r > 0.4 && r < 3.0, "meas/dxbsp {r}");
        }
        // Contention rises with the exponent.
        let k = t.column_f64(1);
        assert!(k.last().unwrap() > &(k[0] * 3.0), "{k:?}");
    }

    #[test]
    fn merge_scales_linearly() {
        let t = exp15_merge(Scale::Quick, 4);
        let per_elem = t.column_f64(3);
        for w in per_elem.windows(2) {
            assert!((w[1] / w[0] - 1.0).abs() < 0.35, "{per_elem:?}");
        }
        let k = t.column_f64(1);
        assert!(k.iter().all(|&k| k <= 8.0), "{k:?}");
    }
}

#[cfg(test)]
mod logp_tests {
    use super::*;

    #[test]
    fn dx_logp_tracks_where_classic_fails() {
        let t = exp16_logp(Scale::Quick, 1);
        let meas_dx = t.column_f64(4);
        let meas_classic = t.column_f64(5);
        for r in &meas_dx {
            assert!(*r > 0.4 && *r < 2.5, "dx-logp ratio {r}");
        }
        assert!(meas_classic.last().unwrap() > &10.0, "{meas_classic:?}");
    }

    #[test]
    fn hash_degrees_all_spread_adversaries() {
        let t = exp17_hash_congestion(Scale::Quick, 2);
        for row in &t.rows {
            let ideal: f64 = row[1].parse().unwrap();
            for col in 2..5 {
                let load: f64 = row[col].parse().unwrap();
                assert!(load < 3.0 * ideal + 16.0, "{row:?}");
            }
        }
    }
}

#[cfg(test)]
mod remedy_tests {
    use super::*;

    #[test]
    fn remedies_flatten_the_hot_spot() {
        let t = exp18_remedies(Scale::Quick, 1);
        let plain = t.column_f64(1);
        let dup = t.column_f64(2);
        let comb = t.column_f64(4);
        // At max contention, duplication and combining both win big.
        let last = plain.len() - 1;
        assert!(plain[last] / dup[last] > 5.0, "dup speedup {:?}", plain[last] / dup[last]);
        assert!(plain[last] / comb[last] > 5.0, "comb speedup {:?}", plain[last] / comb[last]);
        // At k=1 neither remedy should hurt by more than small factors.
        assert!(dup[0] <= plain[0] * 1.5, "{} vs {}", dup[0], plain[0]);
    }
}

#[cfg(test)]
mod sort_tests {
    use super::*;

    #[test]
    fn sample_sort_beats_radix_on_wide_keys() {
        let t = exp19_sorts(Scale::Quick, 1);
        for r in t.column_f64(4) {
            assert!(r > 1.0, "radix/sample ratio {r} not > 1");
        }
    }
}
