//! Extension experiments (paper §7's "currently looking into" list,
//! implemented): list ranking, CC algorithm variants, Zipf validation,
//! parallel merging.

use dxbsp_algos::{connected, list_ranking, merge};
use dxbsp_core::{predict_scatter, predict_scatter_bsp, ScatterShape};
use dxbsp_machine::{replay, Backend};
use dxbsp_workloads::{max_contention, zipf_keys, Graph};

use crate::runner::parallel_map;
use crate::table::{fmt_f, Table};
use crate::Scale;

fn trace_cycles(m: &dxbsp_core::MachineParams, trace: &dxbsp_machine::Trace, seed: u64) -> u64 {
    let map = super::hashed_map(m, seed);
    replay(&mut super::backend(m), trace, &map).total_cycles
}

/// Extension E12: list ranking — textbook Wyllie (tail hot spot) vs.
/// the deactivating variant, across sizes. The §7 pointer to \[RM94\]:
/// on a bank-delay machine the "EREW-looking" textbook version pays
/// `d·Θ(n)` at the tail.
#[must_use]
pub fn exp12_list_ranking(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let base = scale.algo_n();
    let ns = [base / 4, base, base * 2];

    let rows = parallel_map(&ns, |&n| {
        let mut rng = super::point_rng(seed, n as u64);
        let (succ, _) = list_ranking::random_list(n, &mut rng);
        let naive = list_ranking::wyllie_naive_traced(m.p, &succ);
        let smart = list_ranking::wyllie_traced(m.p, &succ);
        assert_eq!(naive.value.0, smart.value.0);
        let peak_naive = *naive.value.1.contention_per_round.iter().max().unwrap_or(&0);
        let peak_smart = *smart.value.1.contention_per_round.iter().max().unwrap_or(&0);
        (
            n,
            peak_naive,
            peak_smart,
            trace_cycles(&m, &naive.trace, seed ^ n as u64),
            trace_cycles(&m, &smart.trace, seed ^ n as u64),
        )
    });

    let mut t = Table::new(
        "Extension E12: list ranking, textbook vs. deactivating Wyllie (cycles)".to_string(),
        &["n", "peak k naive", "peak k deact", "naive", "deactivating", "speedup"],
    );
    for (n, kn, ks, cn, cs) in rows {
        t.push_row(vec![
            n.to_string(),
            kn.to_string(),
            ks.to_string(),
            cn.to_string(),
            cs.to_string(),
            fmt_f(cn as f64 / cs as f64),
        ]);
    }
    t.note("the tail hot spot costs the textbook version d·Θ(n); deactivation removes it");
    t
}

/// Extension E13: connected-components variants — deterministic
/// hook-to-min (Greiner) vs. random mate, per graph family.
#[must_use]
pub fn exp13_cc_variants(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let n = scale.algo_n();
    let mut rng = super::point_rng(seed, 13);
    let side = (n as f64).sqrt() as usize;
    let graphs: Vec<(&str, Graph)> = vec![
        ("random m=2n", Graph::random_gnm(n, 2 * n, &mut rng)),
        ("grid", Graph::grid(side, side)),
        ("chain", Graph::chain(n)),
        ("star", Graph::star(n)),
    ];

    let mut t = Table::new(
        format!("Extension E13: CC variants (n={n}, cycles)"),
        &["graph", "greiner rounds", "greiner", "rmate rounds", "random-mate", "rmate/greiner"],
    );
    for (name, g) in &graphs {
        let det = connected::connected_traced(m.p, g);
        let mut coin = super::point_rng(seed, 0xC0);
        let rnd = connected::random_mate_traced(m.p, g, &mut coin);
        assert!(connected::same_partition(&det.value.0, &g.components_oracle()));
        assert!(connected::same_partition(&rnd.value.0, &g.components_oracle()));
        let dc = trace_cycles(&m, &det.trace, seed);
        let rc = trace_cycles(&m, &rnd.trace, seed);
        t.push_row(vec![
            (*name).into(),
            det.value.1.rounds.to_string(),
            dc.to_string(),
            rnd.value.1.rounds.to_string(),
            rc.to_string(),
            fmt_f(rc as f64 / dc as f64),
        ]);
    }
    t.note("random mating spreads hook writes but pays more rounds; neither dominates everywhere");
    t
}

/// Extension E14: model validation on Zipf-distributed scatters — the
/// (d,x)-BSP keeps tracking as the exponent raises tail contention.
#[must_use]
pub fn exp14_zipf(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let n = scale.scatter_n();
    let exponents = [0.0f64, 0.5, 0.8, 1.0, 1.2, 1.5];

    let idx: Vec<usize> = (0..exponents.len()).collect();
    let rows = crate::runner::parallel_map_with(
        &idx,
        || super::backend(&m),
        |be, &i| {
            let s = exponents[i];
            let mut rng = super::point_rng(seed, i as u64);
            let keys = zipf_keys(n, 64 * 1024, s, &mut rng);
            let k = max_contention(&keys);
            let measured = super::measured_scatter_in(be, &m, &keys, seed ^ i as u64);
            let shape = ScatterShape::new(n, k);
            (s, k, measured, predict_scatter(&m, shape), predict_scatter_bsp(&m, shape))
        },
    );

    let mut t = Table::new(
        format!("Extension E14: Zipf scatters (n={n}, universe 64K)"),
        &["s", "max k", "measured", "dxbsp-pred", "bsp-pred", "meas/dxbsp"],
    );
    for (s, k, meas, dx, bsp) in rows {
        t.push_row(vec![
            fmt_f(s),
            k.to_string(),
            meas.to_string(),
            dx.to_string(),
            bsp.to_string(),
            fmt_f(meas as f64 / dx as f64),
        ]);
    }
    t.note("Zipf tails add many warm locations; the single-k model still brackets the cost");
    t
}

/// Extension E15: parallel merge — cycles across sizes, with the
/// co-rank boundary contention reported (bounded by p).
#[must_use]
pub fn exp15_merge(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let base = scale.algo_n();
    let ns = [base / 2, base, base * 2];

    let rows = parallel_map(&ns, |&n| {
        let mut rng = super::point_rng(seed, n as u64);
        let mut a: Vec<u64> =
            (0..n).map(|_| rand::Rng::random_range(&mut rng, 0..1u64 << 40)).collect();
        let mut b: Vec<u64> =
            (0..n).map(|_| rand::Rng::random_range(&mut rng, 0..1u64 << 40)).collect();
        a.sort_unstable();
        b.sort_unstable();
        let t = merge::merge_traced(m.p, &a, &b);
        assert_eq!(t.value, merge::merge_oracle(&a, &b));
        let co_rank_k = t
            .trace
            .iter()
            .find(|s| s.label == "co-rank")
            .map_or(0, |s| s.pattern.contention_profile().max_location_contention);
        let cycles = trace_cycles(&m, &t.trace, seed ^ n as u64);
        (n, co_rank_k, cycles)
    });

    let mut t = Table::new(
        "Extension E15: parallel co-ranking merge".to_string(),
        &["n per side", "co-rank k", "cycles", "cycles/elem"],
    );
    for (n, k, cycles) in rows {
        t.push_row(vec![
            n.to_string(),
            k.to_string(),
            cycles.to_string(),
            fmt_f(cycles as f64 / (2 * n) as f64),
        ]);
    }
    t.note("boundary searches contend at most p-fold; chunk merges are contention-free sweeps");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listrank_deactivation_wins_and_grows() {
        let t = exp12_list_ranking(Scale::Quick, 1);
        let speedup = t.column_f64(5);
        for s in &speedup {
            assert!(*s > 1.5, "deactivation must win: {speedup:?}");
        }
        // The naive peak contention scales with n.
        let peaks = t.column_f64(1);
        assert!(peaks.last().unwrap() > &(peaks[0] * 1.5), "{peaks:?}");
    }

    #[test]
    fn cc_variants_both_correct_and_comparable() {
        let t = exp13_cc_variants(Scale::Quick, 2);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let ratio: f64 = row[5].parse().unwrap();
            assert!(ratio > 0.1 && ratio < 20.0, "{row:?}");
        }
    }

    #[test]
    fn zipf_tracked_by_model() {
        let t = exp14_zipf(Scale::Quick, 3);
        for r in t.column_f64(5) {
            assert!(r > 0.4 && r < 3.0, "meas/dxbsp {r}");
        }
        // Contention rises with the exponent.
        let k = t.column_f64(1);
        assert!(k.last().unwrap() > &(k[0] * 3.0), "{k:?}");
    }

    #[test]
    fn merge_scales_linearly() {
        let t = exp15_merge(Scale::Quick, 4);
        let per_elem = t.column_f64(3);
        for w in per_elem.windows(2) {
            assert!((w[1] / w[0] - 1.0).abs() < 0.35, "{per_elem:?}");
        }
        let k = t.column_f64(1);
        assert!(k.iter().all(|&k| k <= 8.0), "{k:?}");
    }
}

/// Extension E16: the (d,x)-LogP. §2 says the d/x extension applies to
/// LogP directly; this sweep shows the extended LogP tracking the
/// simulator where classic LogP goes flat, mirroring Experiment 1.
#[must_use]
pub fn exp16_logp(scale: Scale, seed: u64) -> Table {
    use dxbsp_core::LogPParams;
    let n = scale.scatter_n();
    // LogP-flavored parameters: o=2, L=10 bookends, g=1, p=8, d=14, x=32.
    let lp = LogPParams::new(10, 2, 1, 8, 14, 32);
    let m = dxbsp_core::MachineParams::new(lp.p, lp.g.max(lp.o), 0, lp.d, lp.x);
    let ks = [1usize, 64, 1024, n / 4, n];

    let rows = parallel_map(&ks, |&k| {
        let mut rng = super::point_rng(seed, k as u64 ^ 0x10);
        let keys = dxbsp_workloads::hotspot_keys(n, k, 1 << 40, &mut rng);
        let pat = dxbsp_core::AccessPattern::scatter(lp.p, &keys);
        let map = super::hashed_map(&m, seed);
        let measured = super::backend(&m).step(&pat, &map).cycles;
        let dx_logp = lp.pattern_cost(&pat, &map);
        let classic = lp.pattern_cost_classic(&pat);
        (k, measured, dx_logp, classic)
    });

    let mut t = Table::new(
        format!("Extension E16: (d,x)-LogP vs. classic LogP (n={n}, o=2, L=10)"),
        &["k", "measured", "dx-logp", "classic logp", "meas/dx", "meas/classic"],
    );
    for (k, meas, dx, classic) in rows {
        t.push_row(vec![
            k.to_string(),
            meas.to_string(),
            dx.to_string(),
            classic.to_string(),
            fmt_f(meas as f64 / dx as f64),
            fmt_f(meas as f64 / classic as f64),
        ]);
    }
    t.note("same story as Exp 1: the bank terms rescue LogP exactly as they rescue BSP");
    t
}

/// Extension E17: congestion behaviour of the hash degrees (\[EK93\]'s
/// comparison): max bank load of adversarial inputs under h1/h2/h3.
#[must_use]
pub fn exp17_hash_congestion(scale: Scale, seed: u64) -> Table {
    use dxbsp_hash::{max_load_over_trials, Degree};
    use dxbsp_workloads::{bit_reversal_addresses, strided_addresses};
    let banks = 256usize;
    let n = scale.scatter_n();
    let trials = scale.trials();

    let inputs: Vec<(&str, Vec<u64>)> = vec![
        ("consecutive", (0..n as u64).collect()),
        ("stride 256", strided_addresses(0, 256, n)),
        ("stride 4096", strided_addresses(0, 4096, n)),
        ("bit-reversal", bit_reversal_addresses(16)),
        ("random-ish", (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect()),
    ];

    let mut t = Table::new(
        format!("Extension E17: max bank load under each hash degree (B={banks})"),
        &["pattern", "ideal", "h1 linear", "h2 quadratic", "h3 cubic"],
    );
    for (name, addrs) in &inputs {
        let mut cells = vec![(*name).to_string(), addrs.len().div_ceil(banks).to_string()];
        for deg in Degree::all() {
            let mut rng = super::point_rng(seed, deg.coefficients() as u64);
            let rep = max_load_over_trials(addrs, banks, deg, trials, &mut rng);
            cells.push(fmt_f(rep.mean_max_load));
        }
        t.push_row(cells);
    }
    t.note("all degrees spread these adversaries comparably at this slackness ([EK93]'s finding)");
    t
}

#[cfg(test)]
mod logp_tests {
    use super::*;

    #[test]
    fn dx_logp_tracks_where_classic_fails() {
        let t = exp16_logp(Scale::Quick, 1);
        let meas_dx = t.column_f64(4);
        let meas_classic = t.column_f64(5);
        for r in &meas_dx {
            assert!(*r > 0.4 && *r < 2.5, "dx-logp ratio {r}");
        }
        assert!(meas_classic.last().unwrap() > &10.0, "{meas_classic:?}");
    }

    #[test]
    fn hash_degrees_all_spread_adversaries() {
        let t = exp17_hash_congestion(Scale::Quick, 2);
        for row in &t.rows {
            let ideal: f64 = row[1].parse().unwrap();
            for col in 2..5 {
                let load: f64 = row[col].parse().unwrap();
                assert!(load < 3.0 * ideal + 16.0, "{row:?}");
            }
        }
    }
}

/// Extension E18: the §3 remedies as library primitives — plain gather
/// vs. advisor-driven duplication vs. combining tree, across hot-spot
/// contention levels, measured on the simulator.
#[must_use]
pub fn exp18_remedies(scale: Scale, seed: u64) -> Table {
    use dxbsp_algos::scatter_gather;
    use std::collections::HashMap;
    let m = super::default_machine();
    let n = scale.scatter_n();
    let ks = [1usize, 256, 4096, n / 2, n];

    let rows = parallel_map(&ks, |&k| {
        let keys: Vec<u64> = (0..n).map(|i| if i < k { 0 } else { 1000 + i as u64 }).collect();
        let src: HashMap<u64, u64> = keys.iter().map(|&a| (a, a)).collect();
        let values = vec![1u64; n];
        let plain_g = scatter_gather::gather_traced(m.p, &keys, &src);
        let dup = scatter_gather::gather_with_duplication_traced(&m, &keys, &src);
        let combining = scatter_gather::scatter_combining_traced(m.p, &keys, &values);
        (
            k,
            trace_cycles(&m, &plain_g.trace, seed ^ k as u64),
            trace_cycles(&m, &dup.trace, seed ^ k as u64),
            dup.value.1.duplicated.first().map_or(0, |d| d.1),
            trace_cycles(&m, &combining.trace, seed ^ k as u64),
        )
    });

    let mut t = Table::new(
        format!("Extension E18: contention remedies as primitives (n={n})"),
        &["k", "plain gather", "auto-duplicated", "copies", "combining scatter"],
    );
    for (k, plain, dup, copies, comb) in rows {
        t.push_row(vec![
            k.to_string(),
            plain.to_string(),
            dup.to_string(),
            copies.to_string(),
            comb.to_string(),
        ]);
    }
    t.note("duplication flattens reads (Exp 2's fix); combining flattens reducing writes");
    t
}

#[cfg(test)]
mod remedy_tests {
    use super::*;

    #[test]
    fn remedies_flatten_the_hot_spot() {
        let t = exp18_remedies(Scale::Quick, 1);
        let plain = t.column_f64(1);
        let dup = t.column_f64(2);
        let comb = t.column_f64(4);
        // At max contention, duplication and combining both win big.
        let last = plain.len() - 1;
        assert!(plain[last] / dup[last] > 5.0, "dup speedup {:?}", plain[last] / dup[last]);
        assert!(plain[last] / comb[last] > 5.0, "comb speedup {:?}", plain[last] / comb[last]);
        // At k=1 neither remedy should hurt by more than small factors.
        assert!(dup[0] <= plain[0] * 1.5, "{} vs {}", dup[0], plain[0]);
    }
}

/// Extension E19: three sorts on one machine — EREW radix \[ZB91\],
/// QRQW sample sort (replicated-splitter lookup), and the contention
/// each carries. The RV87 motivation for the binary-search experiment,
/// completed.
#[must_use]
pub fn exp19_sorts(scale: Scale, seed: u64) -> Table {
    use dxbsp_algos::{radix_sort, sample_sort};
    let m = super::default_machine();
    let base = scale.algo_n();
    let ns = [base / 2, base, base * 2];

    let rows = parallel_map(&ns, |&n| {
        let mut rng = super::point_rng(seed, n as u64);
        let keys: Vec<u64> =
            (0..n).map(|_| rand::Rng::random_range(&mut rng, 0..1u64 << 40)).collect();
        let radix = radix_sort::sort_traced(m.p, &keys, 8);
        let sample = sample_sort::sample_sort_traced(m.p, &keys, 16, 8, &mut rng);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(sample.value.0, expect);
        let rc = trace_cycles(&m, &radix.trace, seed ^ n as u64);
        let sc = trace_cycles(&m, &sample.trace, seed ^ n as u64);
        (n, rc, sc, sample.value.1.lookup_contention)
    });

    let mut t = Table::new(
        "Extension E19: EREW radix sort vs. QRQW sample sort (cycles)".to_string(),
        &["n", "radix (EREW)", "sample (QRQW)", "lookup k", "radix/sample"],
    );
    for (n, rc, sc, k) in rows {
        t.push_row(vec![
            n.to_string(),
            rc.to_string(),
            sc.to_string(),
            k.to_string(),
            fmt_f(rc as f64 / sc as f64),
        ]);
    }
    t.note("bounded splitter contention buys fewer full passes than 8-bit radix on 40-bit keys");
    t
}

#[cfg(test)]
mod sort_tests {
    use super::*;

    #[test]
    fn sample_sort_beats_radix_on_wide_keys() {
        let t = exp19_sorts(Scale::Quick, 1);
        for r in t.column_f64(4) {
            assert!(r > 1.0, "radix/sample ratio {r} not > 1");
        }
    }
}
