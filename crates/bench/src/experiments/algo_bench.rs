//! §6 algorithm experiments: binary search (Exp 7), random permutation
//! (Exp 8), SpMV with a dense column (Exp 9), connected components
//! (Exp 10).

use dxbsp_algos::{binary_search, connected::connected_traced, random_perm, spmv};
use dxbsp_core::{predict_scatter, predict_scatter_bsp, ScatterShape};
use dxbsp_machine::replay;
use dxbsp_workloads::{CsrMatrix, Graph};

use crate::runner::parallel_map;
use crate::table::{fmt_f, Table};
use crate::Scale;

fn trace_cycles(m: &dxbsp_core::MachineParams, trace: &dxbsp_machine::Trace, seed: u64) -> u64 {
    let map = super::hashed_map(m, seed);
    replay(&mut super::backend(m), trace, &map).total_cycles
}

/// Experiment 7: QRQW replicated-tree binary search vs. the naive
/// shared tree and the EREW sort-merge baseline, across query counts.
#[must_use]
pub fn exp7_binary_search(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let tree_m = scale.algo_n();
    let mut rng = super::point_rng(seed, 7);
    let mut keys: Vec<u64> =
        (0..tree_m).map(|_| rand::Rng::random_range(&mut rng, 0..1u64 << 40)).collect();
    keys.sort_unstable();
    keys.dedup();

    let ns: Vec<usize> =
        [tree_m / 16, tree_m / 4, tree_m, tree_m * 4].into_iter().filter(|&n| n >= 64).collect();
    let rows = parallel_map(&ns, |&n| {
        let mut rng = super::point_rng(seed, n as u64);
        let queries: Vec<u64> =
            (0..n).map(|_| rand::Rng::random_range(&mut rng, 0..1u64 << 40)).collect();
        let naive = binary_search::naive_traced(m.p, &keys, &queries);
        let qrqw = binary_search::replicated_traced(m.p, &keys, &queries, 8, false, &mut rng);
        let erew = binary_search::erew_traced(m.p, &keys, &queries);
        assert_eq!(naive.value, qrqw.value);
        assert_eq!(naive.value, erew.value);
        (
            n,
            trace_cycles(&m, &naive.trace, seed ^ n as u64),
            trace_cycles(&m, &qrqw.trace, seed ^ n as u64),
            trace_cycles(&m, &erew.trace, seed ^ n as u64),
        )
    });

    let mut t = Table::new(
        format!("Experiment 7: binary search, m={} tree keys (cycles)", keys.len()),
        &["queries n", "naive", "qrqw-replicated", "erew-sortmerge", "erew/qrqw"],
    );
    for (n, naive, qrqw, erew) in rows {
        t.push_row(vec![
            n.to_string(),
            naive.to_string(),
            qrqw.to_string(),
            erew.to_string(),
            fmt_f(erew as f64 / qrqw as f64),
        ]);
    }
    t.note(
        "bounded replication beats both the contended naive walk and the sort-heavy EREW version",
    );
    t
}

/// Experiment 8 (Figure 11): QRQW dart-throwing random permutation vs.
/// the EREW radix-sort permutation across sizes.
#[must_use]
pub fn exp8_random_perm(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let base = scale.algo_n();
    let ns = [base / 4, base, base * 4];

    let rows = parallel_map(&ns, |&n| {
        let mut rng = super::point_rng(seed, n as u64);
        let qrqw = random_perm::darts_traced(m.p, n, 1.5, &mut rng);
        let erew = random_perm::erew_traced(m.p, n, &mut rng);
        assert!(random_perm::is_permutation(&qrqw.value.0));
        assert!(random_perm::is_permutation(&erew.value));
        let qc = trace_cycles(&m, &qrqw.trace, seed ^ n as u64);
        let ec = trace_cycles(&m, &erew.trace, seed ^ n as u64);
        (n, qrqw.value.1.rounds, qc, ec)
    });

    let mut t = Table::new(
        "Experiment 8 (Fig 11): random permutation, QRQW darts vs. EREW radix sort (cycles)"
            .to_string(),
        &["n", "dart rounds", "qrqw-darts", "erew-sort", "erew/qrqw"],
    );
    for (n, rounds, qc, ec) in rows {
        t.push_row(vec![
            n.to_string(),
            rounds.to_string(),
            qc.to_string(),
            ec.to_string(),
            fmt_f(ec as f64 / qc as f64),
        ]);
    }
    t.note("paper: the QRQW algorithm wins over a wide range of problem sizes");
    t
}

/// Experiment 9 (Figure 12): SpMV time vs. dense-column length,
/// measured against the (d,x)-BSP and BSP predictions for the gather.
#[must_use]
pub fn exp9_spmv(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let rows_n = scale.algo_n();
    let nnz_per_row = 4usize;
    let mut dense: Vec<usize> = [0usize, 1, 4, 16, 64, 256, 1024]
        .into_iter()
        .map(|d| (d * rows_n) / 1024)
        .chain(std::iter::once(rows_n))
        .collect();
    dense.dedup();

    let rows = parallel_map(&dense, |&len| {
        let mut rng = super::point_rng(seed, len as u64);
        let a = CsrMatrix::random_with_dense_column(rows_n, rows_n, nnz_per_row, len, &mut rng);
        let x: Vec<f64> = (0..rows_n).map(|i| i as f64).collect();
        let traced = spmv::spmv_traced(m.p, &a, &x);
        let measured = trace_cycles(&m, &traced.trace, seed ^ len as u64);
        let k = spmv::gather_contention(&a);
        let nnz = a.nnz();
        // The gather is the contended superstep; the rest is dense.
        let shape = ScatterShape::new(nnz, k);
        let pred_gather = predict_scatter(&m, shape);
        let pred_bsp = predict_scatter_bsp(&m, shape);
        (len, k, measured, pred_gather, pred_bsp)
    });

    let mut t = Table::new(
        format!("Experiment 9 (Fig 12): SpMV vs. dense-column length ({rows_n} rows, {nnz_per_row}/row)"),
        &["dense len", "gather k", "measured", "gather dxbsp-pred", "gather bsp-pred"],
    );
    for (len, k, meas, dx, bsp) in rows {
        t.push_row(vec![
            len.to_string(),
            k.to_string(),
            meas.to_string(),
            dx.to_string(),
            bsp.to_string(),
        ]);
    }
    t.note("measured = whole SpMV; once d·k passes the dense phases the dense column dominates");
    t
}

/// Experiment 10: connected components across graph families —
/// per-phase contention and measured vs. predicted totals.
#[must_use]
pub fn exp10_connected(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let n = scale.algo_n();
    let mut rng = super::point_rng(seed, 10);
    let side = (n as f64).sqrt() as usize;
    let graphs: Vec<(&str, Graph)> = vec![
        ("random m=2n", Graph::random_gnm(n, 2 * n, &mut rng)),
        ("grid", Graph::grid(side, side)),
        ("chain", Graph::chain(n)),
        ("star", Graph::star(n)),
    ];

    let mut t = Table::new(
        format!("Experiment 10: connected components (n={n}, cycles)"),
        &["graph", "rounds", "max k (hook)", "max k (shortcut)", "measured", "dxbsp-pred"],
    );
    for (name, g) in &graphs {
        let traced = connected_traced(m.p, g);
        assert!(dxbsp_algos::connected::same_partition(&traced.value.0, &g.components_oracle()));
        let map = super::hashed_map(&m, seed);
        let res = replay(&mut super::backend(&m), &traced.trace, &map);
        let mut hook_k = 0usize;
        let mut short_k = 0usize;
        for step in &traced.trace {
            let k = step.pattern.contention_profile().max_location_contention;
            if step.label.contains("hook") {
                hook_k = hook_k.max(k);
            } else if step.label.contains("shortcut") {
                short_k = short_k.max(k);
            }
        }
        let predicted = replay(
            &mut super::model_backend(&m, dxbsp_core::CostModel::DxBsp),
            &traced.trace,
            &map,
        )
        .total_cycles;
        t.push_row(vec![
            (*name).into(),
            traced.value.1.rounds.to_string(),
            hook_k.to_string(),
            short_k.to_string(),
            res.total_cycles.to_string(),
            predicted.to_string(),
        ]);
    }
    t.note("star graphs concentrate hooking/shortcutting on one vertex: the paper's high-contention case");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp7_qrqw_beats_erew_and_naive() {
        let t = exp7_binary_search(Scale::Quick, 1);
        for row in &t.rows {
            let naive: f64 = row[1].parse().unwrap();
            let qrqw: f64 = row[2].parse().unwrap();
            let erew: f64 = row[3].parse().unwrap();
            assert!(qrqw < erew, "qrqw {qrqw} should beat erew {erew}");
            assert!(qrqw < naive, "qrqw {qrqw} should beat naive {naive}");
        }
    }

    #[test]
    fn exp8_darts_beat_sort() {
        let t = exp8_random_perm(Scale::Quick, 2);
        for r in t.column_f64(4) {
            assert!(r > 1.0, "erew/qrqw ratio {r} not > 1");
        }
    }

    #[test]
    fn exp9_dense_column_drives_time() {
        let t = exp9_spmv(Scale::Quick, 3);
        let measured = t.column_f64(2);
        let first = measured[0];
        let last = *measured.last().unwrap();
        assert!(last > 2.0 * first, "dense column had no effect: {measured:?}");
    }

    #[test]
    fn exp10_star_contention_dwarfs_chain() {
        let t = exp10_connected(Scale::Quick, 4);
        let find = |name: &str| t.rows.iter().find(|r| r[0].contains(name)).unwrap().clone();
        let star_k: f64 = find("star")[2].parse().unwrap();
        let chain_k: f64 = find("chain")[2].parse().unwrap();
        assert!(star_k > 50.0 * chain_k.max(1.0), "star {star_k} vs chain {chain_k}");
    }

    #[test]
    fn exp10_prediction_tracks_measurement() {
        let t = exp10_connected(Scale::Quick, 5);
        for row in &t.rows {
            let meas: f64 = row[4].parse().unwrap();
            let pred: f64 = row[5].parse().unwrap();
            let ratio = meas / pred;
            assert!(ratio > 0.3 && ratio < 3.0, "{}: ratio {ratio}", row[0]);
        }
    }
}
