//! §6 algorithm experiments: binary search (Exp 7), random permutation
//! (Exp 8), SpMV with a dense column (Exp 9), connected components
//! (Exp 10).

use dxbsp_algos::{binary_search, connected::connected_traced, random_perm, spmv};
use dxbsp_core::{predict_scatter, predict_scatter_bsp, DxError, ScatterShape, Scenario};
use dxbsp_machine::replay;
use dxbsp_workloads::{CsrMatrix, Graph};

use crate::record::Cell;
use crate::runner::parallel_map;
use crate::sweep::ScenarioOutput;
use crate::table::Table;
use crate::Scale;

pub(super) fn trace_cycles(
    m: &dxbsp_core::MachineParams,
    trace: &dxbsp_machine::Trace,
    seed: u64,
) -> u64 {
    let map = super::hashed_map(m, seed);
    replay(&mut super::backend(m), trace, &map).total_cycles
}

/// Build one of the named graph families used by the `connected` and
/// `cc-variants` kinds. Only the random family consumes the RNG, so
/// per-point construction reproduces the legacy shared-stream graphs.
pub(super) fn graph_family(name: &str, n: usize, seed: u64, salt: u64) -> Result<Graph, DxError> {
    let mut rng = super::point_rng(seed, salt);
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let side = (n as f64).sqrt() as usize;
    match name {
        "random m=2n" => Ok(Graph::random_gnm(n, 2 * n, &mut rng)),
        "grid" => Ok(Graph::grid(side, side)),
        "chain" => Ok(Graph::chain(n)),
        "star" => Ok(Graph::star(n)),
        other => Err(DxError::unknown("graph family", other.to_string())),
    }
}

/// The `binary-search` executor (Exp 7): QRQW replicated-tree binary
/// search vs. the naive shared tree and the EREW sort-merge baseline,
/// across the `queries` axis. The scenario's `n` is the tree size.
pub fn run_binary_search(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let tree_m = sc.n.ok_or_else(|| DxError::invalid("binary-search needs `n` (tree size)"))?;
    let mut rng = super::point_rng(sc.seed, sc.param_u64("salt", 7)?);
    let mut keys: Vec<u64> =
        (0..tree_m).map(|_| rand::Rng::random_range(&mut rng, 0..1u64 << 40)).collect();
    keys.sort_unstable();
    keys.dedup();
    let replication = usize::try_from(sc.param_u64("replication", 8)?)
        .map_err(|_| DxError::invalid("replication out of range"))?;

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let n = pt
            .u64("queries")
            .ok_or_else(|| DxError::invalid("binary-search needs a `queries` axis"))?;
        let n = usize::try_from(n).map_err(|_| DxError::invalid("queries out of range"))?;
        let mut rng = super::point_rng(sc.seed, pt.salt());
        let queries: Vec<u64> =
            (0..n).map(|_| rand::Rng::random_range(&mut rng, 0..1u64 << 40)).collect();
        let naive = binary_search::naive_traced(m.p, &keys, &queries);
        let qrqw =
            binary_search::replicated_traced(m.p, &keys, &queries, replication, false, &mut rng);
        let erew = binary_search::erew_traced(m.p, &keys, &queries);
        if naive.value != qrqw.value || naive.value != erew.value {
            return Err(DxError::invalid("binary-search variants disagree"));
        }
        let trace_seed = sc.seed ^ pt.salt();
        let nc = trace_cycles(&m, &naive.trace, trace_seed);
        let qc = trace_cycles(&m, &qrqw.trace, trace_seed);
        let ec = trace_cycles(&m, &erew.trace, trace_seed);
        #[allow(clippy::cast_precision_loss)]
        Ok(vec![
            Cell::size(n),
            Cell::int(nc),
            Cell::int(qc),
            Cell::int(ec),
            Cell::Float(ec as f64 / qc as f64),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["queries n", "naive", "qrqw-replicated", "erew-sortmerge", "erew/qrqw"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `random-perm` executor (Exp 8, Figure 11): QRQW dart-throwing
/// random permutation vs. the EREW radix-sort permutation across the
/// `n` axis.
pub fn run_random_perm(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let n = crate::sweep::point_n(sc, pt)?;
        let mut rng = super::point_rng(sc.seed, pt.salt());
        let qrqw = random_perm::darts_traced(m.p, n, 1.5, &mut rng);
        let erew = random_perm::erew_traced(m.p, n, &mut rng);
        if !random_perm::is_permutation(&qrqw.value.0) || !random_perm::is_permutation(&erew.value)
        {
            return Err(DxError::invalid("random-perm produced a non-permutation"));
        }
        let trace_seed = sc.seed ^ pt.salt();
        let qc = trace_cycles(&m, &qrqw.trace, trace_seed);
        let ec = trace_cycles(&m, &erew.trace, trace_seed);
        #[allow(clippy::cast_precision_loss)]
        Ok(vec![
            Cell::size(n),
            Cell::size(qrqw.value.1.rounds),
            Cell::int(qc),
            Cell::int(ec),
            Cell::Float(ec as f64 / qc as f64),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["n", "dart rounds", "qrqw-darts", "erew-sort", "erew/qrqw"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `spmv` executor (Exp 9, Figure 12): SpMV time vs. the
/// `dense_len` axis, measured against the (d,x)-BSP and BSP predictions
/// for the gather. The scenario's `n` is the row count.
pub fn run_spmv(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let rows_n = sc.n.ok_or_else(|| DxError::invalid("spmv needs `n` (row count)"))?;
    let nnz_per_row = usize::try_from(sc.param_u64("nnz_per_row", 4)?)
        .map_err(|_| DxError::invalid("nnz_per_row out of range"))?;

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let len =
            pt.u64("dense_len").ok_or_else(|| DxError::invalid("spmv needs a `dense_len` axis"))?;
        let len = usize::try_from(len).map_err(|_| DxError::invalid("dense_len out of range"))?;
        let mut rng = super::point_rng(sc.seed, pt.salt());
        let a = CsrMatrix::random_with_dense_column(rows_n, rows_n, nnz_per_row, len, &mut rng);
        #[allow(clippy::cast_precision_loss)]
        let x: Vec<f64> = (0..rows_n).map(|i| i as f64).collect();
        let traced = spmv::spmv_traced(m.p, &a, &x);
        let measured = trace_cycles(&m, &traced.trace, sc.seed ^ pt.salt());
        let k = spmv::gather_contention(&a);
        let nnz = a.nnz();
        // The gather is the contended superstep; the rest is dense.
        let shape = ScatterShape::new(nnz, k);
        Ok(vec![
            Cell::size(len),
            Cell::size(k),
            Cell::int(measured),
            Cell::int(predict_scatter(&m, shape)),
            Cell::int(predict_scatter_bsp(&m, shape)),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["dense len", "gather k", "measured", "gather dxbsp-pred", "gather bsp-pred"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `connected` executor (Exp 10): connected components across the
/// `graph` axis — per-phase contention and measured vs. predicted
/// totals. Needs a `graph-family` workload for the RNG salt.
pub fn run_connected(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let n = sc.n.ok_or_else(|| DxError::invalid("connected needs `n`"))?;
    let dxbsp_core::WorkloadSpec::GraphFamily { salt } = sc.workload else {
        return Err(DxError::invalid("connected needs a `graph-family` workload"));
    };

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let name = pt
            .str("graph")
            .ok_or_else(|| DxError::invalid("connected needs a string `graph` axis"))?;
        let g = graph_family(name, n, sc.seed, salt)?;
        let traced = connected_traced(m.p, &g);
        if !dxbsp_algos::connected::same_partition(&traced.value.0, &g.components_oracle()) {
            return Err(DxError::invalid("connected components disagree with the oracle"));
        }
        let map = super::hashed_map(&m, sc.seed);
        let res = replay(&mut super::backend(&m), &traced.trace, &map);
        let mut hook_k = 0usize;
        let mut short_k = 0usize;
        for step in &traced.trace {
            let k = step.pattern.contention_profile().max_location_contention;
            if step.label.contains("hook") {
                hook_k = hook_k.max(k);
            } else if step.label.contains("shortcut") {
                short_k = short_k.max(k);
            }
        }
        let predicted = replay(
            &mut super::model_backend(&m, dxbsp_core::CostModel::DxBsp),
            &traced.trace,
            &map,
        )
        .total_cycles;
        Ok(vec![
            Cell::str(name),
            Cell::size(traced.value.1.rounds),
            Cell::size(hook_k),
            Cell::size(short_k),
            Cell::int(res.total_cycles),
            Cell::int(predicted),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["graph", "rounds", "max k (hook)", "max k (shortcut)", "measured", "dxbsp-pred"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// Experiment 7: binary search across query counts.
#[must_use]
pub fn exp7_binary_search(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp7", scale, seed)
}

/// Experiment 8 (Figure 11): random permutation, darts vs. radix sort.
#[must_use]
pub fn exp8_random_perm(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp8", scale, seed)
}

/// Experiment 9 (Figure 12): SpMV vs. dense-column length.
#[must_use]
pub fn exp9_spmv(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp9", scale, seed)
}

/// Experiment 10: connected components across graph families.
#[must_use]
pub fn exp10_connected(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp10", scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp7_qrqw_beats_erew_and_naive() {
        let t = exp7_binary_search(Scale::Quick, 1);
        for row in &t.rows {
            let naive: f64 = row[1].parse().unwrap();
            let qrqw: f64 = row[2].parse().unwrap();
            let erew: f64 = row[3].parse().unwrap();
            assert!(qrqw < erew, "qrqw {qrqw} should beat erew {erew}");
            assert!(qrqw < naive, "qrqw {qrqw} should beat naive {naive}");
        }
    }

    #[test]
    fn exp8_darts_beat_sort() {
        let t = exp8_random_perm(Scale::Quick, 2);
        for r in t.column_f64(4) {
            assert!(r > 1.0, "erew/qrqw ratio {r} not > 1");
        }
    }

    #[test]
    fn exp9_dense_column_drives_time() {
        let t = exp9_spmv(Scale::Quick, 3);
        let measured = t.column_f64(2);
        let first = measured[0];
        let last = *measured.last().unwrap();
        assert!(last > 2.0 * first, "dense column had no effect: {measured:?}");
    }

    #[test]
    fn exp10_star_contention_dwarfs_chain() {
        let t = exp10_connected(Scale::Quick, 4);
        let find = |name: &str| t.rows.iter().find(|r| r[0].contains(name)).unwrap().clone();
        let star_k: f64 = find("star")[2].parse().unwrap();
        let chain_k: f64 = find("chain")[2].parse().unwrap();
        assert!(star_k > 50.0 * chain_k.max(1.0), "star {star_k} vs chain {chain_k}");
    }

    #[test]
    fn exp10_prediction_tracks_measurement() {
        let t = exp10_connected(Scale::Quick, 5);
        for row in &t.rows {
            let meas: f64 = row[4].parse().unwrap();
            let pred: f64 = row[5].parse().unwrap();
            let ratio = meas / pred;
            assert!(ratio > 0.3 && ratio < 3.0, "{}: ratio {ratio}", row[0]);
        }
    }
}
