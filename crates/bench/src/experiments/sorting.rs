//! BSP sorting scenarios: the oversampling sweep and the
//! radix-vs-sample comparison.
//!
//! Both kinds stream their sorts — the algorithm drives a
//! [`TraceBuilder::streaming`] builder whose sink executes each
//! superstep on a simulator session the moment it closes, so the trace
//! never materializes and the session's `peak_step_requests` watermark
//! reports what a streamed run actually held resident. The same
//! generator, re-seeded, streams through
//! [`ModelBackend`](dxbsp_machine::ModelBackend) sessions to
//! put the `max(L, g·h, max_b d_b·R_b)` predictions next to the
//! measured cycles.
//!
//! `sort-oversample` sweeps the sample sort's oversampling ratio: more
//! samples buy tighter bucket balance (max bucket → n/buckets) at the
//! price of a larger, more contended sample-sort phase — the QRQW
//! trade Gerbessiotis-style one-pass sorting rests on. `sort-compare`
//! sweeps the radix width, putting the EREW multi-pass radix sort
//! (passes = ⌈bits/width⌉) against the one-partition-pass QRQW sample
//! sort on the same keys.

use dxbsp_algos::{radix_sort, sample_sort, TraceBuilder};
use dxbsp_core::{BankMap, CostModel, DxError, Scenario, WorkloadSpec};
use dxbsp_machine::{Backend, Session, SessionSink};
use dxbsp_workloads::{generate_keys, KeyRequest};

use crate::record::Cell;
use crate::runner::parallel_map;
use crate::sweep::{point_n, ScenarioOutput};

/// Salt separating the splitter-sampling RNG stream from the key
/// stream, so re-streaming a sort for a prediction replays the exact
/// same samples.
const SAMPLE_SALT: u64 = 0x5A17;

/// The cost model a scenario `models` entry names (anything but `bsp`
/// means the (d,x)-BSP, matching the scatter executor's convention).
pub(super) fn cost_model(name: &str) -> CostModel {
    if name == "bsp" {
        CostModel::Bsp
    } else {
        CostModel::DxBsp
    }
}

/// Streams one sort through `session` and reports the session's delta
/// cycles. The closure drives a streaming [`TraceBuilder`]; every
/// superstep executes as it closes, so only one step is ever resident.
fn streamed<B: Backend, T>(
    session: &mut Session<B>,
    map: &dyn BankMap,
    procs: usize,
    sort: impl FnOnce(&mut TraceBuilder) -> T,
) -> (u64, T) {
    let before = session.cycles();
    let value = {
        let mut sink = SessionSink::new(session, map);
        let mut tb = TraceBuilder::streaming(procs, &mut sink);
        let value = sort(&mut tb);
        let _ = tb.finish();
        value
    };
    (session.cycles() - before, value)
}

/// Digit passes an LSD radix sort needs for `keys` at `radix_bits` per
/// pass (the EREW side of the comparison).
fn radix_passes(keys: &[u64], radix_bits: u32) -> u32 {
    let max = keys.iter().copied().max().unwrap_or(0);
    (64 - max.leading_zeros()).div_ceil(radix_bits).max(1)
}

/// The `sort-oversample` executor: QRQW sample sort across the
/// `oversample` axis — bucket balance, splitter-lookup contention,
/// measured cycles with model predictions, and the streaming
/// peak-resident watermark.
pub fn run_sort_oversample(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    if !matches!(sc.workload, WorkloadSpec::SortKeys { .. }) {
        return Err(DxError::invalid("sort-oversample needs a `sort-keys` workload"));
    }
    let buckets = usize::try_from(sc.param_u64("buckets", 16)?)
        .map_err(|_| DxError::invalid("buckets out of range"))?;

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let n = point_n(sc, pt)?;
        let oversample = usize::try_from(
            pt.u64("oversample")
                .ok_or_else(|| DxError::invalid("sort-oversample needs an `oversample` axis"))?,
        )
        .map_err(|_| DxError::invalid("oversample out of range"))?;
        let salt = pt.salt();
        let keys = generate_keys(&sc.workload, &KeyRequest::of(n), sc.seed, salt)?;
        let map = super::hashed_map(&m, sc.seed ^ salt);

        let mut session = Session::new(super::backend_with(&m, sc.exec, sc.engine));
        let (measured, (sorted, stats)) = streamed(&mut session, &map, m.p, |tb| {
            let mut rng = super::point_rng(sc.seed, salt ^ SAMPLE_SALT);
            sample_sort::sample_sort_with(tb, &keys, buckets, oversample, &mut rng)
        });
        let peak = session.peak_step_requests();
        let mut expect = keys.clone();
        expect.sort_unstable();
        if sorted != expect {
            return Err(DxError::invalid("sample sort output is not sorted"));
        }

        #[allow(clippy::cast_precision_loss)]
        let mut cells = vec![
            Cell::size(oversample),
            Cell::size(n),
            Cell::size(stats.max_bucket),
            Cell::Float(stats.max_bucket as f64 / (n as f64 / stats.buckets as f64)),
            Cell::size(stats.lookup_contention),
            Cell::int(measured),
        ];
        // The same stream, re-seeded, through each requested cost lens.
        for model in &sc.models {
            let mut ms = Session::new(super::model_backend(&m, cost_model(model)));
            let (pred, _) = streamed(&mut ms, &map, m.p, |tb| {
                let mut rng = super::point_rng(sc.seed, salt ^ SAMPLE_SALT);
                sample_sort::sample_sort_with(tb, &keys, buckets, oversample, &mut rng)
            });
            cells.push(Cell::int(pred));
        }
        cells.push(Cell::size(peak));
        Ok(cells)
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;

    let mut headers = vec!["oversample", "n", "max bucket", "balance", "lookup k", "measured"];
    let pred_headers: Vec<String> = sc.models.iter().map(|mo| format!("{mo}-pred")).collect();
    headers.extend(pred_headers.iter().map(String::as_str));
    headers.push("peak_resident");
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `sort-compare` executor: EREW radix sort vs. QRQW sample sort
/// across the `radix_bits` axis — the pass count ⌈bits/width⌉ against
/// the bounded-contention single partition pass, measured and
/// model-predicted on the same streamed supersteps.
pub fn run_sort_compare(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    if !matches!(sc.workload, WorkloadSpec::SortKeys { .. }) {
        return Err(DxError::invalid("sort-compare needs a `sort-keys` workload"));
    }
    let buckets = usize::try_from(sc.param_u64("buckets", 16)?)
        .map_err(|_| DxError::invalid("buckets out of range"))?;
    let oversample = usize::try_from(sc.param_u64("oversample", 8)?)
        .map_err(|_| DxError::invalid("oversample out of range"))?;

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let radix_bits = u32::try_from(
            pt.u64("radix_bits")
                .ok_or_else(|| DxError::invalid("sort-compare needs a `radix_bits` axis"))?,
        )
        .map_err(|_| DxError::invalid("radix_bits out of range"))?;
        let n = point_n(sc, pt)?;
        let salt = pt.salt();
        let keys = generate_keys(&sc.workload, &KeyRequest::of(n), sc.seed, salt)?;
        let map = super::hashed_map(&m, sc.seed ^ salt);

        let mut rsess = Session::new(super::backend_with(&m, sc.exec, sc.engine));
        let (radix_meas, perm) =
            streamed(&mut rsess, &map, m.p, |tb| radix_sort::sort_with(tb, &keys, radix_bits));
        let radix_sorted: Vec<u64> = perm.iter().map(|&i| keys[i as usize]).collect();

        let mut ssess = Session::new(super::backend_with(&m, sc.exec, sc.engine));
        let (sample_meas, (sorted, stats)) = streamed(&mut ssess, &map, m.p, |tb| {
            let mut rng = super::point_rng(sc.seed, salt ^ SAMPLE_SALT);
            sample_sort::sample_sort_with(tb, &keys, buckets, oversample, &mut rng)
        });
        if radix_sorted != sorted {
            return Err(DxError::invalid("radix and sample sorts disagree"));
        }

        let mut rmodel = Session::new(super::model_backend(&m, CostModel::DxBsp));
        let (radix_pred, _) =
            streamed(&mut rmodel, &map, m.p, |tb| radix_sort::sort_with(tb, &keys, radix_bits));
        let mut smodel = Session::new(super::model_backend(&m, CostModel::DxBsp));
        let (sample_pred, _) = streamed(&mut smodel, &map, m.p, |tb| {
            let mut rng = super::point_rng(sc.seed, salt ^ SAMPLE_SALT);
            sample_sort::sample_sort_with(tb, &keys, buckets, oversample, &mut rng)
        });

        #[allow(clippy::cast_precision_loss)]
        Ok(vec![
            Cell::size(radix_bits as usize),
            Cell::size(radix_passes(&keys, radix_bits) as usize),
            Cell::int(radix_meas),
            Cell::int(radix_pred),
            Cell::int(sample_meas),
            Cell::int(sample_pred),
            Cell::size(stats.lookup_contention),
            Cell::Float(radix_meas as f64 / sample_meas as f64),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;

    let headers = [
        "radix_bits",
        "passes",
        "radix (EREW)",
        "radix dxbsp",
        "sample (QRQW)",
        "sample dxbsp",
        "lookup k",
        "radix/sample",
    ];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxbsp_core::{Axis, Sweep};

    fn oversample_scenario() -> Scenario {
        let mut sc = Scenario::new("t-oversample", "sort-oversample", 1995);
        sc.n = Some(2048);
        sc.workload = WorkloadSpec::SortKeys { bits: 40 };
        sc.sweep = Sweep::new(vec![Axis::ints("oversample", [1, 4, 16])]);
        sc
    }

    #[test]
    fn oversampling_tightens_bucket_balance() {
        let out = run_sort_oversample(&oversample_scenario()).unwrap();
        assert_eq!(out.table.rows.len(), 3);
        let balance = out.table.column_f64(3);
        assert!(
            balance.last().unwrap() < balance.first().unwrap(),
            "more oversampling must tighten balance: {balance:?}"
        );
        // The watermark is bounded by the sort's own supersteps — far
        // below the full trace's request total.
        let peaks = out.table.column_f64(8);
        for p in &peaks {
            assert!(*p > 0.0 && *p < 3.0 * 2048.0, "{peaks:?}");
        }
    }

    #[test]
    fn oversample_executor_is_deterministic() {
        let a = run_sort_oversample(&oversample_scenario()).unwrap();
        let b = run_sort_oversample(&oversample_scenario()).unwrap();
        assert_eq!(a.table.rows, b.table.rows);
    }

    #[test]
    fn compare_wide_keys_favor_sample_sort() {
        let mut sc = Scenario::new("t-compare", "sort-compare", 1995);
        sc.n = Some(2048);
        sc.workload = WorkloadSpec::SortKeys { bits: 40 };
        sc.sweep = Sweep::new(vec![Axis::ints("radix_bits", [4, 8, 12])]);
        let out = run_sort_compare(&sc).unwrap();
        // Fewer bits → more EREW passes → worse radix/sample ratio.
        let passes = out.table.column_f64(1);
        assert!(passes.first().unwrap() > passes.last().unwrap(), "{passes:?}");
        for r in out.table.column_f64(7) {
            assert!(r > 1.0, "radix/sample ratio {r} not > 1");
        }
    }

    /// Streaming a sort through [`SessionSink`] must be bit-identical
    /// to collecting its full trace and replaying it — same cycles,
    /// same request count, same per-bank totals — while the streamed
    /// run's watermark stays at the biggest single superstep.
    #[test]
    fn streamed_sorts_equal_their_materialized_traces() {
        let m = super::super::default_machine();
        let map = super::super::hashed_map(&m, 71);
        let keys: Vec<u64> = {
            use rand::Rng;
            let mut rng = super::super::point_rng(71, 1);
            (0..4096).map(|_| rng.random_range(0..1u64 << 40)).collect()
        };

        type Drive = Box<dyn Fn(&mut TraceBuilder)>;
        let drives: Vec<(&str, Drive)> = vec![
            ("sample", {
                let keys = keys.clone();
                Box::new(move |tb: &mut TraceBuilder| {
                    let mut rng = super::super::point_rng(71, 2);
                    let _ = sample_sort::sample_sort_with(tb, &keys, 16, 8, &mut rng);
                })
            }),
            ("radix", {
                let keys = keys.clone();
                Box::new(move |tb: &mut TraceBuilder| {
                    let _ = radix_sort::sort_with(tb, &keys, 8);
                })
            }),
        ];
        for (name, drive) in &drives {
            let mut live = Session::new(super::super::backend(&m));
            let (_, ()) = streamed(&mut live, &map, m.p, |tb| drive(tb));

            let mut tb = TraceBuilder::new(m.p);
            drive(&mut tb);
            let trace = tb.finish();
            let mut replayed = Session::new(super::super::backend(&m));
            let _ = replayed.run_trace(&trace, &map);

            assert_eq!(live.cycles(), replayed.cycles(), "{name}: cycles diverge");
            assert_eq!(live.requests(), replayed.requests(), "{name}: request counts diverge");
            assert_eq!(live.bank_totals(), replayed.bank_totals(), "{name}: bank totals diverge");
            let biggest = trace.iter().map(|s| s.pattern.len()).max().unwrap_or(0);
            assert_eq!(live.peak_step_requests(), biggest, "{name}: watermark");
        }
    }

    #[test]
    fn sort_kinds_reject_wrong_workloads() {
        let mut sc = oversample_scenario();
        sc.workload = WorkloadSpec::None;
        assert!(run_sort_oversample(&sc).is_err());
        sc.kind = "sort-compare".into();
        assert!(run_sort_compare(&sc).is_err());
    }
}
