//! Experiment 11: QRQW-on-(d,x)-BSP emulation slowdown across the
//! `(d, x)` grid (paper §5, Theorems 5.1 and 5.2).

use dxbsp_core::MachineParams;
use dxbsp_hash::Degree;
use dxbsp_pram::{theory, Emulator, Op, Program, Step};

use crate::runner::parallel_map;
use crate::table::{fmt_f, Table};
use crate::Scale;

/// A one-step QRQW program: `n` vprocs write distinct random cells
/// except for a hot cell of contention `k`.
#[must_use]
pub fn hotspot_program(n: usize, k: usize, seed: u64) -> Program {
    let mut rng = super::point_rng(seed, 0xE11);
    let mut step = Step::new(n);
    for v in 0..n {
        let addr = if v < k { 0 } else { rand::Rng::random::<u64>(&mut rng) >> 8 };
        step.push_op(v, Op::Write(addr));
    }
    let mut prog = Program::new(n);
    prog.push(step);
    prog
}

/// Sweeps `x` for two bank delays and reports the emulation work ratio
/// (physical work over PRAM work) against the theory bounds. For
/// `x ≤ d` the ratio follows `d/x` (Thm 5.1's inevitable overhead);
/// for `x ≥ d` it flattens to O(1) (Thm 5.2, work-preserving).
#[must_use]
pub fn exp11_emulation(scale: Scale, seed: u64) -> Table {
    let p = 8usize;
    let n = scale.scatter_n();
    let ds = [4u64, 16];
    let xs = [1usize, 2, 4, 8, 16, 32, 64];

    let mut t = Table::new(
        format!("Experiment 11: QRQW emulation work ratio (n={n} vprocs, p={p})"),
        &["x", "ratio d=4", "bound d=4", "ratio d=16", "bound d=16", "thm5.1 floor d=16"],
    );
    let rows = parallel_map(&xs, |&x| {
        let mut cells = vec![x.to_string()];
        for &d in &ds {
            let m = MachineParams::new(p, 1, 0, d, x);
            let mut rng = super::point_rng(seed, (x as u64) << 8 | d);
            let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
            let prog = hotspot_program(n, 1, seed ^ d);
            let rep = emu.run(&prog);
            cells.push(fmt_f(rep.work_ratio()));
            // Theory bound expressed as a work ratio: the per-step
            // cycle bound times p over the PRAM work n·t.
            let bound = theory::step_bound(&m, n, 1) as f64 * p as f64 / n as f64;
            cells.push(fmt_f(bound));
        }
        cells.push(fmt_f(theory::work_overhead_lower_bound(&MachineParams::new(p, 1, 0, 16, x))));
        cells
    });
    for row in rows {
        t.push_row(row);
    }
    t.note("ratio ≈ d/x while x ≤ d (Thm 5.1), flattening to O(1) once x ≥ d (Thm 5.2)");
    t
}

/// Companion sweep: slowdown vs. hot-location contention under a fixed
/// machine — the `d·k` term that distinguishes QRQW emulation cost from
/// the contention-free case.
#[must_use]
pub fn exp11_contention(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let n = scale.scatter_n();
    let ks = [1usize, 16, 256, 1024, 4096];

    let rows = parallel_map(&ks, |&k| {
        let mut rng = super::point_rng(seed, k as u64);
        let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
        let prog = hotspot_program(n, k, seed ^ k as u64);
        let rep = emu.run(&prog);
        (k, rep.qrqw_time, rep.measured_cycles, theory::step_bound(&m, n, k))
    });

    let mut t = Table::new(
        format!("Experiment 11b: emulated step cost vs. QRQW contention (n={n})"),
        &["k", "qrqw time", "measured", "theory bound", "meas/bound"],
    );
    for (k, qt, meas, bound) in rows {
        t.push_row(vec![
            k.to_string(),
            qt.to_string(),
            meas.to_string(),
            bound.to_string(),
            fmt_f(meas as f64 / bound as f64),
        ]);
    }
    t.note("measured cost stays under the reconstructed Thm 5.1/5.2 bounds at every k");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_ratio_follows_d_over_x_then_flattens() {
        let t = exp11_emulation(Scale::Quick, 1);
        let x: Vec<f64> = t.column_f64(0);
        let ratio_d16 = t.column_f64(3);
        // x=1, d=16: ratio near 16 (within 2x constants).
        assert!(ratio_d16[0] > 8.0, "{ratio_d16:?}");
        // x=64 ≥ d: ratio O(1).
        let last = *ratio_d16.last().unwrap();
        assert!(last < 4.0, "{ratio_d16:?}");
        assert_eq!(x[0], 1.0);
    }

    #[test]
    fn measured_stays_under_theory_bounds() {
        let t = exp11_emulation(Scale::Quick, 2);
        for row in &t.rows {
            for (ratio_col, bound_col) in [(1usize, 2usize), (3, 4)] {
                let ratio: f64 = row[ratio_col].parse().unwrap();
                let bound: f64 = row[bound_col].parse().unwrap();
                assert!(ratio <= bound, "x={} ratio {ratio} > bound {bound}", row[0]);
            }
        }
    }

    #[test]
    fn contended_steps_bounded_by_theory() {
        let t = exp11_contention(Scale::Quick, 3);
        for r in t.column_f64(4) {
            assert!(r <= 1.0, "measured exceeded the theory bound: {r}");
        }
        // And the d·k term really bites at high k: measured grows.
        let meas = t.column_f64(2);
        assert!(meas.last().unwrap() > &(meas[0] * 2.0), "{meas:?}");
    }
}
