//! Experiment 11: QRQW-on-(d,x)-BSP emulation slowdown across the
//! `(d, x)` grid (paper §5, Theorems 5.1 and 5.2).

use dxbsp_core::{DxError, MachineParams, Scenario};
use dxbsp_hash::Degree;
use dxbsp_pram::{theory, Emulator, Op, Program, Step};

use crate::record::Cell;
use crate::runner::parallel_map;
use crate::sweep::ScenarioOutput;
use crate::table::Table;
use crate::Scale;

/// A one-step QRQW program: `n` vprocs write distinct random cells
/// except for a hot cell of contention `k`.
#[must_use]
pub fn hotspot_program(n: usize, k: usize, seed: u64) -> Program {
    let mut rng = super::point_rng(seed, 0xE11);
    let mut step = Step::new(n);
    for v in 0..n {
        let addr = if v < k { 0 } else { rand::Rng::random::<u64>(&mut rng) >> 8 };
        step.push_op(v, Op::Write(addr));
    }
    let mut prog = Program::new(n);
    prog.push(step);
    prog
}

/// The `emulation` executor: sweep the `x` axis for the bank delays in
/// param `d_grid` (comma-separated, default `4,16`) and report the
/// emulation work ratio (physical work over PRAM work) against the
/// theory bounds. For `x ≤ d` the ratio follows `d/x` (Thm 5.1's
/// inevitable overhead); for `x ≥ d` it flattens to O(1) (Thm 5.2,
/// work-preserving).
pub fn run_emulation(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let n = sc.n.ok_or_else(|| DxError::invalid("emulation needs `n`"))?;
    let base = sc.machine.resolve()?;
    let p = base.p;
    let ds: Vec<u64> = sc
        .param_str("d_grid", "4,16")?
        .split(',')
        .map(|s| s.trim().parse::<u64>().map_err(|_| DxError::invalid("d_grid must be integers")))
        .collect::<Result<_, _>>()?;
    if ds.len() != 2 {
        return Err(DxError::invalid("emulation expects exactly two `d_grid` values"));
    }
    let floor_d = sc.param_u64("floor_d", 16)?;

    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let x = pt.u64("x").ok_or_else(|| DxError::invalid("emulation needs an `x` axis"))?;
        let x = usize::try_from(x).map_err(|_| DxError::invalid("x out of range"))?;
        let mut cells = vec![Cell::size(x)];
        for &d in &ds {
            let m = MachineParams::try_new(p, base.g, base.l, d, x)?;
            let mut rng = super::point_rng(sc.seed, (x as u64) << 8 | d);
            let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
            let prog = hotspot_program(n, 1, sc.seed ^ d);
            let rep = emu.run(&prog);
            cells.push(Cell::Float(rep.work_ratio()));
            // Theory bound expressed as a work ratio: the per-step
            // cycle bound times p over the PRAM work n·t.
            #[allow(clippy::cast_precision_loss)]
            let bound = theory::step_bound(&m, n, 1) as f64 * p as f64 / n as f64;
            cells.push(Cell::Float(bound));
        }
        cells.push(Cell::Float(theory::work_overhead_lower_bound(&MachineParams::try_new(
            p, base.g, base.l, floor_d, x,
        )?)));
        Ok(cells)
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;

    let (d0, d1) = (ds[0], ds[1]);
    let h1 = format!("ratio d={d0}");
    let h2 = format!("bound d={d0}");
    let h3 = format!("ratio d={d1}");
    let h4 = format!("bound d={d1}");
    let h5 = format!("thm5.1 floor d={floor_d}");
    let headers = ["x", h1.as_str(), h2.as_str(), h3.as_str(), h4.as_str(), h5.as_str()];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `emulation-contention` executor: slowdown vs. hot-location
/// contention (the `k` axis) under a fixed machine — the `d·k` term
/// that distinguishes QRQW emulation cost from the contention-free
/// case.
pub fn run_emulation_contention(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let m = sc.machine.resolve()?;
    let n = sc.n.ok_or_else(|| DxError::invalid("emulation-contention needs `n`"))?;
    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let k =
            pt.u64("k").ok_or_else(|| DxError::invalid("emulation-contention needs a `k` axis"))?;
        let ku = usize::try_from(k).map_err(|_| DxError::invalid("k out of range"))?;
        let mut rng = super::point_rng(sc.seed, pt.salt());
        let mut emu = Emulator::new(m, Degree::Linear, &mut rng);
        let prog = hotspot_program(n, ku, sc.seed ^ pt.salt());
        let rep = emu.run(&prog);
        let bound = theory::step_bound(&m, n, ku);
        #[allow(clippy::cast_precision_loss)]
        Ok(vec![
            Cell::size(ku),
            Cell::int(rep.qrqw_time),
            Cell::int(rep.measured_cycles),
            Cell::int(bound),
            Cell::Float(rep.measured_cycles as f64 / bound as f64),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["k", "qrqw time", "measured", "theory bound", "meas/bound"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// Experiment 11: QRQW emulation work ratio over the `(d, x)` grid.
#[must_use]
pub fn exp11_emulation(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp11", scale, seed)
}

/// Experiment 11b: emulated step cost vs. QRQW contention.
#[must_use]
pub fn exp11_contention(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp11b", scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_ratio_follows_d_over_x_then_flattens() {
        let t = exp11_emulation(Scale::Quick, 1);
        let x: Vec<f64> = t.column_f64(0);
        let ratio_d16 = t.column_f64(3);
        // x=1, d=16: ratio near 16 (within 2x constants).
        assert!(ratio_d16[0] > 8.0, "{ratio_d16:?}");
        // x=64 ≥ d: ratio O(1).
        let last = *ratio_d16.last().unwrap();
        assert!(last < 4.0, "{ratio_d16:?}");
        assert_eq!(x[0], 1.0);
    }

    #[test]
    fn measured_stays_under_theory_bounds() {
        let t = exp11_emulation(Scale::Quick, 2);
        for row in &t.rows {
            for (ratio_col, bound_col) in [(1usize, 2usize), (3, 4)] {
                let ratio: f64 = row[ratio_col].parse().unwrap();
                let bound: f64 = row[bound_col].parse().unwrap();
                assert!(ratio <= bound, "x={} ratio {ratio} > bound {bound}", row[0]);
            }
        }
    }

    #[test]
    fn contended_steps_bounded_by_theory() {
        let t = exp11_contention(Scale::Quick, 3);
        for r in t.column_f64(4) {
            assert!(r <= 1.0, "measured exceeded the theory bound: {r}");
        }
        // And the d·k term really bites at high k: measured grows.
        let meas = t.column_f64(2);
        assert!(meas.last().unwrap() > &(meas[0] * 2.0), "{meas:?}");
    }
}
