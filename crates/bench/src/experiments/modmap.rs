//! Experiment 6 and ablation A1: module-map contention under random
//! memory mappings (paper §4).
//!
//! Random hashing spreads concurrently requested locations over the
//! banks, but distinct addresses can still *co-reside* on one bank
//! (module-map contention). The paper plots the ratio of time with
//! that effect to time without it, as a function of the expansion
//! factor, for a worst-case reference pattern.

use dxbsp_core::{AccessPattern, Interleaved, MachineParams};
use dxbsp_machine::Backend;
use dxbsp_workloads::strided_addresses;

use crate::runner::parallel_map;
use crate::table::{fmt_f, Table};
use crate::Scale;

/// Experiment 6: ratio of hashed-mapping time to the ideal (even
/// round-robin) time, vs. expansion factor, for a worst-case pattern
/// (`n` distinct addresses requested concurrently, exactly once each —
/// all bank contention is module-map contention).
#[must_use]
pub fn exp6_modmap(scale: Scale, seed: u64) -> Table {
    let n = scale.scatter_n();
    let xs = [1usize, 2, 4, 8, 16, 32, 64, 128];

    let rows = parallel_map(&xs, |&x| {
        let m = MachineParams::new(8, 1, 0, 14, x);
        // Distinct addresses with a pseudo-random spacing (keeps the
        // hashed mapping honest; any fixed set works).
        let addrs: Vec<u64> =
            (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 4).collect();
        let pat = AccessPattern::scatter(m.p, &addrs);
        // One backend per sweep point, stepped twice: the ideal run
        // reuses the hashed run's buffers.
        let mut backend = super::backend(&m);
        let hashed = backend.step(&pat, &super::hashed_map(&m, seed ^ x as u64)).cycles;
        // Ideal: the same request volume dealt perfectly evenly —
        // element i to bank i mod B, i.e. interleaved consecutive
        // addresses (module-map contention exactly ⌈n/B⌉, the minimum).
        let ideal_addrs: Vec<u64> = (0..n as u64).collect();
        let ideal_pat = AccessPattern::scatter(m.p, &ideal_addrs);
        let ideal = backend.step(&ideal_pat, &Interleaved::new(m.banks())).cycles;
        (x, hashed, ideal)
    });

    let mut t = Table::new(
        format!("Experiment 6: module-map contention vs. expansion (worst-case pattern, n={n})"),
        &["x", "hashed cycles", "ideal cycles", "ratio"],
    );
    for (x, hashed, ideal) in rows {
        t.push_row(vec![
            x.to_string(),
            hashed.to_string(),
            ideal.to_string(),
            fmt_f(hashed as f64 / ideal as f64),
        ]);
    }
    t.note("ratio → 1 as expansion grows: extra banks absorb hashing imbalance (paper §4)");
    t
}

/// Ablation A1: hashed vs. interleaved mapping under constant-stride
/// access — why §4's random mappings exist at all.
#[must_use]
pub fn ablation_mapping(scale: Scale, seed: u64) -> Table {
    let m = super::default_machine();
    let n = scale.scatter_n();
    let strides = [1u64, 2, 4, 8, 16, 64, 256, 1024];

    let rows = parallel_map(&strides, |&s| {
        let addrs = strided_addresses(0, s, n);
        let pat = AccessPattern::scatter(m.p, &addrs);
        let mut backend = super::backend(&m);
        let inter = backend.step(&pat, &Interleaved::new(m.banks())).cycles;
        let hashed = backend.step(&pat, &super::hashed_map(&m, seed ^ s)).cycles;
        (s, inter, hashed)
    });

    let mut t = Table::new(
        format!("Ablation A1: interleaved vs. hashed banks under stride access (n={n})"),
        &["stride", "interleaved", "hashed", "inter/hashed"],
    );
    for (s, inter, hashed) in rows {
        t.push_row(vec![
            s.to_string(),
            inter.to_string(),
            hashed.to_string(),
            fmt_f(inter as f64 / hashed as f64),
        ]);
    }
    t.note(
        "power-of-two strides collapse interleaving onto few banks; hashing is stride-oblivious",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modmap_overhead_shrinks_with_expansion() {
        let t = exp6_modmap(Scale::Quick, 1);
        let ratios = t.column_f64(3);
        let first = ratios[0];
        let last = *ratios.last().unwrap();
        assert!(last <= first, "{ratios:?}");
        assert!(last < 1.7, "residual overhead too high: {ratios:?}");
    }

    #[test]
    fn hashing_rescues_power_of_two_strides() {
        let t = ablation_mapping(Scale::Quick, 2);
        let ratio = t.column_f64(3);
        // Stride 1024 over 256 interleaved banks hits one bank: the
        // interleaved run must be far slower than the hashed one.
        assert!(ratio.last().unwrap() > &4.0, "{ratio:?}");
        // Stride 1 is conflict-free interleaved: hashing cannot beat it.
        assert!(ratio[0] <= 1.1, "{ratio:?}");
    }
}

/// Experiment 6b: the role of parallel slackness. §4's balance claim
/// ("if there is sufficient parallel slackness … the memory references
/// will be reasonably balanced across the banks") is a statement about
/// requests-per-bank: this sweep fixes the machine (J90-like, d=14)
/// and varies the request volume so that the slackness `n/B` spans
/// 1 … 256, reporting the max-bank-load overhead over the even split.
#[must_use]
pub fn exp6b_slackness(scale: Scale, seed: u64) -> Table {
    use dxbsp_hash::{max_load_over_trials, Degree};
    let m = super::default_machine();
    let banks = m.banks();
    let trials = scale.trials();
    let slacks = [1usize, 2, 4, 16, 64, 256];

    let rows = parallel_map(&slacks, |&s| {
        let n = banks * s;
        let mut rng = super::point_rng(seed, s as u64);
        // Distinct addresses: all imbalance is the hash's doing.
        let addrs: Vec<u64> =
            (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 3).collect();
        let rep = max_load_over_trials(&addrs, banks, Degree::Linear, trials, &mut rng);
        (s, rep.ideal_load, rep.mean_max_load, rep.overhead_ratio())
    });

    let mut t = Table::new(
        format!("Experiment 6b: slackness vs. bank-load balance (B={banks}, linear hash)"),
        &["n/B", "ideal load", "mean max load", "overhead"],
    );
    for (s, ideal, mean, ratio) in rows {
        t.push_row(vec![s.to_string(), ideal.to_string(), fmt_f(mean), fmt_f(ratio)]);
    }
    t.note("low slackness: balls-in-bins Θ(log B / log log B) overhead; high slackness: → 1");
    t
}

#[cfg(test)]
mod slackness_tests {
    use super::*;

    #[test]
    fn overhead_decreases_with_slackness() {
        let t = exp6b_slackness(Scale::Quick, 1);
        let overhead = t.column_f64(3);
        assert!(overhead[0] > 2.0, "slackness 1 must be unbalanced: {overhead:?}");
        assert!(overhead.last().unwrap() < &1.3, "{overhead:?}");
        for w in overhead.windows(2) {
            assert!(w[1] <= w[0] * 1.1, "not decreasing: {overhead:?}");
        }
    }
}
