//! Experiments 6/6b and ablation A1: module-map contention, mapping
//! comparison, and parallel slackness (paper §4).
//!
//! Random hashing spreads concurrently requested locations over the
//! banks, but distinct addresses can still *co-reside* on one bank
//! (module-map contention). The `modmap` kind plots the ratio of time
//! with that effect to time without it as a function of the expansion
//! factor; `mapping-compare` pits hashed against interleaved banks
//! under stride access; `slackness` measures bank-load balance as
//! requests-per-bank grows.

use dxbsp_core::{AccessPattern, DxError, Interleaved, Scenario};
use dxbsp_hash::{max_load_over_trials, Degree};
use dxbsp_machine::Backend;
use dxbsp_workloads::strided_addresses;

use crate::record::Cell;
use crate::runner::parallel_map;
use crate::sweep::{machine_for_point, point_n, ScenarioOutput};
use crate::table::Table;
use crate::Scale;

/// The `modmap` executor: ratio of hashed-mapping time to the ideal
/// (even round-robin) time across the `x` axis, for a worst-case
/// pattern (`n` distinct addresses requested concurrently, exactly once
/// each — all bank contention is module-map contention).
pub fn run_modmap(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let m = machine_for_point(sc, pt)?;
        let n = point_n(sc, pt)?;
        // Distinct addresses with a pseudo-random spacing (keeps the
        // hashed mapping honest; any fixed set works).
        let addrs: Vec<u64> =
            (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 4).collect();
        let pat = AccessPattern::scatter(m.p, &addrs);
        // One backend per sweep point, stepped twice: the ideal run
        // reuses the hashed run's buffers.
        let mut backend = super::backend(&m);
        let hashed = backend.step(&pat, &super::hashed_map(&m, sc.seed ^ pt.salt())).cycles;
        // Ideal: the same request volume dealt perfectly evenly —
        // element i to bank i mod B, i.e. interleaved consecutive
        // addresses (module-map contention exactly ⌈n/B⌉, the minimum).
        let ideal_addrs: Vec<u64> = (0..n as u64).collect();
        let ideal_pat = AccessPattern::scatter(m.p, &ideal_addrs);
        let ideal = backend.step(&ideal_pat, &Interleaved::new(m.banks())).cycles;
        #[allow(clippy::cast_precision_loss)]
        Ok(vec![
            Cell::from_axis(&pt.coords[0].value),
            Cell::int(hashed),
            Cell::int(ideal),
            Cell::Float(hashed as f64 / ideal as f64),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["x", "hashed cycles", "ideal cycles", "ratio"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `mapping-compare` executor: hashed vs. interleaved mapping under
/// constant-stride access (the `stride` axis) — why §4's random
/// mappings exist at all.
pub fn run_mapping_compare(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let m = machine_for_point(sc, pt)?;
        let n = point_n(sc, pt)?;
        let s = pt
            .u64("stride")
            .ok_or_else(|| DxError::invalid("mapping-compare needs a `stride` axis"))?;
        let addrs = strided_addresses(0, s, n);
        let pat = AccessPattern::scatter(m.p, &addrs);
        let mut backend = super::backend(&m);
        let inter = backend.step(&pat, &Interleaved::new(m.banks())).cycles;
        let hashed = backend.step(&pat, &super::hashed_map(&m, sc.seed ^ pt.salt())).cycles;
        #[allow(clippy::cast_precision_loss)]
        Ok(vec![
            Cell::int(s),
            Cell::int(inter),
            Cell::int(hashed),
            Cell::Float(inter as f64 / hashed as f64),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["stride", "interleaved", "hashed", "inter/hashed"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// The `slackness` executor: §4's balance claim ("if there is
/// sufficient parallel slackness … the memory references will be
/// reasonably balanced across the banks") is a statement about
/// requests-per-bank. The `slack` axis sets the request volume to
/// `slack · B` and we report the max-bank-load overhead over the even
/// split.
pub fn run_slackness(sc: &Scenario) -> Result<ScenarioOutput, DxError> {
    let trials = usize::try_from(sc.param_u64("trials", 3)?)
        .map_err(|_| DxError::invalid("trials out of range"))?;
    let points = sc.sweep.matrix();
    let rows: Vec<Vec<Cell>> = parallel_map(&points, |pt| {
        let m = machine_for_point(sc, pt)?;
        let banks = m.banks();
        let s =
            pt.u64("slack").ok_or_else(|| DxError::invalid("slackness needs a `slack` axis"))?;
        let n = banks
            .checked_mul(usize::try_from(s).map_err(|_| DxError::invalid("slack too large"))?)
            .ok_or_else(|| DxError::invalid("slack too large"))?;
        let mut rng = super::point_rng(sc.seed, pt.salt());
        // Distinct addresses: all imbalance is the hash's doing.
        let addrs: Vec<u64> =
            (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 3).collect();
        let rep = max_load_over_trials(&addrs, banks, Degree::Linear, trials, &mut rng);
        Ok(vec![
            Cell::int(s),
            Cell::size(rep.ideal_load),
            Cell::Float(rep.mean_max_load),
            Cell::Float(rep.overhead_ratio()),
        ])
    })
    .into_iter()
    .collect::<Result<_, DxError>>()?;
    let headers = ["n/B", "ideal load", "mean max load", "overhead"];
    Ok(ScenarioOutput::build(sc, &headers, &rows, 1))
}

/// Experiment 6: module-map contention vs. expansion factor.
#[must_use]
pub fn exp6_modmap(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp6", scale, seed)
}

/// Ablation A1: hashed vs. interleaved mapping under stride access.
#[must_use]
pub fn ablation_mapping(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("ablation_mapping", scale, seed)
}

/// Experiment 6b: slackness vs. bank-load balance.
#[must_use]
pub fn exp6b_slackness(scale: Scale, seed: u64) -> Table {
    crate::run_builtin("exp6b", scale, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modmap_overhead_shrinks_with_expansion() {
        let t = exp6_modmap(Scale::Quick, 1);
        let ratios = t.column_f64(3);
        let first = ratios[0];
        let last = *ratios.last().unwrap();
        assert!(last <= first, "{ratios:?}");
        assert!(last < 1.7, "residual overhead too high: {ratios:?}");
    }

    #[test]
    fn hashing_rescues_power_of_two_strides() {
        let t = ablation_mapping(Scale::Quick, 2);
        let ratio = t.column_f64(3);
        // Stride 1024 over 256 interleaved banks hits one bank: the
        // interleaved run must be far slower than the hashed one.
        assert!(ratio.last().unwrap() > &4.0, "{ratio:?}");
        // Stride 1 is conflict-free interleaved: hashing cannot beat it.
        assert!(ratio[0] <= 1.1, "{ratio:?}");
    }
}

#[cfg(test)]
mod slackness_tests {
    use super::*;

    #[test]
    fn overhead_decreases_with_slackness() {
        let t = exp6b_slackness(Scale::Quick, 1);
        let overhead = t.column_f64(3);
        assert!(overhead[0] > 2.0, "slackness 1 must be unbalanced: {overhead:?}");
        assert!(overhead.last().unwrap() < &1.3, "{overhead:?}");
        for w in overhead.windows(2) {
            assert!(w[1] <= w[0] * 1.1, "not decreasing: {overhead:?}");
        }
    }
}
