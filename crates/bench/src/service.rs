//! `ExecService` — the shared execution service.
//!
//! One object owns the path from a validated [`Scenario`] to a
//! [`ScenarioOutput`], for every consumer: the `dxbench`/`dxsim` CLIs,
//! the `dxserved` HTTP front-end, benches and tests. It layers three
//! things over [`run_scenario`]:
//!
//! * **Admission control** — at most `max_active` scenarios execute
//!   concurrently; up to `queue_depth` more wait; beyond that the
//!   request is *shed* with a structured [`DxError::Overloaded`]
//!   (never a panic, never unbounded queueing).
//! * **A content-addressed result cache** — keyed by
//!   [`content_hash`] of the canonical spec
//!   (seed, engine and exec mode included), bounded by total cached
//!   [`RunRecord`]s, FIFO-evicted. Results are deterministic, so a
//!   hit is byte-identical to a fresh run.
//! * **Metrics** — request/hit/miss/shed counters, queue and
//!   occupancy gauges, a log-bucket run-latency histogram, and the
//!   [`SessionPool`] occupancy, exported
//!   as a telemetry [`Registry`] (rendered live at `/metrics`).
//!
//! The CLI and the server share this one code path, so their outputs
//! stay byte-identical by construction.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use dxbsp_core::{content_hash, DxError, Scenario};
use dxbsp_machine::SessionPool;
use dxbsp_telemetry::{LogHistogram, Registry};

use crate::record::{Cell, RunRecord};
use crate::sweep::{run_scenario, ScenarioOutput};

/// Sizing knobs for an [`ExecService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Total [`RunRecord`]s retained across cached outputs; the oldest
    /// entries are evicted to stay under this.
    pub cache_records: usize,
    /// Scenarios executing concurrently; further arrivals queue.
    pub max_active: usize,
    /// Arrivals waiting beyond the active set; further arrivals shed.
    pub queue_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
        ServiceConfig { cache_records: 4096, max_active: cores.max(1), queue_depth: 64 }
    }
}

#[derive(Default)]
struct CacheState {
    entries: VecDeque<(u128, Arc<ScenarioOutput>)>,
    records: usize,
}

#[derive(Default)]
struct Gate {
    active: usize,
    waiting: usize,
}

/// The shared execution service: admission control + content-addressed
/// result cache over [`run_scenario`], with live metrics.
pub struct ExecService {
    cfg: ServiceConfig,
    cache: Mutex<CacheState>,
    gate: Mutex<Gate>,
    admitted: Condvar,
    requests: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    shed: AtomicU64,
    latency_us: Mutex<LogHistogram>,
}

impl ExecService {
    /// A service sized by `cfg`.
    #[must_use]
    pub fn new(cfg: ServiceConfig) -> Self {
        ExecService {
            cfg,
            cache: Mutex::new(CacheState::default()),
            gate: Mutex::new(Gate::default()),
            admitted: Condvar::new(),
            requests: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            latency_us: Mutex::new(LogHistogram::new()),
        }
    }

    /// The process-wide service the CLIs run through.
    #[must_use]
    pub fn global() -> &'static ExecService {
        static GLOBAL: OnceLock<ExecService> = OnceLock::new();
        GLOBAL.get_or_init(|| ExecService::new(ServiceConfig::default()))
    }

    /// This service's sizing.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Execute (or recall) a scenario. Cache hits return the stored
    /// output — byte-identical to a fresh run, since runs are
    /// deterministic functions of the canonical spec.
    ///
    /// # Errors
    ///
    /// [`DxError::Overloaded`] when admission control sheds the
    /// request, and anything [`run_scenario`] reports.
    pub fn run(&self, sc: &Scenario) -> Result<Arc<ScenarioOutput>, DxError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let _slot = self.admit()?;
        let started = Instant::now();
        let key = content_hash(sc).0;
        if let Some(out) = self.lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.record_latency(&started);
            return Ok(out);
        }
        let out = Arc::new(run_scenario(sc)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.insert(key, &out);
        self.record_latency(&started);
        Ok(out)
    }

    /// Claim an execution slot, waiting in the bounded queue if the
    /// active set is full. The returned guard frees the slot on drop.
    ///
    /// # Errors
    ///
    /// [`DxError::Overloaded`] when the queue is full too.
    pub fn admit(&self) -> Result<AdmitSlot<'_>, DxError> {
        let mut gate = self.gate.lock().expect("admission gate poisoned");
        if gate.active >= self.cfg.max_active {
            if gate.waiting >= self.cfg.queue_depth {
                drop(gate);
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(DxError::overloaded(
                    self.cfg.max_active + self.cfg.queue_depth,
                    self.cfg.max_active + self.cfg.queue_depth,
                ));
            }
            gate.waiting += 1;
            while gate.active >= self.cfg.max_active {
                gate = self.admitted.wait(gate).expect("admission gate poisoned");
            }
            gate.waiting -= 1;
        }
        gate.active += 1;
        Ok(AdmitSlot { service: self })
    }

    fn release(&self) {
        let mut gate = self.gate.lock().expect("admission gate poisoned");
        gate.active -= 1;
        drop(gate);
        self.admitted.notify_one();
    }

    fn lookup(&self, key: u128) -> Option<Arc<ScenarioOutput>> {
        let cache = self.cache.lock().expect("result cache poisoned");
        cache.entries.iter().find(|(k, _)| *k == key).map(|(_, out)| Arc::clone(out))
    }

    fn insert(&self, key: u128, out: &Arc<ScenarioOutput>) {
        let mut cache = self.cache.lock().expect("result cache poisoned");
        if cache.entries.iter().any(|(k, _)| *k == key) {
            return; // a concurrent identical miss beat us to it
        }
        cache.records += out.records.len();
        cache.entries.push_back((key, Arc::clone(out)));
        while cache.records > self.cfg.cache_records && cache.entries.len() > 1 {
            if let Some((_, old)) = cache.entries.pop_front() {
                cache.records -= old.records.len();
            }
        }
    }

    fn record_latency(&self, started: &Instant) {
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.latency_us.lock().expect("latency histogram poisoned").record(us);
    }

    /// Point-in-time service counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let gate = self.gate.lock().expect("admission gate poisoned");
        let cache = self.cache.lock().expect("result cache poisoned");
        ServiceStats {
            requests: self.requests.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            active: gate.active,
            queued: gate.waiting,
            cache_entries: cache.entries.len(),
            cache_records: cache.records,
        }
    }

    /// A live metrics snapshot: service counters and gauges, the run
    /// latency histogram, and the global session pool's occupancy —
    /// the registry `dxserved` renders at `GET /metrics`.
    #[must_use]
    pub fn registry(&self) -> Registry {
        let s = self.stats();
        let pool = SessionPool::global().stats();
        let mut reg = Registry::new();
        reg.counter("dxbsp_service_requests_total", "scenario runs requested", s.requests);
        reg.counter("dxbsp_service_cache_hits_total", "requests served from cache", s.hits);
        reg.counter("dxbsp_service_cache_misses_total", "requests executed fresh", s.misses);
        reg.counter("dxbsp_service_shed_total", "requests shed by admission control", s.shed);
        #[allow(clippy::cast_precision_loss)]
        {
            reg.gauge("dxbsp_service_active_runs", "scenarios executing now", s.active as f64);
            reg.gauge("dxbsp_service_queue_depth", "requests waiting for a slot", s.queued as f64);
            reg.gauge(
                "dxbsp_service_cache_entries",
                "cached scenario outputs",
                s.cache_entries as f64,
            );
            reg.gauge("dxbsp_service_cache_records", "cached run records", s.cache_records as f64);
            reg.gauge("dxbsp_pool_sessions_idle", "warm simulator sessions idle", pool.idle as f64);
            reg.gauge(
                "dxbsp_pool_sessions_in_use",
                "simulator sessions checked out",
                pool.in_use as f64,
            );
        }
        reg.counter("dxbsp_pool_checkouts_total", "session checkouts served", pool.checkouts);
        reg.counter("dxbsp_pool_reuses_total", "checkouts served by a warm session", pool.reuses);
        let latency = self.latency_us.lock().expect("latency histogram poisoned");
        reg.histogram("dxbsp_service_run_latency_us", "request latency (µs)", &latency);
        reg
    }
}

/// An execution slot claimed from [`ExecService::admit`]; freed (and
/// the next waiter woken) on drop.
pub struct AdmitSlot<'s> {
    service: &'s ExecService,
}

impl Drop for AdmitSlot<'_> {
    fn drop(&mut self) {
        self.service.release();
    }
}

/// Point-in-time counters from [`ExecService::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Runs requested (admitted or shed).
    pub requests: u64,
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests executed fresh.
    pub misses: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Scenarios executing now.
    pub active: usize,
    /// Requests waiting for a slot.
    pub queued: usize,
    /// Cached scenario outputs.
    pub cache_entries: usize,
    /// Total cached run records.
    pub cache_records: usize,
}

/// The records a consumer-facing JSON-lines stream carries: the run's
/// records with the engine column appended. `dxbench run --json` and
/// `dxserved POST /run` both emit exactly this, so their outputs are
/// byte-identical per record.
#[must_use]
pub fn finalize_records(sc: &Scenario, records: &[RunRecord]) -> Vec<RunRecord> {
    records
        .iter()
        .map(|r| r.clone().with("engine", Cell::Str(sc.engine.name().to_string())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use crate::Scale;

    fn small() -> Scenario {
        scenarios::builtin("exp1", Scale::Quick, 7).unwrap()
    }

    #[test]
    fn cache_hit_is_the_same_output() {
        let svc = ExecService::new(ServiceConfig::default());
        let sc = small();
        let fresh = svc.run(&sc).unwrap();
        let cached = svc.run(&sc).unwrap();
        assert!(Arc::ptr_eq(&fresh, &cached), "second run must be the cached Arc");
        let s = svc.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn distinct_seeds_do_not_share_cache_entries() {
        let svc = ExecService::new(ServiceConfig::default());
        let a = svc.run(&small()).unwrap();
        let b = svc.run(&scenarios::builtin("exp1", Scale::Quick, 8).unwrap()).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(svc.stats().misses, 2);
    }

    #[test]
    fn cache_is_bounded_by_record_count() {
        // cache_records = 1: every insert evicts the previous entry
        let svc = ExecService::new(ServiceConfig { cache_records: 1, ..ServiceConfig::default() });
        svc.run(&small()).unwrap();
        svc.run(&scenarios::builtin("exp1", Scale::Quick, 8).unwrap()).unwrap();
        let s = svc.stats();
        assert_eq!(s.cache_entries, 1, "bounded cache keeps only the newest entry");
        // The first scenario was evicted: running it again misses.
        svc.run(&small()).unwrap();
        assert_eq!(svc.stats().misses, 3);
    }

    #[test]
    fn full_gate_and_queue_shed_with_a_structured_error() {
        let svc =
            ExecService::new(ServiceConfig { cache_records: 16, max_active: 1, queue_depth: 0 });
        let slot = svc.admit().unwrap();
        let err = svc.run(&small()).unwrap_err();
        assert!(err.is_overloaded(), "expected Overloaded, got {err}");
        assert_eq!(svc.stats().shed, 1);
        drop(slot);
        svc.run(&small()).unwrap();
    }

    #[test]
    fn queued_requests_proceed_once_a_slot_frees() {
        let svc =
            ExecService::new(ServiceConfig { cache_records: 16, max_active: 1, queue_depth: 4 });
        let slot = svc.admit().unwrap();
        std::thread::scope(|s| {
            let waiter = s.spawn(|| svc.run(&small()).map(|_| ()));
            // Give the waiter time to enqueue, then free the slot.
            while svc.stats().queued == 0 {
                std::thread::yield_now();
            }
            drop(slot);
            waiter.join().expect("waiter").expect("queued run succeeds");
        });
        assert_eq!(svc.stats().shed, 0);
    }

    #[test]
    fn registry_renders_and_lints() {
        let svc = ExecService::new(ServiceConfig::default());
        svc.run(&small()).unwrap();
        let text = dxbsp_telemetry::prometheus::render(&svc.registry());
        let samples = dxbsp_telemetry::prometheus::lint(&text).expect("metrics lint");
        assert!(samples > 0);
        assert!(text.contains("dxbsp_service_cache_hits_total"), "{text}");
        assert!(text.contains("dxbsp_pool_checkouts_total"), "{text}");
    }

    #[test]
    fn finalized_records_match_the_cli_engine_column() {
        let sc = small();
        let svc = ExecService::new(ServiceConfig::default());
        let out = svc.run(&sc).unwrap();
        let recs = finalize_records(&sc, &out.records);
        assert_eq!(recs.len(), out.records.len());
        for r in &recs {
            assert_eq!(r.get("engine"), Some(&Cell::Str(sc.engine.name().to_string())));
        }
    }
}
