//! Host-side algorithm benches (trace construction + computation):
//! how expensive the §6 algorithm implementations themselves are,
//! independent of the simulated machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dxbsp_algos::{binary_search, connected, radix_sort, random_perm};
use dxbsp_workloads::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_radix_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("algos/radix_sort");
    for n in [1usize << 12, 1 << 15] {
        g.throughput(Throughput::Elements(n as u64));
        let mut rng = StdRng::seed_from_u64(1);
        let keys: Vec<u64> = (0..n).map(|_| rng.random_range(0..1u64 << 32)).collect();
        g.bench_with_input(BenchmarkId::new("host", n), &keys, |b, keys| {
            b.iter(|| black_box(radix_sort::sort_permutation(keys, 8)))
        });
        g.bench_with_input(BenchmarkId::new("traced", n), &keys, |b, keys| {
            b.iter(|| black_box(radix_sort::sort_traced(8, keys, 8)))
        });
    }
    g.finish();
}

fn bench_permutation(c: &mut Criterion) {
    let mut g = c.benchmark_group("algos/random_perm");
    let n = 1usize << 14;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("darts", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(random_perm::darts_traced(8, n, 1.5, &mut rng))
        })
    });
    g.bench_function("erew", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            black_box(random_perm::erew_traced(8, n, &mut rng))
        })
    });
    g.finish();
}

fn bench_binary_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("algos/binary_search");
    let mut rng = StdRng::seed_from_u64(3);
    let mut keys: Vec<u64> = (0..1 << 14).map(|_| rng.random_range(0..1u64 << 40)).collect();
    keys.sort_unstable();
    keys.dedup();
    let queries: Vec<u64> = (0..1 << 14).map(|_| rng.random_range(0..1u64 << 40)).collect();
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("replicated", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            black_box(binary_search::replicated_traced(8, &keys, &queries, 8, false, &mut rng))
        })
    });
    g.bench_function("erew", |b| {
        b.iter(|| black_box(binary_search::erew_traced(8, &keys, &queries)))
    });
    g.finish();
}

fn bench_connected(c: &mut Criterion) {
    let mut g = c.benchmark_group("algos/connected");
    let n = 1usize << 12;
    let mut rng = StdRng::seed_from_u64(5);
    for (name, graph) in [
        ("random", Graph::random_gnm(n, 2 * n, &mut rng)),
        ("star", Graph::star(n)),
        ("chain", Graph::chain(n)),
    ] {
        g.throughput(Throughput::Elements(graph.m() as u64));
        g.bench_function(name, |b| b.iter(|| black_box(connected::connected_traced(8, &graph))));
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_radix_sort,
    bench_permutation,
    bench_binary_search,
    bench_connected
);
criterion_main!(benches);
