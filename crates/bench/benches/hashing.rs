//! Table 3 proper: per-element evaluation cost of the universal hash
//! functions (linear h1, quadratic h2, cubic h3), measured by
//! Criterion — the host-side analogue of the paper's clocks/element.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dxbsp_hash::{Degree, PolyHash};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_hash_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/hash_eval");
    let n = 1usize << 18;
    g.throughput(Throughput::Elements(n as u64));
    let keys: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
    let mut rng = StdRng::seed_from_u64(3);

    for deg in Degree::all() {
        let h = PolyHash::random(deg, 64, 10, &mut rng);
        let mut out = Vec::with_capacity(n);
        g.bench_with_input(BenchmarkId::from_parameter(h.degree().name()), &h, |b, h| {
            b.iter(|| {
                h.eval_batch(&keys, &mut out);
                black_box(out.last().copied())
            })
        });
    }
    g.finish();
}

fn bench_bank_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/bank_mapping");
    let n = 1usize << 18;
    g.throughput(Throughput::Elements(n as u64));
    let keys: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(31)).collect();
    let mut rng = StdRng::seed_from_u64(4);
    let map = dxbsp_hash::HashedBanks::random(Degree::Linear, 256, &mut rng);
    let inter = dxbsp_core::Interleaved::new(256);

    g.bench_function("hashed", |b| {
        b.iter(|| {
            use dxbsp_core::BankMap;
            keys.iter().map(|&k| map.bank_of(k)).fold(0usize, |a, b| a ^ b)
        })
    });
    g.bench_function("interleaved", |b| {
        b.iter(|| {
            use dxbsp_core::BankMap;
            keys.iter().map(|&k| inter.bank_of(k)).fold(0usize, |a, b| a ^ b)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_hash_eval, bench_bank_mapping);
criterion_main!(benches);
