//! Criterion benches regenerating every table/figure at Quick scale —
//! one group per experiment ID of DESIGN.md §4. Each bench measures
//! the full experiment (workload generation + simulation + prediction),
//! so `cargo bench` both times the harness and re-derives the series;
//! run `repro` for the printed tables at Full scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dxbsp_bench::experiments as exp;
use dxbsp_bench::Scale;

const SEED: u64 = 1995;

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);

    g.bench_function("table1", |b| b.iter(|| black_box(exp::tables::table1())));
    g.bench_function("table2", |b| b.iter(|| black_box(exp::tables::table2(Scale::Quick))));
    g.bench_function("table3_hash", |b| {
        b.iter(|| black_box(exp::tables::table3(Scale::Quick, SEED)))
    });
    g.bench_function("fig1", |b| b.iter(|| black_box(exp::fig1::fig1(Scale::Quick, SEED))));
    g.bench_function("exp1_contention", |b| {
        b.iter(|| black_box(exp::scatter::exp1_contention(Scale::Quick, SEED)))
    });
    g.bench_function("exp2_duplication", |b| {
        b.iter(|| black_box(exp::scatter::exp2_duplication(Scale::Quick, SEED)))
    });
    g.bench_function("exp3_entropy", |b| {
        b.iter(|| black_box(exp::scatter::exp3_entropy(Scale::Quick, SEED)))
    });
    g.bench_function("exp4_expansion", |b| {
        b.iter(|| black_box(exp::scatter::exp4_expansion(Scale::Quick, SEED)))
    });
    g.bench_function("exp5_network", |b| {
        b.iter(|| black_box(exp::network::exp5_network(Scale::Quick, SEED)))
    });
    g.bench_function("exp6_modmap", |b| {
        b.iter(|| black_box(exp::modmap::exp6_modmap(Scale::Quick, SEED)))
    });
    g.bench_function("exp7_binsearch", |b| {
        b.iter(|| black_box(exp::algo_bench::exp7_binary_search(Scale::Quick, SEED)))
    });
    g.bench_function("exp8_randperm", |b| {
        b.iter(|| black_box(exp::algo_bench::exp8_random_perm(Scale::Quick, SEED)))
    });
    g.bench_function("exp9_spmv", |b| {
        b.iter(|| black_box(exp::algo_bench::exp9_spmv(Scale::Quick, SEED)))
    });
    g.bench_function("exp10_cc", |b| {
        b.iter(|| black_box(exp::algo_bench::exp10_connected(Scale::Quick, SEED)))
    });
    g.bench_function("exp11_emulation", |b| {
        b.iter(|| black_box(exp::emulation::exp11_emulation(Scale::Quick, SEED)))
    });
    g.bench_function("exp11b_emulation_contention", |b| {
        b.iter(|| black_box(exp::emulation::exp11_contention(Scale::Quick, SEED)))
    });
    g.bench_function("ablation_mapping", |b| {
        b.iter(|| black_box(exp::modmap::ablation_mapping(Scale::Quick, SEED)))
    });
    g.bench_function("ablation_window", |b| {
        b.iter(|| black_box(exp::ablation::ablation_window(Scale::Quick, SEED)))
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
