//! Simulator microbenches: throughput of the discrete-event core on
//! the canonical pattern shapes, across contention levels and network
//! models. These bound how large the Full-scale experiments can go.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dxbsp_algos::{radix_sort, sample_sort, TraceBuilder};
use dxbsp_bench::{run_builtin, Scale};
use dxbsp_core::{AccessPattern, BankDelayModel, EngineKind, Interleaved, MachineParams};
use dxbsp_machine::{
    Backend, NoopProbe, Session, SessionSink, SimConfig, Simulator, SimulatorBackend,
};
use dxbsp_pstream::{Kernel, PstreamSpec};
use dxbsp_telemetry::Recorder;
use dxbsp_workloads::{hotspot_keys, uniform_keys};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scatter_shapes(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/scatter");
    let n = 64 * 1024;
    g.throughput(Throughput::Elements(n as u64));
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = SimConfig::new(8, 256, 14);
    let map = Interleaved::new(256);

    for (name, keys) in [
        ("uniform", uniform_keys(n, 1 << 40, &mut rng)),
        ("hotspot_k4096", hotspot_keys(n, 4096, 1 << 40, &mut rng)),
        ("all_same", vec![0u64; n]),
    ] {
        let pat = AccessPattern::scatter(8, &keys);
        let sim = Simulator::new(cfg.clone());
        g.bench_function(name, |b| b.iter(|| black_box(sim.run(&pat, &map))));
    }
    g.finish();
}

/// Cost of the delay-model generalization on the hot loop: "uniform"
/// is the scalar fast path (`scripts/bench.sh --check` pins it against
/// the pre-model baselines), "per_bank_flat" a vector of identical
/// delays (the engines treat it like any per-bank vector), and
/// "per_bank_mixed" a genuine two-tier C90/J90-style vector.
fn bench_delay_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/delay_model");
    let n = 64 * 1024;
    g.throughput(Throughput::Elements(n as u64));
    let mut rng = StdRng::seed_from_u64(1);
    let keys = uniform_keys(n, 1 << 40, &mut rng);
    let pat = AccessPattern::scatter(8, &keys);
    let map = Interleaved::new(256);
    let base = SimConfig::new(8, 256, 14);
    let mut tiers = vec![6u64; 128];
    tiers.resize(256, 14);

    for (name, cfg) in [
        ("uniform", base.clone()),
        ("per_bank_flat", base.clone().with_delay_model(BankDelayModel::per_bank(vec![14; 256]))),
        ("per_bank_mixed", base.clone().with_delay_model(BankDelayModel::per_bank(tiers))),
    ] {
        let sim = Simulator::new(cfg);
        g.bench_function(name, |b| b.iter(|| black_box(sim.run(&pat, &map))));
    }
    g.finish();
}

/// The tentpole comparison: the bulk bank-epoch engine against the
/// per-request event loop it is bit-identical to, on the uniform
/// scatter shape. "epoch" is the default engine (and what every other
/// `sim/*` bench exercises); "event" pins what the event-level oracle
/// costs on the same workload.
fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/engine");
    let n = 64 * 1024;
    g.throughput(Throughput::Elements(n as u64));
    let mut rng = StdRng::seed_from_u64(1);
    let keys = uniform_keys(n, 1 << 40, &mut rng);
    let pat = AccessPattern::scatter(8, &keys);
    let map = Interleaved::new(256);

    for engine in [EngineKind::BankEpoch, EngineKind::EventLevel] {
        let sim = Simulator::new(SimConfig::new(8, 256, 14).with_engine(engine));
        g.bench_function(engine.name(), |b| b.iter(|| black_box(sim.run(&pat, &map))));
    }
    g.finish();
}

fn bench_window_and_sections(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/features");
    let n = 32 * 1024;
    let mut rng = StdRng::seed_from_u64(2);
    let keys = uniform_keys(n, 1 << 40, &mut rng);
    let pat = AccessPattern::scatter(8, &keys);
    let map = Interleaved::new(256);

    for window in [1usize, 8, 64] {
        let sim = Simulator::new(SimConfig::new(8, 256, 14).with_latency(20).with_window(window));
        g.bench_with_input(BenchmarkId::new("window", window), &window, |b, _| {
            b.iter(|| black_box(sim.run(&pat, &map)))
        });
    }
    for ports in [1usize, 4] {
        let sim = Simulator::new(SimConfig::new(8, 256, 14).with_sections(8, ports));
        g.bench_with_input(BenchmarkId::new("section_ports", ports), &ports, |b, _| {
            b.iter(|| black_box(sim.run(&pat, &map)))
        });
    }
    g.finish();
}

/// The probe seam's cost on the hot loop, pinned three ways on the
/// `sim/scatter` uniform shape: "unprobed" is the plain `run` path,
/// "noop" threads a monomorphized `NoopProbe` through `run_probed`
/// (must stay within ~2% of unprobed — the seam's zero-cost claim),
/// and "recorder" measures what full telemetry actually costs.
fn bench_probe_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/probe");
    let n = 64 * 1024;
    g.throughput(Throughput::Elements(n as u64));
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = SimConfig::new(8, 256, 14);
    let map = Interleaved::new(256);
    let keys = uniform_keys(n, 1 << 40, &mut rng);
    let pat = AccessPattern::scatter(8, &keys);
    let sim = Simulator::new(cfg);

    g.bench_function("unprobed", |b| b.iter(|| black_box(sim.run(&pat, &map))));
    g.bench_function("noop", |b| b.iter(|| black_box(sim.run_probed(&pat, &map, &mut NoopProbe))));
    g.bench_function("recorder", |b| {
        b.iter(|| {
            let mut rec = Recorder::new();
            black_box(sim.run_probed(&pat, &map, &mut rec));
            black_box(rec.requests())
        })
    });
    g.finish();
}

/// Session reuse vs. per-point allocation on an E4-style expansion
/// sweep: 64 machine shapes (x = 1…64, up to 512 banks), one uniform
/// scatter each. "fresh" pays a full `Simulator::run` allocation per
/// point; "session" reconfigures one backend and reuses its scratch.
fn bench_session_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/session_reuse");
    let n = 4096;
    let mut rng = StdRng::seed_from_u64(3);
    let keys = uniform_keys(n, 1 << 40, &mut rng);
    let pat = AccessPattern::scatter(8, &keys);
    let xs: Vec<usize> = (1..=64).collect();

    g.bench_function("fresh", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for &x in &xs {
                let cfg = SimConfig::new(8, 8 * x, 14);
                let map = Interleaved::new(cfg.banks);
                total += Simulator::new(cfg).run(&pat, &map).cycles;
            }
            black_box(total)
        })
    });
    g.bench_function("session", |b| {
        b.iter(|| {
            let mut backend = SimulatorBackend::new(SimConfig::new(8, 8, 14));
            let mut total = 0u64;
            for &x in &xs {
                let cfg = SimConfig::new(8, 8 * x, 14);
                let map = Interleaved::new(cfg.banks);
                backend.reconfigure(cfg);
                total += backend.step(&pat, &map).cycles;
            }
            black_box(total)
        })
    });
    g.finish();
}

/// Streaming vs. materialized execution of a multi-superstep trace
/// (radix sort, 8k keys): "materialize" builds the full `Trace` and
/// replays it with `Session::run_trace`; "stream" hands each superstep
/// to the session at the barrier through a `SessionSink`, so at most
/// one pooled pattern is resident regardless of trace length.
fn bench_stream_vs_materialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/stream_vs_materialize");
    let m = MachineParams::new(8, 1, 5, 14, 32);
    let map = Interleaved::new(m.banks());
    let mut rng = StdRng::seed_from_u64(4);
    let keys = uniform_keys(8 * 1024, 1 << 32, &mut rng);

    g.bench_function("materialize", |b| {
        b.iter(|| {
            let mut tb = TraceBuilder::new(m.p);
            black_box(radix_sort::sort_with(&mut tb, &keys, 8));
            let trace = tb.finish();
            let mut session = Session::new(SimulatorBackend::from_params(&m));
            session.run_trace(&trace, &map);
            black_box(session.cycles())
        })
    });
    g.bench_function("stream", |b| {
        b.iter(|| {
            let mut session = Session::new(SimulatorBackend::from_params(&m));
            {
                let mut sink = SessionSink::new(&mut session, &map);
                let mut tb = TraceBuilder::streaming(m.p, &mut sink);
                black_box(radix_sort::sort_with(&mut tb, &keys, 8));
                let _ = tb.finish();
            }
            black_box(session.cycles())
        })
    });
    g.finish();
}

/// The sorting workload family's hot path: both sorts streamed
/// through a `SessionSink` (trace never materialized), 8k uniform
/// 40-bit keys on the J90 shape. "sample" is the QRQW sample sort
/// (16 buckets, oversample 8); "radix" the EREW radix sort at 8-bit
/// digits — the two sides of the `sort_radix_vs_sample` scenario.
fn bench_sorts(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/sort");
    let n = 8 * 1024;
    g.throughput(Throughput::Elements(n as u64));
    let m = MachineParams::new(8, 1, 5, 14, 32);
    let map = Interleaved::new(m.banks());
    let mut rng = StdRng::seed_from_u64(5);
    let keys = uniform_keys(n, 1 << 40, &mut rng);

    g.bench_function("sample_streamed", |b| {
        b.iter(|| {
            let mut session = Session::new(SimulatorBackend::from_params(&m));
            {
                let mut sink = SessionSink::new(&mut session, &map);
                let mut tb = TraceBuilder::streaming(m.p, &mut sink);
                let mut rng = StdRng::seed_from_u64(6);
                black_box(sample_sort::sample_sort_with(&mut tb, &keys, 16, 8, &mut rng));
                let _ = tb.finish();
            }
            black_box(session.cycles())
        })
    });
    g.bench_function("radix_streamed", |b| {
        b.iter(|| {
            let mut session = Session::new(SimulatorBackend::from_params(&m));
            {
                let mut sink = SessionSink::new(&mut session, &map);
                let mut tb = TraceBuilder::streaming(m.p, &mut sink);
                black_box(radix_sort::sort_with(&mut tb, &keys, 8));
                let _ = tb.finish();
            }
            black_box(session.cycles())
        })
    });
    g.finish();
}

/// The pseudo-streaming kernels pulled through `Session::run_stream`:
/// 64k virtual elements in 128-element chunks, so each iteration
/// drives hundreds of generated supersteps with at most one resident.
/// Throughput is virtual elements per second.
fn bench_pstream(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/pstream");
    let n = 64 * 1024;
    g.throughput(Throughput::Elements(n as u64));
    let cfg = SimConfig::new(8, 256, 14);
    let map = Interleaved::new(256);

    for kernel in [Kernel::Scan, Kernel::Reduce, Kernel::Stencil] {
        let spec = PstreamSpec::new(kernel, n, 128, 8, 9).expect("bench spec");
        g.bench_function(kernel.name(), |b| {
            b.iter(|| {
                let mut session = Session::new(SimulatorBackend::new(cfg.clone()));
                let mut source = spec.source();
                black_box(session.run_stream(&mut source, &map));
                black_box(session.cycles())
            })
        });
    }
    g.finish();
}

/// Sweep throughput of hybrid execution: the event-level exp4 grid
/// (16 expansion × delay points) against the hybrid `exp4_hybrid` grid
/// (1600 points — every `(x, d)` pair). Classification depends on the
/// bank assignment but not on `d`, so the hybrid executor analyzes
/// each expansion row once and charges every delay point closed-form;
/// 100× the points must finish in *less* wall-clock than the
/// event-level grid, which is the headline claim of hybrid mode.
/// Throughput is reported in sweep points per second.
fn bench_sweep_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/sweep_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(16));
    g.bench_function("full_grid_16", |b| {
        b.iter(|| black_box(run_builtin("exp4", Scale::Quick, 1995)))
    });
    g.throughput(Throughput::Elements(1600));
    g.bench_function("hybrid_grid_1600", |b| {
        b.iter(|| black_box(run_builtin("exp4_hybrid", Scale::Quick, 1995)))
    });
    g.finish();
}

/// Service-core throughput: the same Quick `exp1` scenario through
/// [`ExecService`] on the cold path (a private service per iteration,
/// so every run misses and executes) versus the hot path (one warm
/// service, every run a content-addressed cache hit). The gap is what
/// `dxserved` buys a scraping client replaying a sweep grid.
fn bench_service_paths(c: &mut Criterion) {
    use dxbsp_bench::{scenarios, ExecService, ServiceConfig};
    let mut g = c.benchmark_group("serve/throughput");
    g.sample_size(10);
    let sc = scenarios::builtin("exp1", Scale::Quick, 1995).unwrap();
    g.bench_function("cache_miss", |b| {
        b.iter(|| {
            let svc = ExecService::new(ServiceConfig::default());
            black_box(svc.run(&sc).unwrap())
        })
    });
    let warm = ExecService::new(ServiceConfig::default());
    let _ = warm.run(&sc).unwrap();
    g.bench_function("cache_hit", |b| b.iter(|| black_box(warm.run(&sc).unwrap())));
    g.finish();
}

criterion_group!(
    benches,
    bench_scatter_shapes,
    bench_delay_models,
    bench_engines,
    bench_window_and_sections,
    bench_probe_overhead,
    bench_session_reuse,
    bench_stream_vs_materialize,
    bench_sorts,
    bench_pstream,
    bench_sweep_throughput,
    bench_service_paths
);
criterion_main!(benches);
