//! Bulk-synchronous pseudo-streaming kernels.
//!
//! An out-of-core workload's working set exceeds what any superstep
//! should hold resident, so its trace must never materialize: the
//! kernels here — prefix **scan**, **reduce**, and a 1-D **stencil**
//! over a virtual array of `n` elements — are
//! [`SuperstepSource`] generators that produce their supersteps chunk
//! by chunk, on demand, straight into the engine's recycled
//! [`TraceStep`] buffer. Peak-resident memory is bounded by the
//! declared chunk budget ([`PstreamSpec::step_budget`]) regardless of
//! `n`; a [`Session`](dxbsp_machine::Session) running the stream
//! observes exactly that bound as its `peak_step_requests` watermark.
//!
//! The virtual input never exists either: element `i` is the
//! deterministic hash [`elem`]`(seed, i)`, recomputed wherever a chunk
//! (or a stencil halo) needs it. Block summaries — one word per chunk,
//! the O(n/chunk) "small" structure of the out-of-core discipline
//! (Buurlage et al.) — live host-side between passes and never hit the
//! banked memory, so every generated superstep touches one contiguous
//! address range, each address exactly once. On an interleaved bank map
//! with at least `chunk + 2` banks that makes every step conflict-free,
//! and a hybrid-mode simulator charges the whole stream closed-form,
//! bit-identically to the event-level engine.
//!
//! Each kernel folds its output into a running checksum
//! ([`PstreamSource::checksum`]) that the sequential oracle
//! ([`PstreamSpec::oracle`]) reproduces, so a streamed run is checkable
//! without ever holding the output.

use dxbsp_core::DxError;
use dxbsp_machine::{SuperstepSource, Trace, TraceStep};

/// The pseudo-streaming kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Inclusive prefix sum (wrapping): two passes over the input with
    /// a host-side block-summary scan in between.
    Scan,
    /// Total sum (wrapping): one pass, then the combined total lands in
    /// its output cell.
    Reduce,
    /// 1-D three-point stencil `out[i] = in[i-1] + in[i] + in[i+1]`
    /// (wrapping, zero boundary): one pass with a two-element halo per
    /// chunk.
    Stencil,
}

impl Kernel {
    /// Parses the scenario-file kernel name.
    ///
    /// # Errors
    ///
    /// [`DxError::Unknown`] for anything but `scan`/`reduce`/`stencil`.
    pub fn parse(name: &str) -> Result<Self, DxError> {
        match name {
            "scan" => Ok(Kernel::Scan),
            "reduce" => Ok(Kernel::Reduce),
            "stencil" => Ok(Kernel::Stencil),
            other => Err(DxError::unknown("pstream kernel", other.to_string())),
        }
    }

    /// The scenario-file name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scan => "scan",
            Kernel::Reduce => "reduce",
            Kernel::Stencil => "stencil",
        }
    }
}

/// The `i`-th element of the virtual input: a SplitMix64 hash of the
/// seeded index. Pure and O(1), so chunks and halos recompute it
/// instead of storing anything.
#[must_use]
pub fn elem(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fully specified pseudo-streaming run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PstreamSpec {
    /// Which kernel.
    pub kernel: Kernel,
    /// Virtual input length.
    pub n: usize,
    /// Chunk budget: input elements resident per generated superstep.
    pub chunk: usize,
    /// Processor count (vector lanes round-robin over processors).
    pub procs: usize,
    /// Seed of the virtual input.
    pub seed: u64,
}

impl PstreamSpec {
    /// Validates and builds a spec.
    ///
    /// # Errors
    ///
    /// [`DxError::Invalid`] when `chunk < 2` or `procs == 0`.
    pub fn new(
        kernel: Kernel,
        n: usize,
        chunk: usize,
        procs: usize,
        seed: u64,
    ) -> Result<Self, DxError> {
        if chunk < 2 {
            return Err(DxError::invalid("pstream chunk budget must be >= 2"));
        }
        if procs == 0 {
            return Err(DxError::invalid("pstream needs at least one processor"));
        }
        Ok(Self { kernel, n, chunk, procs, seed })
    }

    /// Number of input chunks.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.n.div_ceil(self.chunk)
    }

    /// The declared per-superstep request budget: no generated
    /// superstep ever carries more requests than this, however large
    /// `n` grows. Scan and reduce stay within the chunk itself (block
    /// summaries are host state); the stencil reads a two-element halo
    /// on top of its chunk.
    #[must_use]
    pub fn step_budget(&self) -> usize {
        match self.kernel {
            Kernel::Scan | Kernel::Reduce => self.chunk,
            Kernel::Stencil => self.chunk + 2,
        }
    }

    /// A fresh generator for this spec.
    #[must_use]
    pub fn source(&self) -> PstreamSource {
        PstreamSource::new(*self)
    }

    /// The sequential checksum oracle: what a correct streamed run's
    /// [`PstreamSource::checksum`] must equal. O(n) time, O(1) space.
    #[must_use]
    pub fn oracle(&self) -> u64 {
        let mut checksum = 0u64;
        match self.kernel {
            Kernel::Scan => {
                let mut acc = 0u64;
                for i in 0..self.n as u64 {
                    acc = acc.wrapping_add(elem(self.seed, i));
                    checksum = checksum.wrapping_add(acc);
                }
            }
            Kernel::Reduce => {
                for i in 0..self.n as u64 {
                    checksum = checksum.wrapping_add(elem(self.seed, i));
                }
            }
            Kernel::Stencil => {
                for i in 0..self.n as u64 {
                    let l = if i > 0 { elem(self.seed, i - 1) } else { 0 };
                    let r = if i + 1 < self.n as u64 { elem(self.seed, i + 1) } else { 0 };
                    let out = l.wrapping_add(elem(self.seed, i)).wrapping_add(r);
                    checksum = checksum.wrapping_add(out);
                }
            }
        }
        checksum
    }

    /// Materializes the whole stream into a stored [`Trace`] (the
    /// differential oracle's side of streamed == materialized) along
    /// with the checksum. This is the one deliberately *non*-streaming
    /// entry point — tests only.
    #[must_use]
    pub fn materialize(&self) -> (Trace, u64) {
        let mut source = self.source();
        let mut trace = Trace::new();
        let mut step = TraceStep::default();
        while source.fill_next(&mut step) {
            trace.push(step.clone());
        }
        (trace, source.checksum().expect("stream exhausted"))
    }
}

/// Where a generator is in its kernel's superstep schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// First pass over input chunk `c` (scan/reduce: load + host block
    /// sum; stencil: halo read + compute).
    Load(usize),
    /// Host-side combine over the block summaries (scan: exclusive
    /// scan, no requests; reduce: fold + one total-cell write).
    Combine,
    /// Second-pass read of input chunk `c` (scan only; its carry is
    /// host state).
    RewriteRead(usize),
    /// Output write of chunk `c` (scan pass 2; stencil store).
    Write(usize),
    Done,
}

/// The chunk-by-chunk superstep generator. Holds O(`chunks`) host-side
/// block summaries (the out-of-core algorithm's "small" state) and O(1)
/// running accumulators — never more than one superstep of banked
/// traffic.
#[derive(Debug, Clone)]
pub struct PstreamSource {
    spec: PstreamSpec,
    phase: Phase,
    /// Block summaries: per-chunk sums, exclusively scanned in place by
    /// the `Combine` phase (scan only; reduce folds straight into
    /// `acc`).
    partials: Vec<u64>,
    /// Running total (reduce) / carry accumulator (scan).
    acc: u64,
    checksum: u64,
    emitted: usize,
}

impl PstreamSource {
    /// A generator at the start of `spec`'s schedule.
    #[must_use]
    pub fn new(spec: PstreamSpec) -> Self {
        Self {
            spec,
            phase: if spec.n == 0 { Phase::Done } else { Phase::Load(0) },
            partials: Vec::new(),
            acc: 0,
            checksum: 0,
            emitted: 0,
        }
    }

    /// The spec this generator realizes.
    #[must_use]
    pub fn spec(&self) -> &PstreamSpec {
        &self.spec
    }

    /// Supersteps emitted so far.
    #[must_use]
    pub fn supersteps_emitted(&self) -> usize {
        self.emitted
    }

    /// The kernel's output checksum — `Some` once the stream is
    /// exhausted, matching [`PstreamSpec::oracle`].
    #[must_use]
    pub fn checksum(&self) -> Option<u64> {
        (self.phase == Phase::Done).then_some(self.checksum)
    }

    /// The half-open element range of chunk `c`.
    fn range(&self, c: usize) -> (u64, u64) {
        let start = (c * self.spec.chunk) as u64;
        (start, (((c + 1) * self.spec.chunk).min(self.spec.n)) as u64)
    }

    /// Address bases of the virtual arrays: input, output, and the
    /// reduce total's cell. Guard gaps keep them disjoint.
    fn bases(&self) -> (u64, u64, u64) {
        let n = self.spec.n as u64;
        (0, n + 1, 2 * (n + 1))
    }

    fn fill(&mut self, step: &mut TraceStep) -> bool {
        let spec = self.spec;
        let (input, output, total_cell) = self.bases();
        let chunks = spec.chunks();
        step.recycle();
        step.pattern.retarget(spec.procs);
        match (spec.kernel, self.phase) {
            (_, Phase::Done) => return false,

            // First pass, chunk c.
            (kernel, Phase::Load(c)) => {
                let (start, end) = self.range(c);
                let mut lane = 0usize;
                // The stencil's halo: one element each side, clamped —
                // the range stays contiguous.
                if kernel == Kernel::Stencil && start > 0 {
                    step.pattern.push_read(lane % spec.procs, input + start - 1);
                    lane += 1;
                }
                for i in start..end {
                    step.pattern.push_read(lane % spec.procs, input + i);
                    lane += 1;
                }
                if kernel == Kernel::Stencil && end < spec.n as u64 {
                    step.pattern.push_read(lane % spec.procs, input + end);
                    lane += 1;
                }
                match kernel {
                    Kernel::Scan | Kernel::Reduce => {
                        let mut sum = 0u64;
                        for i in start..end {
                            sum = sum.wrapping_add(elem(spec.seed, i));
                        }
                        self.partials.push(sum);
                        step.label.push_str(&format!("{}:load:{c}", kernel.name()));
                        self.phase =
                            if c + 1 < chunks { Phase::Load(c + 1) } else { Phase::Combine };
                    }
                    Kernel::Stencil => {
                        for i in start..end {
                            let l = if i > 0 { elem(spec.seed, i - 1) } else { 0 };
                            let r = if i + 1 < spec.n as u64 { elem(spec.seed, i + 1) } else { 0 };
                            let out = l.wrapping_add(elem(spec.seed, i)).wrapping_add(r);
                            self.checksum = self.checksum.wrapping_add(out);
                        }
                        step.label.push_str(&format!("stencil:halo:{c}"));
                        self.phase = Phase::Write(c);
                    }
                }
                step.local_work = lane.div_ceil(spec.procs) as u64;
            }

            // Host-side combine over the block summaries.
            (kernel, Phase::Combine) => {
                match kernel {
                    Kernel::Scan => {
                        // Exclusive scan of the summaries, in place.
                        for p in &mut self.partials {
                            let sum = *p;
                            *p = self.acc;
                            self.acc = self.acc.wrapping_add(sum);
                        }
                        step.label.push_str("scan:combine");
                        self.phase = Phase::RewriteRead(0);
                    }
                    Kernel::Reduce => {
                        for &p in &self.partials {
                            self.acc = self.acc.wrapping_add(p);
                        }
                        // The total lands in its output cell.
                        step.pattern.push_write(0, total_cell);
                        self.checksum = self.acc;
                        step.label.push_str("reduce:combine");
                        self.phase = Phase::Done;
                    }
                    Kernel::Stencil => unreachable!("stencil has no combine phase"),
                }
                step.local_work = chunks.div_ceil(spec.procs).max(1) as u64;
            }

            // Scan pass 2: reread the chunk (its carry is host state)…
            (Kernel::Scan, Phase::RewriteRead(c)) => {
                let (start, end) = self.range(c);
                let mut lane = 0usize;
                for i in start..end {
                    step.pattern.push_read(lane % spec.procs, input + i);
                    lane += 1;
                }
                let mut acc = self.partials[c];
                for i in start..end {
                    acc = acc.wrapping_add(elem(spec.seed, i));
                    self.checksum = self.checksum.wrapping_add(acc);
                }
                step.label.push_str(&format!("scan:carry:{c}"));
                step.local_work = lane.div_ceil(spec.procs) as u64;
                self.phase = Phase::Write(c);
            }
            (Kernel::Reduce | Kernel::Stencil, Phase::RewriteRead(_)) => {
                unreachable!("only scan rereads")
            }

            // …and write the output chunk (scan pass 2 / stencil store).
            (kernel, Phase::Write(c)) => {
                let (start, end) = self.range(c);
                for i in start..end {
                    step.pattern.push_write((i - start) as usize % spec.procs, output + i);
                }
                step.label.push_str(&format!("{}:store:{c}", kernel.name()));
                step.local_work = 1;
                self.phase = match (kernel, c + 1 < chunks) {
                    (Kernel::Scan, true) => Phase::RewriteRead(c + 1),
                    (Kernel::Stencil, true) => Phase::Load(c + 1),
                    (_, false) => Phase::Done,
                    (Kernel::Reduce, _) => unreachable!("reduce writes only its total"),
                };
            }
        }
        self.emitted += 1;
        true
    }
}

impl SuperstepSource for PstreamSource {
    fn fill_next(&mut self, step: &mut TraceStep) -> bool {
        self.fill(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxbsp_core::Interleaved;
    use dxbsp_machine::{Session, SimConfig, SimulatorBackend};

    const KERNELS: [Kernel; 3] = [Kernel::Scan, Kernel::Reduce, Kernel::Stencil];

    #[test]
    fn kernel_names_round_trip() {
        for k in KERNELS {
            assert_eq!(Kernel::parse(k.name()).unwrap(), k);
        }
        assert!(Kernel::parse("sort").is_err());
    }

    #[test]
    fn degenerate_specs_rejected() {
        assert!(PstreamSpec::new(Kernel::Scan, 16, 1, 4, 0).is_err());
        assert!(PstreamSpec::new(Kernel::Scan, 16, 4, 0, 0).is_err());
    }

    #[test]
    fn checksums_match_the_sequential_oracle() {
        for kernel in KERNELS {
            for (n, chunk) in [(0, 4), (1, 4), (5, 8), (64, 16), (1000, 64), (257, 32)] {
                let spec = PstreamSpec::new(kernel, n, chunk, 4, 0xDEAD).unwrap();
                let mut source = spec.source();
                let mut step = TraceStep::default();
                while source.fill_next(&mut step) {}
                assert_eq!(
                    source.checksum(),
                    Some(spec.oracle()),
                    "{} n={n} chunk={chunk}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn every_superstep_respects_the_budget_and_is_conflict_free() {
        for kernel in KERNELS {
            let spec = PstreamSpec::new(kernel, 10_000, 128, 8, 7).unwrap();
            let mut source = spec.source();
            let mut step = TraceStep::default();
            while source.fill_next(&mut step) {
                assert!(
                    step.pattern.len() <= spec.step_budget(),
                    "{}: step `{}` carries {} requests, budget {}",
                    kernel.name(),
                    step.label,
                    step.pattern.len(),
                    spec.step_budget()
                );
                assert!(
                    step.pattern.contention_profile().max_location_contention <= 1,
                    "{}: step `{}` is not conflict-free",
                    kernel.name(),
                    step.label
                );
            }
        }
    }

    #[test]
    fn budget_is_independent_of_problem_size() {
        for kernel in KERNELS {
            let budgets: Vec<usize> = [1 << 10, 1 << 14, 1 << 17]
                .into_iter()
                .map(|n| PstreamSpec::new(kernel, n, 256, 8, 1).unwrap().step_budget())
                .collect();
            assert!(budgets.windows(2).all(|w| w[0] == w[1]), "{budgets:?}");
        }
    }

    /// The generated stream, materialized and replayed, is
    /// bit-identical to running it streamed — and the streamed session
    /// never holds more than the declared budget.
    #[test]
    fn streamed_equals_materialized_on_the_simulator() {
        for kernel in KERNELS {
            let spec = PstreamSpec::new(kernel, 4096, 64, 8, 3).unwrap();
            let cfg = SimConfig::new(8, 256, 14).with_sync_overhead(4);
            let map = Interleaved::new(256);

            let (trace, materialized_sum) = spec.materialize();
            let mut via_trace = Session::new(SimulatorBackend::new(cfg.clone()));
            via_trace.run_trace(&trace, &map);

            let mut via_stream = Session::new(SimulatorBackend::new(cfg));
            let summary = via_stream.run_stream(&mut spec.source(), &map);

            assert_eq!(via_stream.cycles(), via_trace.cycles(), "{}", kernel.name());
            assert_eq!(via_stream.requests(), via_trace.requests());
            assert_eq!(via_stream.bank_totals(), via_trace.bank_totals());
            assert_eq!(summary.supersteps, trace.len());
            assert_eq!(materialized_sum, spec.oracle());
            assert!(
                via_stream.peak_step_requests() <= spec.step_budget(),
                "{}: watermark {} exceeds budget {}",
                kernel.name(),
                via_stream.peak_step_requests(),
                spec.step_budget()
            );
        }
    }

    /// Conflict-free chunks take the hybrid engine's closed-form path
    /// with bit-identical totals to full event-level execution.
    #[test]
    fn hybrid_charges_every_chunk_closed_form() {
        use dxbsp_core::ExecMode;
        for kernel in KERNELS {
            let spec = PstreamSpec::new(kernel, 2048, 64, 8, 11).unwrap();
            let map = Interleaved::new(256);
            let full = SimConfig::new(8, 256, 14);
            let hybrid = full.clone().with_exec(ExecMode::hybrid(0.05));

            let mut a = Session::new(SimulatorBackend::new(full));
            a.run_stream(&mut spec.source(), &map);
            let mut b = Session::new(SimulatorBackend::new(hybrid));
            b.run_stream(&mut spec.source(), &map);

            assert_eq!(a.cycles(), b.cycles(), "{}", kernel.name());
            assert_eq!(b.modeled_steps(), b.supersteps(), "every chunk must charge closed-form");
            assert_eq!(a.modeled_steps(), 0);
        }
    }
}
