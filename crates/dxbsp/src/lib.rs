//! # dxbsp — accounting for memory bank contention and delay
//!
//! A reproduction of Blelloch, Gibbons, Matias & Zagha, *Accounting for
//! Memory Bank Contention and Delay in High-Bandwidth Multiprocessors*
//! (SPAA 1995): the (d,x)-BSP cost model, a simulated bank-interleaved
//! multiprocessor to validate it against, universal hashing for bank
//! maps, QRQW/EREW PRAMs with a work-preserving emulation, and the
//! paper's algorithm suite with exact contention accounting.
//!
//! This umbrella crate re-exports the public API of every subsystem:
//!
//! * [`model`] — machine parameters, superstep costs, predictions;
//! * [`machine`] — the discrete-event simulator ("the hardware");
//! * [`hash`] — universal hash families and hashed bank maps;
//! * [`pram`] — QRQW/EREW programs and their (d,x)-BSP emulation;
//! * [`algos`] — scans, radix sort, binary search, random permutation,
//!   SpMV, connected components, multiprefix;
//! * [`workloads`] — seeded generators for every experiment;
//! * [`vm`] — a scan-vector virtual machine executing data-parallel
//!   programs *through* the simulated memory, so values and cycle
//!   costs come from the same run.
//!
//! ## Quickstart
//!
//! Execution goes through the engine layer of [`machine`]: any
//! [`machine::Backend`] — the event-driven simulator, the naive
//! cycle-stepped reference, or the closed-form (d,x)-BSP model — can
//! step an access pattern, and a [`machine::Session`] reuses bank and
//! processor state across supersteps while accumulating totals.
//!
//! ```
//! use dxbsp::machine::{Backend, ModelBackend, Session, SimulatorBackend};
//! use dxbsp::model::{AccessPattern, CostModel, Interleaved, MachineParams};
//!
//! // A J90-like machine: 8 processors, bank delay 14, expansion 32.
//! let m = MachineParams::new(8, 1, 0, 14, 32);
//! let map = Interleaved::new(m.banks());
//!
//! // Scatter 64 writes into one hot location.
//! let pattern = AccessPattern::scatter(m.p, &vec![7u64; 64]);
//!
//! // Two interchangeable machines behind one interface: measured…
//! let mut measured = Session::new(SimulatorBackend::from_params(&m));
//! let cycles = measured.step(&pattern, &map).cycles;
//!
//! // …and predicted. The (d,x)-BSP charges the d·k serialization;
//! // the plain BSP can't.
//! let mut model = ModelBackend::new(m, CostModel::DxBsp);
//! let predicted = model.step(&pattern, &map).cycles;
//! assert_eq!(predicted, 14 * 64);
//! assert!(cycles >= predicted);
//! ```
//!
//! Supersteps can also **stream**: instead of materializing a full
//! trace and replaying it, [`algos::TraceBuilder::streaming`] hands
//! every superstep to a sink at the barrier that ends it, and a
//! [`machine::SessionSink`] runs each one through the engine and
//! recycles the buffer — execution overlaps generation and resident
//! memory stays constant no matter how long the trace is. The same
//! seam replays recorded traces: any [`machine::SuperstepSource`] (an
//! in-memory trace, a `.dxtr` file on disk, a bounded channel fed by a
//! producer thread) drives [`machine::Session::run_stream`].
//!
//! ```
//! use dxbsp::algos::{radix_sort, TraceBuilder};
//! use dxbsp::machine::{Session, SessionSink, SimulatorBackend, TraceSource};
//! use dxbsp::model::{Interleaved, MachineParams};
//!
//! let m = MachineParams::new(8, 1, 0, 14, 32);
//! let map = Interleaved::new(m.banks());
//! let keys = [9u64, 170, 3, 44, 96, 3];
//!
//! // Execute radix sort's supersteps as they are generated.
//! let mut streamed = Session::new(SimulatorBackend::from_params(&m));
//! let order = {
//!     let mut sink = SessionSink::new(&mut streamed, &map);
//!     let mut tb = TraceBuilder::streaming(m.p, &mut sink);
//!     let order = radix_sort::sort_with(&mut tb, &keys, 4);
//!     let _ = tb.finish(); // empty in streaming mode
//!     order
//! };
//! assert!(order.windows(2).all(|w| keys[w[0] as usize] <= keys[w[1] as usize]));
//!
//! // A materialized trace replayed through the same streaming seam
//! // costs exactly the same cycles.
//! let mut tb = TraceBuilder::new(m.p);
//! let _ = radix_sort::sort_with(&mut tb, &keys, 4);
//! let trace = tb.finish();
//! let mut replayed = Session::new(SimulatorBackend::from_params(&m));
//! let summary = replayed.run_stream(&mut TraceSource::new(&trace), &map);
//! assert_eq!(summary.cycles, streamed.cycles());
//! ```

/// The (d,x)-BSP cost model (re-export of `dxbsp-core`).
pub mod model {
    pub use dxbsp_core::*;
}

/// The simulated machine (re-export of `dxbsp-machine`).
pub mod machine {
    pub use dxbsp_machine::*;
}

/// Universal hashing (re-export of `dxbsp-hash`).
pub mod hash {
    pub use dxbsp_hash::*;
}

/// PRAM models and emulation (re-export of `dxbsp-pram`).
pub mod pram {
    pub use dxbsp_pram::*;
}

/// The algorithm suite (re-export of `dxbsp-algos`).
pub mod algos {
    pub use dxbsp_algos::*;
}

/// Workload generators (re-export of `dxbsp-workloads`).
pub mod workloads {
    pub use dxbsp_workloads::*;
}

/// The scan-vector virtual machine (re-export of `dxbsp-vm`).
pub mod vm {
    pub use dxbsp_vm::*;
}

/// Probes, recorders, and exporters (re-export of `dxbsp-telemetry`).
pub mod telemetry {
    pub use dxbsp_telemetry::*;
}
