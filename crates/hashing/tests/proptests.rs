//! Property tests for the hash family and bank mappings.

use dxbsp_core::BankMap;
use dxbsp_hash::{Degree, HashedBanks, PolyHash};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Every family member maps into its declared range, for every
    /// degree, domain and range width.
    #[test]
    fn range_respected(
        seed in 0u64..10_000,
        u in 1u32..=64,
        m_bits in 1u32..=32,
        xs in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        let m_bits = m_bits.min(u);
        let mut rng = StdRng::seed_from_u64(seed);
        for deg in Degree::all() {
            let h = PolyHash::random(deg, u, m_bits, &mut rng);
            for &x in &xs {
                prop_assert!(h.eval(x) < (1u64 << m_bits) || m_bits == 64);
            }
        }
    }

    /// Evaluation only depends on the low `u` bits of the input.
    #[test]
    fn high_bits_ignored(seed in 0u64..10_000, u in 1u32..=63, x in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = PolyHash::random(Degree::Quadratic, u, u.min(16), &mut rng);
        let mask = (1u64 << u) - 1;
        prop_assert_eq!(h.eval(x), h.eval(x & mask));
        prop_assert_eq!(h.eval(x), h.eval(x | !mask));
    }

    /// Linear hashing with full range is a bijection for any odd
    /// multiplier (invertibility of odd elements mod 2^u).
    #[test]
    fn full_range_linear_is_bijective(a in any::<u64>(), u in 1u32..=12) {
        let h = PolyHash::with_coefficients(Degree::Linear, u, u, &[a]);
        let n = 1u64 << u;
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = h.eval(x) as usize;
            prop_assert!(!seen[y], "collision at {x}");
            seen[y] = true;
        }
    }

    /// Batch evaluation equals scalar evaluation.
    #[test]
    fn batch_matches_scalar(
        seed in 0u64..10_000,
        xs in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = PolyHash::random(Degree::Cubic, 64, 12, &mut rng);
        let mut out = Vec::new();
        h.eval_batch(&xs, &mut out);
        prop_assert_eq!(out.len(), xs.len());
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(out[i], h.eval(x));
        }
    }

    /// Hashed bank maps always return valid banks, including for
    /// non-power-of-two bank counts.
    #[test]
    fn hashed_banks_in_range(
        seed in 0u64..10_000,
        banks in 1usize..=500,
        xs in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let map = HashedBanks::random(Degree::Linear, banks, &mut rng);
        prop_assert_eq!(map.num_banks(), banks);
        for &x in &xs {
            prop_assert!(map.bank_of(x) < banks);
        }
    }

    /// Same seed, same function: sampling is deterministic, and clones
    /// agree everywhere (experiments rely on replayable mappings).
    #[test]
    fn sampling_is_deterministic(seed in 0u64..10_000, xs in proptest::collection::vec(any::<u64>(), 1..50)) {
        let h1 = PolyHash::random(Degree::Quadratic, 48, 10, &mut StdRng::seed_from_u64(seed));
        let h2 = PolyHash::random(Degree::Quadratic, 48, 10, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(&h1, &h2);
        let clone = h1.clone();
        for &x in &xs {
            prop_assert_eq!(h1.eval(x), clone.eval(x));
        }
    }
}
