//! Hash-based address→bank mapping.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dxbsp_core::BankMap;

use crate::poly::{Degree, PolyHash};

/// A pseudo-random address→bank mapping: addresses are hashed with a
/// [`PolyHash`] into a power-of-two range at least as large as the bank
/// count, then folded modulo the bank count.
///
/// When the bank count is itself a power of two the fold is exact and
/// the mapping is a uniform draw from the hash family's range.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashedBanks {
    hash: PolyHash,
    banks: usize,
}

impl HashedBanks {
    /// Builds a hashed mapping onto `banks` banks from an explicit hash
    /// function (whose range must cover the banks).
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0` or the hash range is smaller than `banks`.
    #[must_use]
    pub fn new(hash: PolyHash, banks: usize) -> Self {
        assert!(banks >= 1, "need at least one bank");
        let range = 1u128 << hash.range_bits();
        assert!(range >= banks as u128, "hash range must cover the banks");
        Self { hash, banks }
    }

    /// Samples a random mapping with the given polynomial degree over a
    /// 64-bit address domain.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(degree: Degree, banks: usize, rng: &mut R) -> Self {
        assert!(banks >= 1, "need at least one bank");
        // Smallest power-of-two range covering the banks, plus slack
        // bits so the modulo fold stays near-uniform for non-powers.
        let m = (usize::BITS - (banks - 1).leading_zeros()).clamp(1, 32) + 8;
        Self::new(PolyHash::random(degree, 64, m.min(64), rng), banks)
    }

    /// The underlying hash function.
    #[must_use]
    pub fn hash(&self) -> &PolyHash {
        &self.hash
    }
}

impl BankMap for HashedBanks {
    fn num_banks(&self) -> usize {
        self.banks
    }

    fn bank_of(&self, addr: u64) -> usize {
        (self.hash.eval(addr) % self.banks as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_banks_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let map = HashedBanks::random(Degree::Linear, 96, &mut rng);
        for a in 0..10_000u64 {
            assert!(map.bank_of(a) < 96);
        }
    }

    #[test]
    fn strided_pattern_spreads_under_hashing() {
        // Stride 256 over 256 interleaved banks hits one bank; under a
        // random mapping it must spread widely.
        let mut rng = StdRng::seed_from_u64(17);
        let map = HashedBanks::random(Degree::Linear, 256, &mut rng);
        let mut banks: Vec<usize> = (0..4096u64).map(|i| map.bank_of(i * 256)).collect();
        banks.sort_unstable();
        banks.dedup();
        assert!(banks.len() > 128, "only {} banks used", banks.len());
    }

    #[test]
    fn mapping_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(23);
        let map = HashedBanks::random(Degree::Quadratic, 64, &mut rng);
        let map2 = map.clone();
        for a in (0..1000u64).map(|i| i * 31) {
            assert_eq!(map.bank_of(a), map2.bank_of(a));
        }
    }

    #[test]
    fn near_uniform_loads_on_random_addresses() {
        let mut rng = StdRng::seed_from_u64(29);
        let banks = 64usize;
        let map = HashedBanks::random(Degree::Cubic, banks, &mut rng);
        let n = 64 * 1024u64;
        let mut loads = vec![0usize; banks];
        for i in 0..n {
            loads[map.bank_of(i)] += 1;
        }
        let mean = (n as usize) / banks;
        let max = *loads.iter().max().unwrap();
        // Consecutive addresses are as good as random for the family:
        // max load stays within 2× the mean at this density.
        assert!(max < 2 * mean, "max load {max} vs mean {mean}");
    }

    #[test]
    #[should_panic(expected = "cover the banks")]
    fn undersized_hash_range_rejected() {
        let h = PolyHash::with_coefficients(Degree::Linear, 32, 3, &[7]); // range 8
        let _ = HashedBanks::new(h, 16);
    }
}
