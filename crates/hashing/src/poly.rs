//! The polynomial hash family over `[0, 2^u)`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Polynomial degree of a hash function: the paper's `h1`, `h2`, `h3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Degree {
    /// `h1`: multiplicative hashing, 2-universal \[DHKP93\], cheapest.
    Linear,
    /// `h2`: quadratic.
    Quadratic,
    /// `h3`: cubic.
    Cubic,
}

impl Degree {
    /// Number of coefficients (= polynomial degree).
    #[must_use]
    pub fn coefficients(self) -> usize {
        match self {
            Degree::Linear => 1,
            Degree::Quadratic => 2,
            Degree::Cubic => 3,
        }
    }

    /// All degrees, in Table 3 order.
    #[must_use]
    pub fn all() -> [Degree; 3] {
        [Degree::Linear, Degree::Quadratic, Degree::Cubic]
    }

    /// The paper's name for this function.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Degree::Linear => "Linear h1",
            Degree::Quadratic => "Quadratic h2",
            Degree::Cubic => "Cubic h3",
        }
    }
}

/// A member of the polynomial hash family mapping `[0, 2^u) → [0, 2^m)`.
///
/// Arithmetic is modulo `2^u` (wrapping in the low `u` bits) and the
/// result takes the *high* `m` of those `u` bits — the construction the
/// paper and \[DHKP93\] analyze. Coefficients are odd, as required for
/// 2-universality of the linear scheme.
///
/// # Example
///
/// ```
/// use dxbsp_hash::{Degree, PolyHash};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let h = PolyHash::random(Degree::Linear, 32, 8, &mut rng);
/// assert!(h.eval(12345) < 256);
/// // Deterministic: same input, same bucket.
/// assert_eq!(h.eval(12345), h.eval(12345));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolyHash {
    degree: Degree,
    /// Domain bits `u` (≤ 64).
    u: u32,
    /// Range bits `m` (≤ u).
    m: u32,
    /// Odd coefficients, highest degree first.
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Constructs a hash with explicit coefficients (made odd and
    /// masked to `u` bits).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ m ≤ u ≤ 64` and the coefficient count matches
    /// the degree.
    #[must_use]
    pub fn with_coefficients(degree: Degree, u: u32, m: u32, coeffs: &[u64]) -> Self {
        assert!((1..=64).contains(&u), "domain bits must be in 1..=64");
        assert!(m >= 1 && m <= u, "range bits must be in 1..=u");
        assert_eq!(coeffs.len(), degree.coefficients(), "coefficient count mismatch");
        let mask = Self::mask_for(u);
        let coeffs = coeffs.iter().map(|&c| (c | 1) & mask).collect();
        Self { degree, u, m, coeffs }
    }

    /// Samples a random member of the family.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(degree: Degree, u: u32, m: u32, rng: &mut R) -> Self {
        let coeffs: Vec<u64> = (0..degree.coefficients()).map(|_| rng.random()).collect();
        Self::with_coefficients(degree, u, m, &coeffs)
    }

    fn mask_for(u: u32) -> u64 {
        if u == 64 {
            u64::MAX
        } else {
            (1u64 << u) - 1
        }
    }

    /// Domain bits `u`.
    #[must_use]
    pub fn domain_bits(&self) -> u32 {
        self.u
    }

    /// Range bits `m` (range size is `2^m`).
    #[must_use]
    pub fn range_bits(&self) -> u32 {
        self.m
    }

    /// The polynomial degree.
    #[must_use]
    pub fn degree(&self) -> Degree {
        self.degree
    }

    /// Evaluates the hash at `x` (only the low `u` bits of `x` are
    /// significant).
    #[inline]
    #[must_use]
    pub fn eval(&self, x: u64) -> u64 {
        let mask = Self::mask_for(self.u);
        let x = x & mask;
        // Horner evaluation with a zero constant term: the constant
        // shifts buckets uniformly and adds nothing to universality.
        let mut acc = 0u64;
        for &c in &self.coeffs {
            acc = acc.wrapping_add(c).wrapping_mul(x);
        }
        (acc & mask) >> (self.u - self.m)
    }

    /// Evaluates the hash over a slice (the vectorizable form whose
    /// per-element cost Table 3 reports).
    pub fn eval_batch(&self, xs: &[u64], out: &mut Vec<u64>) {
        out.clear();
        out.reserve(xs.len());
        out.extend(xs.iter().map(|&x| self.eval(x)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn range_is_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for deg in Degree::all() {
            let h = PolyHash::random(deg, 48, 10, &mut rng);
            for x in 0..2000u64 {
                assert!(h.eval(x * 2_654_435_761) < 1024);
            }
        }
    }

    #[test]
    fn coefficients_forced_odd() {
        let h = PolyHash::with_coefficients(Degree::Quadratic, 32, 4, &[4, 8]);
        // Evens become odd: 4|1 = 5, 8|1 = 9. Evaluation must still be
        // a function (sanity via determinism on a few points).
        assert_eq!(h.eval(3), h.eval(3));
    }

    #[test]
    fn linear_hash_with_full_range_is_a_bijection() {
        // With m = u the multiplicative hash x → a·x mod 2^u is a
        // bijection for odd a (a is invertible mod 2^u).
        let h = PolyHash::with_coefficients(Degree::Linear, 10, 10, &[37]);
        let mut seen = vec![false; 1024];
        for x in 0..1024u64 {
            let y = h.eval(x) as usize;
            assert!(!seen[y], "collision at {x}");
            seen[y] = true;
        }
    }

    #[test]
    fn empirical_two_universality_of_h1() {
        // Over random function draws, Pr[h(x) = h(y)] ≤ 2/2^m for any
        // fixed pair x ≠ y [DHKP93]. Check the empirical rate for a few
        // adversarial-looking pairs with generous slack.
        let mut rng = StdRng::seed_from_u64(42);
        let m = 6u32; // 64 buckets; bound 2/64 = 0.03125
        let pairs = [(1u64, 2u64), (0x1000, 0x1001), (3, 1 << 20), (12345, 54321)];
        let trials = 20_000;
        for (x, y) in pairs {
            let mut collisions = 0usize;
            for _ in 0..trials {
                let h = PolyHash::random(Degree::Linear, 32, m, &mut rng);
                if h.eval(x) == h.eval(y) {
                    collisions += 1;
                }
            }
            let rate = collisions as f64 / trials as f64;
            assert!(rate < 0.045, "pair ({x},{y}) collides at rate {rate}");
        }
    }

    #[test]
    fn batch_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(9);
        let h = PolyHash::random(Degree::Cubic, 64, 8, &mut rng);
        let xs: Vec<u64> = (0..100).map(|i| i * 7919).collect();
        let mut out = Vec::new();
        h.eval_batch(&xs, &mut out);
        assert_eq!(out.len(), xs.len());
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(out[i], h.eval(x));
        }
    }

    #[test]
    fn higher_degree_spreads_strided_input() {
        // A power-of-two stride is the classic interleaving pathology;
        // any member of the family should spread it over many buckets.
        let mut rng = StdRng::seed_from_u64(11);
        for deg in Degree::all() {
            let h = PolyHash::random(deg, 48, 8, &mut rng);
            let mut buckets: Vec<u64> = (0..1024u64).map(|i| h.eval(i * 64)).collect();
            buckets.sort_unstable();
            buckets.dedup();
            assert!(buckets.len() > 100, "{deg:?} used only {} buckets", buckets.len());
        }
    }

    #[test]
    #[should_panic(expected = "coefficient count")]
    fn wrong_coefficient_count_rejected() {
        let _ = PolyHash::with_coefficients(Degree::Cubic, 32, 4, &[1]);
    }

    #[test]
    #[should_panic(expected = "range bits")]
    fn range_larger_than_domain_rejected() {
        let _ = PolyHash::with_coefficients(Degree::Linear, 8, 9, &[1]);
    }

    #[test]
    fn full_64_bit_domain_works() {
        let mut rng = StdRng::seed_from_u64(3);
        let h = PolyHash::random(Degree::Linear, 64, 12, &mut rng);
        assert!(h.eval(u64::MAX) < 4096);
    }
}
