//! Congestion measurement under random bank mappings.
//!
//! Paper §4 asks: how much does *module-map contention* — distinct
//! addresses co-resident on a bank — cost under a random mapping, as a
//! function of the expansion factor? This module measures the max bank
//! load of a fixed address set over many independent draws of the hash
//! function, which is the quantity the paper's ratio plots are built
//! from.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dxbsp_core::BankMap;

use crate::mapping::HashedBanks;
use crate::poly::Degree;

/// Distribution of the max bank load across mapping draws.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CongestionReport {
    /// Number of independent hash draws.
    pub trials: usize,
    /// Mean of the max bank load.
    pub mean_max_load: f64,
    /// Worst max bank load seen.
    pub worst_max_load: usize,
    /// Best max bank load seen.
    pub best_max_load: usize,
    /// The even-split lower bound `⌈n / banks⌉`.
    pub ideal_load: usize,
}

impl CongestionReport {
    /// Ratio of mean max load to the even-split ideal — the expected
    /// module-map slowdown factor under the (d,x)-BSP's `d·R` charge
    /// when banks are the bottleneck.
    #[must_use]
    pub fn overhead_ratio(&self) -> f64 {
        if self.ideal_load == 0 {
            1.0
        } else {
            self.mean_max_load / self.ideal_load as f64
        }
    }
}

/// Measures the max bank load of `addrs` over `trials` random draws of
/// a degree-`degree` mapping onto `banks` banks.
///
/// # Panics
///
/// Panics if `trials == 0` or `banks == 0`.
#[must_use]
pub fn max_load_over_trials<R: Rng + ?Sized>(
    addrs: &[u64],
    banks: usize,
    degree: Degree,
    trials: usize,
    rng: &mut R,
) -> CongestionReport {
    assert!(trials >= 1, "need at least one trial");
    assert!(banks >= 1, "need at least one bank");
    let mut sum = 0usize;
    let mut worst = 0usize;
    let mut best = usize::MAX;
    let mut loads = vec![0usize; banks];
    for _ in 0..trials {
        let map = HashedBanks::random(degree, banks, rng);
        loads.iter_mut().for_each(|l| *l = 0);
        for &a in addrs {
            loads[map.bank_of(a)] += 1;
        }
        let max = loads.iter().copied().max().unwrap_or(0);
        sum += max;
        worst = worst.max(max);
        best = best.min(max);
    }
    CongestionReport {
        trials,
        mean_max_load: sum as f64 / trials as f64,
        worst_max_load: worst,
        best_max_load: if best == usize::MAX { 0 } else { best },
        ideal_load: addrs.len().div_ceil(banks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_addresses_are_nearly_even() {
        // Plenty of slackness (n ≫ B log B): max load close to ideal.
        let mut rng = StdRng::seed_from_u64(1);
        let addrs: Vec<u64> = (0..32_768).collect();
        let rep = max_load_over_trials(&addrs, 64, Degree::Linear, 10, &mut rng);
        assert_eq!(rep.ideal_load, 512);
        assert!(rep.overhead_ratio() < 1.5, "ratio {}", rep.overhead_ratio());
        assert!(rep.best_max_load >= rep.ideal_load);
        assert!(rep.worst_max_load >= rep.best_max_load);
    }

    #[test]
    fn sparse_addresses_have_high_relative_overhead() {
        // With as many addresses as banks, balls-in-bins gives a max
        // load of Θ(log B / log log B) ≫ 1: overhead ratio well above
        // the dense case — the "slackness" requirement of §4.
        let mut rng = StdRng::seed_from_u64(2);
        let addrs: Vec<u64> = (0..256u64).map(|i| i * 1_000_003).collect();
        let rep = max_load_over_trials(&addrs, 256, Degree::Linear, 20, &mut rng);
        assert_eq!(rep.ideal_load, 1);
        assert!(rep.overhead_ratio() >= 2.0, "ratio {}", rep.overhead_ratio());
    }

    #[test]
    fn more_banks_reduce_absolute_load() {
        let mut rng = StdRng::seed_from_u64(3);
        let addrs: Vec<u64> = (0..16_384).collect();
        let narrow = max_load_over_trials(&addrs, 32, Degree::Linear, 5, &mut rng);
        let wide = max_load_over_trials(&addrs, 256, Degree::Linear, 5, &mut rng);
        assert!(wide.mean_max_load < narrow.mean_max_load);
    }

    #[test]
    fn report_handles_empty_addresses() {
        let mut rng = StdRng::seed_from_u64(4);
        let rep = max_load_over_trials(&[], 8, Degree::Linear, 3, &mut rng);
        assert_eq!(rep.ideal_load, 0);
        assert_eq!(rep.overhead_ratio(), 1.0);
        assert_eq!(rep.worst_max_load, 0);
    }
}
