//! # dxbsp-hash — universal hashing for memory-bank mapping
//!
//! Paper §4: randomly mapping memory locations to banks is the standard
//! way to kill *module-map contention* (distinct hot addresses landing
//! on one bank) on machines with a fixed bank set. The paper uses the
//! polynomial hash family over `[0, 2^u)`:
//!
//! ```text
//! h1_a(x)     = (a·x mod 2^u) >> (u − m)                  (linear / multiplicative)
//! h2_{a,b}(x) = ((a·x² + b·x) mod 2^u) >> (u − m)         (quadratic)
//! h3_{…}(x)   = ((a·x³ + b·x² + c·x) mod 2^u) >> (u − m)  (cubic)
//! ```
//!
//! with odd random coefficients. `h1` is the multiplicative scheme of
//! Knuth, shown 2-universal by Dietzfelbinger et al. \[DHKP93\]; higher
//! degrees buy stronger universality at higher evaluation cost — the
//! trade-off the paper's Table 3 quantifies.
//!
//! This crate provides the family ([`PolyHash`]), an adapter mapping
//! hash values onto a machine's banks ([`HashedBanks`], implementing
//! [`dxbsp_core::BankMap`]), and congestion measurement for adversarial
//! access patterns ([`congestion`]).

pub mod bounds;
pub mod congestion;
pub mod mapping;
pub mod poly;

pub use bounds::{any_bank_overload_prob, hoeffding_tail, raghavan_spencer_tail, slackness_needed};
pub use congestion::{max_load_over_trials, CongestionReport};
pub use mapping::HashedBanks;
pub use poly::{Degree, PolyHash};
