//! The probability bounds behind §4 and §5.
//!
//! The paper's analyses rest on two tail inequalities: Hoeffding's
//! bound \[Hoe63\] for the balanced-bank-load claims, and the
//! Raghavan–Spencer bound \[Rag88\] for the weighted Bernoulli sums in
//! Theorem 5.2's proof ("By a theorem of Raghavan and Spencer, which
//! provides a tail inequality for the weighted sum of Bernoulli
//! trials, for any δ > 0, Prob(β > (1+δ)E(β)) < e^{−δ²E(β)/…}").
//!
//! This module implements both bounds numerically and exposes the
//! machine-facing corollary the experiments use: how many requests per
//! bank guarantee the realized max load stays within `(1+δ)` of the
//! mean with failure probability `ε` — the quantitative version of
//! "sufficient parallel slackness". Tests validate the bounds against
//! Monte Carlo draws (the bound must hold; it must not be absurdly
//! loose at experiment scales).

/// Hoeffding's inequality for the sum of `n` independent values in
/// `[0, 1]`: `Prob(S − E[S] ≥ t) ≤ exp(−2t²/n)`.
///
/// Returns the upper bound on the one-sided tail probability.
///
/// # Panics
///
/// Panics if `n == 0` or `t < 0`.
#[must_use]
pub fn hoeffding_tail(n: usize, t: f64) -> f64 {
    assert!(n > 0, "need at least one trial");
    assert!(t >= 0.0, "deviation must be non-negative");
    (-2.0 * t * t / n as f64).exp().min(1.0)
}

/// Raghavan–Spencer bound for a sum of independent weighted Bernoulli
/// trials with mean `mu` and weights in `[0, 1]`:
///
/// `Prob(S > (1+δ)·mu) < [ e^δ / (1+δ)^{1+δ} ]^{mu}`.
///
/// # Panics
///
/// Panics if `mu ≤ 0` or `delta ≤ 0`.
#[must_use]
pub fn raghavan_spencer_tail(mu: f64, delta: f64) -> f64 {
    assert!(mu > 0.0, "mean must be positive");
    assert!(delta > 0.0, "deviation must be positive");
    let ln_bound = mu * (delta - (1.0 + delta) * (1.0 + delta).ln());
    ln_bound.exp().min(1.0)
}

/// The §4 corollary: with `n` requests hashed uniformly onto `banks`
/// banks (mean load `μ = n/B`), an upper bound on the probability that
/// *any* bank exceeds `(1+δ)·μ` (union bound over banks).
///
/// # Panics
///
/// Panics if `banks == 0` or the per-bank mean is zero.
#[must_use]
pub fn any_bank_overload_prob(n: usize, banks: usize, delta: f64) -> f64 {
    assert!(banks > 0, "need at least one bank");
    let mu = n as f64 / banks as f64;
    (banks as f64 * raghavan_spencer_tail(mu, delta)).min(1.0)
}

/// The smallest slackness `n/B` at which
/// [`any_bank_overload_prob`] drops below `eps` for the given `delta` —
/// the quantitative "sufficient parallel slackness" threshold.
///
/// # Panics
///
/// Panics if `banks == 0`, `delta ≤ 0`, or `eps` is not in `(0, 1)`.
#[must_use]
pub fn slackness_needed(banks: usize, delta: f64, eps: f64) -> usize {
    assert!(banks > 0, "need at least one bank");
    assert!(eps > 0.0 && eps < 1.0, "eps must be a probability");
    let mut slack = 1usize;
    while any_bank_overload_prob(banks * slack, banks, delta) > eps {
        slack *= 2;
        assert!(slack < 1 << 40, "no finite slackness satisfies the bound");
    }
    // Binary-search down to the exact threshold.
    let mut lo = slack / 2;
    let mut hi = slack;
    while lo + 1 < hi {
        let mid = lo.midpoint(hi);
        if any_bank_overload_prob(banks * mid, banks, delta) > eps {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn hoeffding_shrinks_with_deviation_and_holds_empirically() {
        assert!(hoeffding_tail(100, 20.0) < hoeffding_tail(100, 10.0));
        assert_eq!(hoeffding_tail(10, 0.0), 1.0);

        // Monte Carlo: sums of 100 uniform [0,1]; empirical tail must
        // not exceed the bound (with sampling slack).
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100usize;
        let t = 8.0;
        let trials = 20_000;
        let mut exceed = 0usize;
        for _ in 0..trials {
            let s: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum();
            if s - n as f64 / 2.0 >= t {
                exceed += 1;
            }
        }
        let empirical = exceed as f64 / trials as f64;
        let bound = hoeffding_tail(n, t);
        assert!(empirical <= bound + 0.01, "empirical {empirical} vs bound {bound}");
    }

    #[test]
    fn raghavan_spencer_holds_for_bank_loads() {
        // n balls into B bins; the load of bin 0 is a Bernoulli sum
        // with mu = n/B. Check the bound empirically at delta = 1.
        let mut rng = StdRng::seed_from_u64(2);
        let (n, b) = (512usize, 64usize);
        let mu = n as f64 / b as f64; // 8
        let delta = 1.0;
        let trials = 20_000;
        let mut exceed = 0usize;
        for _ in 0..trials {
            let load = (0..n).filter(|_| rng.random_range(0..b) == 0).count();
            if (load as f64) > (1.0 + delta) * mu {
                exceed += 1;
            }
        }
        let empirical = exceed as f64 / trials as f64;
        let bound = raghavan_spencer_tail(mu, delta);
        assert!(empirical <= bound, "empirical {empirical} vs bound {bound}");
        // And the bound is not vacuous at this scale.
        assert!(bound < 0.1, "bound {bound} too loose to be useful");
    }

    #[test]
    fn overload_probability_decreases_with_slackness() {
        let banks = 256;
        let p1 = any_bank_overload_prob(banks, banks, 0.5); // slack 1
        let p64 = any_bank_overload_prob(banks * 64, banks, 0.5); // slack 64
        let p256 = any_bank_overload_prob(banks * 256, banks, 0.5); // the paper's S
        assert!(p64 < p1);
        assert!(p64 < 0.5, "slack 64 should be mostly balanced: {p64}");
        assert!(p256 < 1e-6, "slack 256 should be safely balanced: {p256}");
        assert_eq!(p1, 1.0, "slack 1 is not balanced at δ=0.5");
    }

    #[test]
    fn slackness_threshold_is_consistent() {
        let banks = 256;
        let s = slackness_needed(banks, 0.5, 1e-6);
        assert!(any_bank_overload_prob(banks * s, banks, 0.5) <= 1e-6);
        if s > 1 {
            assert!(any_bank_overload_prob(banks * (s - 1), banks, 0.5) > 1e-6);
        }
        // The J90 preset's S = 64K over 256 banks (slack 256) is
        // comfortably beyond the threshold — §4's setting is justified.
        assert!(s <= 256, "threshold {s} exceeds the paper's slackness");
    }

    #[test]
    fn monotonicity_in_delta() {
        for mu in [2.0, 8.0, 64.0] {
            assert!(raghavan_spencer_tail(mu, 2.0) < raghavan_spencer_tail(mu, 1.0));
            assert!(raghavan_spencer_tail(mu, 1.0) < raghavan_spencer_tail(mu, 0.25));
        }
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn zero_mean_rejected() {
        let _ = raghavan_spencer_tail(0.0, 1.0);
    }
}
