//! Prometheus text-format export (version 0.0.4): `# HELP` / `# TYPE`
//! headers followed by `name{labels} value` samples, one family per
//! metric, scrape-ready.

use dxbsp_core::DxError;

use crate::metrics::Registry;

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders a [`Registry`] snapshot as Prometheus exposition text.
#[must_use]
pub fn render(reg: &Registry) -> String {
    let mut out = String::new();
    for fam in reg.families() {
        out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
        out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind));
        for (labels, value) in &fam.samples {
            // Histogram bucket series append the conventional suffix.
            let series = if fam.kind == "histogram" {
                format!("{}_bucket", fam.name)
            } else {
                fam.name.clone()
            };
            out.push_str(&series);
            if !labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
                }
                out.push('}');
            }
            // Integral values print without a fractional part — the
            // format accepts any float syntax.
            if value.fract() == 0.0 && value.abs() < 1e15 {
                out.push_str(&format!(" {}\n", *value as i64));
            } else {
                out.push_str(&format!(" {value}\n"));
            }
        }
    }
    out
}

/// Lints Prometheus exposition text: every sample's metric name must be
/// legal, every value parseable as a float, every `# TYPE` must precede
/// its family's samples, and label syntax must balance. Returns the
/// number of samples.
///
/// # Errors
///
/// [`DxError::Invalid`] naming the first offending line.
pub fn lint(text: &str) -> Result<usize, DxError> {
    let mut typed: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| DxError::invalid(format!("line {n}: TYPE without name")))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| DxError::invalid(format!("line {n}: TYPE without kind")))?;
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(DxError::invalid(format!("line {n}: unknown TYPE {kind}")));
                }
                if !valid_name(name) {
                    return Err(DxError::invalid(format!("line {n}: bad metric name {name}")));
                }
                typed.push(name.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        // A sample: name[{labels}] value
        let (series, value) = match line.rfind(' ') {
            Some(i) => (&line[..i], &line[i + 1..]),
            None => return Err(DxError::invalid(format!("line {n}: sample without value"))),
        };
        let name = match series.find('{') {
            Some(b) => {
                if !series.ends_with('}') {
                    return Err(DxError::invalid(format!("line {n}: unbalanced labels")));
                }
                &series[..b]
            }
            None => series,
        };
        if !valid_name(name) {
            return Err(DxError::invalid(format!("line {n}: bad metric name {name}")));
        }
        if value.parse::<f64>().is_err() {
            return Err(DxError::invalid(format!("line {n}: unparseable value {value}")));
        }
        // The sample must belong to a previously TYPE-declared family
        // (histogram samples use the _bucket/_sum/_count suffixes).
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        if !typed.iter().any(|t| t == name || t == base) {
            return Err(DxError::invalid(format!("line {n}: sample {name} precedes its TYPE")));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LogHistogram;

    #[test]
    fn render_then_lint_round_trips() {
        let mut reg = Registry::new();
        reg.counter("dxbsp_requests_total", "Requests", 42);
        reg.gauge("dxbsp_hot_bank", "Hot bank", 7.0);
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(9);
        reg.histogram("dxbsp_queue_wait", "Waits", &h);
        reg.labelled_counter(
            "dxbsp_bank_busy_cycles_total",
            "Dwell",
            vec![(vec![("bank".to_string(), "3".to_string())], 84.0)],
        );
        let text = render(&reg);
        let n = lint(&text).expect("lint-clean output");
        assert!(n >= 6, "expected several samples, got {n} in:\n{text}");
        assert!(text.contains("# TYPE dxbsp_requests_total counter"));
        assert!(text.contains("dxbsp_bank_busy_cycles_total{bank=\"3\"} 84"));
        assert!(text.contains("dxbsp_queue_wait_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn lint_rejects_bad_input() {
        assert!(lint("bad-name 1\n").is_err());
        assert!(lint("# TYPE x counter\nx notanumber\n").is_err());
        assert!(lint("orphan 1\n").is_err());
        assert!(lint("# TYPE x bogus\n").is_err());
        assert!(lint("# TYPE x counter\nx{unbalanced 1\n").is_err());
    }

    #[test]
    fn lint_counts_samples() {
        let text = "# HELP a b\n# TYPE a counter\na 1\na{x=\"y\"} 2\n";
        assert_eq!(lint(text).unwrap(), 2);
    }
}
