//! # dxbsp-telemetry — observability for the (d,x)-BSP simulator
//!
//! The paper's argument is that aggregate cost formulas hide *where*
//! time goes: bank dwell (`d·R`) vs. issue bandwidth (`g·h`) vs.
//! latency (`L`). This crate makes every simulated run explain itself:
//!
//! * [`Probe`] — the instrumentation seam. The simulator's event loop
//!   and the engine's superstep loop in `dxbsp-machine` are
//!   monomorphized over a `P: Probe`; every hook site is guarded by
//!   `if P::ENABLED`, so the default [`NoopProbe`] compiles the seam
//!   away entirely (the criterion bench `sim/probe` pins this).
//! * [`Recorder`] — a probe that aggregates per-bank dwell and queue
//!   wait, per-processor window stalls, queue-wait histograms
//!   ([`LogHistogram`]), bounded time series ([`Sampler`]), and
//!   per-superstep `max(L, g·h, d·R)` attribution ([`StepReport`]) in
//!   memory that is O(1) in run length.
//! * Exporters — [`chrome::trace_json`] (one lane per bank/processor,
//!   loadable in `chrome://tracing`/Perfetto), [`prometheus::render`]
//!   (scrape-ready text format), and [`Recorder::summary`] (compact
//!   JSON via `SpecValue`, embedded in bench run records).
//!
//! The invariant everything hangs on: probing never changes results. A
//! probed run's `SimResult` is bit-identical to an unprobed run's, and
//! the per-superstep attributed cycles sum exactly to the session's
//! clock — both pinned by differential tests in `dxbsp-machine` and
//! `dxbsp-bench`.

pub mod chrome;
pub mod metrics;
pub mod probe;
pub mod prometheus;
pub mod recorder;

pub use metrics::{Counter, Family, Gauge, LogHistogram, Registry, Sampler, HISTOGRAM_BUCKETS};
pub use probe::{NoopProbe, Probe, RequestTiming, StepReport};
pub use recorder::{BankTrack, ProcTrack, Recorder, StallInterval, StepTrack, DEFAULT_EVENT_CAP};
