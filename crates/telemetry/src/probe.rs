//! The probe seam: a trait the simulator's event loop and the engine's
//! superstep loop are monomorphized over, so instrumentation is free
//! when disabled.
//!
//! Every hook site in `dxbsp-machine` is guarded by `if P::ENABLED`,
//! a constant the compiler folds away: with [`NoopProbe`] (the
//! default), the instrumented loop compiles to exactly the code it was
//! before the seam existed. A real probe (e.g.
//! [`crate::Recorder`]) flips `ENABLED` on and receives every request
//! timing, stall interval, and per-superstep cost attribution.

use dxbsp_core::CostBreakdown;

use crate::recorder::BankTrack;

/// The full pipeline timing of one memory request, as resolved by the
/// discrete-event simulator at issue time.
///
/// Cycle stamps are in simulated time and ordered
/// `issued ≤ arrived ≤ forwarded ≤ start ≤ end ≤ done`:
///
/// ```text
/// issued ─latency→ arrived ─section gate→ forwarded ─queue→ start ─service→ end ─latency→ done
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTiming {
    /// Issuing processor.
    pub proc: usize,
    /// Bank that serviced the request.
    pub bank: usize,
    /// Cycle the processor issued the request.
    pub issued: u64,
    /// Cycle the request reached its network section (`issued + L`).
    pub arrived: u64,
    /// Cycle the section gate forwarded it to the bank (equals
    /// `arrived` on an uncongested or uniform network).
    pub forwarded: u64,
    /// Cycle the bank began service (queue wait is
    /// `start - forwarded`).
    pub start: u64,
    /// Cycle service finished (`start + d`, or `start + hit_delay` on a
    /// bank-cache hit).
    pub end: u64,
    /// Cycle the reply reached the processor (`end + L`).
    pub done: u64,
    /// Whether the bank cache served the request.
    pub cache_hit: bool,
}

impl RequestTiming {
    /// Cycles spent waiting in the bank queue.
    #[must_use]
    pub fn queue_wait(&self) -> u64 {
        self.start - self.forwarded
    }

    /// Cycles the bank was busy servicing this request.
    #[must_use]
    pub fn service(&self) -> u64 {
        self.end - self.start
    }
}

/// What one superstep cost and which (d,x)-BSP term the model says
/// bound it — delivered to [`Probe::superstep_end`] by the engine's
/// [`Session`](../dxbsp_machine/struct.Session.html) layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepReport {
    /// Zero-based superstep index within the session.
    pub index: usize,
    /// Memory requests executed this superstep.
    pub requests: usize,
    /// Measured (or charged) memory cycles for the superstep.
    pub memory_cycles: u64,
    /// Local-computation cycles charged alongside the memory time.
    pub local_work: u64,
    /// The per-barrier synchronization overhead charged.
    pub sync_overhead: u64,
    /// What the session's clock advanced by:
    /// `memory_cycles + local_work + sync_overhead`.
    pub total_cycles: u64,
    /// Whether the superstep was charged closed-form (hybrid fast path
    /// or an analytic backend) instead of event-level simulated.
    pub modeled: bool,
    /// The closed-form `max(L, g·h, d·R)` attribution for the
    /// superstep's pattern — which term bound it, and by how much.
    pub model: CostBreakdown,
}

impl StepReport {
    /// Which model term bound this superstep (`"latency"`,
    /// `"processor"` or `"bank"`).
    #[must_use]
    pub fn binding(&self) -> &'static str {
        self.model.binding()
    }

    /// How far the binding term exceeds the runner-up — the margin by
    /// which the superstep was latency/bandwidth/bank bound.
    #[must_use]
    pub fn margin(&self) -> u64 {
        let mut terms = [self.model.latency, self.model.processor, self.model.bank];
        terms.sort_unstable();
        terms[2] - terms[1]
    }
}

/// Observer of simulator and engine internals.
///
/// All methods have empty default bodies, and `ENABLED` gates every
/// call site: implementors only override what they consume, and the
/// [`NoopProbe`] compiles instrumentation out entirely. Hooks must not
/// influence simulation — a probed run is bit-identical to an unprobed
/// one (a property the differential tests pin).
pub trait Probe {
    /// Whether hook sites should call into this probe at all. Hot-loop
    /// call sites are guarded by `if P::ENABLED`, which constant-folds
    /// to nothing for [`NoopProbe`].
    const ENABLED: bool = true;

    /// A superstep is about to execute.
    fn superstep_begin(&mut self, _index: usize, _requests: usize) {}

    /// One request finished its trip through the pipeline. Called at
    /// issue resolution (the simulator resolves the whole pipeline
    /// inline), in issue order.
    fn request(&mut self, _t: RequestTiming) {}

    /// A bulk engine resolved a contiguous run of requests at once.
    /// `ts` is in issue order, and the concatenation of slices across
    /// calls equals the per-request sequence [`Probe::request`] would
    /// have seen. Returns how many *further* raw timings the probe
    /// wants: a bulk engine may stop materializing and delivering
    /// timings once this reaches zero (per-request work it can then
    /// skip entirely), so a probe that returns a bound must take its
    /// exact aggregates from [`Probe::epoch_end`] instead.
    ///
    /// The default body loops [`Probe::request`] and never bounds the
    /// stream — observationally identical to per-request delivery.
    fn request_batch(&mut self, ts: &[RequestTiming]) -> usize {
        for &t in ts {
            self.request(t);
        }
        usize::MAX
    }

    /// A bulk engine finished a superstep (an "epoch"), reporting the
    /// epoch's *exact* totals: request count, per-bank service
    /// aggregates (indexed by bank), and per-processor request counts
    /// (indexed by processor). Raw timings were offered beforehand
    /// through [`Probe::request_batch`]; the two channels split exact
    /// aggregation from bounded sampling, which is what keeps
    /// always-on telemetry cheap on bulk engines. Probes that consume
    /// everything per-request (the default) can ignore this hook —
    /// with the default `request_batch` the full stream was already
    /// delivered.
    fn epoch_end(&mut self, _requests: u64, _banks: &[BankTrack], _proc_requests: &[u64]) {}

    /// Processor `proc` was stalled on a full outstanding-request
    /// window from cycle `from` until the completion at cycle `until`.
    fn window_stall(&mut self, _proc: usize, _from: u64, _until: u64) {}

    /// The event queue performed `count` cascade operations over the
    /// run (time-wheel scheduler only; 0 for the heap and the ring).
    fn scheduler_cascades(&mut self, _count: u64) {}

    /// A superstep finished; `label` is the trace step's label (empty
    /// when stepping bare patterns).
    fn superstep_end(&mut self, _label: &str, _report: &StepReport) {}
}

/// The default probe: all hooks disabled at compile time. Code paths
/// instrumented with `NoopProbe` monomorphize to exactly their
/// pre-instrumentation form.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    const ENABLED: bool = false;
}

/// `&mut P` forwards to `P`, so call sites can hand a borrowed probe
/// down through nested loops without re-threading lifetimes.
impl<P: Probe> Probe for &mut P {
    const ENABLED: bool = P::ENABLED;

    fn superstep_begin(&mut self, index: usize, requests: usize) {
        (**self).superstep_begin(index, requests);
    }

    fn request(&mut self, t: RequestTiming) {
        (**self).request(t);
    }

    fn request_batch(&mut self, ts: &[RequestTiming]) -> usize {
        (**self).request_batch(ts)
    }

    fn epoch_end(&mut self, requests: u64, banks: &[BankTrack], proc_requests: &[u64]) {
        (**self).epoch_end(requests, banks, proc_requests);
    }

    fn window_stall(&mut self, proc: usize, from: u64, until: u64) {
        (**self).window_stall(proc, from, until);
    }

    fn scheduler_cascades(&mut self, count: u64) {
        (**self).scheduler_cascades(count);
    }

    fn superstep_end(&mut self, label: &str, report: &StepReport) {
        (**self).superstep_end(label, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_probe_is_disabled() {
        const { assert!(!NoopProbe::ENABLED) };
        const { assert!(!<&mut NoopProbe as Probe>::ENABLED) };
    }

    #[test]
    fn timing_derived_quantities() {
        let t = RequestTiming {
            proc: 0,
            bank: 3,
            issued: 10,
            arrived: 17,
            forwarded: 19,
            start: 25,
            end: 39,
            done: 46,
            cache_hit: false,
        };
        assert_eq!(t.queue_wait(), 6);
        assert_eq!(t.service(), 14);
    }

    #[test]
    fn report_margin_is_gap_to_runner_up() {
        let r = StepReport {
            index: 0,
            requests: 64,
            memory_cycles: 900,
            local_work: 0,
            sync_overhead: 0,
            total_cycles: 900,
            modeled: false,
            model: CostBreakdown { latency: 100, processor: 256, bank: 896, bound_bank: None },
        };
        assert_eq!(r.binding(), "bank");
        assert_eq!(r.margin(), 896 - 256);
    }
}
