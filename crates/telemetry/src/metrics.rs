//! The metrics core: counters, gauges, log-bucketed histograms and
//! bounded time-series samplers, plus a [`Registry`] snapshot the
//! Prometheus exporter renders.
//!
//! Everything here is deterministic and allocation-bounded: histograms
//! have a fixed 65-bucket layout (one per power of two), and samplers
//! decimate in place once full, so telemetry memory is O(1) in run
//! length — a probed run over millions of requests cannot balloon.

use serde::{Deserialize, Serialize};

/// A monotone event counter. Saturates instead of wrapping on
/// overflow — a saturated count is still an honest lower bound, while
/// a wrapped one silently lies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Adds `n` to the count, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A last-value-wins instantaneous measurement that also tracks its
/// running maximum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Gauge {
    value: f64,
    max: f64,
}

impl Gauge {
    /// Records a new value.
    pub fn set(&mut self, v: f64) {
        self.value = v;
        if v > self.max {
            self.max = v;
        }
    }

    /// The most recent value.
    #[must_use]
    pub fn get(&self) -> f64 {
        self.value
    }

    /// The largest value ever set.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Number of buckets in a [`LogHistogram`]: bucket 0 holds exact
/// zeros, bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-layout base-2 logarithmic histogram (HDR-style): 65 buckets
/// cover the full `u64` range with ≤ 2× relative error, no allocation,
/// and O(1) recording. The natural shape for queue-wait distributions,
/// which span zero (uncontended) to thousands of cycles (hot bank).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of `v`: 0 for 0, else `1 + floor(log2 v)`.
    #[inline]
    #[must_use]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    #[must_use]
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1 << i) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        if v > self.max {
            self.max = v;
        }
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation recorded (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`) — exact to within the bucket's 2× width.
    #[must_use]
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }
}

/// A bounded `(time, value)` time series. Once `cap` samples are held,
/// the series decimates itself — every other sample is dropped and the
/// acceptance stride doubles — so arbitrarily long runs keep a bounded,
/// evenly thinned timeline. Deterministic: the kept samples depend only
/// on the push sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sampler {
    cap: usize,
    /// Keep one sample out of every `stride` pushes.
    stride: u64,
    pushes: u64,
    samples: Vec<(u64, u64)>,
}

impl Sampler {
    /// A sampler holding at most `cap` samples (min 2).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self { cap: cap.max(2), stride: 1, pushes: 0, samples: Vec::new() }
    }

    /// Offers one `(time, value)` observation.
    pub fn push(&mut self, time: u64, value: u64) {
        // `stride` only ever doubles from 1, so it stays a power of two
        // and the acceptance test is a mask instead of a division —
        // this sits on the probed hot path.
        if self.pushes & (self.stride - 1) == 0 {
            if self.samples.len() == self.cap {
                // Thin to every other sample and accept half as often.
                let mut keep = 0;
                for i in (0..self.samples.len()).step_by(2) {
                    self.samples[keep] = self.samples[i];
                    keep += 1;
                }
                self.samples.truncate(keep);
                self.stride *= 2;
                if self.pushes & (self.stride - 1) != 0 {
                    self.pushes += 1;
                    return;
                }
            }
            self.samples.push((time, value));
        }
        self.pushes += 1;
    }

    /// The retained samples, in push order.
    #[must_use]
    pub fn samples(&self) -> &[(u64, u64)] {
        &self.samples
    }

    /// Total observations offered (retained or not).
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.pushes
    }
}

/// One metric family in a [`Registry`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
    pub name: String,
    /// One-line help string.
    pub help: String,
    /// `"counter"`, `"gauge"` or `"histogram"`.
    pub kind: &'static str,
    /// Samples: label pairs plus a value. Histogram families carry
    /// their expanded `_bucket`/`_sum`/`_count` series here with the
    /// `le` label already attached.
    pub samples: Vec<(Vec<(String, String)>, f64)>,
}

/// An ordered snapshot of metric families, ready for the Prometheus
/// text exporter ([`crate::prometheus::render`]). Built on demand from
/// a recorder; not a live registry — the simulator's hot loop never
/// touches it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    families: Vec<Family>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a counter family with one unlabelled sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind: "counter",
            samples: vec![(Vec::new(), value as f64)],
        });
    }

    /// Adds a gauge family with one unlabelled sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind: "gauge",
            samples: vec![(Vec::new(), value)],
        });
    }

    /// Adds a labelled counter family (one sample per label set).
    pub fn labelled_counter(
        &mut self,
        name: &str,
        help: &str,
        samples: Vec<(Vec<(String, String)>, f64)>,
    ) {
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind: "counter",
            samples,
        });
    }

    /// Adds a histogram family in expanded Prometheus form: cumulative
    /// `_bucket{le=...}` series, then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, h: &LogHistogram) {
        let mut samples = Vec::new();
        let mut cumulative = 0u64;
        for (i, &c) in h.buckets().iter().take(64).enumerate() {
            cumulative += c;
            if c == 0 && i != 0 {
                continue;
            }
            let le = format!("{}", LogHistogram::bucket_bound(i));
            samples.push((vec![("le".to_string(), le)], cumulative as f64));
        }
        samples.push((vec![("le".to_string(), "+Inf".to_string())], h.count() as f64));
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind: "histogram",
            samples,
        });
        self.counter(&format!("{name}_sum"), &format!("{help} (sum)"), h.sum());
        self.counter(&format!("{name}_count"), &format!("{help} (count)"), h.count());
    }

    /// The snapshot's families, in insertion order.
    #[must_use]
    pub fn families(&self) -> &[Family] {
        &self.families
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter::default();
        c.add(u64::MAX - 1);
        c.inc();
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_tracks_max() {
        let mut g = Gauge::default();
        g.set(3.0);
        g.set(9.0);
        g.set(1.0);
        assert_eq!(g.get(), 1.0);
        assert_eq!(g.max(), 9.0);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        let mut h = LogHistogram::new();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[2], 2);
    }

    #[test]
    fn histogram_quantiles_hit_bucket_bounds() {
        let mut h = LogHistogram::new();
        for _ in 0..99 {
            h.record(1);
        }
        h.record(1 << 20);
        assert_eq!(h.quantile_bound(0.5), 1);
        // The p100 falls in the 2^20 bucket, clipped to the true max.
        assert_eq!(h.quantile_bound(1.0), 1 << 20);
        assert_eq!(LogHistogram::new().quantile_bound(0.99), 0);
    }

    #[test]
    fn sampler_stays_bounded_and_thins_evenly() {
        let mut s = Sampler::new(64);
        for t in 0..10_000u64 {
            s.push(t, t * 2);
        }
        assert!(s.samples().len() <= 64);
        assert!(s.samples().len() >= 32, "kept {}", s.samples().len());
        assert_eq!(s.offered(), 10_000);
        // Samples stay in time order and span the run.
        let times: Vec<u64> = s.samples().iter().map(|&(t, _)| t).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(times[0], 0);
        assert!(*times.last().unwrap() > 9_000 - 256);
    }

    #[test]
    fn sampler_is_deterministic() {
        let run = || {
            let mut s = Sampler::new(16);
            for t in 0..1000u64 {
                s.push(t, t);
            }
            s.samples().to_vec()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn registry_expands_histograms() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(5);
        let mut reg = Registry::new();
        reg.histogram("queue_wait", "waits", &h);
        let names: Vec<&str> = reg.families().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["queue_wait", "queue_wait_sum", "queue_wait_count"]);
        let hist = &reg.families()[0];
        assert_eq!(hist.kind, "histogram");
        // Cumulative buckets end at the +Inf catch-all == count.
        let last = hist.samples.last().unwrap();
        assert_eq!(last.0[0].1, "+Inf");
        assert_eq!(last.1, 2.0);
    }
}
