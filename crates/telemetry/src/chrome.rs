//! Chrome `trace_event` JSON export: load the output in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) to see one
//! lane per bank (service spans) and per processor (stall spans), plus
//! a superstep marker lane.
//!
//! The format is the stable subset of the Trace Event Format: a
//! top-level `{"traceEvents": [...]}` object of complete-duration
//! (`"ph": "X"`) and metadata (`"ph": "M"`) events. Timestamps map one
//! simulated cycle to one microsecond, so viewer timings read directly
//! as cycles.

use dxbsp_core::{DxError, SpecValue};

use crate::recorder::Recorder;

/// Process IDs grouping the lanes in the viewer.
const PID_BANKS: i64 = 1;
const PID_PROCS: i64 = 2;
const PID_STEPS: i64 = 3;

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_span(out: &mut String, name: &str, pid: i64, tid: usize, ts: u64, dur: u64, args: &str) {
    out.push_str("{\"name\":");
    push_str(out, name);
    out.push_str(&format!(",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur}"));
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        out.push_str(args);
        out.push('}');
    }
    out.push_str("},");
}

fn push_meta(out: &mut String, name: &str, pid: i64, tid: Option<usize>, value: &str) {
    out.push_str("{\"name\":");
    push_str(out, name);
    out.push_str(&format!(",\"ph\":\"M\",\"pid\":{pid}"));
    if let Some(t) = tid {
        out.push_str(&format!(",\"tid\":{t}"));
    }
    out.push_str(",\"args\":{\"name\":");
    let label = match (name, tid) {
        ("process_name", _) => value.to_string(),
        (_, Some(t)) => format!("{value} {t}"),
        _ => value.to_string(),
    };
    push_str(out, &label);
    out.push_str("}},");
}

/// Renders the recorder's retained events as Chrome trace JSON.
///
/// Lanes: one thread per bank under a "banks" process (each retained
/// request is a service span, with queue wait in its args), one thread
/// per processor under "processors" (window-stall spans), and one
/// "supersteps" lane of attribution spans (`args` carry the
/// `max(L, g·h, d·R)` terms and the binding one).
#[must_use]
pub fn trace_json(rec: &Recorder) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    push_meta(&mut out, "process_name", PID_BANKS, None, "banks");
    push_meta(&mut out, "process_name", PID_PROCS, None, "processors");
    push_meta(&mut out, "process_name", PID_STEPS, None, "supersteps");
    let mut named_banks = vec![false; rec.banks().len()];
    let mut named_procs = vec![false; rec.procs().len()];

    for t in rec.events() {
        if let Some(n) = named_banks.get_mut(t.bank) {
            if !*n {
                push_meta(&mut out, "thread_name", PID_BANKS, Some(t.bank), "bank");
                *n = true;
            }
        }
        push_span(
            &mut out,
            &format!("p{}", t.proc),
            PID_BANKS,
            t.bank,
            t.start,
            t.service().max(1),
            &format!("\"queue_wait\":{},\"cache_hit\":{}", t.queue_wait(), t.cache_hit),
        );
    }

    // Window-stall spans, one lane per processor. Reconstructed from
    // the per-proc aggregates only when interval events were retained.
    for (p, track) in rec.procs().iter().enumerate() {
        if track.stalls > 0 {
            if let Some(n) = named_procs.get_mut(p) {
                if !*n {
                    push_meta(&mut out, "thread_name", PID_PROCS, Some(p), "proc");
                    *n = true;
                }
            }
        }
    }
    for iv in rec.stall_intervals() {
        push_span(&mut out, "window stall", PID_PROCS, iv.proc, iv.from, iv.until - iv.from, "");
    }

    // Superstep attribution lane: consecutive spans on one clock.
    let mut clock = 0u64;
    for (i, st) in rec.steps().iter().enumerate() {
        let r = &st.report;
        let name = if st.label.is_empty() { format!("step {i}") } else { st.label.clone() };
        push_span(
            &mut out,
            &name,
            PID_STEPS,
            0,
            clock,
            r.total_cycles.max(1),
            &format!(
                "\"binding\":\"{}\",\"latency\":{},\"processor\":{},\"bank\":{},\"requests\":{}",
                r.binding(),
                r.model.latency,
                r.model.processor,
                r.model.bank,
                r.requests
            ),
        );
        clock += r.total_cycles;
    }

    if out.ends_with(',') {
        out.pop();
    }
    out.push_str("]}");
    out
}

/// Schema check for [`trace_json`] output (and any external trace):
/// parses the JSON, requires a `traceEvents` list whose entries carry
/// `name`/`ph`/`pid`, requires duration events to have nonnegative
/// `ts`/`dur`, and returns the event count.
///
/// # Errors
///
/// [`DxError::Invalid`] describing the first malformed event, or a
/// parse error from the JSON decoder.
pub fn validate(json: &str) -> Result<usize, DxError> {
    let v = SpecValue::from_json(json)?;
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_list())
        .ok_or_else(|| DxError::invalid("chrome trace: missing traceEvents list"))?;
    for (i, ev) in events.iter().enumerate() {
        let name = ev.get("name").and_then(|n| n.as_str());
        if name.is_none() {
            return Err(DxError::invalid(format!("chrome trace: event {i} has no name")));
        }
        let ph = ev
            .get("ph")
            .and_then(|p| p.as_str())
            .ok_or_else(|| DxError::invalid(format!("chrome trace: event {i} has no ph")))?;
        if ev.get("pid").and_then(SpecValue::as_int).is_none() {
            return Err(DxError::invalid(format!("chrome trace: event {i} has no pid")));
        }
        if ph == "X" {
            let ts = ev.get("ts").and_then(SpecValue::as_int);
            let dur = ev.get("dur").and_then(SpecValue::as_int);
            match (ts, dur) {
                (Some(ts), Some(dur)) if ts >= 0 && dur >= 0 => {}
                _ => {
                    return Err(DxError::invalid(format!(
                        "chrome trace: duration event {i} needs nonnegative ts/dur"
                    )))
                }
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{Probe, RequestTiming, StepReport};
    use dxbsp_core::CostBreakdown;

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::new();
        r.request(RequestTiming {
            proc: 0,
            bank: 2,
            issued: 0,
            arrived: 3,
            forwarded: 3,
            start: 3,
            end: 17,
            done: 20,
            cache_hit: false,
        });
        r.window_stall(1, 5, 9);
        r.superstep_end(
            "scatter",
            &StepReport {
                index: 0,
                requests: 1,
                memory_cycles: 20,
                local_work: 0,
                sync_overhead: 0,
                total_cycles: 20,
                modeled: false,
                model: CostBreakdown { latency: 3, processor: 1, bank: 14, bound_bank: None },
            },
        );
        r
    }

    #[test]
    fn trace_round_trips_through_validate() {
        let json = trace_json(&sample_recorder());
        let n = validate(&json).expect("valid trace");
        // 3 process metas + bank meta + proc meta + 1 request span +
        // 1 stall span + 1 step span.
        assert_eq!(n, 8);
    }

    #[test]
    fn empty_recorder_still_valid() {
        let json = trace_json(&Recorder::new());
        assert_eq!(validate(&json).unwrap(), 3);
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate("{}").is_err());
        assert!(validate("{\"traceEvents\": [{}]}").is_err());
        assert!(
            validate("{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"X\", \"pid\": 1}]}").is_err()
        );
        assert!(validate("not json").is_err());
    }

    #[test]
    fn spans_carry_attribution_args() {
        let json = trace_json(&sample_recorder());
        let v = SpecValue::from_json(&json).unwrap();
        let events = v.get("traceEvents").unwrap().as_list().unwrap();
        let step = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("scatter"))
            .expect("superstep span present");
        let args = step.get("args").unwrap();
        assert_eq!(args.get("binding").unwrap().as_str(), Some("bank"));
        assert_eq!(args.get("bank").unwrap().as_int(), Some(14));
    }
}
