//! The [`Recorder`]: a [`Probe`] that turns hook calls into bounded
//! per-bank/per-processor telemetry, superstep cost attribution, and
//! export-ready snapshots ([`Registry`], Chrome trace, JSON summary).

use dxbsp_core::{BankDelayModel, SpecValue};

use crate::metrics::{Counter, LogHistogram, Registry, Sampler};
use crate::probe::{Probe, RequestTiming, StepReport};

/// How many raw [`RequestTiming`]s to retain for timeline export.
/// Beyond the cap, every *total* (request counts, per-bank dwell and
/// queue wait, cumulative queue-wait) keeps counting exactly, but the
/// per-request channels — retained spans, the queue-wait histogram and
/// series — cover only the retained prefix; the overflow is counted in
/// `events_dropped`. Bounding the per-request work is what keeps a
/// live recorder within a few percent of an unprobed bulk run, and the
/// Chrome trace stays loadable even for multi-million-request runs.
pub const DEFAULT_EVENT_CAP: usize = 4_096;

/// Retained samples per bounded time series.
const SAMPLER_CAP: usize = 512;

/// Per-superstep records retained verbatim (aggregates keep counting
/// past the cap).
const STEP_CAP: usize = 8_192;

/// Window-stall intervals retained verbatim for the timeline.
const STALL_CAP: usize = 16_384;

/// One retained window-stall interval: processor `proc` could not
/// issue from cycle `from` until the completion at `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallInterval {
    /// The stalled processor.
    pub proc: usize,
    /// First stalled cycle.
    pub from: u64,
    /// Cycle the unblocking completion arrived.
    pub until: u64,
}

/// Aggregated telemetry for one memory bank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BankTrack {
    /// Requests serviced.
    pub requests: u64,
    /// Total service (dwell) cycles.
    pub busy_cycles: u64,
    /// Total queue-wait cycles.
    pub queue_wait: u64,
    /// Largest single queue wait.
    pub max_queue_wait: u64,
    /// Bank-cache hits.
    pub cache_hits: u64,
}

/// Aggregated telemetry for one processor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcTrack {
    /// Requests issued.
    pub requests: u64,
    /// Cycles stalled on a full outstanding-request window.
    pub stall_cycles: u64,
    /// Number of distinct stall intervals.
    pub stalls: u64,
}

/// One superstep's retained attribution record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepTrack {
    /// Superstep label ("" when stepping bare patterns).
    pub label: String,
    /// The engine's report: cycles, requests, and the
    /// `max(L, g·h, d·R)` breakdown.
    pub report: StepReport,
}

/// A probe that records everything the exporters need, in bounded
/// memory. Create one per profiled run; snapshots ([`Recorder::summary`],
/// [`Recorder::registry`], [`crate::chrome::trace_json`]) can be taken
/// at any point.
#[derive(Debug, Clone)]
pub struct Recorder {
    banks: Vec<BankTrack>,
    procs: Vec<ProcTrack>,
    steps: Vec<StepTrack>,
    events: Vec<RequestTiming>,
    stalls: Vec<StallInterval>,
    event_cap: usize,
    /// Bounded (cycle, cumulative queue-wait) series for the hottest
    /// dimension of the paper's story: queue growth over time.
    queue_wait_series: Sampler,
    queue_wait_hist: LogHistogram,
    stall_hist: LogHistogram,
    requests: Counter,
    events_dropped: Counter,
    steps_dropped: Counter,
    cascades: Counter,
    stall_cycles: Counter,
    supersteps: Counter,
    /// Supersteps that ran the event-level simulator.
    simulated_steps: Counter,
    /// Supersteps charged closed-form (hybrid fast path or an analytic
    /// backend).
    modeled_steps: Counter,
    /// Σ total_cycles over superstep reports — must equal the driving
    /// session's clock (the attribution-sums-to-total invariant).
    attributed_cycles: Counter,
    /// Σ per-term binding counts/cycles.
    bound_latency: Counter,
    bound_processor: Counter,
    bound_bank: Counter,
    cumulative_queue_wait: u64,
    /// Raw timings the sampling channel retained this epoch (reset by
    /// [`Probe::epoch_end`], which accounts the unsampled tail).
    epoch_sampled: u64,
    /// Queue wait the sampling channel already added to
    /// `cumulative_queue_wait` this epoch.
    epoch_sampled_wait: u64,
    /// The non-uniform bank-delay model in force, when the driver
    /// attached one ([`Recorder::set_delay_model`]); enables per-tier
    /// dwell attribution. `None` for uniform machines.
    delay: Option<BankDelayModel>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh recorder with the default event cap.
    #[must_use]
    pub fn new() -> Self {
        Self::with_event_cap(DEFAULT_EVENT_CAP)
    }

    /// A recorder retaining at most `cap` raw request timings.
    #[must_use]
    pub fn with_event_cap(cap: usize) -> Self {
        Self {
            banks: Vec::new(),
            procs: Vec::new(),
            steps: Vec::new(),
            events: Vec::new(),
            stalls: Vec::new(),
            event_cap: cap,
            queue_wait_series: Sampler::new(SAMPLER_CAP),
            queue_wait_hist: LogHistogram::new(),
            stall_hist: LogHistogram::new(),
            requests: Counter::default(),
            events_dropped: Counter::default(),
            steps_dropped: Counter::default(),
            cascades: Counter::default(),
            stall_cycles: Counter::default(),
            supersteps: Counter::default(),
            simulated_steps: Counter::default(),
            modeled_steps: Counter::default(),
            attributed_cycles: Counter::default(),
            bound_latency: Counter::default(),
            bound_processor: Counter::default(),
            bound_bank: Counter::default(),
            cumulative_queue_wait: 0,
            epoch_sampled: 0,
            epoch_sampled_wait: 0,
            delay: None,
        }
    }

    /// Attach the bank-delay model the run realizes, enabling per-tier
    /// dwell attribution in the summary and the Prometheus registry.
    /// Uniform models are dropped (a single tier adds nothing the
    /// per-bank family doesn't already carry).
    pub fn set_delay_model(&mut self, delay: &BankDelayModel) {
        self.delay = if delay.as_uniform().is_none() { Some(delay.clone()) } else { None };
    }

    /// Dwell (busy) cycles grouped by service-delay tier, ordered by
    /// delay. Empty unless a non-uniform model was attached via
    /// [`Recorder::set_delay_model`].
    #[must_use]
    pub fn tier_dwell(&self) -> Vec<(u64, u64)> {
        let Some(delay) = &self.delay else {
            return Vec::new();
        };
        let mut map: std::collections::BTreeMap<u64, u64> =
            delay.tiers().into_iter().map(|(d, _)| (d, 0)).collect();
        for (i, t) in self.banks.iter().enumerate() {
            *map.entry(delay.service(i)).or_insert(0) += t.busy_cycles;
        }
        map.into_iter().collect()
    }

    fn bank_mut(&mut self, bank: usize) -> &mut BankTrack {
        if self.banks.len() <= bank {
            self.banks.resize_with(bank + 1, BankTrack::default);
        }
        &mut self.banks[bank]
    }

    fn proc_mut(&mut self, proc: usize) -> &mut ProcTrack {
        if self.procs.len() <= proc {
            self.procs.resize_with(proc + 1, ProcTrack::default);
        }
        &mut self.procs[proc]
    }

    /// Per-bank aggregates (length = highest bank index observed + 1).
    #[must_use]
    pub fn banks(&self) -> &[BankTrack] {
        &self.banks
    }

    /// Per-processor aggregates.
    #[must_use]
    pub fn procs(&self) -> &[ProcTrack] {
        &self.procs
    }

    /// Retained per-superstep attribution records.
    #[must_use]
    pub fn steps(&self) -> &[StepTrack] {
        &self.steps
    }

    /// Retained raw request timings, in issue order.
    #[must_use]
    pub fn events(&self) -> &[RequestTiming] {
        &self.events
    }

    /// Retained window-stall intervals, in occurrence order.
    #[must_use]
    pub fn stall_intervals(&self) -> &[StallInterval] {
        &self.stalls
    }

    /// Raw timings dropped past the event cap.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped.get()
    }

    /// Total requests observed.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Supersteps observed.
    #[must_use]
    pub fn supersteps(&self) -> u64 {
        self.supersteps.get()
    }

    /// Supersteps that ran through the event-level simulator.
    #[must_use]
    pub fn simulated_steps(&self) -> u64 {
        self.simulated_steps.get()
    }

    /// Supersteps charged closed-form (the hybrid fast path, or an
    /// analytic backend).
    #[must_use]
    pub fn modeled_steps(&self) -> u64 {
        self.modeled_steps.get()
    }

    /// Σ `total_cycles` over all superstep reports. For a session-driven
    /// run this equals the session's total clock — every simulated
    /// cycle is attributed to exactly one superstep.
    #[must_use]
    pub fn attributed_cycles(&self) -> u64 {
        self.attributed_cycles.get()
    }

    /// Time-wheel cascade operations observed.
    #[must_use]
    pub fn cascades(&self) -> u64 {
        self.cascades.get()
    }

    /// Total window-stall cycles across all processors.
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles.get()
    }

    /// The queue-wait distribution across all requests.
    #[must_use]
    pub fn queue_wait_hist(&self) -> &LogHistogram {
        &self.queue_wait_hist
    }

    /// Bounded (cycle, cumulative queue-wait) time series.
    #[must_use]
    pub fn queue_wait_series(&self) -> &Sampler {
        &self.queue_wait_series
    }

    /// How many supersteps each term bound: `(latency, processor,
    /// bank)`.
    #[must_use]
    pub fn bound_counts(&self) -> (u64, u64, u64) {
        (self.bound_latency.get(), self.bound_processor.get(), self.bound_bank.get())
    }

    /// A compact JSON-able summary of the run — the payload embedded in
    /// bench `RunRecord`s and written by `dxprof --summary`.
    #[must_use]
    pub fn summary(&self) -> SpecValue {
        let mut t = SpecValue::table();
        t.set("supersteps", SpecValue::Int(self.supersteps.get() as i64));
        t.set("simulated_steps", SpecValue::Int(self.simulated_steps.get() as i64));
        t.set("modeled_steps", SpecValue::Int(self.modeled_steps.get() as i64));
        t.set("requests", SpecValue::Int(self.requests.get() as i64));
        t.set("attributed_cycles", SpecValue::Int(self.attributed_cycles.get() as i64));
        let (l, p, b) = self.bound_counts();
        let mut bound = SpecValue::table();
        bound.set("latency", SpecValue::Int(l as i64));
        bound.set("processor", SpecValue::Int(p as i64));
        bound.set("bank", SpecValue::Int(b as i64));
        t.set("bound_supersteps", bound);
        // Totals and maxima come from the exact channels (cumulative
        // counter, per-bank tracks) so they hold past the event cap;
        // the p99 is histogram-derived and covers the sampled prefix.
        t.set("queue_wait_total", SpecValue::Int(self.cumulative_queue_wait as i64));
        let wait_max = self.banks.iter().map(|b| b.max_queue_wait).max().unwrap_or(0);
        t.set("queue_wait_max", SpecValue::Int(wait_max as i64));
        t.set("queue_wait_p99", SpecValue::Int(self.queue_wait_hist.quantile_bound(0.99) as i64));
        t.set("window_stall_cycles", SpecValue::Int(self.stall_cycles.get() as i64));
        t.set("scheduler_cascades", SpecValue::Int(self.cascades.get() as i64));
        let (hot_bank, hot) = self.hottest_bank();
        t.set("hot_bank", SpecValue::Int(hot_bank as i64));
        t.set("hot_bank_busy_cycles", SpecValue::Int(hot as i64));
        let total_busy: u64 = self.banks.iter().map(|b| b.busy_cycles).sum();
        t.set("busy_cycles_total", SpecValue::Int(total_busy as i64));
        t.set("events_retained", SpecValue::Int(self.events.len() as i64));
        t.set("events_dropped", SpecValue::Int(self.events_dropped.get() as i64));
        if let Some(delay) = &self.delay {
            t.set("delay_model", SpecValue::Str(delay.describe()));
            let mut tiers = SpecValue::table();
            for (d, busy) in self.tier_dwell() {
                tiers.set(format!("d{d}"), SpecValue::Int(busy as i64));
            }
            t.set("tier_busy_cycles", tiers);
        }
        t
    }

    /// The bank with the most dwell (busy) cycles, and its dwell.
    #[must_use]
    pub fn hottest_bank(&self) -> (usize, u64) {
        self.banks
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.busy_cycles)
            .map(|(i, b)| (i, b.busy_cycles))
            .unwrap_or((0, 0))
    }

    /// A [`Registry`] snapshot of every metric, ready for
    /// [`crate::prometheus::render`].
    #[must_use]
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.counter("dxbsp_requests_total", "Memory requests simulated", self.requests.get());
        reg.counter("dxbsp_supersteps_total", "Supersteps executed", self.supersteps.get());
        reg.counter(
            "dxbsp_simulated_steps_total",
            "Supersteps run through the event-level simulator",
            self.simulated_steps.get(),
        );
        reg.counter(
            "dxbsp_modeled_steps_total",
            "Supersteps charged closed-form by the hybrid fast path",
            self.modeled_steps.get(),
        );
        reg.counter(
            "dxbsp_attributed_cycles_total",
            "Cycles attributed across supersteps (equals the session clock)",
            self.attributed_cycles.get(),
        );
        let (l, p, b) = self.bound_counts();
        reg.labelled_counter(
            "dxbsp_bound_supersteps_total",
            "Supersteps bound by each (d,x)-BSP cost term",
            vec![
                (vec![("term".to_string(), "latency".to_string())], l as f64),
                (vec![("term".to_string(), "processor".to_string())], p as f64),
                (vec![("term".to_string(), "bank".to_string())], b as f64),
            ],
        );
        reg.counter(
            "dxbsp_window_stall_cycles_total",
            "Cycles processors spent stalled on a full issue window",
            self.stall_cycles.get(),
        );
        reg.counter(
            "dxbsp_scheduler_cascades_total",
            "Time-wheel cascade operations",
            self.cascades.get(),
        );
        reg.histogram(
            "dxbsp_bank_queue_wait_cycles",
            "Per-request bank queue wait",
            &self.queue_wait_hist,
        );
        reg.labelled_counter(
            "dxbsp_bank_busy_cycles_total",
            "Service (dwell) cycles per bank",
            self.banks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.requests > 0)
                .map(|(i, t)| (vec![("bank".to_string(), i.to_string())], t.busy_cycles as f64))
                .collect(),
        );
        reg.labelled_counter(
            "dxbsp_bank_requests_total",
            "Requests serviced per bank",
            self.banks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.requests > 0)
                .map(|(i, t)| (vec![("bank".to_string(), i.to_string())], t.requests as f64))
                .collect(),
        );
        let (hot_bank, hot) = self.hottest_bank();
        reg.gauge("dxbsp_hot_bank", "Index of the bank with the most dwell", hot_bank as f64);
        reg.gauge("dxbsp_hot_bank_busy_cycles", "Dwell cycles of the hottest bank", hot as f64);
        if self.delay.is_some() {
            reg.labelled_counter(
                "dxbsp_tier_busy_cycles_total",
                "Service (dwell) cycles per bank-delay tier",
                self.tier_dwell()
                    .into_iter()
                    .map(|(d, busy)| (vec![("d".to_string(), d.to_string())], busy as f64))
                    .collect(),
            );
        }
        reg
    }

    /// A flame-style text report: banks ranked by dwell, widest bar =
    /// hottest bank, annotated with queue wait. `top` limits the rows;
    /// `width` the bar width in characters.
    #[must_use]
    pub fn dwell_report(&self, top: usize, width: usize) -> String {
        let mut ranked: Vec<(usize, &BankTrack)> =
            self.banks.iter().enumerate().filter(|(_, b)| b.requests > 0).collect();
        ranked.sort_by(|a, b| b.1.busy_cycles.cmp(&a.1.busy_cycles).then(a.0.cmp(&b.0)));
        let hottest = ranked.first().map_or(0, |(_, b)| b.busy_cycles);
        let mut out = String::new();
        out.push_str("bank    requests      dwell   q-wait  dwell profile\n");
        for (i, b) in ranked.into_iter().take(top) {
            let bar = if hottest == 0 {
                0
            } else {
                ((b.busy_cycles as u128 * width as u128) / hottest as u128) as usize
            };
            out.push_str(&format!(
                "{i:>4} {:>11} {:>10} {:>8}  {}\n",
                b.requests,
                b.busy_cycles,
                b.queue_wait,
                "#".repeat(bar.max(1)),
            ));
        }
        out
    }
}

impl Probe for Recorder {
    fn superstep_begin(&mut self, _index: usize, _requests: usize) {}

    fn request(&mut self, t: RequestTiming) {
        self.requests.inc();
        let wait = t.queue_wait();
        self.queue_wait_hist.record(wait);
        self.cumulative_queue_wait = self.cumulative_queue_wait.saturating_add(wait);
        self.queue_wait_series.push(t.start, self.cumulative_queue_wait);
        let bank = self.bank_mut(t.bank);
        bank.requests += 1;
        bank.busy_cycles = bank.busy_cycles.saturating_add(t.service());
        bank.queue_wait = bank.queue_wait.saturating_add(wait);
        bank.max_queue_wait = bank.max_queue_wait.max(wait);
        if t.cache_hit {
            bank.cache_hits += 1;
        }
        self.proc_mut(t.proc).requests += 1;
        if self.events.len() < self.event_cap {
            self.events.push(t);
        } else {
            self.events_dropped.inc();
        }
    }

    /// The bulk sampling channel: retain raw timings and feed the
    /// queue-wait distribution/series up to the event cap, and tell the
    /// engine how many more timings are wanted. Counters and per-bank /
    /// per-processor aggregates deliberately do *not* move here — the
    /// paired [`Probe::epoch_end`] hook reports them exactly, O(banks)
    /// per superstep, which is what keeps a live recorder within a few
    /// percent of an unprobed bulk run. Within the sampling window the
    /// recorder state is bit-identical to per-request delivery; past
    /// it, the histogram/series cover the sampled prefix while every
    /// total stays exact.
    fn request_batch(&mut self, ts: &[RequestTiming]) -> usize {
        let room = self.event_cap.saturating_sub(self.events.len()).min(ts.len());
        let sample = &ts[..room];
        self.events.extend_from_slice(sample);
        self.epoch_sampled += room as u64;
        for t in sample {
            let wait = t.queue_wait();
            self.queue_wait_hist.record(wait);
            self.cumulative_queue_wait = self.cumulative_queue_wait.saturating_add(wait);
            self.epoch_sampled_wait = self.epoch_sampled_wait.saturating_add(wait);
            self.queue_wait_series.push(t.start, self.cumulative_queue_wait);
        }
        self.event_cap - self.events.len()
    }

    fn epoch_end(&mut self, requests: u64, banks: &[BankTrack], proc_requests: &[u64]) {
        self.requests.add(requests);
        let mut total_wait = 0u64;
        for (b, delta) in banks.iter().enumerate() {
            if delta.requests == 0 {
                continue;
            }
            total_wait = total_wait.saturating_add(delta.queue_wait);
            let track = self.bank_mut(b);
            track.requests += delta.requests;
            track.busy_cycles = track.busy_cycles.saturating_add(delta.busy_cycles);
            track.queue_wait = track.queue_wait.saturating_add(delta.queue_wait);
            track.max_queue_wait = track.max_queue_wait.max(delta.max_queue_wait);
            track.cache_hits += delta.cache_hits;
        }
        for (p, &r) in proc_requests.iter().enumerate() {
            if r > 0 {
                self.proc_mut(p).requests += r;
            }
        }
        // The sampling channel only saw the retained prefix; top the
        // exact totals up with the unsampled tail.
        self.cumulative_queue_wait = self
            .cumulative_queue_wait
            .saturating_add(total_wait.saturating_sub(self.epoch_sampled_wait));
        self.events_dropped.add(requests - self.epoch_sampled);
        self.epoch_sampled = 0;
        self.epoch_sampled_wait = 0;
    }

    fn window_stall(&mut self, proc: usize, from: u64, until: u64) {
        let stalled = until - from;
        self.stall_cycles.add(stalled);
        self.stall_hist.record(stalled);
        let p = self.proc_mut(proc);
        p.stall_cycles = p.stall_cycles.saturating_add(stalled);
        p.stalls += 1;
        if self.stalls.len() < STALL_CAP {
            self.stalls.push(StallInterval { proc, from, until });
        }
    }

    fn scheduler_cascades(&mut self, count: u64) {
        self.cascades.add(count);
    }

    fn superstep_end(&mut self, label: &str, report: &StepReport) {
        self.supersteps.inc();
        if report.modeled {
            self.modeled_steps.inc();
        } else {
            self.simulated_steps.inc();
        }
        self.attributed_cycles.add(report.total_cycles);
        match report.binding() {
            "latency" => self.bound_latency.inc(),
            "processor" => self.bound_processor.inc(),
            _ => self.bound_bank.inc(),
        }
        if self.steps.len() < STEP_CAP {
            self.steps.push(StepTrack { label: label.to_string(), report: report.clone() });
        } else {
            self.steps_dropped.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dxbsp_core::CostBreakdown;

    fn timing(proc: usize, bank: usize, issued: u64) -> RequestTiming {
        RequestTiming {
            proc,
            bank,
            issued,
            arrived: issued + 2,
            forwarded: issued + 2,
            start: issued + 5,
            end: issued + 19,
            done: issued + 21,
            cache_hit: false,
        }
    }

    fn report(total: u64, bank: u64) -> StepReport {
        StepReport {
            index: 0,
            requests: 4,
            memory_cycles: total,
            local_work: 0,
            sync_overhead: 0,
            total_cycles: total,
            modeled: false,
            model: CostBreakdown { latency: 1, processor: 2, bank, bound_bank: None },
        }
    }

    #[test]
    fn aggregates_per_bank_and_proc() {
        let mut r = Recorder::new();
        r.request(timing(0, 3, 0));
        r.request(timing(1, 3, 4));
        r.request(timing(0, 1, 8));
        assert_eq!(r.requests(), 3);
        assert_eq!(r.banks()[3].requests, 2);
        assert_eq!(r.banks()[3].busy_cycles, 28);
        assert_eq!(r.banks()[3].queue_wait, 6);
        assert_eq!(r.procs()[0].requests, 2);
        assert_eq!(r.hottest_bank().0, 3);
    }

    #[test]
    fn event_cap_drops_but_keeps_counting() {
        let mut r = Recorder::with_event_cap(2);
        for i in 0..5 {
            r.request(timing(0, 0, i));
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.events_dropped(), 3);
        assert_eq!(r.requests(), 5);
        assert_eq!(r.banks()[0].requests, 5);
    }

    #[test]
    fn attribution_accumulates_and_classifies() {
        let mut r = Recorder::new();
        r.superstep_end("a", &report(100, 50));
        r.superstep_end("b", &report(7, 0));
        assert_eq!(r.supersteps(), 2);
        assert_eq!(r.attributed_cycles(), 107);
        let (l, p, b) = r.bound_counts();
        assert_eq!((l, p, b), (0, 1, 1));
        assert_eq!(r.steps()[0].label, "a");
        assert_eq!(r.simulated_steps(), 2);
        assert_eq!(r.modeled_steps(), 0);
    }

    #[test]
    fn modeled_steps_counted_separately() {
        let mut r = Recorder::new();
        r.superstep_end("sim", &report(10, 5));
        let mut charged = report(10, 5);
        charged.modeled = true;
        r.superstep_end("fast", &charged);
        assert_eq!(r.supersteps(), 2);
        assert_eq!(r.simulated_steps(), 1);
        assert_eq!(r.modeled_steps(), 1);
        let s = r.summary();
        assert_eq!(s.get("simulated_steps").unwrap().as_int(), Some(1));
        assert_eq!(s.get("modeled_steps").unwrap().as_int(), Some(1));
    }

    #[test]
    fn summary_has_the_headline_fields() {
        let mut r = Recorder::new();
        r.request(timing(0, 2, 0));
        r.superstep_end("", &report(21, 21));
        let s = r.summary();
        assert_eq!(s.get("requests").unwrap().as_int(), Some(1));
        assert_eq!(s.get("attributed_cycles").unwrap().as_int(), Some(21));
        assert_eq!(s.get("hot_bank").unwrap().as_int(), Some(2));
        // Round-trips through JSON.
        let json = s.to_json();
        let back = SpecValue::from_json(&json).unwrap();
        assert_eq!(back.get("requests").unwrap().as_int(), Some(1));
    }

    #[test]
    fn stalls_and_cascades_counted() {
        let mut r = Recorder::new();
        r.window_stall(1, 10, 25);
        r.window_stall(1, 30, 32);
        r.scheduler_cascades(7);
        assert_eq!(r.stall_cycles(), 17);
        assert_eq!(r.procs()[1].stalls, 2);
        assert_eq!(r.cascades(), 7);
    }

    #[test]
    fn tier_dwell_groups_banks_by_delay_class() {
        let mut r = Recorder::new();
        // Banks 0..2 fast (d=6), banks 2..4 slow (d=14).
        r.set_delay_model(&BankDelayModel::from_tiers(&[(2, 6), (2, 14)]));
        r.request(timing(0, 0, 0)); // 14 dwell cycles each (timing fixture)
        r.request(timing(0, 1, 4));
        r.request(timing(0, 3, 8));
        let tiers = r.tier_dwell();
        assert_eq!(tiers, vec![(6, 28), (14, 14)]);
        let s = r.summary();
        assert_eq!(s.get("delay_model").unwrap().as_str(), Some("per-bank(d=6 x2, d=14 x2)"));
        let busy = s.get("tier_busy_cycles").unwrap();
        assert_eq!(busy.get("d6").unwrap().as_int(), Some(28));
        assert_eq!(busy.get("d14").unwrap().as_int(), Some(14));
        let prom = crate::prometheus::render(&r.registry());
        assert!(prom.contains("dxbsp_tier_busy_cycles_total{d=\"6\"} 28"), "{prom}");
        crate::prometheus::lint(&prom).expect("lints");
    }

    #[test]
    fn uniform_delay_model_is_dropped() {
        let mut r = Recorder::new();
        r.set_delay_model(&BankDelayModel::uniform(14));
        r.request(timing(0, 0, 0));
        assert!(r.tier_dwell().is_empty());
        assert!(r.summary().get("delay_model").is_none());
    }

    #[test]
    fn dwell_report_ranks_banks() {
        let mut r = Recorder::new();
        r.request(timing(0, 5, 0));
        r.request(timing(0, 5, 4));
        r.request(timing(0, 2, 8));
        let rep = r.dwell_report(8, 20);
        let lines: Vec<&str> = rep.lines().collect();
        assert!(lines[0].starts_with("bank"));
        assert!(lines[1].trim_start().starts_with('5'), "hottest first: {rep}");
        assert_eq!(lines.len(), 3);
    }
}
