//! Property tests for the (d,x)-LogP extension and the advisor.

use dxbsp_core::{
    diagnose, pattern_cost, AccessPattern, Binding, CostModel, Interleaved, LogPParams,
    MachineParams, Request,
};
use proptest::prelude::*;

fn arb_logp() -> impl Strategy<Value = LogPParams> {
    (0u64..=50, 0u64..=8, 1u64..=8, 1usize..=16, 1u64..=20, 1usize..=32)
        .prop_map(|(l, o, g, p, d, x)| LogPParams::new(l, o, g, p, d, x))
}

fn arb_pattern(max_procs: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0..max_procs, 0u64..256), 1..200)
}

fn build(procs: usize, raw: &[(usize, u64)]) -> AccessPattern {
    let mut pat = AccessPattern::new(procs);
    for &(p, a) in raw {
        pat.push(Request::write(p % procs, a));
    }
    pat
}

proptest! {
    /// The extended LogP never charges less than the classic LogP, and
    /// both include the overhead bookends.
    #[test]
    fn dx_logp_dominates_classic(lp in arb_logp(), raw in arb_pattern(8)) {
        let pat = build(lp.p, &raw);
        let map = Interleaved::new(lp.banks());
        let dx = lp.pattern_cost(&pat, &map);
        let classic = lp.pattern_cost_classic(&pat);
        prop_assert!(dx >= classic);
        prop_assert!(classic >= 2 * lp.o + 2 * lp.l);
    }

    /// Cost functions are monotone in the request count.
    #[test]
    fn logp_costs_monotone(lp in arb_logp(), m in 0usize..10_000) {
        prop_assert!(lp.pipelined_requests(m + 1) >= lp.pipelined_requests(m));
        prop_assert!(lp.hot_bank_requests(m + 1) >= lp.hot_bank_requests(m));
        prop_assert!(lp.hot_bank_requests(m) >= lp.pipelined_requests(m).min(lp.hot_bank_requests(m)));
    }

    /// The BSP mapping agrees with the native charge up to the folded
    /// bookends, on every pattern.
    #[test]
    fn bsp_mapping_agrees_within_bookends(lp in arb_logp(), raw in arb_pattern(8)) {
        let pat = build(lp.p, &raw);
        let map = Interleaved::new(lp.banks());
        let native = lp.pattern_cost(&pat, &map);
        let bsp = pattern_cost(&lp.as_bsp(), &pat, &map, CostModel::DxBsp);
        prop_assert!(native.abs_diff(bsp) <= 2 * lp.o + 2 * lp.l,
            "native {native} vs bsp {bsp}");
    }

    /// The advisor's charge equals the exact (d,x)-BSP pattern charge,
    /// and its duplication advice always predicts an improvement.
    #[test]
    fn advisor_consistent_with_cost_model(
        p in 1usize..=16,
        d in 1u64..=20,
        x in 1usize..=32,
        raw in arb_pattern(16),
    ) {
        let m = MachineParams::new(p, 1, 0, d, x);
        let pat = build(p, &raw);
        let map = Interleaved::new(m.banks());
        let diag = diagnose(&m, &pat, &map);
        prop_assert_eq!(
            diag.charged_cycles,
            pattern_cost(&m, &pat, &map, CostModel::DxBsp)
        );
        if let Some(a) = diag.duplication {
            prop_assert!(a.copies >= 2);
            prop_assert!(a.predicted_cycles <= diag.charged_cycles);
            prop_assert!(a.speedup >= 1.0);
        }
        // The binding label is never HotLocation when contention is 1.
        if diag.contention <= 1 {
            prop_assert!(diag.binding != Binding::HotLocation);
        }
    }

    /// Diagnosis is deterministic and pure.
    #[test]
    fn advisor_is_pure(raw in arb_pattern(8)) {
        let m = MachineParams::new(8, 1, 0, 14, 32);
        let pat = build(8, &raw);
        let map = Interleaved::new(m.banks());
        prop_assert_eq!(diagnose(&m, &pat, &map), diagnose(&m, &pat, &map));
    }
}
