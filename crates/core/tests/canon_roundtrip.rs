//! Property tests for the canonical scenario form: any spec that
//! round-trips through the TOML or JSON codec — losing comments,
//! field order, and float spelling on the way — must keep its content
//! hash, and presentational rewrites (param declaration order,
//! `2.0`-for-`2`) must never split a cache key.

use dxbsp_core::{content_hash, Axis, EngineKind, ExecMode, Scenario, SpecValue, Sweep};
use proptest::prelude::*;

fn axis_strategy() -> impl Strategy<Value = Axis> {
    prop_oneof![
        proptest::collection::vec(1u64..=4096, 1..4).prop_map(|vs| Axis::ints("k", vs)),
        proptest::collection::vec(0u32..=40, 1..4)
            .prop_map(|vs| Axis::floats("s", vs.into_iter().map(|v| f64::from(v) / 10.0))),
        proptest::collection::vec(prop_oneof![Just("c90"), Just("j90")], 1..3)
            .prop_map(|vs| Axis::strs("machine", vs)),
    ]
}

fn param_strategy() -> impl Strategy<Value = (String, SpecValue)> {
    let key = prop_oneof![Just("alpha"), Just("beta"), Just("gamma"), Just("delta")]
        .prop_map(str::to_string);
    let value = prop_oneof![
        (-1000i64..1000).prop_map(SpecValue::Int),
        (-1000i64..1000).prop_map(|v| SpecValue::Float(v as f64)),
        (-1000i64..1000).prop_map(|v| SpecValue::Float(v as f64 + 0.5)),
        Just(SpecValue::Str("label".to_string())),
    ];
    (key, value)
}

#[allow(clippy::too_many_lines)]
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let fields = (
        0u64..u64::from(u32::MAX),
        prop_oneof![Just(None), (1usize..100_000).prop_map(Some)],
        proptest::collection::vec(axis_strategy(), 0..3),
        proptest::collection::vec(param_strategy(), 0..4),
        prop_oneof![Just(String::new()), Just("a title".to_string())],
        0usize..9,
        prop_oneof![Just(EngineKind::BankEpoch), Just(EngineKind::EventLevel)],
        prop_oneof![Just(None), (0u32..1_000_000).prop_map(Some)],
    );
    fields.prop_map(|(seed, n, axes, params, title, threads, engine, hybrid)| {
        let mut sc = Scenario::new("prop", "scatter-sweep", seed);
        sc.n = n;
        sc.sweep = Sweep::new(axes);
        // Distinct param keys (duplicate table keys do not round-trip).
        let mut seen = std::collections::BTreeSet::new();
        sc.params = params.into_iter().filter(|(k, _)| seen.insert(k.clone())).collect();
        sc.title = title;
        sc.threads = threads;
        sc.engine = engine;
        if let Some(ppm) = hybrid {
            sc.exec = ExecMode::Hybrid { error_bound_ppm: ppm };
        }
        sc
    })
}

proptest! {
    /// TOML and JSON round trips re-encode the spec from its typed
    /// form; neither may move the cache key.
    #[test]
    fn codec_round_trips_preserve_the_content_hash(sc in scenario_strategy()) {
        let key = content_hash(&sc);
        let toml = Scenario::from_toml(&sc.to_toml()).unwrap();
        prop_assert_eq!(content_hash(&toml), key, "TOML round trip moved the key");
        let json = Scenario::from_json(&sc.to_json()).unwrap();
        prop_assert_eq!(content_hash(&json), key, "JSON round trip moved the key");
    }

    /// Reversing the params table (declaration order is
    /// presentational) and spelling integral params as floats must
    /// both land on the same key.
    #[test]
    fn presentational_rewrites_share_the_key(sc in scenario_strategy()) {
        let key = content_hash(&sc);

        let mut reordered = sc.clone();
        reordered.params.reverse();
        prop_assert_eq!(content_hash(&reordered), key, "param order moved the key");

        let mut respelled = sc.clone();
        for (_, v) in &mut respelled.params {
            if let SpecValue::Int(i) = *v {
                *v = SpecValue::Float(i as f64);
            }
        }
        prop_assert_eq!(content_hash(&respelled), key, "float spelling moved the key");

        let mut decorated = sc;
        decorated.title = "presentation only".to_string();
        decorated.notes = vec!["a note".to_string()];
        decorated.threads = (decorated.threads + 1) % 9;
        prop_assert_eq!(content_hash(&decorated), key, "presentation fields moved the key");
    }

    /// The key must still be *discriminating*: a different seed is a
    /// different run.
    #[test]
    fn seed_always_splits_the_key(sc in scenario_strategy()) {
        let mut other = sc.clone();
        other.seed ^= 1;
        prop_assert_ne!(content_hash(&other), content_hash(&sc));
    }
}
