//! Property-based tests for the (d,x)-BSP cost algebra.

use dxbsp_core::{
    bsp_superstep_cost, pattern_cost, predict_scatter, predict_scatter_bsp, superstep_cost,
    AccessPattern, BankMap, CostModel, Interleaved, MachineParams, Request, ScatterShape,
};
use proptest::prelude::*;

fn arb_machine() -> impl Strategy<Value = MachineParams> {
    (1usize..=32, 1u64..=8, 0u64..=1000, 1u64..=32, 1usize..=64)
        .prop_map(|(p, g, l, d, x)| MachineParams::new(p, g, l, d, x))
}

fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
    (1usize..=8, proptest::collection::vec((any::<u64>(), any::<bool>()), 0..200)).prop_map(
        |(procs, reqs)| {
            let mut pat = AccessPattern::new(procs);
            for (i, (addr, is_read)) in reqs.into_iter().enumerate() {
                let proc = i % procs;
                // Restrict to a modest address space so collisions occur.
                let addr = addr % 512;
                pat.push(if is_read {
                    Request::read(proc, addr)
                } else {
                    Request::write(proc, addr)
                });
            }
            pat
        },
    )
}

proptest! {
    /// The (d,x)-BSP charge never undercuts the plain BSP charge.
    #[test]
    fn dxbsp_dominates_bsp(m in arb_machine(), pat in arb_pattern()) {
        let map = Interleaved::new(m.banks());
        let dx = pattern_cost(&m, &pat, &map, CostModel::DxBsp);
        let bsp = pattern_cost(&m, &pat, &map, CostModel::Bsp);
        prop_assert!(dx >= bsp);
    }

    /// Superstep cost is monotone in every argument.
    #[test]
    fn superstep_cost_monotone(m in arb_machine(), h in 0usize..10_000, r in 0usize..10_000) {
        prop_assert!(superstep_cost(&m, h + 1, r) >= superstep_cost(&m, h, r));
        prop_assert!(superstep_cost(&m, h, r + 1) >= superstep_cost(&m, h, r));
        let slower = m.with_delay(m.d + 1);
        prop_assert!(superstep_cost(&slower, h, r) >= superstep_cost(&m, h, r));
    }

    /// Superstep cost equals one of its three terms and bounds each.
    #[test]
    fn superstep_cost_is_tight_max(m in arb_machine(), h in 0usize..10_000, r in 0usize..10_000) {
        let t = superstep_cost(&m, h, r);
        prop_assert!(t >= m.l);
        prop_assert!(t >= m.g * h as u64);
        prop_assert!(t >= m.d * r as u64);
        prop_assert!(t == m.l || t == m.g * h as u64 || t == m.d * r as u64);
    }

    /// The scatter prediction is monotone in n and k and bounded below
    /// by the plain-BSP prediction.
    #[test]
    fn scatter_prediction_monotone(m in arb_machine(), n in 1usize..100_000, k in 1usize..1000) {
        let k = k.min(n);
        let base = predict_scatter(&m, ScatterShape::new(n, k));
        prop_assert!(predict_scatter(&m, ScatterShape::new(n + 1, k)) >= base);
        if k < n {
            prop_assert!(predict_scatter(&m, ScatterShape::new(n, k + 1)) >= base);
        }
        prop_assert!(base >= predict_scatter_bsp(&m, ScatterShape::new(n, k)));
    }

    /// More banks never hurt the prediction (the expansion result is a
    /// weak inequality in the model; strictness shows up in experiments).
    #[test]
    fn expansion_never_hurts_prediction(m in arb_machine(), n in 1usize..100_000, k in 1usize..1000) {
        let k = k.min(n);
        let wide = m.with_expansion(m.x * 2);
        prop_assert!(
            predict_scatter(&wide, ScatterShape::new(n, k))
                <= predict_scatter(&m, ScatterShape::new(n, k))
        );
    }

    /// Pattern cost under the exact accounting is bounded below by the
    /// closed-form prediction's bank-contention term (location
    /// contention forces at least d·k at some bank).
    #[test]
    fn pattern_cost_at_least_location_term(m in arb_machine(), pat in arb_pattern()) {
        prop_assume!(!pat.is_empty());
        let map = Interleaved::new(m.banks());
        let k = pat.contention_profile().max_location_contention;
        let cost = pattern_cost(&m, &pat, &map, CostModel::DxBsp);
        prop_assert!(cost >= m.d * k as u64);
    }

    /// Bank loads under any interleaving partition the request count.
    #[test]
    fn bank_loads_partition(pat in arb_pattern(), banks in 1usize..256) {
        let map = Interleaved::new(banks);
        let loads = pat.bank_loads(&map);
        prop_assert_eq!(loads.iter().sum::<usize>(), pat.len());
        // Pigeonhole: the max load is at least the average.
        if !pat.is_empty() {
            let max = *loads.iter().max().unwrap();
            prop_assert!(max * banks >= pat.len());
        }
    }

    /// BSP superstep cost is independent of d and x.
    #[test]
    fn bsp_ignores_d_and_x(m in arb_machine(), h in 0usize..10_000) {
        let other = m.with_delay(m.d + 17).with_expansion(m.x + 3);
        prop_assert_eq!(bsp_superstep_cost(&m, h), bsp_superstep_cost(&other, h));
    }

    /// The strength-reduced `Interleaved` paths (power-of-two bitmask
    /// and Lemire fastmod) agree with plain `%` on random addresses for
    /// any bank count in the supported sweep range, per-address and
    /// through the bulk `fill_banks` entry point alike.
    #[test]
    fn interleaved_fast_paths_agree_with_modulo(
        banks in 1usize..=4096,
        addrs in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let map = Interleaved::new(banks);
        let mut out = Vec::new();
        map.fill_banks(&addrs, &mut out);
        prop_assert_eq!(out.len(), addrs.len());
        for (&a, &b) in addrs.iter().zip(&out) {
            let expect = (a % banks as u64) as usize;
            prop_assert_eq!(map.bank_of(a), expect, "bank_of({}) with banks={}", a, banks);
            prop_assert_eq!(b as usize, expect, "fill_banks({}) with banks={}", a, banks);
        }
    }
}

/// Exhaustive companion to the property above: every bank count
/// 1..=4096 is checked against `%` on a fixed set of adversarial
/// addresses (the property test samples bank counts; this nails down
/// the whole range, in particular every power of two and its
/// neighbours).
#[test]
fn interleaved_agrees_with_modulo_for_every_bank_count() {
    let addrs =
        [0u64, 1, 63, 64, 4095, 4096, 4097, u32::MAX as u64, u64::MAX - 1, u64::MAX, !0 >> 1];
    let mut out = Vec::new();
    for banks in 1usize..=4096 {
        let map = Interleaved::new(banks);
        map.fill_banks(&addrs, &mut out);
        for (&a, &b) in addrs.iter().zip(&out) {
            let expect = (a % banks as u64) as usize;
            assert_eq!(map.bank_of(a), expect, "banks={banks} addr={a}");
            assert_eq!(b as usize, expect, "banks={banks} addr={a}");
        }
    }
}
