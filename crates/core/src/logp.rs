//! The (d,x)-LogP: the paper's extension recipe applied to LogP.
//!
//! §2: "Although we have chosen the bsp model to extend it should be
//! straightforward to extend other related models, such as the logp
//! \[CKP+93\] or dmm \[MV84\] models, with the d and x parameters. To
//! extend the logp it is assumed that the banks are separate modules
//! from the processors." This module carries that out.
//!
//! LogP charges point-to-point messages with latency `L`, per-message
//! processor overhead `o`, and gap `g` (inverse per-processor message
//! bandwidth), on `P` processors. The (d,x) extension adds the memory
//! side: each of the `x·P` banks can service one request every `d`
//! cycles. A request's end-to-end time is `o + L + service + L + o`;
//! a *sequence* of requests overlaps those legs, constrained by the
//! sending gap `g` per processor and `d` per bank — so a burst of `m`
//! requests into one bank costs `2o + 2L + d·m` once `d ≥ g`, the
//! LogP-flavored version of the `d·k` term.

use serde::{Deserialize, Serialize};

use crate::bankmap::BankMap;
use crate::pattern::AccessPattern;

/// Parameters of a (d,x)-LogP machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogPParams {
    /// Message latency.
    pub l: u64,
    /// Per-message processor overhead (send and receive each pay `o`).
    pub o: u64,
    /// Gap: minimum interval between messages from one processor.
    pub g: u64,
    /// Processor count.
    pub p: usize,
    /// Bank delay: minimum interval between services at one bank.
    pub d: u64,
    /// Expansion factor: banks per processor.
    pub x: usize,
}

impl LogPParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if `p`, `g`, `d` or `x` is zero.
    #[must_use]
    pub fn new(l: u64, o: u64, g: u64, p: usize, d: u64, x: usize) -> Self {
        assert!(p >= 1, "need at least one processor");
        assert!(g >= 1, "gap must be positive");
        assert!(d >= 1, "bank delay must be positive");
        assert!(x >= 1, "need at least one bank per processor");
        Self { l, o, g, p, d, x }
    }

    /// Total bank count `x·P`.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.x * self.p
    }

    /// Classic LogP cost of one request–reply round trip:
    /// `2o + 2L + service` with `service = d` (an uncontended bank).
    #[must_use]
    pub fn round_trip(&self) -> u64 {
        2 * self.o + 2 * self.l + self.d
    }

    /// Time for each processor to pipeline `m` requests to *distinct*
    /// banks: the send side is gap-bound, the tail pays one transit.
    /// (`(m−1)·max(g, o)` send slots + the last message's `o+L+d+L+o`.)
    #[must_use]
    pub fn pipelined_requests(&self, m: usize) -> u64 {
        if m == 0 {
            return 0;
        }
        (m as u64 - 1) * self.g.max(self.o) + self.round_trip()
    }

    /// Time for `m` requests aimed at a *single* bank, regardless of
    /// which processors send them: the bank serializes at `d`.
    #[must_use]
    pub fn hot_bank_requests(&self, m: usize) -> u64 {
        if m == 0 {
            return 0;
        }
        2 * self.o + 2 * self.l + self.d * m as u64
    }

    /// The (d,x)-LogP charge for a bulk access pattern: the same
    /// `max(bandwidth, bank)` structure as the (d,x)-BSP with LogP's
    /// overhead/latency bookends:
    ///
    /// ```text
    /// 2o + 2L + max( max(g,o)·h,  d·R )
    /// ```
    ///
    /// where `h` is the max per-processor request count and `R` the max
    /// bank load under `map`.
    #[must_use]
    pub fn pattern_cost<M: BankMap>(&self, pat: &AccessPattern, map: &M) -> u64 {
        if pat.is_empty() {
            return 0;
        }
        let h = pat.contention_profile().max_processor_load as u64;
        let r = pat.max_bank_load(map) as u64;
        2 * self.o + 2 * self.l + (self.g.max(self.o) * h).max(self.d * r)
    }

    /// Classic LogP charge of the same pattern (no banks: only the
    /// send-side gap), for the misprediction comparison.
    #[must_use]
    pub fn pattern_cost_classic(&self, pat: &AccessPattern) -> u64 {
        if pat.is_empty() {
            return 0;
        }
        let h = pat.contention_profile().max_processor_load as u64;
        2 * self.o + 2 * self.l + self.g.max(self.o) * h
    }

    /// The equivalent (d,x)-BSP parameters (LogP's `g` maps to the BSP
    /// gap; `2o + 2L` folds into the BSP's per-superstep `L`).
    #[must_use]
    pub fn as_bsp(&self) -> crate::params::MachineParams {
        crate::params::MachineParams::new(
            self.p,
            self.g.max(self.o),
            2 * self.o + 2 * self.l,
            self.d,
            self.x,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bankmap::Interleaved;

    fn m() -> LogPParams {
        LogPParams::new(10, 2, 1, 8, 14, 32)
    }

    #[test]
    fn round_trip_is_overheads_plus_service() {
        assert_eq!(m().round_trip(), 2 * 2 + 2 * 10 + 14);
    }

    #[test]
    fn pipelined_requests_are_gap_bound() {
        let p = m();
        assert_eq!(p.pipelined_requests(0), 0);
        assert_eq!(p.pipelined_requests(1), p.round_trip());
        // 100 requests: 99 gaps of max(g,o)=2 plus one round trip.
        assert_eq!(p.pipelined_requests(100), 99 * 2 + p.round_trip());
    }

    #[test]
    fn hot_bank_serializes_at_d() {
        let p = m();
        assert_eq!(p.hot_bank_requests(100), 2 * 2 + 2 * 10 + 14 * 100);
        assert!(p.hot_bank_requests(100) > p.pipelined_requests(100));
    }

    #[test]
    fn pattern_cost_mirrors_dxbsp_structure() {
        let p = m();
        let map = Interleaved::new(p.banks());
        // Hot pattern: 64 writes to one address.
        let hot = AccessPattern::scatter(p.p, &vec![0u64; 64]);
        assert_eq!(p.pattern_cost(&hot, &map), 2 * 2 + 2 * 10 + 14 * 64);
        // Classic LogP only sees h = 8 per processor.
        assert_eq!(p.pattern_cost_classic(&hot), 2 * 2 + 2 * 10 + 2 * 8);
        // Spread pattern: bandwidth-bound.
        let addrs: Vec<u64> = (0..64).collect();
        let spread = AccessPattern::scatter(p.p, &addrs);
        assert_eq!(p.pattern_cost(&spread, &map), 2 * 2 + 2 * 10 + 2 * 8);
    }

    #[test]
    fn empty_pattern_costs_nothing() {
        let p = m();
        let map = Interleaved::new(p.banks());
        assert_eq!(p.pattern_cost(&AccessPattern::new(p.p), &map), 0);
        assert_eq!(p.pattern_cost_classic(&AccessPattern::new(p.p)), 0);
    }

    #[test]
    fn bsp_mapping_preserves_the_bank_terms() {
        let p = m();
        let bsp = p.as_bsp();
        assert_eq!(bsp.p, 8);
        assert_eq!(bsp.d, 14);
        assert_eq!(bsp.x, 32);
        assert_eq!(bsp.g, 2); // max(g, o)
        assert_eq!(bsp.l, 24); // 2o + 2L
                               // The two models agree on the hot-bank asymptotics.
        let map = Interleaved::new(p.banks());
        let hot = AccessPattern::scatter(p.p, &vec![0u64; 1000]);
        let logp = p.pattern_cost(&hot, &map);
        let bsp_cost = crate::cost::pattern_cost(&bsp, &hot, &map, crate::cost::CostModel::DxBsp);
        assert!(logp.abs_diff(bsp_cost) <= bsp.l, "{logp} vs {bsp_cost}");
    }

    #[test]
    #[should_panic(expected = "gap must be positive")]
    fn zero_gap_rejected() {
        let _ = LogPParams::new(1, 1, 0, 1, 1, 1);
    }
}
