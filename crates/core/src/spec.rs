//! `SpecValue` — the self-describing value model behind scenario files.
//!
//! Scenario files are written in a TOML subset (the natural format for
//! hand-edited experiment specs) or JSON (the natural format for
//! machine-generated ones). Both decode into the same [`SpecValue`]
//! tree, and [`crate::scenario::Scenario`] converts to/from that tree,
//! so the two formats are guaranteed to stay in sync.
//!
//! The TOML subset covers what scenario files need and nothing more:
//! `key = value` pairs, `[section]` and `[section.sub]` headers,
//! strings, integers, floats, booleans, single-line arrays and inline
//! tables, and `#` comments. Tables preserve insertion order, which
//! matters: sweep-axis order is semantic (it fixes the run-matrix
//! iteration order and the per-point RNG salt).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::error::DxError;

/// A dynamically-typed value in a scenario file.
///
/// Tables are ordered association lists rather than maps: scenario
/// semantics (sweep-axis order) and faithful round-tripping both
/// require insertion order to survive decode → encode.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecValue {
    /// `true` / `false`.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered list of values.
    List(Vec<SpecValue>),
    /// An ordered key → value table.
    Table(Vec<(String, SpecValue)>),
}

impl SpecValue {
    /// Empty table.
    #[must_use]
    pub fn table() -> Self {
        SpecValue::Table(Vec::new())
    }

    /// Look up `key` in a table value. Returns `None` for non-tables.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&SpecValue> {
        match self {
            SpecValue::Table(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace `key` in a table value.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a table (internal misuse, not input).
    pub fn set(&mut self, key: impl Into<String>, value: SpecValue) {
        let SpecValue::Table(entries) = self else {
            panic!("SpecValue::set on a non-table");
        };
        let key = key.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            entries.push((key, value));
        }
    }

    /// The value as `i64`, if it is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            SpecValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`: floats directly, integers widened.
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            SpecValue::Float(v) => Some(*v),
            #[allow(clippy::cast_precision_loss)]
            SpecValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            SpecValue::Str(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            SpecValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a list slice, if it is a list.
    #[must_use]
    pub fn as_list(&self) -> Option<&[SpecValue]> {
        match self {
            SpecValue::List(v) => Some(v),
            _ => None,
        }
    }

    /// The value as table entries, if it is a table.
    #[must_use]
    pub fn as_table(&self) -> Option<&[(String, SpecValue)]> {
        match self {
            SpecValue::Table(v) => Some(v),
            _ => None,
        }
    }

    /// One-word description of the value's type, for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            SpecValue::Bool(_) => "bool",
            SpecValue::Int(_) => "integer",
            SpecValue::Float(_) => "float",
            SpecValue::Str(_) => "string",
            SpecValue::List(_) => "list",
            SpecValue::Table(_) => "table",
        }
    }

    // ------------------------------------------------------------------
    // TOML
    // ------------------------------------------------------------------

    /// Decode a TOML document into a table value.
    ///
    /// # Errors
    ///
    /// Returns [`DxError::Parse`] with a 1-based line number for any
    /// syntax error, duplicate key, or construct outside the subset.
    pub fn from_toml(text: &str) -> Result<SpecValue, DxError> {
        let mut root = SpecValue::table();
        // Path of the table the current `key = value` lines land in.
        let mut section: Vec<String> = Vec::new();
        let mut seen_sections: BTreeSet<String> = BTreeSet::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let inner = rest
                    .strip_suffix(']')
                    .ok_or_else(|| DxError::parse(lineno, "unterminated `[section]` header"))?
                    .trim();
                if inner.is_empty() {
                    return Err(DxError::parse(lineno, "empty `[section]` header"));
                }
                section = inner.split('.').map(|s| s.trim().to_string()).collect();
                for part in &section {
                    check_bare_key(part, lineno)?;
                }
                if !seen_sections.insert(section.join(".")) {
                    return Err(DxError::parse(lineno, format!("duplicate section `[{inner}]`")));
                }
                table_at_path(&mut root, &section, lineno)?;
                continue;
            }
            let eq =
                line.find('=').ok_or_else(|| DxError::parse(lineno, "expected `key = value`"))?;
            let key = line[..eq].trim();
            check_bare_key(key, lineno)?;
            let mut cursor = Cursor::new(line[eq + 1..].trim(), lineno);
            let value = cursor.parse_toml_value()?;
            cursor.expect_end()?;
            let target = table_at_path(&mut root, &section, lineno)?;
            let SpecValue::Table(entries) = target else { unreachable!() };
            if entries.iter().any(|(k, _)| k == key) {
                return Err(DxError::parse(lineno, format!("duplicate key `{key}`")));
            }
            entries.push((key.to_string(), value));
        }
        Ok(root)
    }

    /// Encode a table value as a TOML document.
    ///
    /// Scalar and list entries are emitted first, then each table entry
    /// becomes a `[section]`. Nesting deeper than one table level below
    /// a section is emitted as dotted headers (`[a.b]`).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a table (only tables are documents).
    #[must_use]
    pub fn to_toml(&self) -> String {
        let SpecValue::Table(_) = self else {
            panic!("to_toml on a non-table SpecValue");
        };
        let mut out = String::new();
        emit_toml_table(&mut out, self, &mut Vec::new());
        out
    }

    // ------------------------------------------------------------------
    // JSON
    // ------------------------------------------------------------------

    /// Decode a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`DxError::Parse`] for any syntax error. `null` is
    /// outside the value model and is rejected.
    pub fn from_json(text: &str) -> Result<SpecValue, DxError> {
        let mut cursor = Cursor::new(text, 1);
        let value = cursor.parse_json_value()?;
        cursor.expect_end()?;
        Ok(value)
    }

    /// Encode as a single-line JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        emit_json(&mut out, self);
        out
    }
}

/// Strip a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            _ => {}
        }
        escaped = false;
    }
    line
}

fn check_bare_key(key: &str, lineno: usize) -> Result<(), DxError> {
    if key.is_empty() {
        return Err(DxError::parse(lineno, "empty key"));
    }
    if !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
        return Err(DxError::parse(lineno, format!("invalid key `{key}`")));
    }
    Ok(())
}

/// Walk (creating as needed) to the table at `path` under `root`.
fn table_at_path<'a>(
    root: &'a mut SpecValue,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut SpecValue, DxError> {
    let mut node = root;
    for part in path {
        let SpecValue::Table(entries) = node else {
            return Err(DxError::parse(lineno, format!("`{part}` is not a table")));
        };
        let pos = match entries.iter().position(|(k, _)| k == part) {
            Some(pos) => pos,
            None => {
                entries.push((part.clone(), SpecValue::table()));
                entries.len() - 1
            }
        };
        node = &mut entries[pos].1;
        if !matches!(node, SpecValue::Table(_)) {
            return Err(DxError::parse(lineno, format!("`{part}` is not a table")));
        }
    }
    Ok(node)
}

fn emit_toml_table(out: &mut String, table: &SpecValue, path: &mut Vec<String>) {
    let SpecValue::Table(entries) = table else { unreachable!() };
    let mut subtables = Vec::new();
    for (key, value) in entries {
        if matches!(value, SpecValue::Table(_)) {
            subtables.push((key, value));
        } else {
            let _ = writeln!(out, "{key} = {}", toml_value(value));
        }
    }
    for (key, value) in subtables {
        path.push(key.clone());
        if !out.is_empty() {
            out.push('\n');
        }
        let _ = writeln!(out, "[{}]", path.join("."));
        emit_toml_table(out, value, path);
        path.pop();
    }
}

fn toml_value(value: &SpecValue) -> String {
    match value {
        SpecValue::Bool(b) => b.to_string(),
        SpecValue::Int(i) => i.to_string(),
        SpecValue::Float(f) => float_repr(*f),
        SpecValue::Str(s) => quoted(s),
        SpecValue::List(items) => {
            let inner: Vec<String> = items.iter().map(toml_value).collect();
            format!("[{}]", inner.join(", "))
        }
        SpecValue::Table(entries) => {
            // Inline table — only reachable for tables nested inside lists.
            let inner: Vec<String> =
                entries.iter().map(|(k, v)| format!("{k} = {}", toml_value(v))).collect();
            format!("{{ {} }}", inner.join(", "))
        }
    }
}

/// Shortest round-trip float syntax that still reads back as a float.
fn float_repr(f: f64) -> String {
    let s = format!("{f:?}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn emit_json(out: &mut String, value: &SpecValue) {
    match value {
        SpecValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        SpecValue::Int(i) => {
            let _ = write!(out, "{i}");
        }
        SpecValue::Float(f) => out.push_str(&float_repr(*f)),
        SpecValue::Str(s) => out.push_str(&quoted(s)),
        SpecValue::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_json(out, item);
            }
            out.push(']');
        }
        SpecValue::Table(entries) => {
            out.push('{');
            for (i, (key, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&quoted(key));
                out.push(':');
                emit_json(out, v);
            }
            out.push('}');
        }
    }
}

/// A character cursor shared by the TOML value parser (single line) and
/// the JSON parser (whole document). Tracks the 1-based line for
/// diagnostics.
struct Cursor<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str, line: usize) -> Self {
        Cursor { text, pos: 0, line }
    }

    fn err(&self, msg: impl Into<String>) -> DxError {
        DxError::parse(self.line, msg)
    }

    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), DxError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{c}`, found {}",
                self.peek().map_or("end of input".to_string(), |f| format!("`{f}`"))
            )))
        }
    }

    fn expect_end(&mut self) -> Result<(), DxError> {
        self.skip_ws();
        match self.peek() {
            None => Ok(()),
            Some(c) => Err(self.err(format!("trailing input starting at `{c}`"))),
        }
    }

    fn parse_string(&mut self) -> Result<String, DxError> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.err("bad \\u code point"))?,
                        );
                    }
                    _ => return Err(self.err("bad escape in string")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_number(&mut self) -> Result<SpecValue, DxError> {
        let start = self.pos;
        if self.peek() == Some('-') || self.peek() == Some('+') {
            self.bump();
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' | '_' => {
                    self.bump();
                }
                '.' | 'e' | 'E' => {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some('-' | '+')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let raw: String = self.text[start..self.pos].chars().filter(|&c| c != '_').collect();
        if is_float {
            raw.parse::<f64>()
                .map(SpecValue::Float)
                .map_err(|_| self.err(format!("bad float `{raw}`")))
        } else {
            raw.parse::<i64>()
                .map(SpecValue::Int)
                .map_err(|_| self.err(format!("bad integer `{raw}`")))
        }
    }

    fn parse_keyword(&mut self) -> Result<SpecValue, DxError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
            self.bump();
        }
        match &self.text[start..self.pos] {
            "true" => Ok(SpecValue::Bool(true)),
            "false" => Ok(SpecValue::Bool(false)),
            "null" => Err(self.err("`null` is not a scenario value")),
            other => Err(self.err(format!("unexpected token `{other}`"))),
        }
    }

    // TOML value grammar (right-hand side of `key = …`).
    fn parse_toml_value(&mut self) -> Result<SpecValue, DxError> {
        self.skip_ws();
        match self.peek() {
            Some('"') => Ok(SpecValue::Str(self.parse_string()?)),
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_ws();
                    if self.eat(']') {
                        return Ok(SpecValue::List(items));
                    }
                    items.push(self.parse_toml_value()?);
                    self.skip_ws();
                    if !self.eat(',') {
                        self.expect(']')?;
                        return Ok(SpecValue::List(items));
                    }
                }
            }
            Some('{') => {
                self.bump();
                let mut entries: Vec<(String, SpecValue)> = Vec::new();
                loop {
                    self.skip_ws();
                    if self.eat('}') {
                        return Ok(SpecValue::Table(entries));
                    }
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                    {
                        self.bump();
                    }
                    let key = self.text[start..self.pos].to_string();
                    check_bare_key(&key, self.line)?;
                    if entries.iter().any(|(k, _)| *k == key) {
                        return Err(self.err(format!("duplicate key `{key}`")));
                    }
                    self.skip_ws();
                    self.expect('=')?;
                    let value = self.parse_toml_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    if !self.eat(',') {
                        self.expect('}')?;
                        return Ok(SpecValue::Table(entries));
                    }
                }
            }
            Some(c) if c == '-' || c == '+' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => self.parse_keyword(),
            None => Err(self.err("missing value")),
        }
    }

    // JSON value grammar.
    fn parse_json_value(&mut self) -> Result<SpecValue, DxError> {
        self.skip_ws();
        match self.peek() {
            Some('"') => Ok(SpecValue::Str(self.parse_string()?)),
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(']') {
                    return Ok(SpecValue::List(items));
                }
                loop {
                    items.push(self.parse_json_value()?);
                    self.skip_ws();
                    if self.eat(']') {
                        return Ok(SpecValue::List(items));
                    }
                    self.expect(',')?;
                }
            }
            Some('{') => {
                self.bump();
                let mut entries: Vec<(String, SpecValue)> = Vec::new();
                self.skip_ws();
                if self.eat('}') {
                    return Ok(SpecValue::Table(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    if entries.iter().any(|(k, _)| *k == key) {
                        return Err(self.err(format!("duplicate key `{key}`")));
                    }
                    self.skip_ws();
                    self.expect(':')?;
                    let value = self.parse_json_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    if self.eat('}') {
                        return Ok(SpecValue::Table(entries));
                    }
                    self.expect(',')?;
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => self.parse_keyword(),
            None => Err(self.err("empty document")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str, value: SpecValue) -> (String, SpecValue) {
        (key.to_string(), value)
    }

    #[test]
    fn toml_scalars_round_trip() {
        let doc = "name = \"exp1\"\nseed = 1995\nscale = 0.5\nquick = true\n";
        let v = SpecValue::from_toml(doc).unwrap();
        assert_eq!(v.get("name").and_then(SpecValue::as_str), Some("exp1"));
        assert_eq!(v.get("seed").and_then(SpecValue::as_int), Some(1995));
        assert_eq!(v.get("scale").and_then(SpecValue::as_float), Some(0.5));
        assert_eq!(v.get("quick").and_then(SpecValue::as_bool), Some(true));
        assert_eq!(SpecValue::from_toml(&v.to_toml()).unwrap(), v);
    }

    #[test]
    fn toml_sections_nest_and_preserve_order() {
        let doc = "top = 1\n[b]\nz = 1\na = 2\n[a.inner]\nk = [1, 2, 3]\n";
        let v = SpecValue::from_toml(doc).unwrap();
        let b = v.get("b").unwrap();
        assert_eq!(
            b.as_table().unwrap(),
            &[entry("z", SpecValue::Int(1)), entry("a", SpecValue::Int(2))]
        );
        let k = v.get("a").unwrap().get("inner").unwrap().get("k").unwrap();
        assert_eq!(
            k.as_list().unwrap(),
            &[SpecValue::Int(1), SpecValue::Int(2), SpecValue::Int(3)]
        );
        // Round-trip preserves structure and order.
        assert_eq!(SpecValue::from_toml(&v.to_toml()).unwrap(), v);
    }

    #[test]
    fn toml_comments_and_strings_with_hashes() {
        let doc = "a = 1 # trailing\n# full line\nb = \"has # inside\"\n";
        let v = SpecValue::from_toml(doc).unwrap();
        assert_eq!(v.get("a").and_then(SpecValue::as_int), Some(1));
        assert_eq!(v.get("b").and_then(SpecValue::as_str), Some("has # inside"));
    }

    #[test]
    fn toml_mixed_list_and_inline_table() {
        let doc = "axis = [1, \"auto\", 2.5]\ncfg = { lines = 8, hit = 1 }\n";
        let v = SpecValue::from_toml(doc).unwrap();
        assert_eq!(
            v.get("axis").unwrap().as_list().unwrap(),
            &[SpecValue::Int(1), SpecValue::Str("auto".into()), SpecValue::Float(2.5)]
        );
        assert_eq!(v.get("cfg").unwrap().get("lines").and_then(SpecValue::as_int), Some(8));
        assert_eq!(SpecValue::from_toml(&v.to_toml()).unwrap(), v);
    }

    #[test]
    fn toml_errors_carry_line_numbers() {
        let e = SpecValue::from_toml("ok = 1\nbroken\n").unwrap_err();
        assert_eq!(e.to_string(), "parse error at line 2: expected `key = value`");
        let e = SpecValue::from_toml("a = 1\na = 2\n").unwrap_err();
        assert!(e.to_string().contains("duplicate key `a`"), "{e}");
        let e = SpecValue::from_toml("[s]\nx = 1\n[s]\n").unwrap_err();
        assert!(e.to_string().contains("duplicate section"), "{e}");
        let e = SpecValue::from_toml("a = [1, 2\n").unwrap_err();
        assert!(e.is_parse(), "{e}");
    }

    #[test]
    fn toml_rejects_bad_keys_and_values() {
        assert!(SpecValue::from_toml("bad key = 1\n").is_err());
        assert!(SpecValue::from_toml("a = nottrue\n").is_err());
        assert!(SpecValue::from_toml("a = 1 2\n").is_err());
        assert!(SpecValue::from_toml("a = \"unterminated\n").is_err());
    }

    #[test]
    fn json_round_trips() {
        let doc = r#"{"name":"exp1","seed":1995,"axes":[1,2.5,"j90",true],"m":{"p":8}}"#;
        let v = SpecValue::from_json(doc).unwrap();
        assert_eq!(v.get("name").and_then(SpecValue::as_str), Some("exp1"));
        assert_eq!(v.get("m").unwrap().get("p").and_then(SpecValue::as_int), Some(8));
        assert_eq!(v.to_json(), doc);
        assert_eq!(SpecValue::from_json(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn json_escapes_and_whitespace() {
        let v = SpecValue::from_json(" { \"a\" : \"x\\n\\\"y\\u0041\" , \"b\" : [ ] } ").unwrap();
        assert_eq!(v.get("a").and_then(SpecValue::as_str), Some("x\n\"yA"));
        assert_eq!(v.get("b").unwrap().as_list().unwrap().len(), 0);
        assert_eq!(SpecValue::from_json(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn json_rejects_null_and_trailing_garbage() {
        assert!(SpecValue::from_json("null").is_err());
        assert!(SpecValue::from_json("{\"a\":1} extra").is_err());
        assert!(SpecValue::from_json("{\"a\":}").is_err());
        assert!(SpecValue::from_json("").is_err());
    }

    #[test]
    fn toml_and_json_agree_on_the_same_tree() {
        let toml = "seed = 7\nks = [1, 64, 4096]\n\n[machine]\npreset = \"c90\"\n";
        let via_toml = SpecValue::from_toml(toml).unwrap();
        let via_json = SpecValue::from_json(&via_toml.to_json()).unwrap();
        assert_eq!(via_toml, via_json);
        assert_eq!(SpecValue::from_toml(&via_json.to_toml()).unwrap(), via_json);
    }

    #[test]
    fn negative_and_underscored_numbers() {
        let v = SpecValue::from_toml("a = -3\nb = 1_000_000\nc = -2.5\n").unwrap();
        assert_eq!(v.get("a").and_then(SpecValue::as_int), Some(-3));
        assert_eq!(v.get("b").and_then(SpecValue::as_int), Some(1_000_000));
        assert_eq!(v.get("c").and_then(SpecValue::as_float), Some(-2.5));
    }

    #[test]
    fn float_repr_round_trips_exactly() {
        for f in [0.5, 1.0, 0.1, 1e300, -2.25, 123_456.789_f64] {
            let s = float_repr(f);
            assert_eq!(s.parse::<f64>().unwrap(), f, "{s}");
        }
    }
}
