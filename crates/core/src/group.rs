//! Reusable counting-sort scratch that groups one SoA column by
//! another: given parallel `keys`/`values` arrays (e.g. the per-request
//! processor ids and bank indices a pattern plus `fill_banks` produce),
//! build contiguous per-key segments in two O(n) passes with no
//! per-group allocation. The bank-epoch engine uses this to turn a
//! superstep's flat request stream into per-processor bank streams it
//! can walk in arrival order; the same scratch groups by bank index
//! when a per-bank view is wanted.
//!
//! The grouping is *stable*: within a segment, values keep the order
//! they had in the input stream. That property is load-bearing — under
//! a uniform network every processor issues its `j`-th request at the
//! same cycle, so stable per-processor segments walked position-major
//! reproduce the event engine's arrival order exactly.

/// Counting-sort scratch grouping `values` into contiguous segments by
/// `keys`. All buffers are retained across calls, so steady-state use
/// allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct StreamGroups {
    /// CSR offsets: segment `k` is `values[offsets[k]..offsets[k+1]]`.
    offsets: Vec<u32>,
    /// The grouped values, segment by segment, input order within each.
    values: Vec<u32>,
    /// Scatter cursors, one per group (scratch for the second pass).
    cursors: Vec<u32>,
}

impl StreamGroups {
    /// An empty scratch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Groups `values[i]` under `keys[i]` for `groups` distinct keys.
    ///
    /// Two passes: count per key, prefix-sum into offsets, then a
    /// stable scatter. Previous contents are discarded; capacity is
    /// kept.
    ///
    /// # Panics
    /// Panics if `keys` and `values` differ in length or a key is
    /// `>= groups`.
    pub fn group(&mut self, groups: usize, keys: &[u32], values: &[u32]) {
        assert_eq!(keys.len(), values.len(), "keys/values must be parallel arrays");
        self.offsets.clear();
        self.offsets.resize(groups + 1, 0);
        for &k in keys {
            self.offsets[k as usize + 1] += 1;
        }
        let mut running = 0u32;
        for off in &mut self.offsets {
            running += *off;
            *off = running;
        }
        self.cursors.clear();
        self.cursors.extend_from_slice(&self.offsets[..groups]);
        self.values.clear();
        self.values.resize(values.len(), 0);
        for (&k, &v) in keys.iter().zip(values) {
            let c = &mut self.cursors[k as usize];
            self.values[*c as usize] = v;
            *c += 1;
        }
    }

    /// Rebuilds the scratch from already-separated segments (one slice
    /// per group, in group order). Used when the caller natively holds
    /// per-group streams and only wants the flat CSR view.
    pub fn from_segments<'a, I>(&mut self, segments: I)
    where
        I: IntoIterator<Item = &'a [u32]>,
    {
        self.offsets.clear();
        self.offsets.push(0);
        self.values.clear();
        for seg in segments {
            self.values.extend_from_slice(seg);
            self.offsets.push(self.values.len() as u32);
        }
    }

    /// Number of groups.
    #[must_use]
    pub fn groups(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of grouped values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values are grouped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values of group `k`, in input order.
    #[must_use]
    pub fn segment(&self, k: usize) -> &[u32] {
        &self.values[self.offsets[k] as usize..self.offsets[k + 1] as usize]
    }

    /// The raw CSR offsets (`groups + 1` entries); segment `k` spans
    /// `values()[offsets()[k]..offsets()[k+1]]`. Exposed so hot loops
    /// can walk several segments in lockstep without re-slicing.
    #[must_use]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The flat grouped values backing the segments.
    #[must_use]
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Iterates the segments in group order.
    pub fn segments(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.groups()).map(move |k| self.segment(k))
    }

    /// The length of the longest segment.
    #[must_use]
    pub fn max_segment_len(&self) -> usize {
        self.offsets.windows(2).map(|w| (w[1] - w[0]) as usize).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_stably_by_key() {
        let mut g = StreamGroups::new();
        g.group(3, &[2, 0, 2, 1, 0, 2], &[10, 11, 12, 13, 14, 15]);
        assert_eq!(g.groups(), 3);
        assert_eq!(g.len(), 6);
        assert_eq!(g.segment(0), &[11, 14]);
        assert_eq!(g.segment(1), &[13]);
        assert_eq!(g.segment(2), &[10, 12, 15]);
        assert_eq!(g.max_segment_len(), 3);
    }

    #[test]
    fn empty_groups_are_empty_segments() {
        let mut g = StreamGroups::new();
        g.group(4, &[], &[]);
        assert!(g.is_empty());
        assert_eq!(g.groups(), 4);
        for k in 0..4 {
            assert!(g.segment(k).is_empty());
        }
        assert_eq!(g.max_segment_len(), 0);
    }

    #[test]
    fn reuse_discards_previous_contents() {
        let mut g = StreamGroups::new();
        g.group(2, &[0, 1, 0], &[1, 2, 3]);
        g.group(2, &[1, 1], &[9, 8]);
        assert_eq!(g.segment(0), &[] as &[u32]);
        assert_eq!(g.segment(1), &[9, 8]);
    }

    #[test]
    fn from_segments_round_trips() {
        let mut g = StreamGroups::new();
        g.from_segments([&[1u32, 2][..], &[][..], &[3u32][..]]);
        assert_eq!(g.groups(), 3);
        assert_eq!(g.segment(0), &[1, 2]);
        assert_eq!(g.segment(1), &[] as &[u32]);
        assert_eq!(g.segment(2), &[3]);
        let segs: Vec<&[u32]> = g.segments().collect();
        assert_eq!(segs.len(), 3);
    }
}
