//! # dxbsp-core — the (d,x)-BSP cost model
//!
//! This crate implements the "(d,x)-BSP" (a.k.a. *deluxe* BSP) model of
//! Blelloch, Gibbons, Matias and Zagha, *Accounting for Memory Bank
//! Contention and Delay in High-Bandwidth Multiprocessors* (SPAA 1995).
//!
//! The model extends Valiant's bulk-synchronous parallel (BSP) model with
//! two parameters that dominate performance on bank-interleaved,
//! high-bandwidth shared-memory machines such as the Cray C90/J90:
//!
//! * **`d` — bank delay**: the number of cycles a memory bank is busy per
//!   access (the reciprocal of a single bank's service rate).
//! * **`x` — expansion factor**: the ratio of memory banks to processors,
//!   so a `p`-processor machine has `B = x·p` banks.
//!
//! A superstep in which every processor sends or receives at most `h`
//! memory requests and every bank receives at most `R` requests costs
//!
//! ```text
//! T = max( L,  g·h,  d·R )
//! ```
//!
//! cycles, where `g` (gap) and `L` (latency/synchronization) are the
//! usual BSP parameters. The plain BSP is recovered by ignoring the
//! `d·R` term.
//!
//! The crate provides:
//!
//! * [`MachineParams`] — the five model parameters plus derived
//!   quantities (bank count, balance point, per-element throughput);
//! * [`presets`] — parameter sets for the machines in the paper's
//!   Table 1 (Cray C90, Cray J90, Tera, …);
//! * [`pattern::AccessPattern`] — a superstep's worth of memory
//!   requests, with exact contention accounting (location contention,
//!   per-processor load, per-bank load under a [`BankMap`]);
//! * [`cost`] — superstep and pattern cost evaluation under the
//!   (d,x)-BSP, the plain BSP, and the QRQW PRAM cost semantics;
//! * [`predict`] — the paper's closed-form predictions for scatter and
//!   gather operations as a function of the total request count `n` and
//!   the maximum location contention `k`.
//!
//! All times are in machine clock cycles (`u64`); all request counts are
//! exact integers. The model deliberately stays as simple as the paper's:
//! it captures bank delay, bank queueing and location contention and
//! nothing machine-specific beyond that.

pub mod advisor;
pub mod bankmap;
pub mod canon;
pub mod classify;
pub mod cost;
pub mod delay;
pub mod error;
pub mod group;
pub mod logp;
pub mod params;
pub mod pattern;
pub mod pool;
pub mod predict;
pub mod presets;
pub mod scenario;
pub mod spec;

pub use advisor::{diagnose, Binding, Diagnosis, DuplicationAdvice};
pub use bankmap::{BankMap, Interleaved};
pub use canon::{canonical_value, content_hash, hash_value, ContentHash};
pub use classify::{ChargeParams, Classifier, EngineKind, ExecMode, StepClass, StepShape, Verdict};
pub use cost::{
    bsp_superstep_cost, delayed_bank_term, pattern_breakdown, pattern_breakdown_delayed,
    pattern_cost, superstep_breakdown, superstep_cost, CostBreakdown, CostModel,
};
pub use delay::{BankDelayModel, ProcBankDistance};
pub use error::DxError;
pub use group::StreamGroups;
pub use logp::LogPParams;
pub use params::MachineParams;
pub use pattern::{AccessKind, AccessPattern, ContentionProfile, Request};
pub use pool::PatternPool;
pub use predict::{
    contention_knee, predict_scatter, predict_scatter_bsp, predict_scatter_duplicated, ScatterShape,
};
pub use scenario::{
    Axis, AxisValue, BackendSel, Coord, DelayTierSpec, MachineSpec, Scenario, Sweep, SweepPoint,
    WorkloadSpec,
};
pub use spec::SpecValue;
