//! Closed-form performance predictions for scatter/gather operations.
//!
//! The paper's experiments (§3) predict the time of an `n`-element
//! scatter with maximum location contention `k` on a `p`-processor
//! (d,x)-BSP, assuming addresses are spread over the banks (randomly or
//! because the pattern itself is spread), as
//!
//! ```text
//! T ≈ max( L,  g·⌈n/p⌉,  d·⌈n/(x·p)⌉,  d·k )
//! ```
//!
//! The four terms are: synchronization, processor/network bandwidth,
//! aggregate bank bandwidth, and the serial bottleneck at the bank
//! holding the hottest location. The plain BSP keeps only the first two
//! (with `d`, `x` absent), which is exactly why it mispredicts once
//! `d·k` grows past `g·n/p` — the discrepancy that motivated the paper.

use serde::{Deserialize, Serialize};

use crate::params::MachineParams;
use crate::pattern::AccessPattern;

/// A scatter/gather workload summary: total requests and max location
/// contention. (The prediction needs nothing else.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScatterShape {
    /// Total number of requests `n`.
    pub n: usize,
    /// Maximum location contention `k` (`1 ≤ k ≤ n` for nonempty).
    pub k: usize,
}

impl ScatterShape {
    /// Builds a shape, clamping `k` into `[min(1,n), n]`.
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        let k = k.min(n).max(usize::from(n > 0));
        Self { n, k }
    }

    /// Extracts the shape of an explicit access pattern.
    #[must_use]
    pub fn of_pattern(pat: &AccessPattern) -> Self {
        let prof = pat.contention_profile();
        Self { n: prof.total_requests, k: prof.max_location_contention }
    }
}

/// (d,x)-BSP prediction: `max(L, g·⌈n/p⌉, d·⌈n/(x·p)⌉, d·k)` cycles.
#[must_use]
pub fn predict_scatter(m: &MachineParams, shape: ScatterShape) -> u64 {
    let n = shape.n as u64;
    let per_proc = n.div_ceil(m.p as u64);
    let per_bank_even = n.div_ceil(m.banks() as u64);
    m.l.max(m.g * per_proc).max(m.d * per_bank_even).max(m.d * shape.k as u64)
}

/// Plain-BSP prediction: `max(L, g·⌈n/p⌉)` — no bank terms, which is
/// what the paper plots as the flat "BSP/LogP" line.
#[must_use]
pub fn predict_scatter_bsp(m: &MachineParams, shape: ScatterShape) -> u64 {
    let per_proc = (shape.n as u64).div_ceil(m.p as u64);
    m.l.max(m.g * per_proc)
}

/// The contention threshold `k*` above which the hot bank becomes the
/// binding resource: the smallest `k` with `d·k > max(L, g·n/p,
/// d·n/(xp))`. Predictions are flat for `k ≤ k*` and grow linearly with
/// slope `d` beyond it — the knee visible in the paper's figures.
#[must_use]
pub fn contention_knee(m: &MachineParams, n: usize) -> usize {
    let flat = predict_scatter(m, ScatterShape::new(n, 1));
    usize::try_from(flat / m.d + 1).expect("knee fits in usize")
}

/// Predicted time when a hot location of contention `k` is *duplicated*
/// into `c` copies, each copy absorbing `⌈k/c⌉` requests (paper §3,
/// Experiment 2: duplicating high-contention locations).
#[must_use]
pub fn predict_scatter_duplicated(m: &MachineParams, n: usize, k: usize, copies: usize) -> u64 {
    let copies = copies.max(1);
    predict_scatter(m, ScatterShape::new(n, k.div_ceil(copies)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j90ish() -> MachineParams {
        // p=8, g=1, L=0, d=14, x=32 — the shape used in the paper's J90
        // experiments (S = 64K elements, L negligible).
        MachineParams::new(8, 1, 0, 14, 32)
    }

    #[test]
    fn low_contention_is_processor_bound() {
        let m = j90ish();
        let n = 64 * 1024;
        // k=1: banks absorb n/(xp)=256 requests each → d·256 = 3584 <
        // g·n/p = 8192, so the processor term binds.
        assert_eq!(predict_scatter(&m, ScatterShape::new(n, 1)), 8192);
        assert_eq!(predict_scatter_bsp(&m, ScatterShape::new(n, 1)), 8192);
    }

    #[test]
    fn high_contention_grows_linearly_with_slope_d() {
        let m = j90ish();
        let n = 64 * 1024;
        let t1 = predict_scatter(&m, ScatterShape::new(n, 2048));
        let t2 = predict_scatter(&m, ScatterShape::new(n, 4096));
        assert_eq!(t1, 14 * 2048);
        assert_eq!(t2 - t1, 14 * 2048); // slope d per unit k
    }

    #[test]
    fn bsp_prediction_is_flat_in_k() {
        let m = j90ish();
        let n = 64 * 1024;
        let flat = predict_scatter_bsp(&m, ScatterShape::new(n, 1));
        for k in [1usize, 64, 1024, n] {
            assert_eq!(predict_scatter_bsp(&m, ScatterShape::new(n, k)), flat);
        }
    }

    #[test]
    fn knee_separates_flat_and_linear_regimes() {
        let m = j90ish();
        let n = 64 * 1024;
        let knee = contention_knee(&m, n);
        let flat = predict_scatter(&m, ScatterShape::new(n, 1));
        assert_eq!(predict_scatter(&m, ScatterShape::new(n, knee - 1)), flat);
        assert!(predict_scatter(&m, ScatterShape::new(n, knee + 1)) > flat);
    }

    #[test]
    fn expansion_lowers_the_even_bank_term() {
        // With x=1 and d=14 the even-bank term d·n/p dominates; raising
        // x removes it — "additional memory banks improve performance".
        let n = 64 * 1024;
        let narrow = MachineParams::new(8, 1, 0, 14, 1);
        // x = 16 puts the even-bank term (d·⌈n/(x·p)⌉ = 14·512 = 7168)
        // below the processor term (8192), so processors bind again.
        let wide = narrow.with_expansion(16);
        let t_narrow = predict_scatter(&narrow, ScatterShape::new(n, 1));
        let t_wide = predict_scatter(&wide, ScatterShape::new(n, 1));
        assert_eq!(t_narrow, 14 * 8192);
        assert_eq!(t_wide, 8192);
    }

    #[test]
    fn duplication_divides_contention() {
        let m = j90ish();
        let n = 64 * 1024;
        let k = 8192;
        let t_full = predict_scatter_duplicated(&m, n, k, 1);
        let t_half = predict_scatter_duplicated(&m, n, k, 2);
        assert_eq!(t_full, 14 * 8192);
        assert_eq!(t_half, 14 * 4096);
        // Enough copies returns to the flat regime.
        let t_many = predict_scatter_duplicated(&m, n, k, k);
        assert_eq!(t_many, predict_scatter(&m, ScatterShape::new(n, 1)));
    }

    #[test]
    fn shape_clamps_degenerate_contention() {
        assert_eq!(ScatterShape::new(10, 0).k, 1);
        assert_eq!(ScatterShape::new(10, 99).k, 10);
        assert_eq!(ScatterShape::new(0, 5).k, 0);
    }

    #[test]
    fn shape_of_pattern_matches_profile() {
        let pat = AccessPattern::scatter(4, &[1, 1, 1, 2, 3]);
        let s = ScatterShape::of_pattern(&pat);
        assert_eq!(s.n, 5);
        assert_eq!(s.k, 3);
    }
}
