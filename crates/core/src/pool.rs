//! A free list of reusable [`AccessPattern`] buffers.
//!
//! The streaming superstep pipeline executes traces as they are
//! generated, so at any instant only O(one superstep) of requests is
//! resident. What makes that *cheap* as well as small is buffer
//! recycling: every layer that fills a pattern — the algo tracer, the
//! trace-file reader, the scan-vector VM — draws its buffer from a
//! [`PatternPool`] and returns it after the engine has stepped it.
//! After warm-up the pool hands the same few buffers around forever and
//! steady-state allocation is zero.
//!
//! The pool counts how many buffers it ever had to create
//! ([`PatternPool::allocations`]); the streaming differential tests
//! assert that this count is independent of trace length.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::pattern::AccessPattern;

/// A thread-safe free list of [`AccessPattern`] buffers.
///
/// [`acquire`](PatternPool::acquire) pops a recycled buffer (reset to
/// the requested processor count, capacity intact) or allocates a fresh
/// one if the pool is dry; [`release`](PatternPool::release) pushes a
/// spent buffer back. Cloning a pool yields a fresh, empty pool —
/// buffers are working state, not data.
///
/// # Example
///
/// ```
/// use dxbsp_core::{PatternPool, Request};
///
/// let pool = PatternPool::new();
/// for _ in 0..100 {
///     let mut pat = pool.acquire(4);
///     pat.push(Request::write(0, 7));
///     pool.release(pat);
/// }
/// // One buffer served all hundred rounds.
/// assert_eq!(pool.allocations(), 1);
/// ```
#[derive(Default)]
pub struct PatternPool {
    free: Mutex<Vec<AccessPattern>>,
    allocated: AtomicUsize,
}

impl PatternPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A cleared buffer for a `procs`-processor machine: recycled if
    /// one is pooled, freshly allocated otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0`.
    #[must_use]
    pub fn acquire(&self, procs: usize) -> AccessPattern {
        let recycled = self.free.lock().expect("pattern pool poisoned").pop();
        match recycled {
            Some(mut pat) => {
                pat.reset(procs);
                pat
            }
            None => {
                self.allocated.fetch_add(1, Ordering::Relaxed);
                AccessPattern::new(procs)
            }
        }
    }

    /// Returns a spent buffer to the free list.
    pub fn release(&self, pattern: AccessPattern) {
        self.free.lock().expect("pattern pool poisoned").push(pattern);
    }

    /// How many buffers this pool has ever allocated (i.e. how often
    /// [`acquire`](PatternPool::acquire) found the free list empty).
    /// Constant across a run means zero steady-state allocation.
    #[must_use]
    pub fn allocations(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }

    /// How many buffers currently sit on the free list.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.free.lock().expect("pattern pool poisoned").len()
    }
}

impl Clone for PatternPool {
    /// Cloning yields a fresh, empty pool: pooled buffers are transient
    /// working state and the allocation counter restarts at zero.
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PatternPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatternPool")
            .field("pooled", &self.pooled())
            .field("allocations", &self.allocations())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Request;

    #[test]
    fn acquire_release_recycles_one_buffer() {
        let pool = PatternPool::new();
        for round in 0..50 {
            let mut pat = pool.acquire(8);
            assert!(pat.is_empty(), "round {round} got a dirty buffer");
            for i in 0..64u64 {
                pat.push(Request::write((i % 8) as usize, i));
            }
            pool.release(pat);
        }
        assert_eq!(pool.allocations(), 1);
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn concurrent_holders_allocate_at_most_once_each() {
        let pool = PatternPool::new();
        let a = pool.acquire(2);
        let b = pool.acquire(2);
        assert_eq!(pool.allocations(), 2);
        pool.release(a);
        pool.release(b);
        let _c = pool.acquire(4);
        let _d = pool.acquire(4);
        assert_eq!(pool.allocations(), 2, "recycled buffers must not count");
    }

    #[test]
    fn acquire_resets_processor_count() {
        let pool = PatternPool::new();
        let mut pat = pool.acquire(2);
        pat.push(Request::read(1, 5));
        pool.release(pat);
        let pat = pool.acquire(16);
        assert_eq!(pat.procs(), 16);
        assert!(pat.is_empty());
    }

    #[test]
    fn clone_is_a_fresh_pool() {
        let pool = PatternPool::new();
        pool.release(pool.acquire(2));
        let twin = pool.clone();
        assert_eq!(twin.pooled(), 0);
        assert_eq!(twin.allocations(), 0);
    }
}
