//! Memory access patterns and exact contention accounting.
//!
//! A superstep's worth of memory traffic is a multiset of
//! `(processor, address)` requests. The paper's cost accounting needs
//! three aggregates of such a pattern:
//!
//! * `h` — the maximum number of requests issued by any one processor;
//! * `k` — the maximum *location* contention (requests to one address);
//! * `R` — the maximum *bank* contention under an address→bank map
//!   (requests landing on one bank, which includes both location
//!   contention and *module-map* contention from distinct co-resident
//!   addresses).
//!
//! Patterns are stored struct-of-arrays: processor ids, addresses, and
//! a read/write bitset live in separate dense vectors, so the simulator
//! and the analytic accounting stream over exactly the fields they
//! need (the hot loops touch only `addrs`). [`Request`] remains the
//! per-element view; [`AccessPattern::requests`] yields it by value.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::bankmap::BankMap;

/// Whether a request reads or writes. The (d,x)-BSP charges both the
/// same; the distinction matters to the PRAM layer (queue-read vs.
/// queue-write semantics) and to simulator statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One memory request issued by a processor during a superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Issuing processor, `< p`.
    pub proc: usize,
    /// Word address in the shared address space.
    pub addr: u64,
    /// Read or write.
    pub kind: AccessKind,
}

impl Request {
    /// A read request.
    #[must_use]
    pub fn read(proc: usize, addr: u64) -> Self {
        Self { proc, addr, kind: AccessKind::Read }
    }

    /// A write request.
    #[must_use]
    pub fn write(proc: usize, addr: u64) -> Self {
        Self { proc, addr, kind: AccessKind::Write }
    }
}

/// A superstep's worth of memory requests, struct-of-arrays.
///
/// # Example
///
/// ```
/// use dxbsp_core::{AccessPattern, Request};
///
/// let mut pat = AccessPattern::new(2);
/// pat.push(Request::write(0, 10));
/// pat.push(Request::write(0, 11));
/// pat.push(Request::write(1, 10));
/// let prof = pat.contention_profile();
/// assert_eq!(prof.max_location_contention, 2); // addr 10 hit twice
/// assert_eq!(prof.max_processor_load, 2);      // proc 0 issued twice
/// assert_eq!(prof.total_requests, 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessPattern {
    procs: usize,
    /// Issuing processor per request, parallel to `addrs`.
    proc_ids: Vec<u32>,
    /// Word address per request.
    addrs: Vec<u64>,
    /// Bitset parallel to `addrs`: bit `i` set means request `i` writes.
    writes: Vec<u64>,
}

/// Aggregate contention statistics of an [`AccessPattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentionProfile {
    /// Total number of requests `n`.
    pub total_requests: usize,
    /// Maximum requests issued by any processor (`h`).
    pub max_processor_load: usize,
    /// Maximum requests aimed at a single address (`k`).
    pub max_location_contention: usize,
    /// Number of distinct addresses touched.
    pub distinct_addresses: usize,
}

impl AccessPattern {
    /// An empty pattern for a machine with `procs` processors.
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0`.
    #[must_use]
    pub fn new(procs: usize) -> Self {
        assert!(procs >= 1, "need at least one processor");
        Self { procs, proc_ids: Vec::new(), addrs: Vec::new(), writes: Vec::new() }
    }

    /// An empty pattern with room for `cap` requests.
    #[must_use]
    pub fn with_capacity(procs: usize, cap: usize) -> Self {
        assert!(procs >= 1, "need at least one processor");
        Self {
            procs,
            proc_ids: Vec::with_capacity(cap),
            addrs: Vec::with_capacity(cap),
            writes: Vec::with_capacity(cap.div_ceil(64)),
        }
    }

    /// Builds a scatter pattern: element `i` of `addrs` is written by
    /// processor `i mod p` (the round-robin element-to-processor
    /// assignment a vectorized scatter uses).
    #[must_use]
    pub fn scatter(procs: usize, addrs: &[u64]) -> Self {
        let mut pat = Self::with_capacity(procs, addrs.len());
        for (i, &a) in addrs.iter().enumerate() {
            pat.push_write(i % procs, a);
        }
        pat
    }

    /// Builds a gather pattern: element `i` of `addrs` is read by
    /// processor `i mod p`.
    #[must_use]
    pub fn gather(procs: usize, addrs: &[u64]) -> Self {
        let mut pat = Self::with_capacity(procs, addrs.len());
        for (i, &a) in addrs.iter().enumerate() {
            pat.push_read(i % procs, a);
        }
        pat
    }

    /// Number of processors this pattern is defined over.
    #[must_use]
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The requests by value, in issue order (per-processor order is
    /// the order of insertion filtered to that processor).
    pub fn requests(&self) -> impl ExactSizeIterator<Item = Request> + '_ {
        (0..self.addrs.len()).map(move |i| self.request_at(i))
    }

    /// The request at index `i` (issue order).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn request_at(&self, i: usize) -> Request {
        Request {
            proc: self.proc_ids[i] as usize,
            addr: self.addrs[i],
            kind: if self.is_write(i) { AccessKind::Write } else { AccessKind::Read },
        }
    }

    /// The addresses, one per request, in issue order.
    #[must_use]
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// The issuing processor ids, one per request, in issue order.
    #[must_use]
    pub fn proc_ids(&self) -> &[u32] {
        &self.proc_ids
    }

    /// Whether request `i` is a write.
    #[must_use]
    pub fn is_write(&self, i: usize) -> bool {
        debug_assert!(i < self.addrs.len());
        self.writes[i / 64] >> (i % 64) & 1 != 0
    }

    /// Whether any request in the pattern is a write.
    #[must_use]
    pub fn has_writes(&self) -> bool {
        self.writes.iter().any(|&w| w != 0)
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the pattern has no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Appends a request.
    ///
    /// # Panics
    ///
    /// Panics if `req.proc` is out of range.
    pub fn push(&mut self, req: Request) {
        self.push_kind(req.proc, req.addr, req.kind == AccessKind::Write);
    }

    /// Appends a read by `proc` from `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn push_read(&mut self, proc: usize, addr: u64) {
        self.push_kind(proc, addr, false);
    }

    /// Appends a write by `proc` to `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn push_write(&mut self, proc: usize, addr: u64) {
        self.push_kind(proc, addr, true);
    }

    /// Removes every request while keeping the allocated capacity and
    /// the processor count — the reuse hook the streaming pipeline's
    /// buffer pool ([`crate::pool::PatternPool`]) leans on.
    pub fn clear(&mut self) {
        self.proc_ids.clear();
        self.addrs.clear();
        self.writes.clear();
    }

    /// Clears the pattern and re-targets it at a `procs`-processor
    /// machine, keeping its allocations.
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0`.
    pub fn reset(&mut self, procs: usize) {
        assert!(procs >= 1, "need at least one processor");
        self.procs = procs;
        self.clear();
    }

    /// Re-targets an already-empty pattern at a `procs`-processor
    /// machine without the clear pass [`AccessPattern::reset`] pays —
    /// the hand-off hook for recycled buffers that a sink has already
    /// cleared.
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0` or the pattern still holds requests
    /// (their processor ids would silently go out of range).
    pub fn retarget(&mut self, procs: usize) {
        assert!(procs >= 1, "need at least one processor");
        assert!(self.is_empty(), "retarget requires an empty pattern");
        self.procs = procs;
    }

    /// Overwrites `self` with a copy of `other`, reusing `self`'s
    /// allocations where they suffice.
    pub fn copy_from(&mut self, other: &AccessPattern) {
        self.procs = other.procs;
        self.proc_ids.clone_from(&other.proc_ids);
        self.addrs.clone_from(&other.addrs);
        self.writes.clone_from(&other.writes);
    }

    fn push_kind(&mut self, proc: usize, addr: u64, write: bool) {
        assert!(proc < self.procs, "processor index out of range");
        let i = self.addrs.len();
        if i % 64 == 0 {
            self.writes.push(0);
        }
        self.writes[i / 64] |= u64::from(write) << (i % 64);
        self.proc_ids.push(proc as u32);
        self.addrs.push(addr);
    }

    /// Exact contention statistics (one pass, hash-map based).
    #[must_use]
    pub fn contention_profile(&self) -> ContentionProfile {
        let mut per_proc = vec![0usize; self.procs];
        let mut per_addr: HashMap<u64, usize> = HashMap::new();
        for (&p, &a) in self.proc_ids.iter().zip(&self.addrs) {
            per_proc[p as usize] += 1;
            *per_addr.entry(a).or_insert(0) += 1;
        }
        ContentionProfile {
            total_requests: self.addrs.len(),
            max_processor_load: per_proc.iter().copied().max().unwrap_or(0),
            max_location_contention: per_addr.values().copied().max().unwrap_or(0),
            distinct_addresses: per_addr.len(),
        }
    }

    /// Requests per bank under `map`. Index `b` of the result is the
    /// number of requests that land on bank `b`.
    #[must_use]
    pub fn bank_loads<M: BankMap>(&self, map: &M) -> Vec<usize> {
        let mut loads = vec![0usize; map.num_banks()];
        for &a in &self.addrs {
            loads[map.bank_of(a)] += 1;
        }
        loads
    }

    /// Maximum bank load `R` under `map` (the `d·R` term's `R`).
    #[must_use]
    pub fn max_bank_load<M: BankMap>(&self, map: &M) -> usize {
        self.bank_loads(map).into_iter().max().unwrap_or(0)
    }

    /// Module-map contention under `map`: the maximum, over banks, of
    /// the number of *distinct addresses* co-resident on that bank among
    /// the pattern's requests. A value of 1 everywhere means bank
    /// contention is purely location contention.
    #[must_use]
    pub fn module_map_contention<M: BankMap>(&self, map: &M) -> usize {
        let mut distinct: Vec<HashMap<u64, ()>> = vec![HashMap::new(); map.num_banks()];
        for &a in &self.addrs {
            distinct[map.bank_of(a)].insert(a, ());
        }
        distinct.iter().map(HashMap::len).max().unwrap_or(0)
    }

    /// Histogram of location contention: entry `c` is how many distinct
    /// addresses receive exactly `c` requests (entry 0 unused).
    #[must_use]
    pub fn contention_histogram(&self) -> Vec<usize> {
        let mut per_addr: HashMap<u64, usize> = HashMap::new();
        for &a in &self.addrs {
            *per_addr.entry(a).or_insert(0) += 1;
        }
        let max = per_addr.values().copied().max().unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for &c in per_addr.values() {
            hist[c] += 1;
        }
        hist
    }

    /// Splits the pattern into per-processor request streams (used by
    /// the reference simulator to feed processor issue pipelines).
    #[must_use]
    pub fn per_processor(&self) -> Vec<Vec<Request>> {
        let mut streams = vec![Vec::new(); self.procs];
        for r in self.requests() {
            streams[r.proc].push(r);
        }
        streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bankmap::Interleaved;

    fn hotspot_pattern() -> AccessPattern {
        // 4 procs; addr 100 hit 5 times; 7 other distinct addrs.
        let mut pat = AccessPattern::new(4);
        for i in 0..5 {
            pat.push(Request::write(i % 4, 100));
        }
        for i in 0..7 {
            pat.push(Request::write(i % 4, 200 + i as u64));
        }
        pat
    }

    #[test]
    fn contention_profile_counts_exactly() {
        let prof = hotspot_pattern().contention_profile();
        assert_eq!(prof.total_requests, 12);
        assert_eq!(prof.max_location_contention, 5);
        assert_eq!(prof.distinct_addresses, 8);
        // proc 0 gets requests i=0,4 from the hot loop and i=0,4 from
        // the singleton loop: 4 in total.
        assert_eq!(prof.max_processor_load, 4);
    }

    #[test]
    fn empty_pattern_profile_is_zero() {
        let prof = AccessPattern::new(2).contention_profile();
        assert_eq!(prof.total_requests, 0);
        assert_eq!(prof.max_location_contention, 0);
        assert_eq!(prof.max_processor_load, 0);
        assert_eq!(prof.distinct_addresses, 0);
    }

    #[test]
    fn bank_loads_sum_to_total() {
        let pat = hotspot_pattern();
        let map = Interleaved::new(16);
        let loads = pat.bank_loads(&map);
        assert_eq!(loads.iter().sum::<usize>(), pat.len());
        assert_eq!(pat.max_bank_load(&map), *loads.iter().max().unwrap());
    }

    #[test]
    fn bank_contention_at_least_location_contention() {
        // All requests to one address necessarily land on one bank.
        let pat = hotspot_pattern();
        let map = Interleaved::new(1024);
        assert!(pat.max_bank_load(&map) >= pat.contention_profile().max_location_contention);
    }

    #[test]
    fn module_map_contention_counts_distinct_addresses() {
        let mut pat = AccessPattern::new(1);
        // addrs 0 and 8 share bank 0 of 8; addr 0 hit twice.
        pat.push(Request::read(0, 0));
        pat.push(Request::read(0, 0));
        pat.push(Request::read(0, 8));
        pat.push(Request::read(0, 3));
        let map = Interleaved::new(8);
        assert_eq!(pat.module_map_contention(&map), 2); // {0, 8} on bank 0
        assert_eq!(pat.max_bank_load(&map), 3); // 2×addr0 + 1×addr8
    }

    #[test]
    fn scatter_round_robins_processors() {
        let addrs: Vec<u64> = (0..10).collect();
        let pat = AccessPattern::scatter(4, &addrs);
        let prof = pat.contention_profile();
        assert_eq!(prof.total_requests, 10);
        // 10 elements over 4 procs: loads 3,3,2,2.
        assert_eq!(prof.max_processor_load, 3);
        assert!(pat.requests().all(|r| r.kind == AccessKind::Write));
    }

    #[test]
    fn gather_issues_reads() {
        let pat = AccessPattern::gather(2, &[5, 5, 5]);
        assert!(pat.requests().all(|r| r.kind == AccessKind::Read));
        assert_eq!(pat.contention_profile().max_location_contention, 3);
    }

    #[test]
    fn histogram_matches_profile() {
        let pat = hotspot_pattern();
        let hist = pat.contention_histogram();
        assert_eq!(hist.len(), 6); // max contention 5
        assert_eq!(hist[5], 1); // one address with contention 5
        assert_eq!(hist[1], 7); // seven singletons
        let total: usize = hist.iter().enumerate().map(|(c, n)| c * n).sum();
        assert_eq!(total, pat.len());
    }

    #[test]
    fn per_processor_partitions_requests() {
        let pat = hotspot_pattern();
        let streams = pat.per_processor();
        assert_eq!(streams.len(), 4);
        assert_eq!(streams.iter().map(Vec::len).sum::<usize>(), pat.len());
        for (p, s) in streams.iter().enumerate() {
            assert!(s.iter().all(|r| r.proc == p));
        }
    }

    #[test]
    fn retarget_skips_the_clear_but_guards_emptiness() {
        let mut pat = AccessPattern::with_capacity(2, 16);
        pat.push_write(1, 7);
        pat.clear();
        pat.retarget(4);
        assert_eq!(pat.procs(), 4);
        pat.push_write(3, 1); // proc 3 only in range after the retarget
        assert_eq!(pat.len(), 1);
    }

    #[test]
    #[should_panic(expected = "retarget requires an empty pattern")]
    fn retarget_rejects_pending_requests() {
        let mut pat = AccessPattern::new(2);
        pat.push_read(0, 1);
        pat.retarget(4);
    }

    #[test]
    fn soa_views_agree_with_request_views() {
        let mut pat = AccessPattern::new(3);
        for i in 0..200u64 {
            if i % 3 == 0 {
                pat.push_read((i % 3) as usize, i * 7);
            } else {
                pat.push_write((i % 3) as usize, i * 7);
            }
        }
        assert_eq!(pat.addrs().len(), 200);
        assert_eq!(pat.proc_ids().len(), 200);
        for (i, r) in pat.requests().enumerate() {
            assert_eq!(r.addr, pat.addrs()[i]);
            assert_eq!(r.proc, pat.proc_ids()[i] as usize);
            assert_eq!(r.kind == AccessKind::Write, pat.is_write(i));
            assert_eq!(pat.request_at(i), r);
        }
        // Bitset tail: request 64, 127, 128 straddle word boundaries.
        assert_eq!(pat.is_write(63), 63 % 3 != 0);
        assert_eq!(pat.is_write(64), 64 % 3 != 0);
        assert_eq!(pat.is_write(128), 128 % 3 != 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_processor_rejected() {
        let mut pat = AccessPattern::new(2);
        pat.push(Request::read(2, 0));
    }

    #[test]
    fn clear_keeps_procs_and_empties_requests() {
        let mut pat = hotspot_pattern();
        pat.clear();
        assert_eq!(pat.procs(), 4);
        assert!(pat.is_empty());
        // Refilling after a clear behaves like a fresh pattern,
        // including the write bitset (no stale bits survive).
        pat.push(Request::read(0, 9));
        assert!(!pat.is_write(0));
        assert_eq!(pat.len(), 1);
    }

    #[test]
    fn reset_retargets_processor_count() {
        let mut pat = hotspot_pattern();
        pat.reset(2);
        assert_eq!(pat.procs(), 2);
        assert!(pat.is_empty());
        pat.push(Request::write(1, 3));
        assert_eq!(pat.request_at(0).proc, 1);
    }

    #[test]
    fn copy_from_reproduces_the_source_exactly() {
        let src = hotspot_pattern();
        let mut dst = AccessPattern::new(1);
        dst.push(Request::write(0, 1));
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }
}
