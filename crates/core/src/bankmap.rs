//! Mapping of memory addresses to banks.
//!
//! The machine-level experiments need a pluggable address→bank mapping:
//! real machines interleave consecutive addresses across banks, while
//! shared-memory emulations (paper §4) hash addresses pseudo-randomly to
//! destroy adversarial module-map contention. Both the simulator
//! (`dxbsp-machine`) and the analytic contention accounting in this
//! crate use this trait; the universal hash families in `dxbsp-hash`
//! implement it.

/// An address→bank mapping for a machine with a fixed set of banks.
///
/// Implementations must be **pure**: the same address always maps to the
/// same bank within one superstep, and the returned index is always
/// `< num_banks()`.
pub trait BankMap {
    /// Number of banks this map targets.
    fn num_banks(&self) -> usize;

    /// The bank holding `addr`.
    fn bank_of(&self, addr: u64) -> usize;

    /// Maps a whole address stream into `out` (cleared first), one
    /// `u32` bank index per address. Bank counts must fit `u32`.
    ///
    /// This is the simulator's bulk entry point: one virtual call per
    /// pattern instead of one per request, so implementations get a
    /// devirtualized inner loop. The default delegates to [`bank_of`].
    ///
    /// [`bank_of`]: BankMap::bank_of
    fn fill_banks(&self, addrs: &[u64], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(addrs.len());
        out.extend(addrs.iter().map(|&a| self.bank_of(a) as u32));
    }
}

/// Classic low-order interleaving: `bank = addr mod B`.
///
/// This is what the Cray machines do natively; consecutive addresses hit
/// consecutive banks, so unit-stride access is conflict-free but strides
/// sharing a factor with `B` concentrate on few banks (the motivation
/// for hashing in paper §4).
///
/// The modulo is strength-reduced at construction time: power-of-two
/// bank counts use a bitmask, all others a Lemire fastmod reciprocal,
/// so the per-address cost never includes a hardware divide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleaved {
    banks: usize,
    /// `banks - 1` when `banks` is a power of two; `u64::MAX` sentinel
    /// otherwise (never a valid mask, since `banks` fits in `usize`).
    mask: u64,
    /// Fastmod reciprocal `floor(2^128 / banks) + 1` for the non-power
    /// -of-two path; 0 when the mask path is active.
    magic: u128,
}

impl Interleaved {
    /// Creates an interleaving over `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    #[must_use]
    pub fn new(banks: usize) -> Self {
        assert!(banks >= 1, "need at least one bank");
        if banks.is_power_of_two() {
            Self { banks, mask: banks as u64 - 1, magic: 0 }
        } else {
            Self { banks, mask: u64::MAX, magic: u128::MAX / banks as u128 + 1 }
        }
    }

    /// `addr mod banks` via the fastmod reciprocal (non-pow2 only):
    /// the low 128 bits of `addr * magic` scaled by `banks` yield the
    /// remainder in the high word.
    #[inline]
    fn fastmod(magic: u128, banks: u64, addr: u64) -> u64 {
        let low = magic.wrapping_mul(u128::from(addr));
        let hi = (low >> 64) * u128::from(banks);
        let lo = ((low & u128::from(u64::MAX)) * u128::from(banks)) >> 64;
        ((hi + lo) >> 64) as u64
    }
}

impl BankMap for Interleaved {
    fn num_banks(&self) -> usize {
        self.banks
    }

    #[inline]
    fn bank_of(&self, addr: u64) -> usize {
        if self.mask != u64::MAX {
            (addr & self.mask) as usize
        } else {
            Self::fastmod(self.magic, self.banks as u64, addr) as usize
        }
    }

    fn fill_banks(&self, addrs: &[u64], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(addrs.len());
        if self.mask != u64::MAX {
            let mask = self.mask;
            out.extend(addrs.iter().map(|&a| (a & mask) as u32));
        } else {
            let (magic, banks) = (self.magic, self.banks as u64);
            out.extend(addrs.iter().map(|&a| Self::fastmod(magic, banks, a) as u32));
        }
    }
}

impl<M: BankMap + ?Sized> BankMap for &M {
    fn num_banks(&self) -> usize {
        (**self).num_banks()
    }

    fn bank_of(&self, addr: u64) -> usize {
        (**self).bank_of(addr)
    }

    fn fill_banks(&self, addrs: &[u64], out: &mut Vec<u32>) {
        (**self).fill_banks(addrs, out);
    }
}

impl<M: BankMap + ?Sized> BankMap for Box<M> {
    fn num_banks(&self) -> usize {
        (**self).num_banks()
    }

    fn bank_of(&self, addr: u64) -> usize {
        (**self).bank_of(addr)
    }

    fn fill_banks(&self, addrs: &[u64], out: &mut Vec<u32>) {
        (**self).fill_banks(addrs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_wraps_modulo() {
        let m = Interleaved::new(8);
        assert_eq!(m.num_banks(), 8);
        assert_eq!(m.bank_of(0), 0);
        assert_eq!(m.bank_of(7), 7);
        assert_eq!(m.bank_of(8), 0);
        assert_eq!(m.bank_of(4095), 7);
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        let m = Interleaved::new(16);
        let banks: Vec<usize> = (0..16).map(|a| m.bank_of(a)).collect();
        let mut sorted = banks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "16 consecutive addresses hit 16 banks");
    }

    #[test]
    fn power_of_two_stride_concentrates() {
        // Stride 8 over 16 banks touches only 2 banks: the classic
        // module-map pathology hashing is meant to fix.
        let m = Interleaved::new(16);
        let mut banks: Vec<usize> = (0..64).map(|i| m.bank_of(i * 8)).collect();
        banks.sort_unstable();
        banks.dedup();
        assert_eq!(banks.len(), 2);
    }

    #[test]
    fn fast_paths_agree_with_plain_modulo() {
        let edge_addrs = [
            0u64,
            1,
            2,
            62,
            63,
            64,
            65,
            255,
            256,
            u32::MAX as u64,
            u32::MAX as u64 + 1,
            u64::MAX - 1,
            u64::MAX,
            0x8000_0000_0000_0000,
            0x5555_5555_5555_5555,
        ];
        for banks in (1usize..=300).chain([511, 512, 513, 1023, 1024, 4095, 4096]) {
            let m = Interleaved::new(banks);
            for &a in &edge_addrs {
                assert_eq!(m.bank_of(a), (a % banks as u64) as usize, "banks={banks} addr={a}");
            }
        }
    }

    #[test]
    fn fill_banks_matches_bank_of() {
        let addrs: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(0x9e37_79b9_97f4_a7c1)).collect();
        for banks in [1usize, 2, 3, 7, 8, 100, 256, 257] {
            let m = Interleaved::new(banks);
            let mut out = Vec::new();
            m.fill_banks(&addrs, &mut out);
            assert_eq!(out.len(), addrs.len());
            for (&a, &b) in addrs.iter().zip(&out) {
                assert_eq!(b as usize, m.bank_of(a), "banks={banks} addr={a}");
            }
        }
    }

    #[test]
    fn trait_objects_and_references_delegate() {
        let m = Interleaved::new(4);
        let by_ref: &dyn BankMap = &m;
        assert_eq!(by_ref.bank_of(5), 1);
        let mut out = Vec::new();
        by_ref.fill_banks(&[5, 6, 7, 8], &mut out);
        assert_eq!(out, [1, 2, 3, 0]);
        let boxed: Box<dyn BankMap> = Box::new(m);
        assert_eq!(boxed.bank_of(5), 1);
        assert_eq!(boxed.num_banks(), 4);
    }
}
