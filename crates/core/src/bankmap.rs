//! Mapping of memory addresses to banks.
//!
//! The machine-level experiments need a pluggable address→bank mapping:
//! real machines interleave consecutive addresses across banks, while
//! shared-memory emulations (paper §4) hash addresses pseudo-randomly to
//! destroy adversarial module-map contention. Both the simulator
//! (`dxbsp-machine`) and the analytic contention accounting in this
//! crate use this trait; the universal hash families in `dxbsp-hash`
//! implement it.

/// An address→bank mapping for a machine with a fixed set of banks.
///
/// Implementations must be **pure**: the same address always maps to the
/// same bank within one superstep, and the returned index is always
/// `< num_banks()`.
pub trait BankMap {
    /// Number of banks this map targets.
    fn num_banks(&self) -> usize;

    /// The bank holding `addr`.
    fn bank_of(&self, addr: u64) -> usize;
}

/// Classic low-order interleaving: `bank = addr mod B`.
///
/// This is what the Cray machines do natively; consecutive addresses hit
/// consecutive banks, so unit-stride access is conflict-free but strides
/// sharing a factor with `B` concentrate on few banks (the motivation
/// for hashing in paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleaved {
    banks: usize,
}

impl Interleaved {
    /// Creates an interleaving over `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    #[must_use]
    pub fn new(banks: usize) -> Self {
        assert!(banks >= 1, "need at least one bank");
        Self { banks }
    }
}

impl BankMap for Interleaved {
    fn num_banks(&self) -> usize {
        self.banks
    }

    fn bank_of(&self, addr: u64) -> usize {
        (addr % self.banks as u64) as usize
    }
}

impl<M: BankMap + ?Sized> BankMap for &M {
    fn num_banks(&self) -> usize {
        (**self).num_banks()
    }

    fn bank_of(&self, addr: u64) -> usize {
        (**self).bank_of(addr)
    }
}

impl<M: BankMap + ?Sized> BankMap for Box<M> {
    fn num_banks(&self) -> usize {
        (**self).num_banks()
    }

    fn bank_of(&self, addr: u64) -> usize {
        (**self).bank_of(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_wraps_modulo() {
        let m = Interleaved::new(8);
        assert_eq!(m.num_banks(), 8);
        assert_eq!(m.bank_of(0), 0);
        assert_eq!(m.bank_of(7), 7);
        assert_eq!(m.bank_of(8), 0);
        assert_eq!(m.bank_of(4095), 7);
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        let m = Interleaved::new(16);
        let banks: Vec<usize> = (0..16).map(|a| m.bank_of(a)).collect();
        let mut sorted = banks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 16, "16 consecutive addresses hit 16 banks");
    }

    #[test]
    fn power_of_two_stride_concentrates() {
        // Stride 8 over 16 banks touches only 2 banks: the classic
        // module-map pathology hashing is meant to fix.
        let m = Interleaved::new(16);
        let mut banks: Vec<usize> = (0..64).map(|i| m.bank_of(i * 8)).collect();
        banks.sort_unstable();
        banks.dedup();
        assert_eq!(banks.len(), 2);
    }

    #[test]
    fn trait_objects_and_references_delegate() {
        let m = Interleaved::new(4);
        let by_ref: &dyn BankMap = &m;
        assert_eq!(by_ref.bank_of(5), 1);
        let boxed: Box<dyn BankMap> = Box::new(m);
        assert_eq!(boxed.bank_of(5), 1);
        assert_eq!(boxed.num_banks(), 4);
    }
}
