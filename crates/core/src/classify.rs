//! Per-superstep contention classification for hybrid execution.
//!
//! The engine's event-level simulator is exact but pays ~tens of
//! nanoseconds per request. For many supersteps the (d,x)-BSP charge
//! `max(L, g·h, d·R)` is not just a good model — it is *provably* the
//! simulated answer, or brackets it within a declared error bound.
//! This module classifies a superstep from its SoA [`AccessPattern`]
//! and the bank indices produced by `fill_banks`, so the engine can
//! charge the cheap classes closed-form and reserve the time wheel for
//! the genuinely contended ones.
//!
//! The closed forms assume the *simple* machine: uniform network,
//! unbounded request window, no strip-mining, no bank cache. Under
//! those conditions a processor with `k` requests issues them at
//! cycles `0, g, 2g, …, (k−1)·g`, each request takes one transit leg
//! (`lat`) to its bank, queues FIFO behind earlier arrivals, holds the
//! bank for `d` cycles, and takes one leg back:
//!
//! - **Conflict-free** (`R ≤ 1`): no request queues, so the last
//!   completion is exactly `(h−1)·g + d + 2·lat`.
//! - **Hot bank** (every request on one bank, `g ≤ d`): the bank never
//!   idles after its first arrival — the `k`-th smallest issue time is
//!   at most `(k−1)·g ≤ (k−1)·d` — so the run takes exactly
//!   `n·d + 2·lat`.
//! - **Bounded** (anything else): the true time `C` satisfies
//!   `LB ≤ C ≤ UB` with `LB = max((h−1)·g + d, R·d) + 2·lat` and
//!   `UB = (h−1)·g + R·d + 2·lat`. Charging `LB` keeps the relative
//!   error at most `(UB−LB)/LB = min((R−1)·d, (h−1)·g)/LB`; the
//!   classifier accepts the step only when that ratio is within the
//!   declared bound, so the guarantee holds *by construction*.
//!
//! The fast path is refused (class [`StepClass::Simulate`]) when the
//! bracket is too loose for the declared bound, or when the step
//! hammers a single hot *location* with writes — those are exactly the
//! QRQW contention events the event-level probes exist to observe.

use serde::{Deserialize, Serialize};

use crate::delay::BankDelayModel;
use crate::pattern::AccessPattern;

/// How the engine executes supersteps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// Event-level simulation for every superstep (the default; exact).
    #[default]
    Full,
    /// Charge provably cheap supersteps closed-form; simulate the rest.
    Hybrid {
        /// Maximum relative cycle error accepted per superstep, in
        /// parts per million of the charged time (integer so the mode
        /// stays `Copy + Eq` and round-trips exactly).
        error_bound_ppm: u32,
    },
}

impl ExecMode {
    /// Hybrid mode with `error_bound` given as a fraction (e.g. `0.05`
    /// for 5%). Values are clamped to `[0, 1)`.
    #[must_use]
    pub fn hybrid(error_bound: f64) -> Self {
        let clamped = error_bound.clamp(0.0, 0.999_999);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        ExecMode::Hybrid { error_bound_ppm: (clamped * 1_000_000.0).round() as u32 }
    }

    /// Whether the mode charges any superstep analytically.
    #[must_use]
    pub fn is_hybrid(&self) -> bool {
        matches!(self, ExecMode::Hybrid { .. })
    }

    /// The declared error bound as a fraction, when hybrid.
    #[must_use]
    pub fn error_bound(&self) -> Option<f64> {
        match self {
            ExecMode::Full => None,
            ExecMode::Hybrid { error_bound_ppm } => Some(f64::from(*error_bound_ppm) / 1e6),
        }
    }
}

/// Which engine advances the supersteps that *are* simulated.
///
/// Orthogonal to [`ExecMode`]: hybrid mode decides *whether* a
/// superstep is simulated at all; `EngineKind` decides *how* the
/// simulated ones run. `BankEpoch` executes a whole superstep as one
/// bulk pass — requests reach each bank in issue order under a uniform
/// network, so every bank's service schedule is an arrival-sorted
/// prefix recurrence, no event dispatch required. It produces
/// bit-identical results and falls back to `EventLevel` explicitly for
/// the features that genuinely interleave (issue windows, sectioned
/// ports, bank caches, strip-mining). `EventLevel` is retained as the
/// differential oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EngineKind {
    /// Bulk per-bank epoch advancement (the default; bit-identical).
    #[default]
    BankEpoch,
    /// Per-request discrete-event simulation (the oracle).
    EventLevel,
}

impl EngineKind {
    /// The CLI/scenario spelling: `"epoch"` or `"event"`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::BankEpoch => "epoch",
            EngineKind::EventLevel => "event",
        }
    }

    /// Parses the CLI/scenario spelling (`"epoch"` / `"event"`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "epoch" => Some(EngineKind::BankEpoch),
            "event" => Some(EngineKind::EventLevel),
            _ => None,
        }
    }
}

/// The machine parameters the closed forms need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChargeParams<'a> {
    /// Issue gap `g` (cycles between a processor's requests).
    pub issue_gap: u64,
    /// The bank delay model. The exact closed forms assume a uniform
    /// `d`; under a non-uniform model the classifier stays conservative
    /// (see [`StepShape::charge`]).
    pub delay: &'a BankDelayModel,
    /// One-way network transit `lat` (each request pays two legs).
    pub latency: u64,
    /// Accepted relative error for the [`StepClass::Bounded`] class,
    /// in parts per million of the charged time.
    pub error_bound_ppm: u32,
}

impl<'a> ChargeParams<'a> {
    /// Parameters for a machine with issue gap `g`, delay model
    /// `delay` and one-way latency `lat`, accepting `error_bound_ppm`
    /// of model slack.
    #[must_use]
    pub fn new(
        issue_gap: u64,
        delay: &'a BankDelayModel,
        latency: u64,
        error_bound_ppm: u32,
    ) -> Self {
        Self { issue_gap, delay, latency, error_bound_ppm }
    }
}

/// Which execution class a superstep falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepClass {
    /// No requests: zero memory cycles, exactly.
    Empty,
    /// `R ≤ 1` — nothing queues; the closed form is exact.
    ConflictFree,
    /// Every request on one bank with `g ≤ d` — the bank pipeline
    /// never bubbles; the closed form is exact.
    HotBank,
    /// Mixed contention whose `[LB, UB]` bracket fits the declared
    /// error bound; charged `LB`, guaranteed within the bound.
    Bounded,
    /// Must run through the event-level simulator (bracket too loose,
    /// or a hot-location write conflict the probes should see).
    Simulate,
}

/// The contention summary of one superstep: everything the closed
/// forms need, computed in one pass over the filled bank indices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepShape {
    /// Total requests `n`.
    pub requests: usize,
    /// Maximum per-processor load `h`.
    pub max_proc_load: u64,
    /// Maximum per-bank load `R` under the active bank map.
    pub max_bank_load: u64,
    /// When every request lands on one bank, that bank's index.
    pub single_bank: Option<u32>,
    /// Every request targets one *location* and at least one writes —
    /// the QRQW race the fast path refuses to paper over.
    pub hot_write_conflict: bool,
}

/// What a classified superstep costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// The class the step fell in.
    pub class: StepClass,
    /// Charged memory cycles (0 for [`StepClass::Simulate`]).
    pub cycles: u64,
    /// Provable lower bound on the simulated time.
    pub lower: u64,
    /// Provable upper bound on the simulated time.
    pub upper: u64,
}

impl Verdict {
    /// Whether the step can be charged without simulating.
    #[must_use]
    pub fn is_analytic(&self) -> bool {
        !matches!(self.class, StepClass::Simulate)
    }

    /// The bracket width `UB − LB`: the worst-case absolute cycle
    /// error of the charge (0 for the exact classes).
    #[must_use]
    pub fn slack(&self) -> u64 {
        self.upper - self.lower
    }
}

impl StepShape {
    /// Classify the step and price it under `p`, without touching the
    /// pattern again — `O(1)`, so a sweep that holds the pattern (and
    /// thus the shape) fixed can re-charge it across an axis of `d` or
    /// `g` values for free.
    ///
    /// Under a uniform delay model this is the exact three-class
    /// analysis from the module docs. Under a non-uniform model the
    /// classifier stays conservative: the hot-bank form is still exact
    /// (the single bank's own `d_b` prices it), the conflict-free form
    /// degrades to a `[d_min, d_max]` bracket (without per-request bank
    /// identity the closed form cannot know *which* bank each request
    /// pays), and the mixed bracket widens to
    /// `LB = max((h−1)·g + d_min, R·d_min) + 2·lat`,
    /// `UB = (h−1)·g + R·d_max + 2·lat` — still provable, since every
    /// bank serves at least `d_min` and at most `d_max` per request.
    /// `Distance` models add per-pair transit the closed forms don't
    /// see, so every non-empty step simulates.
    #[must_use]
    pub fn charge(&self, p: &ChargeParams) -> Verdict {
        let n = self.requests as u64;
        if n == 0 {
            return Verdict { class: StepClass::Empty, cycles: 0, lower: 0, upper: 0 };
        }
        let (g, lat) = (p.issue_gap, p.latency);
        let (h, r) = (self.max_proc_load, self.max_bank_load);
        let round_trip = 2 * lat;
        if let Some(d) = p.delay.as_uniform() {
            if r <= 1 {
                let exact = (h - 1) * g + d + round_trip;
                return Verdict {
                    class: StepClass::ConflictFree,
                    cycles: exact,
                    lower: exact,
                    upper: exact,
                };
            }
            if self.hot_write_conflict {
                return Verdict { class: StepClass::Simulate, cycles: 0, lower: 0, upper: 0 };
            }
            if self.single_bank.is_some() && g <= d {
                let exact = n * d + round_trip;
                return Verdict {
                    class: StepClass::HotBank,
                    cycles: exact,
                    lower: exact,
                    upper: exact,
                };
            }
            let lower = ((h - 1) * g + d).max(r * d) + round_trip;
            let upper = (h - 1) * g + r * d + round_trip;
            return Self::bracket(lower, upper, p.error_bound_ppm);
        }
        // Non-uniform delay. Distance adds per-pair transit legs the
        // closed forms do not account for: simulate everything.
        if p.delay.has_distance() {
            return Verdict { class: StepClass::Simulate, cycles: 0, lower: 0, upper: 0 };
        }
        if self.hot_write_conflict {
            return Verdict { class: StepClass::Simulate, cycles: 0, lower: 0, upper: 0 };
        }
        if let Some(b) = self.single_bank {
            let d_b = p.delay.service(b as usize);
            if g <= d_b {
                // The hot-bank argument needs only that one bank's own
                // delay: it never idles after the first arrival.
                let exact = n * d_b + round_trip;
                return Verdict {
                    class: StepClass::HotBank,
                    cycles: exact,
                    lower: exact,
                    upper: exact,
                };
            }
        }
        // The general bracket with the model's delay range. For R ≤ 1
        // this degrades to `(h−1)·g + [d_min, d_max] + 2·lat`, which is
        // the conflict-free form without knowing which bank binds.
        let (d_min, d_max) = (p.delay.min_service(), p.delay.max_service());
        let lower = ((h - 1) * g + d_min).max(r * d_min) + round_trip;
        let upper = (h - 1) * g + r * d_max + round_trip;
        Self::bracket(lower, upper, p.error_bound_ppm)
    }

    /// Accept a `[lower, upper]` bracket iff `slack/lower ≤ bound`, in
    /// exact integer arithmetic; otherwise refuse with the bracket kept
    /// for diagnostics.
    fn bracket(lower: u64, upper: u64, error_bound_ppm: u32) -> Verdict {
        let slack = upper - lower;
        if u128::from(slack) * 1_000_000 <= u128::from(error_bound_ppm) * u128::from(lower) {
            Verdict { class: StepClass::Bounded, cycles: lower, lower, upper }
        } else {
            Verdict { class: StepClass::Simulate, cycles: 0, lower, upper }
        }
    }
}

/// Reusable analysis state: per-bank and per-processor load counters
/// sized once and reset sparsely, so classifying a superstep is one
/// `O(n)` pass with no allocation in the steady state.
#[derive(Debug, Clone, Default)]
pub struct Classifier {
    bank_counts: Vec<u32>,
    touched: Vec<u32>,
    proc_counts: Vec<u32>,
    shape: StepShape,
}

impl Classifier {
    /// A classifier with empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyze one superstep: `banks[i]` is the bank request `i`
    /// resolves to (the buffer `fill_banks` produced), `num_banks` the
    /// machine's bank count.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not exactly one bank index per request.
    pub fn analyze(&mut self, pat: &AccessPattern, banks: &[u32], num_banks: usize) -> StepShape {
        assert_eq!(banks.len(), pat.len(), "one bank index per request");
        if self.bank_counts.len() < num_banks {
            self.bank_counts.resize(num_banks, 0);
        }
        for &b in &self.touched {
            self.bank_counts[b as usize] = 0;
        }
        self.touched.clear();
        self.proc_counts.clear();
        self.proc_counts.resize(pat.procs(), 0);

        for (&b, &p) in banks.iter().zip(pat.proc_ids()) {
            let c = &mut self.bank_counts[b as usize];
            if *c == 0 {
                self.touched.push(b);
            }
            *c += 1;
            self.proc_counts[p as usize] += 1;
        }

        let max_bank_load = self.touched.iter().map(|&b| self.bank_counts[b as usize]).max();
        let single_bank = if self.touched.len() == 1 { Some(self.touched[0]) } else { None };
        // Hot-location detection is only needed (and only cheap) when
        // one bank holds the whole step: a location conflict forces a
        // bank conflict, so multi-bank steps with R ≤ 1 are clean, and
        // multi-bank steps with R > 1 are priced by the bracket, where
        // location identity cannot change the timing.
        let hot_write_conflict = single_bank.is_some()
            && pat.len() > 1
            && pat.addrs().iter().all(|&a| a == pat.addrs()[0])
            && pat.has_writes();
        self.shape = StepShape {
            requests: pat.len(),
            max_proc_load: self.proc_counts.iter().copied().max().unwrap_or(0).into(),
            max_bank_load: max_bank_load.unwrap_or(0).into(),
            single_bank,
            hot_write_conflict,
        };
        self.shape
    }

    /// The shape computed by the last [`Classifier::analyze`] call.
    #[must_use]
    pub fn shape(&self) -> &StepShape {
        &self.shape
    }

    /// Per-processor request counts from the last analysis.
    #[must_use]
    pub fn proc_loads(&self) -> &[u32] {
        &self.proc_counts
    }

    /// The banks the last-analyzed step touched, with their loads.
    pub fn touched_banks(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.touched.iter().map(|&b| (b as usize, self.bank_counts[b as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bankmap::{BankMap, Interleaved};

    fn shape_of(pat: &AccessPattern, banks_n: usize) -> (Classifier, StepShape) {
        let map = Interleaved::new(banks_n);
        let mut banks = Vec::new();
        map.fill_banks(pat.addrs(), &mut banks);
        let mut cl = Classifier::new();
        let shape = cl.analyze(pat, &banks, banks_n);
        (cl, shape)
    }

    #[test]
    fn conflict_free_is_exact_closed_form() {
        // 4 procs × 4 requests, unit stride: every request its own bank.
        let keys: Vec<u64> = (0..16).collect();
        let pat = AccessPattern::scatter(4, &keys);
        let (_, shape) = shape_of(&pat, 16);
        assert_eq!(shape.max_bank_load, 1);
        assert_eq!(shape.max_proc_load, 4);
        let d = BankDelayModel::uniform(14);
        let v = shape.charge(&ChargeParams::new(1, &d, 0, 0));
        assert_eq!(v.class, StepClass::ConflictFree);
        // (h−1)·g + d = 3 + 14.
        assert_eq!(v.cycles, 17);
        assert_eq!(v.slack(), 0);
    }

    #[test]
    fn hot_bank_reads_are_exact_writes_are_refused() {
        let keys = vec![7u64; 32];
        let reads = AccessPattern::gather(8, &keys);
        let (_, shape) = shape_of(&reads, 64);
        assert_eq!(shape.single_bank, Some(7));
        let d = BankDelayModel::uniform(6);
        let v = shape.charge(&ChargeParams::new(1, &d, 10, 0));
        assert_eq!(v.class, StepClass::HotBank);
        // n·d + 2·lat.
        assert_eq!(v.cycles, 32 * 6 + 20);

        let writes = AccessPattern::scatter(8, &keys);
        let (_, shape) = shape_of(&writes, 64);
        assert!(shape.hot_write_conflict);
        let v = shape.charge(&ChargeParams::new(1, &d, 10, 1_000_000 - 1));
        assert_eq!(v.class, StepClass::Simulate);
    }

    #[test]
    fn bounded_accepts_within_declared_slack_only() {
        // 2 procs, 8 requests each, all on bank 0 and 1: R = 8, h = 8.
        let keys: Vec<u64> = (0..16).map(|i| u64::from(i % 2 == 0)).collect();
        let pat = AccessPattern::scatter(2, &keys);
        let (_, shape) = shape_of(&pat, 4);
        assert_eq!(shape.max_bank_load, 8);
        assert_eq!(shape.single_bank, None);
        // g=1, d=20: LB = max(7+20, 160) = 160, UB = 7+160 = 167,
        // slack 7 → ratio 7/160 ≈ 4.4%.
        let d = BankDelayModel::uniform(20);
        let p = |ppm| ChargeParams::new(1, &d, 0, ppm);
        let refused = shape.charge(&p(40_000));
        assert_eq!(refused.class, StepClass::Simulate);
        let accepted = shape.charge(&p(50_000));
        assert_eq!(accepted.class, StepClass::Bounded);
        assert_eq!(accepted.cycles, 160);
        assert_eq!(accepted.upper, 167);
    }

    #[test]
    fn empty_step_is_free() {
        let pat = AccessPattern::new(4);
        let (_, shape) = shape_of(&pat, 8);
        let d = BankDelayModel::uniform(14);
        let v = shape.charge(&ChargeParams::new(1, &d, 5, 0));
        assert_eq!(v.class, StepClass::Empty);
        assert_eq!(v.cycles, 0);
    }

    #[test]
    fn classifier_scratch_resets_between_steps() {
        let mut cl = Classifier::new();
        let hot = AccessPattern::gather(2, &[3u64; 10]);
        let map = Interleaved::new(8);
        let mut banks = Vec::new();
        map.fill_banks(hot.addrs(), &mut banks);
        cl.analyze(&hot, &banks, 8);
        assert_eq!(cl.shape().max_bank_load, 10);

        let spread = AccessPattern::scatter(2, &[0, 1, 2, 3]);
        map.fill_banks(spread.addrs(), &mut banks);
        let shape = cl.analyze(&spread, &banks, 8);
        assert_eq!(shape.max_bank_load, 1);
        assert_eq!(shape.max_proc_load, 2);
        assert_eq!(cl.touched_banks().count(), 4);
        assert_eq!(cl.proc_loads(), &[2, 2]);
    }

    #[test]
    fn non_uniform_hot_bank_uses_that_banks_delay() {
        let keys = vec![7u64; 32];
        let reads = AccessPattern::gather(8, &keys);
        let (_, shape) = shape_of(&reads, 64);
        assert_eq!(shape.single_bank, Some(7));
        let mut delays = vec![6u64; 64];
        delays[7] = 14;
        let d = BankDelayModel::per_bank(delays);
        let v = shape.charge(&ChargeParams::new(1, &d, 10, 0));
        assert_eq!(v.class, StepClass::HotBank);
        assert_eq!(v.cycles, 32 * 14 + 20);
        assert_eq!(v.slack(), 0);
    }

    #[test]
    fn non_uniform_conflict_free_brackets_by_delay_range() {
        // Every request its own bank, so R ≤ 1 — exact under a uniform
        // d, a [d_min, d_max] bracket under a mixed model.
        let keys: Vec<u64> = (0..16).collect();
        let pat = AccessPattern::scatter(4, &keys);
        let (_, shape) = shape_of(&pat, 16);
        let d = BankDelayModel::per_bank(
            (0..16).map(|b| if b < 8 { 6 } else { 14 }).collect::<Vec<_>>(),
        );
        let refused = shape.charge(&ChargeParams::new(1, &d, 0, 0));
        assert_eq!(refused.class, StepClass::Simulate);
        // (h−1)·g = 3, so LB = 3+6 = 9, UB = 3+14 = 17.
        assert_eq!((refused.lower, refused.upper), (9, 17));
        let accepted = shape.charge(&ChargeParams::new(1, &d, 0, 900_000));
        assert_eq!(accepted.class, StepClass::Bounded);
        assert_eq!(accepted.cycles, 9);
    }

    #[test]
    fn distance_models_simulate_every_nonempty_step() {
        use crate::delay::ProcBankDistance;
        let keys: Vec<u64> = (0..16).collect();
        let pat = AccessPattern::scatter(4, &keys);
        let (_, shape) = shape_of(&pat, 16);
        let d = BankDelayModel::Distance {
            base: vec![6; 16],
            matrix: ProcBankDistance::new(4, 16, vec![1; 64]).unwrap(),
        };
        let v = shape.charge(&ChargeParams::new(1, &d, 0, 1_000_000 - 1));
        assert_eq!(v.class, StepClass::Simulate);

        let empty = AccessPattern::new(4);
        let (_, shape) = shape_of(&empty, 16);
        let v = shape.charge(&ChargeParams::new(1, &d, 0, 0));
        assert_eq!(v.class, StepClass::Empty);
    }

    #[test]
    fn exec_mode_round_trips_ppm() {
        assert_eq!(ExecMode::hybrid(0.05), ExecMode::Hybrid { error_bound_ppm: 50_000 });
        assert_eq!(ExecMode::hybrid(0.05).error_bound(), Some(0.05));
        assert_eq!(ExecMode::Full.error_bound(), None);
        assert!(!ExecMode::Full.is_hybrid());
        assert!(ExecMode::hybrid(0.0).is_hybrid());
    }
}
