//! Machine presets and the paper's Table 1 inventory.
//!
//! Table 1 of the paper lists commercial high-bandwidth machines and
//! their bank counts, motivating expansion factors far above 1. The
//! archive copy of the paper lost the table body, so the rows below are
//! reconstructed from the surviving text (C90/J90 parameters are stated
//! explicitly in §1–§3) and public machine documentation of the era;
//! each row is marked with how it was sourced. The *model* parameters
//! (`d`, `x`) for the two Cray machines are the ones the paper states:
//! bank delay 6 clocks (C90, SRAM) and 14 clocks (J90, DRAM).

use serde::{Deserialize, Serialize};

use crate::delay::BankDelayModel;
use crate::params::MachineParams;

/// How a Table-1 row was sourced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// Stated explicitly in the surviving paper text.
    PaperText,
    /// Reconstructed from era documentation; marked in DESIGN.md.
    Reconstructed,
}

/// One row of the machine inventory (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineRow {
    /// Machine name.
    pub name: &'static str,
    /// Maximum processor count of the configuration.
    pub processors: usize,
    /// Memory bank count of the configuration.
    pub banks: usize,
    /// Bank delay in clock cycles, if known.
    pub bank_delay: Option<u64>,
    /// Row sourcing.
    pub provenance: Provenance,
}

impl MachineRow {
    /// Expansion factor `banks / processors` (rounded down).
    #[must_use]
    pub fn expansion(&self) -> usize {
        self.banks / self.processors
    }
}

/// The machine inventory used for Table 1 of the reproduction.
#[must_use]
pub fn table1_inventory() -> Vec<MachineRow> {
    vec![
        MachineRow {
            name: "Cray C90",
            processors: 16,
            banks: 1024,
            bank_delay: Some(6),
            provenance: Provenance::PaperText,
        },
        MachineRow {
            name: "Cray J90",
            processors: 32,
            banks: 1024,
            bank_delay: Some(14),
            provenance: Provenance::Reconstructed,
        },
        MachineRow {
            name: "Cray T90",
            processors: 32,
            banks: 1024,
            bank_delay: Some(4),
            provenance: Provenance::Reconstructed,
        },
        MachineRow {
            name: "Tera MTA",
            processors: 256,
            banks: 512,
            bank_delay: None,
            provenance: Provenance::Reconstructed,
        },
        MachineRow {
            name: "NEC SX-4",
            processors: 32,
            banks: 16384,
            bank_delay: None,
            provenance: Provenance::Reconstructed,
        },
        MachineRow {
            name: "Fujitsu VPP500",
            processors: 222,
            banks: 28416,
            bank_delay: None,
            provenance: Provenance::Reconstructed,
        },
    ]
}

/// A C90-like machine: 16 processors, SRAM banks with `d = 6`,
/// expansion 64, gap 1 request/cycle/processor, negligible `L`.
#[must_use]
pub fn cray_c90() -> MachineParams {
    MachineParams::new(16, 1, 0, 6, 64)
}

/// A J90-like machine as used in the paper's experiments: the paper ran
/// on a dedicated 8-processor J90 with DRAM banks (`d = 14`). The J90
/// memory system provides 1024 banks in the 32-CPU configuration; an
/// 8-CPU system sees expansion 32 with respect to its own processor
/// count. `L` is negligible per §3.
#[must_use]
pub fn cray_j90() -> MachineParams {
    MachineParams::new(8, 1, 0, 14, 32)
}

/// The fused C90/J90 "mixed-tier" machine of the heterogeneous-delay
/// experiments: 8 processors and expansion 32 as in the paper's J90
/// runs, but the 256 banks split into a fast SRAM half (C90-like
/// `d = 6`) and a slow DRAM half (J90-like `d = 14`). The scalar `d`
/// is the model summary — the slow tier's 14 — so uniform-`d`
/// predictions on this machine are the conservative ceiling the
/// mixed-tier experiments measure against.
#[must_use]
pub fn mixed_tier() -> MachineParams {
    MachineParams::new(8, 1, 0, 14, 32)
}

/// The per-bank delay model of [`mixed_tier`]: banks `0..128` at
/// `d = 6`, banks `128..256` at `d = 14`.
#[must_use]
pub fn mixed_tier_delay() -> BankDelayModel {
    BankDelayModel::from_tiers(&[(128, 6), (128, 14)])
}

/// A deliberately under-banked machine (`x < d`) for exercising the
/// memory-bound regime and the Theorem 5.1 (`x ≤ d`) emulation case.
#[must_use]
pub fn underbanked(p: usize, d: u64, x: usize) -> MachineParams {
    MachineParams::new(p, 1, 0, d, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_rows_have_positive_expansion() {
        for row in table1_inventory() {
            assert!(row.expansion() >= 1, "{} has x < 1", row.name);
        }
    }

    #[test]
    fn cray_rows_match_paper_delays() {
        let rows = table1_inventory();
        let c90 = rows.iter().find(|r| r.name == "Cray C90").unwrap();
        let j90 = rows.iter().find(|r| r.name == "Cray J90").unwrap();
        assert_eq!(c90.bank_delay, Some(6));
        assert_eq!(j90.bank_delay, Some(14));
        assert_eq!(c90.provenance, Provenance::PaperText);
    }

    #[test]
    fn presets_are_balanced_machines() {
        // Both Cray presets have x ≥ d/g: bank bandwidth matches or
        // exceeds processor bandwidth, the "high-bandwidth" premise.
        assert!(cray_c90().is_balanced());
        assert!(cray_j90().is_balanced());
    }

    #[test]
    fn c90_has_higher_expansion_than_balance() {
        // The C90's x = 64 is far beyond its balance point d/g = 6 —
        // the paper's point that real machines over-provision banks.
        let m = cray_c90();
        assert!(m.x > m.balance_expansion() * 10);
    }

    #[test]
    fn underbanked_is_memory_bound() {
        let m = underbanked(8, 14, 2);
        assert!(!m.is_balanced());
        assert!(m.memory_bound_gap() > m.g);
    }
}
