//! Model-driven diagnosis of access patterns.
//!
//! The (d,x)-BSP is useful *prescriptively*: given a pattern and a
//! machine, it says which resource binds and what would fix it — the
//! reasoning the paper walks through manually for each algorithm in §6.
//! This module packages that reasoning: [`diagnose`] names the binding
//! resource, and when the hot-location term dominates it computes the
//! duplication factor that restores balance (§3, Experiment 2) and the
//! speedup duplication would buy.

use serde::{Deserialize, Serialize};

use crate::bankmap::BankMap;
use crate::params::MachineParams;
use crate::pattern::AccessPattern;
use crate::predict::{predict_scatter, ScatterShape};

/// The resource a pattern is bound by on a given machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Binding {
    /// The per-superstep latency/synchronization floor `L`.
    Latency,
    /// Processor/network bandwidth (`g·h`).
    Processor,
    /// Aggregate bank bandwidth (`d·n/(x·p)` under an even spread).
    BankBandwidth,
    /// A single hot location's queue (`d·k`).
    HotLocation,
    /// Module-map contention: distinct addresses sharing a bank push
    /// the realized bank load well past both the even spread and the
    /// hot location.
    ModuleMap,
}

/// Diagnosis of one access pattern on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// The binding resource.
    pub binding: Binding,
    /// Model-charged cycles for the pattern as-is.
    pub charged_cycles: u64,
    /// Max location contention `k`.
    pub contention: usize,
    /// Realized max bank load `R` under the given map.
    pub max_bank_load: usize,
    /// If the hot location binds: the smallest duplication factor that
    /// would lift it out of the critical path, and the predicted
    /// charged cycles after duplication.
    pub duplication: Option<DuplicationAdvice>,
}

/// The §3-Experiment-2 remedy, sized by the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DuplicationAdvice {
    /// Copies of the hot location to create.
    pub copies: usize,
    /// Predicted charged cycles after duplication.
    pub predicted_cycles: u64,
    /// Predicted speedup factor.
    pub speedup: f64,
}

/// Diagnoses `pat` on machine `m` under the bank map `map`.
#[must_use]
pub fn diagnose<M: BankMap>(m: &MachineParams, pat: &AccessPattern, map: &M) -> Diagnosis {
    let prof = pat.contention_profile();
    let n = prof.total_requests;
    let k = prof.max_location_contention;
    let h = prof.max_processor_load;
    let r = pat.max_bank_load(map);

    let latency = m.l;
    let processor = m.g * h as u64;
    let even_bank = m.d * (n as u64).div_ceil(m.banks() as u64).max(u64::from(n > 0));
    let hot = m.d * k as u64;
    let realized_bank = m.d * r as u64;
    let charged = latency.max(processor).max(realized_bank);

    // Module-map contention is only the story when the realized bank
    // load *materially* exceeds both structural explanations — a few
    // co-resident stragglers on the hot bank do not change what binds.
    let structural = hot.max(even_bank);
    let binding = if charged == latency {
        Binding::Latency
    } else if charged == processor {
        Binding::Processor
    } else if realized_bank > structural + structural / 2 {
        Binding::ModuleMap
    } else if hot >= even_bank && k >= 2 {
        // k = 1 means no location is hot: the bank term is just the
        // service time of independent requests, i.e. bank bandwidth.
        Binding::HotLocation
    } else {
        Binding::BankBandwidth
    };

    let duplication = (binding == Binding::HotLocation && k > 1)
        .then(|| {
            // Smallest c with d·⌈k/c⌉ ≤ max(L, g·h, d·n/(xp)): dropping
            // the hot term below the next-binding resource.
            let floor = latency.max(processor).max(even_bank).max(1);
            let target_k = usize::try_from(floor / m.d).unwrap_or(usize::MAX).max(1);
            let copies = k.div_ceil(target_k);
            let predicted = predict_scatter(m, ScatterShape::new(n, k.div_ceil(copies)));
            DuplicationAdvice {
                copies,
                predicted_cycles: predicted,
                speedup: charged as f64 / predicted.max(1) as f64,
            }
        })
        // copies = 1 means the hot term is already at the floor:
        // duplication cannot help, so there is no advice to give.
        .filter(|a| a.copies >= 2);

    Diagnosis { binding, charged_cycles: charged, contention: k, max_bank_load: r, duplication }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bankmap::Interleaved;

    fn j90() -> MachineParams {
        MachineParams::new(8, 1, 0, 14, 32)
    }

    fn map() -> Interleaved {
        Interleaved::new(j90().banks())
    }

    #[test]
    fn spread_pattern_is_processor_bound() {
        let addrs: Vec<u64> = (0..4096).collect();
        let pat = AccessPattern::scatter(8, &addrs);
        let d = diagnose(&j90(), &pat, &map());
        assert_eq!(d.binding, Binding::Processor);
        assert!(d.duplication.is_none());
    }

    #[test]
    fn hot_pattern_is_hot_location_bound_with_advice() {
        let mut addrs: Vec<u64> = (0..4096).collect();
        for a in addrs.iter_mut().take(2048) {
            *a = 0;
        }
        let pat = AccessPattern::scatter(8, &addrs);
        let d = diagnose(&j90(), &pat, &map());
        assert_eq!(d.binding, Binding::HotLocation);
        assert_eq!(d.contention, 2048);
        let advice = d.duplication.expect("advice expected");
        assert!(advice.copies > 1);
        assert!(advice.speedup > 10.0, "speedup {}", advice.speedup);
        // Advice achieves the flat regime: predicted ≈ g·n/p.
        assert!(advice.predicted_cycles <= 2 * 4096 / 8);
    }

    #[test]
    fn underbanked_machine_is_bank_bandwidth_bound() {
        let m = MachineParams::new(8, 1, 0, 14, 1);
        let addrs: Vec<u64> = (0..4096).collect();
        let pat = AccessPattern::scatter(8, &addrs);
        let d = diagnose(&m, &pat, &Interleaved::new(m.banks()));
        assert_eq!(d.binding, Binding::BankBandwidth);
    }

    #[test]
    fn module_map_pathology_detected() {
        // Distinct addresses all landing on one interleaved bank.
        let addrs: Vec<u64> = (0..1024u64).map(|i| i * j90().banks() as u64).collect();
        let pat = AccessPattern::scatter(8, &addrs);
        let d = diagnose(&j90(), &pat, &map());
        assert_eq!(d.binding, Binding::ModuleMap);
        assert_eq!(d.max_bank_load, 1024);
        assert_eq!(d.contention, 1);
    }

    #[test]
    fn latency_floor_detected_on_empty_patterns() {
        let m = MachineParams::new(4, 1, 1000, 6, 4);
        let pat = AccessPattern::scatter(4, &[1, 2, 3]);
        let d = diagnose(&m, &pat, &Interleaved::new(m.banks()));
        assert_eq!(d.binding, Binding::Latency);
        assert_eq!(d.charged_cycles, 1000);
    }

    #[test]
    fn advice_is_consistent_with_prediction() {
        let n = 8192usize;
        let k = 4096usize;
        let mut addrs: Vec<u64> = (0..n as u64).collect();
        for a in addrs.iter_mut().take(k) {
            *a = 0;
        }
        let pat = AccessPattern::scatter(8, &addrs);
        let d = diagnose(&j90(), &pat, &map());
        let advice = d.duplication.unwrap();
        let manual = predict_scatter(&j90(), ScatterShape::new(n, k.div_ceil(advice.copies)));
        assert_eq!(advice.predicted_cycles, manual);
    }
}
