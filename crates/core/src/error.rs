//! `DxError` — the workspace-wide error type.
//!
//! Scenario files, machine specifications and trace files are all
//! user-supplied inputs; a bad input must surface as a diagnostic the
//! caller can print, not as a panic inside the library. Every fallible
//! constructor and codec in the workspace returns `Result<_, DxError>`.

use std::fmt;

/// Errors produced while validating or decoding user-facing inputs
/// (scenario specs, machine parameters, trace files).
#[derive(Debug)]
pub enum DxError {
    /// A structurally well-formed input with an invalid value
    /// (`x = 0`, `k > n`, empty sweep axis, …).
    Invalid(String),
    /// A syntax error while decoding a scenario file. `line` is
    /// 1-based; 0 means "not attributable to a line" (e.g. JSON fed
    /// through a streaming decoder).
    Parse {
        /// 1-based line of the offending input, 0 if unknown.
        line: usize,
        /// Human-readable description of the syntax error.
        msg: String,
    },
    /// A name that is not in the relevant registry: an unknown machine
    /// preset, scenario kind, workload family or built-in scenario.
    Unknown {
        /// What kind of name was looked up ("preset", "kind", …).
        what: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// An underlying I/O failure while reading or writing a file.
    Io(std::io::Error),
    /// The execution service shed the request: its admission queue is
    /// full. The request was *not* executed; retrying later is safe.
    Overloaded {
        /// Requests currently executing.
        active: usize,
        /// The admission limit (active runs plus queued waiters).
        limit: usize,
    },
}

impl DxError {
    /// Shorthand for [`DxError::Invalid`] from any displayable message.
    pub fn invalid(msg: impl Into<String>) -> Self {
        DxError::Invalid(msg.into())
    }

    /// Shorthand for [`DxError::Parse`].
    pub fn parse(line: usize, msg: impl Into<String>) -> Self {
        DxError::Parse { line, msg: msg.into() }
    }

    /// Shorthand for [`DxError::Unknown`].
    pub fn unknown(what: &'static str, name: impl Into<String>) -> Self {
        DxError::Unknown { what, name: name.into() }
    }

    /// True if this is a validation error (as opposed to a syntax or
    /// I/O error). Used by tests asserting *why* an input was rejected.
    #[must_use]
    pub fn is_invalid(&self) -> bool {
        matches!(self, DxError::Invalid(_))
    }

    /// True if this is a syntax error from one of the spec codecs.
    #[must_use]
    pub fn is_parse(&self) -> bool {
        matches!(self, DxError::Parse { .. })
    }

    /// Shorthand for [`DxError::Overloaded`].
    #[must_use]
    pub fn overloaded(active: usize, limit: usize) -> Self {
        DxError::Overloaded { active, limit }
    }

    /// True if the request was shed by admission control (safe to
    /// retry after a backoff).
    #[must_use]
    pub fn is_overloaded(&self) -> bool {
        matches!(self, DxError::Overloaded { .. })
    }
}

impl fmt::Display for DxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DxError::Invalid(msg) => write!(f, "invalid: {msg}"),
            DxError::Parse { line: 0, msg } => write!(f, "parse error: {msg}"),
            DxError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            DxError::Unknown { what, name } => write!(f, "unknown {what} `{name}`"),
            DxError::Io(e) => write!(f, "i/o error: {e}"),
            DxError::Overloaded { active, limit } => {
                write!(f, "overloaded: {active} of {limit} admission slots busy; retry later")
            }
        }
    }
}

impl std::error::Error for DxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DxError {
    fn from(e: std::io::Error) -> Self {
        DxError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_the_line_number() {
        let e = DxError::parse(7, "expected `=`");
        assert_eq!(e.to_string(), "parse error at line 7: expected `=`");
        let e = DxError::parse(0, "unexpected end of input");
        assert_eq!(e.to_string(), "parse error: unexpected end of input");
    }

    #[test]
    fn predicates_distinguish_variants() {
        assert!(DxError::invalid("x must be >= 1").is_invalid());
        assert!(!DxError::invalid("x").is_parse());
        assert!(DxError::parse(1, "bad").is_parse());
        assert!(!DxError::unknown("preset", "cray-3").is_invalid());
    }

    #[test]
    fn overloaded_is_structured_and_retryable() {
        let e = DxError::overloaded(8, 8);
        assert!(e.is_overloaded());
        assert!(!e.is_invalid());
        assert_eq!(e.to_string(), "overloaded: 8 of 8 admission slots busy; retry later");
    }

    #[test]
    fn io_errors_chain_as_source() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e = DxError::from(io);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("eof"));
    }
}
