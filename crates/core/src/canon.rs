//! Canonical scenario form and content hashing.
//!
//! The execution service caches results by *content*: two scenario
//! specs that describe the same run must map to the same cache key no
//! matter how they were spelled. [`Scenario::to_value`] already does
//! most of the normalization — it is a typed re-encode, so field
//! order, elided defaults and comments from the source text never
//! survive the round trip. This module finishes the job:
//!
//! * execution-irrelevant fields (`title`, `notes`, `threads`) are
//!   dropped — results are byte-identical at any thread count, and
//!   presentation strings never change a cycle count;
//! * every table is key-sorted (the `params` table preserves the
//!   author's declaration order in the spec, which is presentational);
//! * integral floats are folded to integers (`1.0` and `1` hash
//!   identically), everywhere in the tree.
//!
//! Sweep *axis order* and per-axis *value order* are preserved: both
//! are semantic — they set the grid's iteration order and each point's
//! RNG salt — so reordering them is a different scenario.
//!
//! The hash itself is 128-bit FNV-1a over a type-tagged byte encoding
//! of the canonical tree. It is stable across processes and platforms
//! (everything is encoded little-endian) but is *not* cryptographic:
//! it keys a cache, it does not authenticate inputs.

use std::fmt;

use crate::scenario::Scenario;
use crate::spec::SpecValue;

/// A 128-bit content hash of a canonical scenario spec.
///
/// Displays as 32 lowercase hex digits. `(ContentHash, seed, engine,
/// exec mode)` identifies a run — and since seed, engine and exec mode
/// are part of the scenario spec, the hash alone is the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The canonical [`SpecValue`] form of a scenario: defaults elided
/// (inherited from [`Scenario::to_value`]), execution-irrelevant
/// fields dropped, tables key-sorted, integral floats folded to
/// integers. Two specs describing the same run canonicalize to equal
/// trees; [`content_hash`] is this tree's digest.
#[must_use]
pub fn canonical_value(sc: &Scenario) -> SpecValue {
    let v = sc.to_value();
    let SpecValue::Table(entries) = v else { unreachable!("scenario encodes as a table") };
    let kept = entries
        .into_iter()
        .filter(|(k, _)| !matches!(k.as_str(), "title" | "notes" | "threads"))
        .map(|(k, v)| {
            // The sweep encodes as a table keyed by axis name whose
            // *entry order* is the axis order — semantic (iteration
            // order, RNG salts), so it is exempt from key-sorting.
            // Its value lists still get float folding.
            let v = if k == "sweep" { canon_keep_order(v) } else { canon(v) };
            (k, v)
        })
        .collect();
    SpecValue::Table(sort_table(kept))
}

/// Canonicalize one subtree: sort table keys, fold integral floats.
fn canon(v: SpecValue) -> SpecValue {
    match v {
        SpecValue::Float(f) => fold_float(f),
        SpecValue::List(items) => SpecValue::List(items.into_iter().map(canon).collect()),
        SpecValue::Table(entries) => {
            let entries = entries.into_iter().map(|(k, v)| (k, canon(v))).collect();
            SpecValue::Table(sort_table(entries))
        }
        other => other,
    }
}

/// Like [`canon`], but preserves table entry order (the sweep table,
/// where entry order is the axis order).
fn canon_keep_order(v: SpecValue) -> SpecValue {
    match v {
        SpecValue::Table(entries) => {
            SpecValue::Table(entries.into_iter().map(|(k, v)| (k, canon_keep_order(v))).collect())
        }
        other => canon(other),
    }
}

fn sort_table(mut entries: Vec<(String, SpecValue)>) -> Vec<(String, SpecValue)> {
    entries.sort_by(|(a, _), (b, _)| a.cmp(b));
    entries
}

/// `1.0` → `Int(1)`; floats with a fractional part (and anything not
/// exactly representable as an `i64`) stay floats.
#[allow(clippy::cast_possible_truncation)]
fn fold_float(f: f64) -> SpecValue {
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if f.fract() == 0.0 && f.abs() < EXACT {
        SpecValue::Int(f as i64)
    } else {
        SpecValue::Float(f)
    }
}

/// The stable content hash of a scenario's canonical form: the cache
/// key for `(canonical spec, seed, engine, exec mode)` — the latter
/// three ride inside the spec itself.
#[must_use]
pub fn content_hash(sc: &Scenario) -> ContentHash {
    hash_value(&canonical_value(sc))
}

/// Hash any [`SpecValue`] tree (after canonicalization) — exposed so
/// callers can key on sub-specs, e.g. a single point's coordinates.
#[must_use]
pub fn hash_value(v: &SpecValue) -> ContentHash {
    let mut h = Fnv128::new();
    encode(v, &mut h);
    ContentHash(h.finish())
}

/// Type-tagged byte encoding driven straight into the hasher; no
/// intermediate buffer. Tags keep different shapes from colliding
/// (`Str("1")` vs `Int(1)`, a 1-element list vs its element).
fn encode(v: &SpecValue, h: &mut Fnv128) {
    match v {
        SpecValue::Bool(b) => {
            h.write(&[b'B', u8::from(*b)]);
        }
        SpecValue::Int(i) => {
            h.write(b"I");
            h.write(&i.to_le_bytes());
        }
        SpecValue::Float(f) => {
            h.write(b"F");
            h.write(&f.to_bits().to_le_bytes());
        }
        SpecValue::Str(s) => {
            h.write(b"S");
            h.write(&(s.len() as u64).to_le_bytes());
            h.write(s.as_bytes());
        }
        SpecValue::List(items) => {
            h.write(b"L");
            h.write(&(items.len() as u64).to_le_bytes());
            for item in items {
                encode(item, h);
            }
        }
        SpecValue::Table(entries) => {
            h.write(b"T");
            h.write(&(entries.len() as u64).to_le_bytes());
            for (k, v) in entries {
                h.write(&(k.len() as u64).to_le_bytes());
                h.write(k.as_bytes());
                encode(v, h);
            }
        }
    }
}

/// 128-bit FNV-1a. Tiny, dependency-free, stable across platforms;
/// the standard offset basis and prime from the FNV spec.
struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u128 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Axis, Sweep};

    fn base() -> Scenario {
        let mut sc = Scenario::new("t", "scatter-sweep", 42);
        sc.n = Some(4096);
        sc.sweep = Sweep::new(vec![Axis::ints("k", [1, 256])]);
        sc
    }

    #[test]
    fn hash_is_stable_across_calls_and_encodes() {
        let sc = base();
        assert_eq!(content_hash(&sc), content_hash(&sc));
        let via_toml = Scenario::from_toml(&sc.to_toml()).unwrap();
        let via_json = Scenario::from_json(&sc.to_json()).unwrap();
        assert_eq!(content_hash(&sc), content_hash(&via_toml));
        assert_eq!(content_hash(&sc), content_hash(&via_json));
    }

    #[test]
    fn presentation_fields_do_not_change_the_key() {
        let mut a = base();
        let mut b = base();
        a.title = "Experiment 1".to_string();
        a.notes = vec!["a note".to_string()];
        a.threads = 1;
        b.threads = 8;
        assert_eq!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn params_declaration_order_does_not_change_the_key() {
        let mut a = base();
        a.params =
            vec![("alpha".to_string(), SpecValue::Int(1)), ("beta".to_string(), SpecValue::Int(2))];
        let mut b = base();
        b.params =
            vec![("beta".to_string(), SpecValue::Int(2)), ("alpha".to_string(), SpecValue::Int(1))];
        assert_eq!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn integral_float_spelling_folds_to_the_integer_key() {
        let mut a = base();
        a.params = vec![("scale".to_string(), SpecValue::Float(2.0))];
        let mut b = base();
        b.params = vec![("scale".to_string(), SpecValue::Int(2))];
        assert_eq!(content_hash(&a), content_hash(&b));
        // A genuine fraction stays distinct.
        let mut c = base();
        c.params = vec![("scale".to_string(), SpecValue::Float(2.5))];
        assert_ne!(content_hash(&a), content_hash(&c));
    }

    #[test]
    fn execution_relevant_fields_change_the_key() {
        use crate::classify::{EngineKind, ExecMode};
        let a = base();
        for (label, sc) in [
            ("seed", {
                let mut s = base();
                s.seed = 43;
                s
            }),
            ("engine", {
                let mut s = base();
                s.engine = EngineKind::EventLevel;
                s
            }),
            ("exec", {
                let mut s = base();
                s.exec = ExecMode::hybrid(0.05);
                s
            }),
            ("telemetry", {
                let mut s = base();
                s.telemetry = true;
                s
            }),
            ("n", {
                let mut s = base();
                s.n = Some(8192);
                s
            }),
        ] {
            assert_ne!(content_hash(&a), content_hash(&sc), "{label} must key the cache");
        }
    }

    #[test]
    fn sweep_axis_order_is_semantic_and_keeps_distinct_keys() {
        // Axis order sets grid iteration order and per-point salts:
        // NOT normalized away.
        let mut a = base();
        a.sweep = Sweep::new(vec![Axis::ints("k", [1, 2]), Axis::ints("n", [8, 16])]);
        let mut b = base();
        b.sweep = Sweep::new(vec![Axis::ints("n", [8, 16]), Axis::ints("k", [1, 2])]);
        assert_ne!(content_hash(&a), content_hash(&b));
        // Value order inside one axis likewise.
        let mut c = base();
        c.sweep = Sweep::new(vec![Axis::ints("k", [256, 1])]);
        assert_ne!(content_hash(&base()), content_hash(&c));
    }

    #[test]
    fn tagged_encoding_separates_shapes() {
        assert_ne!(hash_value(&SpecValue::Str("1".into())), hash_value(&SpecValue::Int(1)));
        assert_ne!(
            hash_value(&SpecValue::List(vec![SpecValue::Int(1)])),
            hash_value(&SpecValue::Int(1))
        );
        assert_eq!(hash_value(&SpecValue::Float(1.0)), hash_value(&SpecValue::Float(1.0)));
    }

    #[test]
    fn display_is_32_hex_digits() {
        let h = content_hash(&base());
        let s = h.to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
