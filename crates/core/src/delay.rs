//! Bank delay models: how many cycles a bank is busy per access.
//!
//! The paper charges one uniform bank delay `d` in `max(L, g·h, d·R)`,
//! but real high-bandwidth machines are heterogeneous: SRAM and DRAM
//! banks coexist (a C90-like `d = 6` tier next to a J90-like `d = 14`
//! tier), individual banks degrade, and on NUMA-ish interconnects the
//! processor↔bank distance itself varies. [`BankDelayModel`] captures
//! the three shapes every execution layer consumes:
//!
//! * [`Uniform`](BankDelayModel::Uniform) — the paper's scalar `d`;
//!   every consumer's fast path, bit-identical to the pre-model code.
//! * [`PerBank`](BankDelayModel::PerBank) — one service delay per bank
//!   (`d_b`). The bank-epoch engine keeps its prefix recurrence (the
//!   recurrence is already per-bank), the analytical side generalizes
//!   the bank term to `max_b d_b·R_b`.
//! * [`Distance`](BankDelayModel::Distance) — per-bank service delays
//!   plus a processor×bank transit-distance matrix `dist(p, b)` added
//!   to each leg of the trip. Requests still arbitrate at banks in
//!   issue order (the crossbar preserves it), so results stay
//!   deterministic and scheduler-independent, but the bulk engines punt
//!   to the event-level loop.

use serde::{Deserialize, Serialize};

use crate::DxError;

/// A dense processor×bank one-way transit-distance matrix, in cycles,
/// stored row-major by processor.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcBankDistance {
    procs: usize,
    banks: usize,
    dist: Vec<u64>,
}

impl ProcBankDistance {
    /// Builds a distance matrix from row-major `dist` (`procs × banks`
    /// entries, processor-major).
    ///
    /// # Errors
    ///
    /// [`DxError::Invalid`] when the matrix shape does not match.
    pub fn new(procs: usize, banks: usize, dist: Vec<u64>) -> Result<Self, DxError> {
        if procs == 0 || banks == 0 {
            return Err(DxError::invalid("distance matrix needs procs >= 1 and banks >= 1"));
        }
        if dist.len() != procs * banks {
            return Err(DxError::invalid(format!(
                "distance matrix has {} entries, expected {procs}x{banks} = {}",
                dist.len(),
                procs * banks
            )));
        }
        Ok(Self { procs, banks, dist })
    }

    /// One-way extra transit cycles between processor `p` and bank `b`.
    #[inline]
    #[must_use]
    pub fn get(&self, p: usize, b: usize) -> u64 {
        self.dist[p * self.banks + b]
    }

    /// Processor rows in the matrix.
    #[must_use]
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Bank columns in the matrix.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.banks
    }
}

/// How long each bank is busy per access — the model behind every `d`
/// in the stack (see the module docs for the three shapes).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BankDelayModel {
    /// One scalar delay for every bank: the paper's `d`.
    Uniform(u64),
    /// An explicit per-bank service delay `d_b`, indexed by bank.
    PerBank(Vec<u64>),
    /// Per-bank service delays plus a processor↔bank distance matrix:
    /// a request from processor `p` to bank `b` pays `dist(p, b)` extra
    /// transit cycles each way on top of the machine latency.
    Distance {
        /// Per-bank service delay `d_b` (as in [`Self::PerBank`]).
        base: Vec<u64>,
        /// One-way transit distances `dist(p, b)`.
        matrix: ProcBankDistance,
    },
}

impl Default for BankDelayModel {
    fn default() -> Self {
        BankDelayModel::Uniform(1)
    }
}

impl BankDelayModel {
    /// The uniform model (the paper's scalar `d`).
    #[must_use]
    pub fn uniform(d: u64) -> Self {
        BankDelayModel::Uniform(d)
    }

    /// A per-bank model from explicit delays.
    #[must_use]
    pub fn per_bank(delays: Vec<u64>) -> Self {
        BankDelayModel::PerBank(delays)
    }

    /// A per-bank model built from contiguous tiers: `tiers` lists
    /// `(bank_count, delay)` runs laid out in order. The C90/J90 fused
    /// machine is `from_tiers(&[(128, 6), (128, 14)])`.
    #[must_use]
    pub fn from_tiers(tiers: &[(usize, u64)]) -> Self {
        let mut delays = Vec::with_capacity(tiers.iter().map(|(n, _)| n).sum());
        for &(count, d) in tiers {
            delays.extend(std::iter::repeat_n(d, count));
        }
        BankDelayModel::PerBank(delays)
    }

    /// Checks the model against a machine shape.
    ///
    /// Uniform delays must be at least one cycle (the paper's `d ≥ 1`).
    /// Per-bank vectors must have one entry per bank with at least one
    /// nonzero entry (individual banks may be zero-delay — degraded
    /// corners and proptests use that — but a machine whose every bank
    /// is free is degenerate). Distance matrices must match
    /// `procs × banks`.
    ///
    /// # Errors
    ///
    /// [`DxError::Invalid`] naming the mismatch.
    pub fn validate(&self, procs: usize, banks: usize) -> Result<(), DxError> {
        match self {
            BankDelayModel::Uniform(d) => {
                if *d == 0 {
                    return Err(DxError::invalid("delay: uniform d must be >= 1 cycle"));
                }
            }
            BankDelayModel::PerBank(v) | BankDelayModel::Distance { base: v, .. } => {
                if v.len() != banks {
                    return Err(DxError::invalid(format!(
                        "delay: {} per-bank entries for {banks} banks",
                        v.len()
                    )));
                }
                if v.iter().all(|&d| d == 0) {
                    return Err(DxError::invalid("delay: at least one bank must have d >= 1"));
                }
                if let BankDelayModel::Distance { matrix, .. } = self {
                    if matrix.procs() != procs || matrix.banks() != banks {
                        return Err(DxError::invalid(format!(
                            "delay: distance matrix is {}x{}, machine is {procs}x{banks}",
                            matrix.procs(),
                            matrix.banks()
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Service delay `d_b` of bank `bank`.
    #[inline]
    #[must_use]
    pub fn service(&self, bank: usize) -> u64 {
        match self {
            BankDelayModel::Uniform(d) => *d,
            BankDelayModel::PerBank(v) | BankDelayModel::Distance { base: v, .. } => v[bank],
        }
    }

    /// One-way extra transit cycles between `proc` and `bank` (zero for
    /// every model but [`Self::Distance`]).
    #[inline]
    #[must_use]
    pub fn travel(&self, proc: usize, bank: usize) -> u64 {
        match self {
            BankDelayModel::Distance { matrix, .. } => matrix.get(proc, bank),
            _ => 0,
        }
    }

    /// `Some(d)` when every bank has the same service delay and there
    /// is no distance matrix — the configurations the scalar-`d` fast
    /// paths and closed forms are exact for.
    #[must_use]
    pub fn as_uniform(&self) -> Option<u64> {
        match self {
            BankDelayModel::Uniform(d) => Some(*d),
            BankDelayModel::PerBank(v) => {
                let first = *v.first()?;
                v.iter().all(|&d| d == first).then_some(first)
            }
            BankDelayModel::Distance { .. } => None,
        }
    }

    /// Whether transit time depends on the (processor, bank) pair — the
    /// one shape whose request interleaving the bulk engines cannot
    /// reproduce, forcing the event-level punt.
    #[must_use]
    pub fn has_distance(&self) -> bool {
        matches!(self, BankDelayModel::Distance { .. })
    }

    /// The slowest bank's service delay.
    #[must_use]
    pub fn max_service(&self) -> u64 {
        match self {
            BankDelayModel::Uniform(d) => *d,
            BankDelayModel::PerBank(v) | BankDelayModel::Distance { base: v, .. } => {
                v.iter().copied().max().unwrap_or(0)
            }
        }
    }

    /// The fastest bank's service delay.
    #[must_use]
    pub fn min_service(&self) -> u64 {
        match self {
            BankDelayModel::Uniform(d) => *d,
            BankDelayModel::PerBank(v) | BankDelayModel::Distance { base: v, .. } => {
                v.iter().copied().min().unwrap_or(0)
            }
        }
    }

    /// A scalar `d` summarizing the model for consumers that need one
    /// number (e.g. [`crate::MachineParams`]): the slowest bank's
    /// delay, clamped to the model invariant `d ≥ 1`. Exact for
    /// uniform models; a conservative ceiling otherwise.
    #[must_use]
    pub fn uniform_summary(&self) -> u64 {
        self.max_service().max(1)
    }

    /// The distinct service-delay classes (tiers) with their bank
    /// counts, ordered by delay: `[(6, 128), (14, 128)]` for the
    /// C90/J90 fused machine. Telemetry's per-tier dwell family and
    /// the CLI headers group banks this way.
    #[must_use]
    pub fn tiers(&self) -> Vec<(u64, usize)> {
        match self {
            BankDelayModel::Uniform(d) => vec![(*d, 0)],
            BankDelayModel::PerBank(v) | BankDelayModel::Distance { base: v, .. } => {
                let mut sorted: Vec<u64> = v.clone();
                sorted.sort_unstable();
                let mut out: Vec<(u64, usize)> = Vec::new();
                for d in sorted {
                    match out.last_mut() {
                        Some((last, n)) if *last == d => *n += 1,
                        _ => out.push((d, 1)),
                    }
                }
                out
            }
        }
    }

    /// One-line human description, used by the CLI headers and the
    /// telemetry summaries: `uniform(d=14)`,
    /// `per-bank(d=6 x128, d=14 x128)`, `distance(d=6..14, matrix 8x256)`.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            BankDelayModel::Uniform(d) => format!("uniform(d={d})"),
            BankDelayModel::PerBank(_) => {
                let tiers: Vec<String> =
                    self.tiers().iter().map(|(d, n)| format!("d={d} x{n}")).collect();
                format!("per-bank({})", tiers.join(", "))
            }
            BankDelayModel::Distance { matrix, .. } => format!(
                "distance(d={}..{}, matrix {}x{})",
                self.min_service(),
                self.max_service(),
                matrix.procs(),
                matrix.banks()
            ),
        }
    }
}

impl std::fmt::Display for BankDelayModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_the_scalar_model() {
        let m = BankDelayModel::uniform(14);
        assert_eq!(m.service(0), 14);
        assert_eq!(m.service(255), 14);
        assert_eq!(m.travel(3, 7), 0);
        assert_eq!(m.as_uniform(), Some(14));
        assert_eq!(m.uniform_summary(), 14);
        assert!(m.validate(8, 256).is_ok());
        assert_eq!(m.describe(), "uniform(d=14)");
    }

    #[test]
    fn per_bank_indexes_and_summarizes() {
        let m = BankDelayModel::from_tiers(&[(2, 6), (2, 14)]);
        assert_eq!(m.service(0), 6);
        assert_eq!(m.service(1), 6);
        assert_eq!(m.service(2), 14);
        assert_eq!(m.service(3), 14);
        assert_eq!(m.as_uniform(), None);
        assert_eq!(m.min_service(), 6);
        assert_eq!(m.max_service(), 14);
        assert_eq!(m.uniform_summary(), 14);
        assert_eq!(m.tiers(), vec![(6, 2), (14, 2)]);
        assert!(m.validate(2, 4).is_ok());
        assert_eq!(m.describe(), "per-bank(d=6 x2, d=14 x2)");
    }

    #[test]
    fn flat_per_bank_vector_is_uniform() {
        let m = BankDelayModel::per_bank(vec![9; 16]);
        assert_eq!(m.as_uniform(), Some(9));
    }

    #[test]
    fn validation_rejects_shape_mismatches() {
        assert!(BankDelayModel::uniform(0).validate(1, 4).is_err());
        assert!(BankDelayModel::per_bank(vec![6; 3]).validate(1, 4).is_err());
        assert!(BankDelayModel::per_bank(vec![0; 4]).validate(1, 4).is_err());
        // Individual zero-delay banks are allowed.
        assert!(BankDelayModel::per_bank(vec![0, 0, 0, 5]).validate(1, 4).is_ok());
        let matrix = ProcBankDistance::new(2, 4, vec![1; 8]).unwrap();
        let m = BankDelayModel::Distance { base: vec![6; 4], matrix };
        assert!(m.validate(2, 4).is_ok());
        assert!(m.validate(3, 4).is_err());
        assert!(ProcBankDistance::new(2, 4, vec![1; 7]).is_err());
        assert!(ProcBankDistance::new(0, 4, vec![]).is_err());
    }

    #[test]
    fn distance_travel_is_pair_dependent() {
        let matrix = ProcBankDistance::new(2, 3, vec![0, 1, 2, 10, 11, 12]).unwrap();
        let m = BankDelayModel::Distance { base: vec![4, 5, 6], matrix };
        assert_eq!(m.travel(0, 2), 2);
        assert_eq!(m.travel(1, 0), 10);
        assert_eq!(m.service(1), 5);
        assert!(m.has_distance());
        assert_eq!(m.as_uniform(), None);
        assert!(m.describe().starts_with("distance(d=4..6"));
    }

    #[test]
    fn default_is_the_unit_uniform_model() {
        assert_eq!(BankDelayModel::default(), BankDelayModel::Uniform(1));
    }
}
