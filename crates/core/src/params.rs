//! The five (d,x)-BSP machine parameters and derived quantities.

use serde::{Deserialize, Serialize};

/// Parameters of a (d,x)-BSP machine.
///
/// The first three are Valiant's BSP parameters; `d` and `x` are the
/// paper's extensions. All time-like parameters are in clock cycles.
///
/// # Invariants
///
/// `p ≥ 1`, `g ≥ 1`, `d ≥ 1`, `x ≥ 1`. (`l` may be zero: the paper's
/// experiments note "L is negligible" for the Cray runs.)
///
/// # Example
///
/// ```
/// use dxbsp_core::MachineParams;
///
/// let m = MachineParams::new(8, 1, 0, 14, 32); // a J90-like machine
/// assert_eq!(m.banks(), 256);
/// // With d=14 and x=32 the memory side is faster than the processor
/// // side (d/x < g), so uncontended scatters are processor-bound.
/// assert!(m.memory_bound_gap() <= m.g);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MachineParams {
    /// Number of processors.
    pub p: usize,
    /// Gap: cycles per memory request at a processor (1/bandwidth).
    pub g: u64,
    /// Latency / synchronization cost charged once per superstep.
    pub l: u64,
    /// Bank delay: cycles between successive accesses to one bank.
    pub d: u64,
    /// Expansion factor: memory banks per processor.
    pub x: usize,
}

impl MachineParams {
    /// Creates a parameter set, panicking on a degenerate machine.
    ///
    /// # Panics
    ///
    /// Panics if `p`, `g`, `d` or `x` is zero.
    #[must_use]
    pub fn new(p: usize, g: u64, l: u64, d: u64, x: usize) -> Self {
        assert!(p >= 1, "need at least one processor");
        assert!(g >= 1, "gap must be at least one cycle per request");
        assert!(d >= 1, "bank delay must be at least one cycle");
        assert!(x >= 1, "need at least one bank per processor");
        Self { p, g, l, d, x }
    }

    /// Fallible constructor: the same invariants as [`MachineParams::new`]
    /// reported as a [`crate::DxError`] instead of a panic. This is the entry
    /// point for user-supplied machines (scenario files, CLI flags).
    ///
    /// # Errors
    ///
    /// [`crate::DxError::Invalid`] naming the offending parameter when `p`,
    /// `g`, `d` or `x` is zero.
    pub fn try_new(p: usize, g: u64, l: u64, d: u64, x: usize) -> Result<Self, crate::DxError> {
        use crate::DxError;
        if p < 1 {
            return Err(DxError::invalid("machine: p must be >= 1 (need a processor)"));
        }
        if g < 1 {
            return Err(DxError::invalid("machine: g must be >= 1 cycle per request"));
        }
        if d < 1 {
            return Err(DxError::invalid("machine: d must be >= 1 cycle of bank delay"));
        }
        if x < 1 {
            return Err(DxError::invalid("machine: x must be >= 1 bank per processor"));
        }
        Ok(Self { p, g, l, d, x })
    }

    /// Total number of memory banks, `B = x·p`.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.x * self.p
    }

    /// The effective per-processor gap imposed by the memory side:
    /// `d/x` cycles per request (rounded up), i.e. the rate at which the
    /// bank array can absorb uniformly spread requests, per processor.
    ///
    /// When `memory_bound_gap() > g` the machine is memory-bound even on
    /// perfectly balanced access patterns; the paper calls `x = d/g` the
    /// *balance point* where processor/network bandwidth equals total
    /// bank bandwidth.
    #[must_use]
    pub fn memory_bound_gap(&self) -> u64 {
        self.d.div_ceil(self.x as u64)
    }

    /// The balance-point expansion factor `⌈d/g⌉`: the smallest `x` at
    /// which the banks collectively match processor bandwidth.
    #[must_use]
    pub fn balance_expansion(&self) -> usize {
        usize::try_from(self.d.div_ceil(self.g)).expect("d/g fits in usize")
    }

    /// Whether the bank array can keep up with the processors on
    /// perfectly spread traffic (`x ≥ d/g`).
    #[must_use]
    pub fn is_balanced(&self) -> bool {
        self.x >= self.balance_expansion()
    }

    /// Returns a copy with a different expansion factor (used in the
    /// expansion-sweep experiments).
    #[must_use]
    pub fn with_expansion(mut self, x: usize) -> Self {
        assert!(x >= 1, "need at least one bank per processor");
        self.x = x;
        self
    }

    /// Returns a copy with a different bank delay.
    #[must_use]
    pub fn with_delay(mut self, d: u64) -> Self {
        assert!(d >= 1, "bank delay must be at least one cycle");
        self.d = d;
        self
    }

    /// Returns a copy with a different processor count, keeping `x`
    /// fixed (so the bank count scales with `p`).
    #[must_use]
    pub fn with_processors(mut self, p: usize) -> Self {
        assert!(p >= 1, "need at least one processor");
        self.p = p;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banks_is_x_times_p() {
        let m = MachineParams::new(16, 1, 0, 6, 64);
        assert_eq!(m.banks(), 1024);
    }

    #[test]
    fn balance_point_matches_paper_intuition() {
        // With g = 1, a machine needs x = d banks per processor to
        // balance: the "natural choice of d banks per processor to
        // compensate for a bank delay of d" from the abstract.
        let m = MachineParams::new(8, 1, 0, 14, 14);
        assert_eq!(m.balance_expansion(), 14);
        assert!(m.is_balanced());
        assert!(!m.with_expansion(13).is_balanced());
    }

    #[test]
    fn memory_bound_gap_rounds_up() {
        let m = MachineParams::new(8, 1, 0, 14, 4);
        assert_eq!(m.memory_bound_gap(), 4); // ceil(14/4)
        assert_eq!(m.with_expansion(14).memory_bound_gap(), 1);
        assert_eq!(m.with_expansion(28).memory_bound_gap(), 1);
    }

    #[test]
    fn with_builders_update_single_fields() {
        let m = MachineParams::new(8, 2, 100, 6, 8);
        assert_eq!(m.with_expansion(3).x, 3);
        assert_eq!(m.with_delay(9).d, 9);
        assert_eq!(m.with_processors(2).p, 2);
        // Unrelated fields survive.
        assert_eq!(m.with_expansion(3).l, 100);
    }

    #[test]
    #[should_panic(expected = "bank delay")]
    fn zero_delay_rejected() {
        let _ = MachineParams::new(1, 1, 0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "one processor")]
    fn zero_processors_rejected() {
        let _ = MachineParams::new(0, 1, 0, 1, 1);
    }
}
