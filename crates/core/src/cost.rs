//! Superstep and pattern cost evaluation.
//!
//! The central charge of the paper (§2): a superstep in which every
//! processor issues at most `h` requests and every bank receives at most
//! `R` requests costs `max(L, g·h, d·R)` cycles on the (d,x)-BSP. The
//! plain BSP drops the `d·R` term (equivalently assumes `d ≤ g`,
//! `x = 1`). This module evaluates both charges, for raw `(h, R)`
//! aggregates and for full [`AccessPattern`]s under a [`BankMap`].

use serde::{Deserialize, Serialize};

use crate::bankmap::BankMap;
use crate::params::MachineParams;
use crate::pattern::AccessPattern;

/// Which model to charge a pattern under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostModel {
    /// Valiant's BSP: `max(L, g·h)`.
    Bsp,
    /// The paper's extension: `max(L, g·h, d·R)`.
    DxBsp,
}

/// The three competing terms of a (d,x)-BSP superstep charge, kept
/// separate so experiments can report *which* resource bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// The latency/synchronization term `L`.
    pub latency: u64,
    /// The processor/network bandwidth term `g·h`.
    pub processor: u64,
    /// The memory-bank term `d·R` (zero under the plain BSP).
    pub bank: u64,
}

impl CostBreakdown {
    /// The superstep charge: the maximum of the three terms.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.latency.max(self.processor).max(self.bank)
    }

    /// Which term is binding (`"latency"`, `"processor"` or `"bank"`,
    /// with ties broken in that order).
    #[must_use]
    pub fn binding(&self) -> &'static str {
        let t = self.total();
        if self.latency == t {
            "latency"
        } else if self.processor == t {
            "processor"
        } else {
            "bank"
        }
    }
}

/// (d,x)-BSP superstep cost from raw aggregates: `max(L, g·h, d·R)`.
#[must_use]
pub fn superstep_cost(m: &MachineParams, h: usize, r: usize) -> u64 {
    superstep_breakdown(m, h, r).total()
}

/// The per-term breakdown of [`superstep_cost`].
#[must_use]
pub fn superstep_breakdown(m: &MachineParams, h: usize, r: usize) -> CostBreakdown {
    CostBreakdown { latency: m.l, processor: m.g * h as u64, bank: m.d * r as u64 }
}

/// Plain-BSP superstep cost: `max(L, g·h)`.
#[must_use]
pub fn bsp_superstep_cost(m: &MachineParams, h: usize) -> u64 {
    m.l.max(m.g * h as u64)
}

/// Charges a full access pattern under `model`, computing `h` from the
/// pattern and `R` from the pattern and `map`.
///
/// Under [`CostModel::Bsp`] the map is ignored (the BSP has no banks).
///
/// # Example
///
/// ```
/// use dxbsp_core::{pattern_cost, AccessPattern, CostModel, Interleaved, MachineParams};
///
/// let m = MachineParams::new(4, 1, 0, 8, 2);
/// let map = Interleaved::new(m.banks());
/// // All 16 writes to one address: location contention 16.
/// let pat = AccessPattern::scatter(4, &vec![42u64; 16]);
/// let dx = pattern_cost(&m, &pat, &map, CostModel::DxBsp);
/// let bsp = pattern_cost(&m, &pat, &map, CostModel::Bsp);
/// assert_eq!(bsp, 4);        // g·h = 1·(16/4)
/// assert_eq!(dx, 8 * 16);    // d·R dominates: all 16 on one bank
/// ```
#[must_use]
pub fn pattern_cost<M: BankMap>(
    m: &MachineParams,
    pat: &AccessPattern,
    map: &M,
    model: CostModel,
) -> u64 {
    pattern_breakdown(m, pat, map, model).total()
}

/// The per-term breakdown of [`pattern_cost`].
#[must_use]
pub fn pattern_breakdown<M: BankMap>(
    m: &MachineParams,
    pat: &AccessPattern,
    map: &M,
    model: CostModel,
) -> CostBreakdown {
    let h = pat.contention_profile().max_processor_load;
    let r = match model {
        CostModel::Bsp => 0,
        CostModel::DxBsp => pat.max_bank_load(map),
    };
    CostBreakdown {
        latency: m.l,
        processor: m.g * h as u64,
        bank: match model {
            CostModel::Bsp => 0,
            CostModel::DxBsp => m.d * r as u64,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bankmap::Interleaved;
    use crate::pattern::Request;

    fn machine() -> MachineParams {
        MachineParams::new(4, 1, 10, 6, 4)
    }

    #[test]
    fn superstep_cost_is_max_of_terms() {
        let m = machine();
        assert_eq!(superstep_cost(&m, 0, 0), 10); // latency floor
        assert_eq!(superstep_cost(&m, 100, 0), 100); // g·h
        assert_eq!(superstep_cost(&m, 1, 50), 300); // d·R
    }

    #[test]
    fn breakdown_identifies_binding_term() {
        let m = machine();
        assert_eq!(superstep_breakdown(&m, 0, 0).binding(), "latency");
        assert_eq!(superstep_breakdown(&m, 100, 1).binding(), "processor");
        assert_eq!(superstep_breakdown(&m, 1, 100).binding(), "bank");
    }

    #[test]
    fn bsp_cost_ignores_banks() {
        let m = machine();
        assert_eq!(bsp_superstep_cost(&m, 3), 10); // latency floor
        assert_eq!(bsp_superstep_cost(&m, 30), 30);
    }

    #[test]
    fn dxbsp_at_least_bsp_on_any_pattern() {
        let m = machine();
        let map = Interleaved::new(m.banks());
        let mut pat = AccessPattern::new(4);
        for i in 0..40u64 {
            pat.push(Request::write((i % 4) as usize, i * 7 % 13));
        }
        let bsp = pattern_cost(&m, &pat, &map, CostModel::Bsp);
        let dx = pattern_cost(&m, &pat, &map, CostModel::DxBsp);
        assert!(dx >= bsp);
    }

    #[test]
    fn hot_location_dominates_dxbsp_cost() {
        let m = MachineParams::new(4, 1, 0, 6, 16);
        let map = Interleaved::new(m.banks());
        let pat = AccessPattern::scatter(4, &vec![7u64; 64]);
        // 64 requests on one bank at 6 cycles each.
        assert_eq!(pattern_cost(&m, &pat, &map, CostModel::DxBsp), 6 * 64);
        // BSP sees only the h = 16 per-processor load.
        assert_eq!(pattern_cost(&m, &pat, &map, CostModel::Bsp), 16);
    }

    #[test]
    fn empty_pattern_costs_latency() {
        let m = machine();
        let map = Interleaved::new(m.banks());
        let pat = AccessPattern::new(4);
        assert_eq!(pattern_cost(&m, &pat, &map, CostModel::DxBsp), m.l);
    }
}
